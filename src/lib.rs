//! # Ohm-GPU
//!
//! Facade crate for the Ohm-GPU reproduction. Re-exports the public APIs of
//! every crate in the workspace so that examples, integration tests and
//! downstream users can depend on a single crate.
//!
//! See the individual crates for the full documentation:
//!
//! * [`sim`] — discrete-event simulation kernel.
//! * [`mem`] — DRAM / 3D XPoint device and controller models.
//! * [`optic`] — silicon nano-photonic network models.
//! * [`sm`] — GPU streaming-multiprocessor and cache models.
//! * [`hetero`] — heterogeneous-memory modes and migration engines.
//! * [`workloads`] — Table II workload generators and the host/SSD substrate.
//! * [`core`] — system assembly, platforms, metrics, energy and cost models.

#![warn(missing_docs)]

pub use ohm_core as core;
pub use ohm_hetero as hetero;
pub use ohm_mem as mem;
pub use ohm_optic as optic;
pub use ohm_sim as sim;
pub use ohm_sm as sm;
pub use ohm_workloads as workloads;
