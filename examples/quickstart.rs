//! Quickstart: build one Ohm-GPU platform, run one Table II workload,
//! and read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ohm_gpu::core::config::SystemConfig;
use ohm_gpu::core::{Platform, System};
use ohm_gpu::optic::OperationalMode;
use ohm_gpu::workloads::workload_by_name;

fn main() {
    // A small configuration that runs in well under a second; see
    // SystemConfig::evaluation() for the paper-scale setup.
    let cfg = SystemConfig::quick_test();

    // Pick a Table II workload. Each comes with the paper's APKI and
    // read-ratio characteristics baked in.
    let spec = workload_by_name("bfsdata").expect("Table II workload");

    // Assemble the Ohm-WOM platform (optical channel + heterogeneous
    // memory + dual routes) in planar memory mode, and run the kernel.
    let mut system = System::new(&cfg, Platform::OhmWom, OperationalMode::Planar, &spec);
    let report = system.run();

    println!("workload     : {} (APKI {})", report.workload, spec.apki);
    println!(
        "platform     : {} / {:?}",
        report.platform.name(),
        report.mode
    );
    println!("makespan     : {}", report.makespan);
    println!("instructions : {}", report.instructions);
    println!("IPC          : {:.3}", report.ipc);
    println!("mem requests : {}", report.mem_requests);
    println!("avg latency  : {:.0} ns", report.avg_mem_latency_ns);
    println!(
        "L1 / L2 hit  : {:.1}% / {:.1}%",
        report.l1_hit_rate * 100.0,
        report.l2_hit_rate * 100.0
    );
    println!(
        "DRAM share   : {:.1}% of heterogeneous services",
        report.hetero_dram_hit_rate * 100.0
    );
    println!("migrations   : {}", report.migrations);
    println!(
        "channel      : {:.1}% utilised, {:.1}% of busy time is migration",
        report.channel_utilization * 100.0,
        report.migration_channel_fraction * 100.0
    );
    println!(
        "energy       : {:.3} mJ total",
        report.energy.total_j() * 1e3
    );
}
