//! Graph analytics on heterogeneous memory: compare all seven evaluated
//! platforms on the GraphBIG-style workloads the paper's introduction
//! motivates (pagerank, BFS, betweenness).
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use ohm_gpu::core::config::SystemConfig;
use ohm_gpu::core::runner::Run;
use ohm_gpu::core::Platform;
use ohm_gpu::optic::OperationalMode;
use ohm_gpu::workloads::workload_by_name;

fn main() {
    let cfg = SystemConfig::quick_test();
    let mode = OperationalMode::Planar;

    println!("Graph analytics across the seven evaluated platforms ({mode:?} mode)\n");
    println!(
        "{:>10} {:>10} {:>8} {:>10} {:>12} {:>11}",
        "workload", "platform", "IPC", "lat(ns)", "migrations", "mig-channel"
    );

    for name in ["pagerank", "bfsdata", "betw"] {
        let spec = workload_by_name(name).expect("Table II workload");
        for platform in Platform::ALL {
            let r = Run::new(&cfg)
                .platform(platform)
                .mode(mode)
                .workload(&spec)
                .execute();
            println!(
                "{:>10} {:>10} {:>8.3} {:>10.0} {:>12} {:>10.1}%",
                name,
                platform.name(),
                r.ipc,
                r.avg_mem_latency_ns,
                r.migrations,
                r.migration_channel_fraction * 100.0
            );
        }
        println!();
    }

    println!("Reading the table:");
    println!(" * Origin pays host/SSD staging for the out-of-memory working set;");
    println!(" * Hetero/Ohm-base lose channel time to hot-page migration;");
    println!(" * Auto-rw snarfs the DRAM->XPoint leg off the channel;");
    println!(" * Ohm-WOM/Ohm-BW move migrations onto the dual routes entirely.");
}
