//! Optical link engineering: explore how laser power, path losses and
//! half-coupled splits move the bit error rate — the Figure 20b analysis
//! as an interactive design tool.
//!
//! ```sh
//! cargo run --release --example optical_reliability
//! ```

use ohm_gpu::core::reliability::{platform_ber, HALF_COUPLE_ABSORB};
use ohm_gpu::core::Platform;
use ohm_gpu::optic::{BerModel, OpticalPathLoss, OpticalPowerModel};

fn main() {
    let model = BerModel::paper_default();

    println!("Laser power sweep on the nominal Ohm-base path:\n");
    println!(
        "{:>8} {:>12} {:>12} {:>6}",
        "laser", "rx power", "BER", "ok"
    );
    for scale in [0.5, 0.75, 1.0, 1.5, 2.0, 4.0] {
        let power = OpticalPowerModel {
            laser_scale: scale,
            ..OpticalPowerModel::default()
        };
        let rx = power.received_mw(BerModel::nominal_path());
        let ber = model.ber(rx);
        println!(
            "{:>7.2}x {:>9.3} mW {:>12.2e} {:>6}",
            scale,
            rx,
            ber,
            if ber < BerModel::REQUIREMENT {
                "yes"
            } else {
                "NO"
            }
        );
    }

    println!("\nWaveguide length sweep (1x laser):\n");
    println!("{:>8} {:>10} {:>12}", "length", "loss", "BER");
    for cm in [1.0, 2.0, 4.0, 6.0, 8.0] {
        let path = OpticalPathLoss::new()
            .modulator(0.5)
            .waveguide_cm(cm)
            .filter_drop()
            .detector();
        let rx = OpticalPowerModel::default().received_mw(path);
        println!(
            "{cm:>6} cm {:>7.2} dB {:>12.2e}",
            path.total_db(),
            model.ber(rx)
        );
    }

    println!(
        "\nPlatform light paths (half-coupled rings absorb {:.0}%):\n",
        HALF_COUPLE_ABSORB * 100.0
    );
    for p in [
        Platform::OhmBase,
        Platform::AutoRw,
        Platform::OhmWom,
        Platform::OhmBw,
    ] {
        for pt in platform_ber(p) {
            println!(
                "{:>9} {:<22} {:>6.3} mW  BER {:.2e}",
                p.name(),
                pt.function,
                pt.received_mw,
                pt.ber
            );
        }
    }
    println!("\nEvery path must stay under the paper's 1e-15 requirement.");
}
