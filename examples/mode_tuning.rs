//! Memory-mode and policy tuning: sweep the planar hot-page threshold and
//! compare the two operational modes — the design-space exploration a
//! system integrator would run before deploying Ohm memory.
//!
//! ```sh
//! cargo run --release --example mode_tuning
//! ```

use ohm_gpu::core::config::SystemConfig;
use ohm_gpu::core::runner::Run;
use ohm_gpu::core::Platform;
use ohm_gpu::optic::OperationalMode;
use ohm_gpu::workloads::workload_by_name;

fn main() {
    let spec = workload_by_name("gctopo").expect("Table II workload");

    println!(
        "Planar hot-page threshold sweep (Ohm-WOM, {}):\n",
        spec.name
    );
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>12}",
        "threshold", "IPC", "migrations", "DRAM share", "mig-channel"
    );
    for threshold in [4u32, 8, 16, 32, 64] {
        let mut cfg = SystemConfig::quick_test();
        cfg.memory.hot_threshold = threshold;
        let r = Run::new(&cfg)
            .platform(Platform::OhmWom)
            .mode(OperationalMode::Planar)
            .workload(&spec)
            .execute();
        println!(
            "{:>10} {:>8.3} {:>12} {:>11.1}% {:>11.1}%",
            threshold,
            r.ipc,
            r.migrations,
            r.hetero_dram_hit_rate * 100.0,
            r.migration_channel_fraction * 100.0
        );
    }
    println!("\nLow thresholds promote aggressively (more DRAM service, more");
    println!("migration traffic); high thresholds leave hot data on XPoint.");

    println!("\nOperational-mode comparison (Ohm-BW):\n");
    println!(
        "{:>10} {:>10} {:>8} {:>10} {:>12}",
        "mode", "capacity", "IPC", "lat(ns)", "DRAM share"
    );
    let cfg = SystemConfig::quick_test();
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        let r = Run::new(&cfg)
            .platform(Platform::OhmBw)
            .mode(mode)
            .workload(&spec)
            .execute();
        let ratio = match mode {
            OperationalMode::Planar => cfg.memory.planar_ratio,
            OperationalMode::TwoLevel => cfg.memory.two_level_ratio,
        };
        println!(
            "{:>10} {:>9}x {:>8.3} {:>10.0} {:>11.1}%",
            format!("{mode:?}"),
            ratio + 1,
            r.ipc,
            r.avg_mem_latency_ns,
            r.hetero_dram_hit_rate * 100.0
        );
    }
    println!(
        "\nPlanar maximises DRAM-backed capacity per group (1:{}),",
        8
    );
    println!(
        "two-level maximises total capacity (1:{}) behind a DRAM cache.",
        64
    );
}
