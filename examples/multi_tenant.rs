//! Spatial multi-tenancy: two kernels share one Ohm-GPU, partitioned
//! across the SMs — the large-scale multi-application scenario the
//! paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use ohm_gpu::core::config::SystemConfig;
use ohm_gpu::core::{Platform, System};
use ohm_gpu::optic::OperationalMode;
use ohm_gpu::workloads::{workload_by_name, CompositeWorkload};

fn main() {
    let mut cfg = SystemConfig::quick_test();
    cfg.gpu.sms = 4;
    cfg.gpu.sm.warps = 8;

    // Tenant A: latency-sensitive graph analytics on SMs 0-1.
    // Tenant B: bandwidth-hungry streaming stencil on SMs 2-3.
    let a = workload_by_name("pagerank")
        .unwrap()
        .with_footprint(32 << 20);
    let b = workload_by_name("FDTD").unwrap().with_footprint(32 << 20);
    let multi = CompositeWorkload::new(&[(a, 2), (b, 2)], cfg.gpu.sm.warps, cfg.insts_per_warp, 42);

    // The combined footprint sizes the heterogeneous memory; the spec's
    // other fields only label the report.
    let combined = a.with_footprint(multi.total_footprint_bytes());

    println!("Two tenants sharing one GPU ({} SMs each):\n", 2);
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12}",
        "platform", "IPC", "lat(ns)", "migrations", "mig-channel"
    );
    for platform in [
        Platform::OhmBase,
        Platform::AutoRw,
        Platform::OhmWom,
        Platform::OhmBw,
    ] {
        let multi =
            CompositeWorkload::new(&[(a, 2), (b, 2)], cfg.gpu.sm.warps, cfg.insts_per_warp, 42);
        let mut sys = System::with_stream(
            &cfg,
            platform,
            OperationalMode::Planar,
            &combined,
            Box::new(multi),
        );
        let r = sys.run();
        println!(
            "{:>10} {:>8.3} {:>10.0} {:>12} {:>11.1}%",
            platform.name(),
            r.ipc,
            r.avg_mem_latency_ns,
            r.migrations,
            r.migration_channel_fraction * 100.0
        );
    }

    println!("\nThe tenants never share pages (footprints are placed back to");
    println!("back), but they contend for the virtual channels, the DRAM banks");
    println!("and the XPoint partitions — pagerank's hot-page migrations steal");
    println!("channel time from FDTD's streams on Ohm-base, and the dual-route");
    println!("platforms give it back.");
}
