//! XPoint endurance: drive hot write traffic through the logic-layer
//! XPoint controller and watch Start-Gap spread the wear.
//!
//! ```sh
//! cargo run --release --example wear_leveling
//! ```

use ohm_gpu::mem::xpoint_ctrl::{XPointController, XpCtrlConfig};
use ohm_gpu::mem::{StartGap, XPointConfig};
use ohm_gpu::sim::{Addr, Ps, SplitMix64};

fn main() {
    println!("Start-Gap rotation on a hammered line:\n");
    let mut sg = StartGap::new(64, 16);
    println!(
        "{:>10} {:>10} {:>12} {:>10}",
        "writes", "gap moves", "max/mean", "phys(7)"
    );
    for step in 1..=6 {
        for _ in 0..1000 {
            sg.record_write(7); // one pathological hot line
        }
        let w = sg.wear_stats();
        println!(
            "{:>10} {:>10} {:>12.1} {:>10}",
            step * 1000,
            w.gap_moves,
            w.imbalance,
            sg.translate(7)
        );
    }
    println!("\nWithout leveling the hot line would absorb 100% of the writes");
    println!("(imbalance ~= the line count); Start-Gap keeps max/mean low and");
    println!("the hot line's physical slot keeps moving.");

    println!("\nFull controller with wear-leveling folded in:\n");
    let cfg = XpCtrlConfig {
        psi: 16,
        media: XPointConfig {
            capacity_bytes: 64 << 10,
            ..XPointConfig::default()
        },
        ..XpCtrlConfig::default()
    };
    let mut ctrl = XPointController::new(cfg);
    let mut rng = SplitMix64::new(9);
    let mut now = Ps::ZERO;
    for _ in 0..20_000 {
        // Skewed writes: 80% land on 32 hot lines.
        let line = if rng.chance(0.8) {
            rng.next_below(32)
        } else {
            rng.next_below(512)
        };
        ctrl.write(now, Addr::new(line * 128));
        now += Ps::from_ns(50);
    }
    let stats = ctrl.wear_stats();
    let (moves_r, moves_w) = ctrl.wear_move_ops();
    println!("total line writes : {}", stats.total_writes);
    println!("gap rotations     : {}", stats.gap_moves);
    println!("leveling copies   : {moves_r} reads + {moves_w} writes on the media");
    println!(
        "wear imbalance    : {:.2} (1.0 = perfectly even)",
        stats.imbalance
    );
    println!("\nThe rotation cost rides the media in the background — it never");
    println!("occupies the optical channel, exactly as the logic-layer design intends.");
}
