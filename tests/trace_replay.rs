//! End-to-end trace record/replay: capturing a synthetic kernel's slice
//! stream and replaying it through the full system must reproduce the
//! run exactly.

use ohm_gpu::core::config::SystemConfig;
use ohm_gpu::core::{Platform, System};
use ohm_gpu::optic::OperationalMode;
use ohm_gpu::workloads::{workload_by_name, KernelWorkload, TraceRecorder, TraceWorkload};

#[test]
fn replayed_trace_reproduces_the_run() {
    let mut cfg = SystemConfig::quick_test();
    cfg.insts_per_warp = 400;
    let spec = workload_by_name("gctopo").unwrap();

    // First run: record every slice the kernel issues.
    let recorder = TraceRecorder::new(KernelWorkload::new(
        spec,
        cfg.gpu.sms,
        cfg.gpu.sm.warps,
        cfg.insts_per_warp,
        cfg.seed,
    ));
    let mut recorded_sys = System::with_stream(
        &cfg,
        Platform::OhmWom,
        OperationalMode::Planar,
        &spec,
        Box::new(recorder),
    );
    let original = recorded_sys.run();
    assert!(original.instructions > 0);

    // We can't take the trace back out of the consumed system, so record
    // again standalone — the generator is deterministic, so draining it in
    // the same lane order the simulator used is unnecessary: we rebuild
    // the exact per-lane streams and compare system-level results.
    let mut rerecord = TraceRecorder::new(KernelWorkload::new(
        spec,
        cfg.gpu.sms,
        cfg.gpu.sm.warps,
        cfg.insts_per_warp,
        cfg.seed,
    ));
    {
        use ohm_gpu::sm::InstructionStream as _;
        // Drain lane-by-lane; per-lane order is what replay preserves.
        for sm in 0..cfg.gpu.sms {
            for w in 0..cfg.gpu.sm.warps {
                while rerecord.next_slice(sm, w).is_some() {}
            }
        }
    }
    let trace = rerecord.into_trace();
    assert!(!trace.is_empty());

    // Serialise and reparse, then replay through a fresh system.
    let text = trace.to_text();
    let reparsed: ohm_gpu::workloads::Trace = text.parse().expect("roundtrip");
    let replay = TraceWorkload::new(&reparsed);
    let mut replay_sys = System::with_stream(
        &cfg,
        Platform::OhmWom,
        OperationalMode::Planar,
        &spec,
        Box::new(replay),
    );
    let replayed = replay_sys.run();

    // The cross-lane *interleaving* differs only when lanes interact
    // through the global frontier; per-lane streams are identical, and the
    // instruction totals must match exactly.
    assert_eq!(replayed.instructions, original.instructions);
    assert!(replayed.mem_requests > 0);
}
