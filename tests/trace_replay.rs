//! End-to-end trace record/replay: capturing a run's slice stream and
//! replaying it through the full system must reproduce the run
//! bit-identically. This is the correctness anchor for the trace layer
//! (`docs/TRACE_FORMAT.md`): the recorder sits inside the recorded run,
//! so the captured per-lane streams embed the exact interleaving the
//! simulator consumed.

use ohm_gpu::core::config::SystemConfig;
use ohm_gpu::core::{Platform, Run};
use ohm_gpu::optic::OperationalMode;
use ohm_gpu::workloads::{workload_by_name, TraceError, TraceReader};
use std::io::Cursor;

#[test]
fn recorded_run_replays_bit_identically() {
    let mut cfg = SystemConfig::quick_test();
    cfg.insts_per_warp = 400;
    let spec = workload_by_name("gctopo").unwrap();

    // Recording is a pass-through: the recorded run equals a plain run.
    let plain = Run::new(&cfg)
        .platform(Platform::OhmWom)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    let (original, trace) = Run::new(&cfg)
        .platform(Platform::OhmWom)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .record(Vec::new())
        .execute()
        .expect("recording succeeds");
    assert_eq!(original, plain, "recorder must not perturb the run");
    assert!(original.instructions > 0);
    assert!(trace.starts_with(b"ohm-trace v1\n"));

    // Replaying the captured trace reproduces the full report exactly.
    let replayed = Run::new(&cfg)
        .platform(Platform::OhmWom)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .replay(Cursor::new(trace))
        .execute()
        .expect("replay succeeds");
    assert_eq!(replayed, original, "replay must be bit-identical");
}

#[test]
fn phased_run_replays_identically_except_phase_rows() {
    let mut cfg = SystemConfig::quick_test();
    cfg.insts_per_warp = 300;
    cfg.phases = Some(ohm_gpu::workloads::PhasePlan::llm_inference());
    let spec = workload_by_name("gctopo").unwrap();

    let (original, trace) = Run::new(&cfg)
        .platform(Platform::OhmBase)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .record(Vec::new())
        .execute()
        .expect("recording succeeds");
    assert!(original.phases.is_some(), "phased run has a phase summary");

    // Trace records carry no phase identity, so the replay's report has
    // `phases: None` — but every timing-derived field must still match.
    let mut replayed = Run::new(&cfg)
        .platform(Platform::OhmBase)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .replay(Cursor::new(trace))
        .execute()
        .expect("replay succeeds");
    assert!(replayed.phases.is_none(), "trace replay is unphased");
    replayed.phases = original.phases.clone();
    assert_eq!(replayed, original, "timing must be bit-identical");
}

#[test]
fn malformed_traces_surface_typed_errors_not_panics() {
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name("gctopo").unwrap();
    let run = |text: &'static str| {
        Run::new(&cfg)
            .platform(Platform::OhmBase)
            .mode(OperationalMode::Planar)
            .workload(&spec)
            .replay(text.as_bytes())
            .execute()
    };

    // Missing / wrong header fail before the run starts.
    assert!(matches!(run(""), Err(TraceError::MissingHeader)));
    assert!(matches!(
        run("ohm-trace v9\n0 0 1 R 0x0 128\n"),
        Err(TraceError::UnsupportedVersion { .. })
    ));

    // A record that goes bad mid-stream is reported with its line number.
    let err = run("ohm-trace v1\n0 0 3 R 0x80 128\n0 0 not-a-gap\n").unwrap_err();
    match err {
        TraceError::Parse { line, message } => {
            assert_eq!(line, 3);
            assert!(!message.is_empty());
        }
        other => panic!("expected parse error, got {other}"),
    }

    // The streaming reader itself rejects the same inputs.
    assert!(TraceReader::new(&b"not a trace\n"[..]).is_err());
}
