//! Tier-1 bounded-memory guarantee: the memory stack's planner and wear
//! state is stored sparsely (DESIGN.md §3.7), so a cell's resident
//! metadata scales with pages actually *touched* — not with the
//! configured footprint. These tests drive the same workload at 256 MiB
//! and at 16 GiB and assert the 16 GiB cell both completes and holds
//! O(touched) planner state, i.e. tens-of-GiB address spaces simulate in
//! bounded host memory.

use ohm_gpu::core::config::SystemConfig;
use ohm_gpu::core::system::System;
use ohm_gpu::core::Platform;
use ohm_gpu::optic::OperationalMode;
use ohm_gpu::workloads::workload_by_name;

const MIB_256: u64 = 256 << 20;
const GIB_16: u64 = 16 << 30;

/// Runs one cell and returns (instructions retired, planner state bytes).
fn run_cell(platform: Platform, mode: OperationalMode, footprint: u64) -> (u64, usize) {
    let mut cfg = SystemConfig::quick_test();
    cfg.insts_per_warp = 300;
    let spec = workload_by_name("pagerank")
        .unwrap()
        .with_footprint(footprint);
    let mut sys = System::new(&cfg, platform, mode, &spec);
    let report = sys.run();
    (report.instructions, sys.memory_state_bytes())
}

#[test]
fn sixteen_gib_footprint_completes_in_bounded_state() {
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        let (small_insts, small_state) = run_cell(Platform::OhmBase, mode, MIB_256);
        let (huge_insts, huge_state) = run_cell(Platform::OhmBase, mode, GIB_16);
        // Both cells retire the full instruction budget.
        assert_eq!(small_insts, huge_insts, "{mode:?}");
        // The footprint grew 64x but the planner state tracks the
        // (identical) number of touched pages, not the address space.
        // Scattering those pages across a 64x-larger space can cost up to
        // one 64-entry chunk per page where they previously shared
        // chunks, so the state may grow by the scatter factor — but it
        // must stay well below footprint-proportional growth.
        assert!(
            huge_state <= small_state.max(1) * 16,
            "{mode:?}: 16 GiB cell holds {huge_state} planner bytes vs {small_state} at 256 MiB"
        );
        // And in absolute terms it is nowhere near footprint-proportional:
        // a dense per-page table for 16 GiB would need millions of entries.
        assert!(
            huge_state < 8 << 20,
            "{mode:?}: {huge_state} planner bytes is not footprint-independent"
        );
    }
}

#[test]
fn origin_platform_handles_huge_footprints() {
    // Origin's resident-set bookkeeping is lazy as well: the DRAM share
    // of a 16 GiB footprint must not be materialized up front.
    let (insts, state) = run_cell(Platform::Origin, OperationalMode::Planar, GIB_16);
    assert!(insts > 0);
    assert!(state < 8 << 20, "{state} planner bytes");
}
