//! Cross-crate integration tests: the paper's headline platform orderings
//! at the evaluation configuration (reduced budget for CI speed).
//!
//! Two things keep this binary fast without losing coverage:
//!
//! * the default instruction budget is scaled down (set `OHM_SOAK_ITERS`
//!   to a larger per-warp budget, e.g. 1200, to re-run at the original
//!   scale — the scheduled CI soak job does);
//! * identical (platform, mode, workload) cells are memoised across
//!   tests, so the seven tests share one simulation per unique cell
//!   instead of re-running the expensive ones up to five times.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use ohm_gpu::core::config::SystemConfig;
use ohm_gpu::core::runner::{geomean, Run};
use ohm_gpu::core::{Platform, SimReport};
use ohm_gpu::optic::OperationalMode;
use ohm_gpu::workloads::workload_by_name;

/// A scaled-down evaluation configuration: full Table I machine shape,
/// shorter instruction budget.
fn eval_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::evaluation();
    cfg.insts_per_warp = ohm_gpu::sim::soak_iters(400);
    cfg
}

type CellKey = (Platform, OperationalMode, &'static str);

/// Runs one cell of the default configuration, memoised: every test in
/// this binary asking for the same cell gets a clone of one simulation.
fn run(platform: Platform, mode: OperationalMode, workload: &'static str) -> SimReport {
    static CACHE: OnceLock<Mutex<HashMap<CellKey, SimReport>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&(platform, mode, workload)) {
        return hit.clone();
    }
    let spec = workload_by_name(workload)
        .unwrap()
        .with_footprint(SystemConfig::EVALUATION_FOOTPRINT / 2);
    let cfg = eval_cfg();
    let report = Run::new(&cfg)
        .platform(platform)
        .mode(mode)
        .workload(&spec)
        .execute();
    cache
        .lock()
        .unwrap()
        .insert((platform, mode, workload), report.clone());
    report
}

#[test]
fn figure16_planar_ordering_holds_on_pagerank() {
    let origin = run(Platform::Origin, OperationalMode::Planar, "pagerank");
    let hetero = run(Platform::Hetero, OperationalMode::Planar, "pagerank");
    let base = run(Platform::OhmBase, OperationalMode::Planar, "pagerank");
    let wom = run(Platform::OhmWom, OperationalMode::Planar, "pagerank");
    let oracle = run(Platform::Oracle, OperationalMode::Planar, "pagerank");

    assert!(origin.ipc < hetero.ipc, "Origin must trail Hetero");
    let parity = base.ipc / hetero.ipc;
    assert!(
        (0.9..=1.1).contains(&parity),
        "Ohm-base ~ Hetero, got {parity}"
    );
    assert!(wom.ipc > base.ipc, "dual routes must beat the baseline");
    assert!(oracle.ipc > wom.ipc, "Oracle is the upper bound");
}

#[test]
fn figure18_dual_routes_clear_the_data_route() {
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        let base = run(Platform::OhmBase, mode, "pagerank");
        let wom = run(Platform::OhmWom, mode, "pagerank");
        assert!(
            base.migration_channel_fraction > 0.1,
            "{mode:?}: baseline must migrate on the channel"
        );
        assert!(
            wom.migration_channel_fraction < base.migration_channel_fraction / 5.0,
            "{mode:?}: WOM must clear most migration traffic ({} vs {})",
            wom.migration_channel_fraction,
            base.migration_channel_fraction
        );
    }
}

#[test]
fn figure17_memory_latency_improves_down_the_chain() {
    let base = run(Platform::OhmBase, OperationalMode::Planar, "pagerank");
    let bw = run(Platform::OhmBw, OperationalMode::Planar, "pagerank");
    let oracle = run(Platform::Oracle, OperationalMode::Planar, "pagerank");
    assert!(bw.avg_mem_latency_ns <= base.avg_mem_latency_ns * 1.02);
    // Oracle's *performance* always dominates; its raw latency can sit
    // near Ohm-BW's because all traffic hits the same DRAM banks instead
    // of spreading across DRAM + XPoint.
    assert!(oracle.ipc > bw.ipc);
    assert!(oracle.avg_mem_latency_ns < base.avg_mem_latency_ns);
}

#[test]
fn figure19_optical_channel_cuts_dma_energy() {
    let hetero = run(Platform::Hetero, OperationalMode::Planar, "bfsdata");
    let base = run(Platform::OhmBase, OperationalMode::Planar, "bfsdata");
    assert!(base.energy.dma_j < hetero.energy.dma_j);
    // Identical demand implies identical XPoint energy scale.
    let ratio = base.energy.xpoint_j / hetero.energy.xpoint_j;
    assert!((0.8..1.2).contains(&ratio), "xpoint energy ratio {ratio}");
}

#[test]
fn origin_reports_staging_and_pays_for_it() {
    // Staging needs the working set to spill past GPU DRAM, which takes a
    // longer instruction budget than the shared cells use.
    let mut cfg = eval_cfg();
    cfg.insts_per_warp = cfg.insts_per_warp.max(1200);
    let spec = workload_by_name("GRAMS")
        .unwrap()
        .with_footprint(SystemConfig::EVALUATION_FOOTPRINT / 2);
    let origin = Run::new(&cfg)
        .platform(Platform::Origin)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    let host = origin.host.expect("origin reports staging");
    assert!(host.staged_in > 0);
    assert!(host.bytes_moved > 0);
    assert!(origin.host.is_some());
    let hetero = Run::new(&cfg)
        .platform(Platform::Hetero)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    assert!(hetero.host.is_none());
}

#[test]
fn waveguide_scaling_improves_ohm_platforms() {
    let spec = workload_by_name("pagerank")
        .unwrap()
        .with_footprint(SystemConfig::EVALUATION_FOOTPRINT / 2);
    let mut cfg8 = eval_cfg();
    cfg8.optical.waveguides = 8;
    let one = run(Platform::OhmBase, OperationalMode::Planar, "pagerank");
    let eight = Run::new(&cfg8)
        .platform(Platform::OhmBase)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    assert!(
        eight.ipc > one.ipc,
        "8 waveguides must help: {} vs {}",
        eight.ipc,
        one.ipc
    );
}

#[test]
fn geomean_across_three_workloads_keeps_the_chain() {
    let mut per_platform = Vec::new();
    for p in [Platform::OhmBase, Platform::OhmWom, Platform::Oracle] {
        let ipcs: Vec<f64> = ["pagerank", "bfsdata", "gctopo"]
            .iter()
            .map(|w| run(p, OperationalMode::Planar, w).ipc)
            .collect();
        per_platform.push(geomean(&ipcs));
    }
    assert!(
        per_platform[0] < per_platform[1],
        "WOM beats base in geomean"
    );
    assert!(
        per_platform[1] < per_platform[2],
        "Oracle bounds WOM in geomean"
    );
}
