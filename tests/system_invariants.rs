//! Cross-crate invariants: accounting identities that must hold for any
//! platform, mode and workload.

use ohm_gpu::core::config::SystemConfig;
use ohm_gpu::core::runner::Run;
use ohm_gpu::core::Platform;
use ohm_gpu::optic::OperationalMode;
use ohm_gpu::sim::Ps;
use ohm_gpu::workloads::{all_workloads, workload_by_name};

#[test]
fn every_platform_mode_workload_combination_runs() {
    let cfg = {
        let mut c = SystemConfig::quick_test();
        c.insts_per_warp = 300;
        c
    };
    for spec in all_workloads() {
        for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
            for platform in Platform::ALL {
                let r = Run::new(&cfg)
                    .platform(platform)
                    .mode(mode)
                    .workload(&spec)
                    .execute();
                assert!(
                    r.makespan > Ps::ZERO,
                    "{}/{mode:?}/{}",
                    platform.name(),
                    spec.name
                );
                assert_eq!(
                    r.instructions,
                    (cfg.gpu.sms * cfg.gpu.sm.warps) as u64 * cfg.insts_per_warp,
                    "all instructions must retire"
                );
                assert!(r.ipc > 0.0);
                assert!((0.0..=1.0).contains(&r.l1_hit_rate));
                assert!((0.0..=1.0).contains(&r.l2_hit_rate));
                assert!((0.0..=1.0).contains(&r.migration_channel_fraction));
                assert!((0.0..=1.0).contains(&r.hetero_dram_hit_rate));
                assert!(r.energy.total_j() > 0.0);
                assert!(r.energy.dma_j >= 0.0 && r.energy.dram_static_j > 0.0);
            }
        }
    }
}

#[test]
fn determinism_across_identical_runs() {
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name("betw").unwrap();
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        let a = Run::new(&cfg)
            .platform(Platform::OhmBw)
            .mode(mode)
            .workload(&spec)
            .execute();
        let b = Run::new(&cfg)
            .platform(Platform::OhmBw)
            .mode(mode)
            .workload(&spec)
            .execute();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.mem_requests, b.mem_requests);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.channel_bits, b.channel_bits);
    }
}

#[test]
fn seed_changes_the_run_but_not_the_accounting() {
    let mut cfg_a = SystemConfig::quick_test();
    let mut cfg_b = SystemConfig::quick_test();
    cfg_a.seed = 1;
    cfg_b.seed = 2;
    let spec = workload_by_name("FDTD").unwrap();
    let a = Run::new(&cfg_a)
        .platform(Platform::OhmBase)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    let b = Run::new(&cfg_b)
        .platform(Platform::OhmBase)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    assert_ne!(a.makespan, b.makespan, "different seeds should differ");
    assert_eq!(
        a.instructions, b.instructions,
        "budgets are exact either way"
    );
}

#[test]
fn homogeneous_platforms_never_migrate() {
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name("pagerank").unwrap();
    for platform in [Platform::Origin, Platform::Oracle] {
        for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
            let r = Run::new(&cfg)
                .platform(platform)
                .mode(mode)
                .workload(&spec)
                .execute();
            assert_eq!(r.migrations, 0, "{} must not migrate", platform.name());
            assert_eq!(r.migration_channel_fraction, 0.0);
            if platform == Platform::Oracle {
                assert_eq!(r.hetero_dram_hit_rate, 1.0);
            } else {
                // Origin counts host-staging faults against its DRAM share.
                assert!(
                    r.hetero_dram_hit_rate > 0.9,
                    "got {}",
                    r.hetero_dram_hit_rate
                );
            }
        }
    }
}

#[test]
fn oracle_dominates_every_heterogeneous_platform() {
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name("pagerank").unwrap();
    let oracle = Run::new(&cfg)
        .platform(Platform::Oracle)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    for platform in [
        Platform::Hetero,
        Platform::OhmBase,
        Platform::AutoRw,
        Platform::OhmWom,
    ] {
        let r = Run::new(&cfg)
            .platform(platform)
            .mode(OperationalMode::Planar)
            .workload(&spec)
            .execute();
        assert!(
            oracle.ipc >= r.ipc,
            "oracle {} must dominate {} ({})",
            oracle.ipc,
            platform.name(),
            r.ipc
        );
    }
}

#[test]
fn wear_leveling_is_reported_for_heterogeneous_platforms() {
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name("backp").unwrap(); // write-heavy
    let r = Run::new(&cfg)
        .platform(Platform::OhmBase)
        .mode(OperationalMode::TwoLevel)
        .workload(&spec)
        .execute();
    assert!(r.wear_imbalance >= 1.0);
    let oracle = Run::new(&cfg)
        .platform(Platform::Oracle)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    assert_eq!(oracle.wear_imbalance, 1.0, "no XPoint, neutral imbalance");
}
