//! Optical power budget.
//!
//! The paper's optical power model (Table I, after [Li et al., HPCA'13])
//! charges each component in a light path a fixed insertion loss in dB:
//! filter drop 1.5 dB, waveguide 0.3 dB/cm, splitter 0.2 dB, detector
//! 0.1 dB, modulator 0–1 dB. The half-coupled MRRs of the dual routes
//! additionally split the light itself: a tap that absorbs fraction `a`
//! leaves `1-a` of the power for downstream devices. The received power at
//! a detector (laser power minus path loss) drives the BER model, and the
//! laser must be scaled up (2×/4×) when dual routes lengthen the path.

/// Builder for the total insertion loss along one light path.
///
/// # Example
///
/// ```
/// use ohm_optic::OpticalPathLoss;
///
/// // The nominal Ohm-base path: modulator, 2 cm of waveguide, filter, detector.
/// let path = OpticalPathLoss::new()
///     .modulator(0.5)
///     .waveguide_cm(2.0)
///     .filter_drop()
///     .detector();
/// assert!((path.total_db() - 2.7).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpticalPathLoss {
    total_db: f64,
}

impl OpticalPathLoss {
    /// Filter drop loss (Table I).
    pub const FILTER_DROP_DB: f64 = 1.5;
    /// Waveguide propagation loss per centimetre (Table I).
    pub const WAVEGUIDE_DB_PER_CM: f64 = 0.3;
    /// Splitter insertion loss (Table I).
    pub const SPLITTER_DB: f64 = 0.2;
    /// Detector insertion loss (Table I).
    pub const DETECTOR_DB: f64 = 0.1;

    /// An empty (lossless) path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a modulator with the given insertion loss (Table I: 0–1 dB).
    ///
    /// # Panics
    ///
    /// Panics if the loss is outside the Table I range `[0, 1]` dB.
    pub fn modulator(mut self, db: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&db),
            "modulator loss must be within 0..=1 dB"
        );
        self.total_db += db;
        self
    }

    /// Adds `cm` centimetres of waveguide.
    ///
    /// # Panics
    ///
    /// Panics if `cm` is negative.
    pub fn waveguide_cm(mut self, cm: f64) -> Self {
        assert!(cm >= 0.0, "waveguide length cannot be negative");
        self.total_db += cm * Self::WAVEGUIDE_DB_PER_CM;
        self
    }

    /// Adds a filter drop.
    pub fn filter_drop(mut self) -> Self {
        self.total_db += Self::FILTER_DROP_DB;
        self
    }

    /// Adds a splitter insertion loss.
    pub fn splitter(mut self) -> Self {
        self.total_db += Self::SPLITTER_DB;
        self
    }

    /// Adds the terminal detector.
    pub fn detector(mut self) -> Self {
        self.total_db += Self::DETECTOR_DB;
        self
    }

    /// Light passes an untuned device's ring array on a bus waveguide
    /// (through-loss only).
    pub fn through_device(mut self) -> Self {
        self.total_db += crate::waveguide::DEVICE_THROUGH_DB;
        self
    }

    /// Light continues past a half-coupled MRR that absorbs fraction
    /// `absorb` of the power. The ring's own insertion loss is part of its
    /// modulator/detector budget, so only the split is charged here —
    /// which is what makes the paper's 2×/4× laser scaling able to restore
    /// both arms' sensing margins.
    ///
    /// # Panics
    ///
    /// Panics if `absorb` is not within `(0, 1)`.
    pub fn half_couple_pass(mut self, absorb: f64) -> Self {
        assert!(
            absorb > 0.0 && absorb < 1.0,
            "absorb fraction must be in (0, 1)"
        );
        self.total_db += -10.0 * (1.0 - absorb).log10();
        self
    }

    /// Light is tapped *into* a half-coupled MRR that absorbs fraction
    /// `absorb`: the tap branch receives that fraction.
    ///
    /// # Panics
    ///
    /// Panics if `absorb` is not within `(0, 1)`.
    pub fn half_couple_tap(mut self, absorb: f64) -> Self {
        assert!(
            absorb > 0.0 && absorb < 1.0,
            "absorb fraction must be in (0, 1)"
        );
        self.total_db += -10.0 * absorb.log10();
        self
    }

    /// Total path loss in dB.
    pub fn total_db(self) -> f64 {
        self.total_db
    }

    /// Fraction of launched power that reaches the end of the path.
    pub fn transmission(self) -> f64 {
        10f64.powf(-self.total_db / 10.0)
    }
}

/// The laser/energy side of the optical channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalPowerModel {
    /// Laser power launched per wavelength, in milliwatts.
    pub laser_mw_per_wavelength: f64,
    /// Laser power multiplier (dual-route platforms use 2× or 4×).
    pub laser_scale: f64,
    /// MRR tuning energy per bit, femtojoules (Table I: 200 fJ/bit).
    pub tuning_fj_per_bit: f64,
    /// Wall-plug efficiency of the laser source.
    pub laser_efficiency: f64,
}

impl Default for OpticalPowerModel {
    fn default() -> Self {
        OpticalPowerModel {
            laser_mw_per_wavelength: 0.73,
            laser_scale: 1.0,
            tuning_fj_per_bit: 200.0,
            laser_efficiency: 0.3,
        }
    }
}

impl OpticalPowerModel {
    /// Received power (mW) at the end of `path`.
    pub fn received_mw(&self, path: OpticalPathLoss) -> f64 {
        self.laser_mw_per_wavelength * self.laser_scale * path.transmission()
    }

    /// Static laser wall power (W) for `wavelengths` active wavelengths.
    pub fn laser_wall_power_w(&self, wavelengths: u32) -> f64 {
        self.laser_mw_per_wavelength * self.laser_scale * wavelengths as f64
            / 1000.0
            / self.laser_efficiency
    }

    /// Dynamic modulation/detection energy (J) for moving `bits` bits
    /// (each bit is tuned once at the modulator and once at the detector).
    pub fn tuning_energy_j(&self, bits: u64) -> f64 {
        2.0 * bits as f64 * self.tuning_fj_per_bit * 1e-15
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_path_loss() {
        let p = OpticalPathLoss::new()
            .modulator(0.5)
            .waveguide_cm(2.0)
            .filter_drop()
            .detector();
        assert!((p.total_db() - 2.7).abs() < 1e-9);
        assert!((p.transmission() - 10f64.powf(-0.27)).abs() < 1e-12);
    }

    #[test]
    fn half_couple_pass_costs_the_split() {
        let p = OpticalPathLoss::new().half_couple_pass(0.5);
        assert!((p.total_db() - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn tap_and_pass_conserve_energy() {
        let tap = OpticalPathLoss::new().half_couple_tap(0.4).transmission();
        let pass = OpticalPathLoss::new().half_couple_pass(0.4).transmission();
        assert!((tap + pass - 1.0).abs() < 1e-9);
        assert!((tap - 0.4).abs() < 1e-9 && (pass - 0.6).abs() < 1e-9);
    }

    #[test]
    fn received_power_scales_with_laser() {
        let path = OpticalPathLoss::new().filter_drop().detector();
        let base = OpticalPowerModel::default();
        let boosted = OpticalPowerModel {
            laser_scale: 4.0,
            ..base
        };
        assert!((boosted.received_mw(path) / base.received_mw(path) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn laser_wall_power() {
        let m = OpticalPowerModel::default();
        // 96 wavelengths at 0.73 mW / 30% efficiency ≈ 0.2336 W.
        let w = m.laser_wall_power_w(96);
        assert!((w - 0.73e-3 * 96.0 / 0.3).abs() < 1e-9);
    }

    #[test]
    fn tuning_energy_counts_both_ends() {
        let m = OpticalPowerModel::default();
        let j = m.tuning_energy_j(1_000_000);
        assert!((j - 2.0 * 1e6 * 200e-15).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "modulator loss")]
    fn modulator_loss_range_enforced() {
        let _ = OpticalPathLoss::new().modulator(1.5);
    }
}
