//! The optical memory channel with virtual channels and dual routes.
//!
//! One waveguide carries all six virtual channels (Table I). Each VC is a
//! 16-bit-wide, 30 GHz serial link between one memory controller and the
//! memory devices behind it. A photonic demultiplexer arbitrates which
//! device's detectors are enabled on a VC; switching targets costs an MRR
//! retune.
//!
//! The *dual routes* (Section IV-B) coexist in the same VC:
//!
//! * the **data route** connects the memory controller and the devices —
//!   all demand traffic and any controller-driven migration use it;
//! * the **memory route** connects two devices directly (DRAM↔XPoint) —
//!   auto-read/write snarfs, swap-function copies and reverse-writes ride
//!   it without occupying the data route.
//!
//! How the two routes share light depends on [`DualRouteMode`]: with WOM
//! coding the data route pays the 2/3 bandwidth factor while a migration
//! is in flight; with half-coupled-MRR transmitters it runs at full speed.
//!
//! # Degraded operation
//!
//! The fault-injection subsystem (`ohm-core`) can declare a VC *faulty*
//! for a window of simulated time — modelling a stuck or drifting demux
//! ring that can no longer select targets reliably. The channel itself
//! stays policy-free: it only records the health window
//! ([`OpticalChannel::mark_vc_faulty`]) and answers queries
//! ([`OpticalChannel::vc_faulty`], [`OpticalChannel::healthiest_vc`]);
//! the fabric layer decides whether to re-arbitrate a transfer onto a
//! healthy wavelength or fall back to the electrical path.

use ohm_sim::{Freq, Ps, TaggedCalendar};

use crate::wavelength::WdmGrid;
use crate::wom::Wom22;

/// What a channel transfer is carrying, for bandwidth breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Demand memory requests from the GPU kernels.
    Demand = 0,
    /// Data-migration traffic between DRAM and XPoint.
    Migration = 1,
}

/// How the wavelength grid is divided among the memory controllers.
///
/// The paper evaluates the *static* division (Table I); the dynamic
/// policy of [Li et al., HPCA'13] — reassigning idle wavelengths to busy
/// controllers at a retuning cost — is implemented as an extension and
/// explored by the `ablation_division` harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelDivision {
    /// Each controller owns a fixed virtual channel (Table I).
    #[default]
    Static,
    /// A transfer may borrow the earliest-available virtual channel,
    /// paying a wavelength-regrouping retune when it leaves its home VC.
    Dynamic {
        /// Retune latency paid when borrowing a foreign VC.
        reallocation: Ps,
    },
}

/// How migration traffic coexists with demand traffic in a virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DualRouteMode {
    /// No dual routes: every transfer serialises on the data route
    /// (`Ohm-base` and the electrical `Hetero` platform).
    #[default]
    Serialized,
    /// Dual routes via WOM coding: the memory route is independent, but
    /// demand transfers run at 2/3 bandwidth while it is busy (`Ohm-WOM`).
    Wom,
    /// Dual routes via half-coupled-MRR transmitters: both routes run at
    /// full bandwidth (`Ohm-BW`), at the cost of 4× laser power.
    HalfCoupled,
}

impl DualRouteMode {
    /// Whether an independent device↔device route exists at all.
    pub fn has_memory_route(self) -> bool {
        !matches!(self, DualRouteMode::Serialized)
    }

    /// Laser-power multiplier needed to keep detector sensing margins
    /// (Section VI: 1× / 2× / 4× for base / WOM / half-coupled).
    pub fn laser_power_scale(self) -> f64 {
        match self {
            DualRouteMode::Serialized => 1.0,
            DualRouteMode::Wom => 2.0,
            DualRouteMode::HalfCoupled => 4.0,
        }
    }
}

/// Static configuration of the optical channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpticalChannelConfig {
    /// Parallel waveguides (Table I default 1; Figure 20a sweeps to 8).
    pub waveguides: u32,
    /// Wavelength grid and virtual-channel division.
    pub grid: WdmGrid,
    /// Optical clock (Table I: 30 GHz).
    pub freq: Freq,
    /// Dual-route capability.
    pub dual_route: DualRouteMode,
    /// Photonic-demux retune latency when a VC switches target device.
    pub demux_switch: Ps,
    /// Wavelength-division strategy.
    pub division: ChannelDivision,
}

impl Default for OpticalChannelConfig {
    fn default() -> Self {
        OpticalChannelConfig {
            waveguides: 1,
            grid: WdmGrid::new(96, 6),
            freq: Freq::from_ghz(30.0),
            dual_route: DualRouteMode::Serialized,
            demux_switch: Ps::from_ps(100),
            division: ChannelDivision::Static,
        }
    }
}

impl OpticalChannelConfig {
    /// Effective parallel width of one virtual channel in bits.
    pub fn vc_width_bits(&self) -> u64 {
        self.grid.bits_per_channel() as u64 * self.waveguides as u64
    }

    /// Aggregate raw bandwidth of the channel in GB/s.
    pub fn total_bandwidth_gbps(&self) -> f64 {
        self.freq
            .bandwidth_gbps(self.grid.total_wavelengths() as u64 * self.waveguides as u64)
    }
}

/// One recorded busy window on a channel resource.
///
/// Interval logging is off by default (zero overhead); when enabled via
/// `set_interval_logging(true)` every booked transfer appends one of
/// these, and the observability layer drains them into per-resource
/// utilization timelines and Chrome-trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyInterval {
    /// Virtual channel (optical) or lane (electrical) index.
    pub vc: usize,
    /// When the resource became busy.
    pub start: Ps,
    /// When the resource freed up (exclusive).
    pub end: Ps,
    /// Traffic class carried during the window.
    pub class: TrafficClass,
    /// Whether the window was on the device↔device memory route rather
    /// than the data route. Always `false` for electrical channels.
    pub memory_route: bool,
}

#[derive(Debug, Clone)]
struct VirtualChannel {
    data_route: TaggedCalendar,
    memory_route: TaggedCalendar,
    current_target: Option<usize>,
    target_switches: u64,
    faulty_until: Ps,
}

impl VirtualChannel {
    fn new() -> Self {
        VirtualChannel {
            data_route: TaggedCalendar::new(2),
            memory_route: TaggedCalendar::new(2),
            current_target: None,
            target_switches: 0,
            faulty_until: Ps::ZERO,
        }
    }
}

/// The single-VC core of a data-route transfer: demux retune, WOM
/// stretch, booking and bit accounting. Shared between
/// [`OpticalChannel::transfer`] and [`VcShard::transfer`] so the two
/// paths cannot drift — bit-identical behaviour of the sharded engine
/// depends on it.
#[allow(clippy::too_many_arguments)]
fn transfer_on_vc(
    cfg: &OpticalChannelConfig,
    ch: &mut VirtualChannel,
    bits_transferred: &mut [u64; 2],
    now: Ps,
    borrow_penalty: Ps,
    bits: u64,
    base: Ps,
    class: TrafficClass,
    target_device: usize,
) -> (Ps, Ps) {
    // Retargeting the photonic demux costs an MRR retune, but the
    // retune pipelines behind any queued transfers ([Li et al.]), so
    // it only delays the transfer when the data route is idle.
    let mut ready = now + borrow_penalty;
    if ch.current_target != Some(target_device) {
        if ch.data_route.next_free() <= now {
            ready += cfg.demux_switch;
        }
        ch.current_target = Some(target_device);
        ch.target_switches += 1;
    }

    let start_estimate = ch.data_route.earliest_start(ready);
    let dur =
        if cfg.dual_route == DualRouteMode::Wom && ch.memory_route.next_free() > start_estimate {
            base.scale(1.0 / Wom22::BANDWIDTH_FACTOR)
        } else {
            base
        };
    bits_transferred[class as usize] += bits;
    ch.data_route.book(ready, dur, class as usize)
}

/// The optical channel: per-VC data routes, optional memory routes, demux
/// arbitration and traffic accounting.
///
/// # Example
///
/// ```
/// use ohm_optic::{OpticalChannel, OpticalChannelConfig, TrafficClass};
/// use ohm_sim::Ps;
///
/// let mut ch = OpticalChannel::new(OpticalChannelConfig::default());
/// // A 32-byte read response from device 0 on VC 2:
/// let (start, end) = ch.transfer(Ps::ZERO, 2, 32 * 8, TrafficClass::Demand, 0);
/// assert!(end > start);
/// ```
#[derive(Debug, Clone)]
pub struct OpticalChannel {
    cfg: OpticalChannelConfig,
    vcs: Vec<VirtualChannel>,
    bits_transferred: [u64; 2],
    borrows: u64,
    interval_log: Option<Vec<BusyInterval>>,
}

impl OpticalChannel {
    /// Creates an idle channel.
    pub fn new(cfg: OpticalChannelConfig) -> Self {
        OpticalChannel {
            vcs: (0..cfg.grid.channels())
                .map(|_| VirtualChannel::new())
                .collect(),
            cfg,
            bits_transferred: [0; 2],
            borrows: 0,
            interval_log: None,
        }
    }

    /// Enables or disables busy-interval logging. Disabling drops any
    /// intervals collected so far.
    pub fn set_interval_logging(&mut self, enabled: bool) {
        self.interval_log = if enabled { Some(Vec::new()) } else { None };
    }

    /// Takes every busy interval logged since the last drain. Empty when
    /// logging is disabled.
    pub fn drain_intervals(&mut self) -> Vec<BusyInterval> {
        self.interval_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Channel configuration.
    pub fn config(&self) -> &OpticalChannelConfig {
        &self.cfg
    }

    /// Number of virtual channels.
    pub fn vc_count(&self) -> usize {
        self.vcs.len()
    }

    /// Transfers `bits` on the data route of virtual channel `vc`,
    /// to/from `target_device`. Returns the `(start, end)` of the transfer.
    ///
    /// If the VC's demux was pointed at a different device, the transfer
    /// pays the retune latency first. In [`DualRouteMode::Wom`], a demand
    /// transfer that overlaps memory-route activity is stretched by the
    /// WOM bandwidth factor.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range or `bits` is zero.
    pub fn transfer(
        &mut self,
        now: Ps,
        vc: usize,
        bits: u64,
        class: TrafficClass,
        target_device: usize,
    ) -> (Ps, Ps) {
        assert!(bits > 0, "cannot transfer zero bits");
        let width = self.cfg.vc_width_bits();
        let base = self.cfg.freq.transfer_time(bits, width);

        // Dynamic division: borrow whichever VC frees up first, paying a
        // wavelength-regrouping retune away from home.
        let (vc, borrow_penalty) = match self.cfg.division {
            ChannelDivision::Static => (vc, Ps::ZERO),
            ChannelDivision::Dynamic { reallocation } => {
                // Fast path: an idle home VC always wins the arbitration
                // outright — its key is `now`, strictly below every
                // foreign key (at least `now + reallocation`) — so the
                // full scan below can only reach the same answer. Only
                // valid when borrowing actually costs something; at zero
                // reallocation ties break toward the lowest index.
                if reallocation > Ps::ZERO && self.vcs[vc].data_route.next_free() <= now {
                    return self.transfer_on(now, vc, Ps::ZERO, bits, base, class, target_device);
                }
                let best = (0..self.vcs.len())
                    .min_by_key(|&i| {
                        let penalty = if i == vc { Ps::ZERO } else { reallocation };
                        self.vcs[i].data_route.earliest_start(now + penalty)
                    })
                    .unwrap_or(vc);
                if best == vc {
                    (vc, Ps::ZERO)
                } else {
                    self.borrows += 1;
                    (best, reallocation)
                }
            }
        };
        self.transfer_on(now, vc, borrow_penalty, bits, base, class, target_device)
    }

    /// The committed leg of [`OpticalChannel::transfer`], after VC
    /// arbitration has chosen `vc` and its `borrow_penalty`.
    #[allow(clippy::too_many_arguments)]
    fn transfer_on(
        &mut self,
        now: Ps,
        vc: usize,
        borrow_penalty: Ps,
        bits: u64,
        base: Ps,
        class: TrafficClass,
        target_device: usize,
    ) -> (Ps, Ps) {
        let (start, end) = transfer_on_vc(
            &self.cfg,
            &mut self.vcs[vc],
            &mut self.bits_transferred,
            now,
            borrow_penalty,
            bits,
            base,
            class,
            target_device,
        );
        if let Some(log) = self.interval_log.as_mut() {
            log.push(BusyInterval {
                vc,
                start,
                end,
                class,
                memory_route: false,
            });
        }
        (start, end)
    }

    /// Transfers `bits` on the independent memory route (device↔device) of
    /// `vc`. Only available when the channel has dual routes.
    ///
    /// # Panics
    ///
    /// Panics if the channel is [`DualRouteMode::Serialized`], `vc` is out
    /// of range, or `bits` is zero.
    pub fn memory_route_transfer(&mut self, now: Ps, vc: usize, bits: u64) -> (Ps, Ps) {
        assert!(
            self.cfg.dual_route.has_memory_route(),
            "memory route requires dual-route support"
        );
        assert!(bits > 0, "cannot transfer zero bits");
        let width = self.cfg.vc_width_bits();
        let dur = self.cfg.freq.transfer_time(bits, width);
        self.bits_transferred[TrafficClass::Migration as usize] += bits;
        let (start, end) =
            self.vcs[vc]
                .memory_route
                .book(now, dur, TrafficClass::Migration as usize);
        if let Some(log) = self.interval_log.as_mut() {
            log.push(BusyInterval {
                vc,
                start,
                end,
                class: TrafficClass::Migration,
                memory_route: true,
            });
        }
        (start, end)
    }

    /// When the data route of `vc` next becomes free.
    pub fn data_route_free_at(&self, vc: usize) -> Ps {
        self.vcs[vc].data_route.next_free()
    }

    /// Declares `vc` faulty until `until` (exclusive): its demux cannot
    /// be trusted to select targets during that window. Extends any
    /// existing window rather than shrinking it.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn mark_vc_faulty(&mut self, vc: usize, until: Ps) {
        let w = &mut self.vcs[vc].faulty_until;
        *w = (*w).max(until);
    }

    /// Whether `vc` is inside a declared fault window at `now`.
    pub fn vc_faulty(&self, vc: usize, now: Ps) -> bool {
        now < self.vcs[vc].faulty_until
    }

    /// The healthy VC whose data route frees up earliest at `now`
    /// (lowest index wins ties), or `None` if every VC is faulty.
    pub fn healthiest_vc(&self, now: Ps) -> Option<usize> {
        (0..self.vcs.len())
            .filter(|&i| !self.vc_faulty(i, now))
            .min_by_key(|&i| (self.vcs[i].data_route.next_free(), i))
    }

    /// When the memory route of `vc` next becomes free.
    pub fn memory_route_free_at(&self, vc: usize) -> Ps {
        self.vcs[vc].memory_route.next_free()
    }

    /// Fraction of *data-route* busy time spent on migration traffic —
    /// the paper's Figure 8/18 metric. Dual-route migrations do not count
    /// because they leave the data route available for demand requests.
    pub fn migration_fraction(&self) -> f64 {
        let total: u64 = self
            .vcs
            .iter()
            .map(|c| c.data_route.busy_time().as_ps())
            .sum();
        if total == 0 {
            return 0.0;
        }
        let migration: u64 = self
            .vcs
            .iter()
            .map(|c| {
                c.data_route
                    .busy_by_tag(TrafficClass::Migration as usize)
                    .as_ps()
            })
            .sum();
        migration as f64 / total as f64
    }

    /// Total data-route busy time across VCs.
    pub fn data_route_busy(&self) -> Ps {
        self.vcs.iter().map(|c| c.data_route.busy_time()).sum()
    }

    /// Total memory-route busy time across VCs.
    pub fn memory_route_busy(&self) -> Ps {
        self.vcs.iter().map(|c| c.memory_route.busy_time()).sum()
    }

    /// Bits transferred so far, by traffic class.
    pub fn bits_by_class(&self, class: TrafficClass) -> u64 {
        self.bits_transferred[class as usize]
    }

    /// Transfers that borrowed a foreign VC under dynamic division.
    pub fn vc_borrows(&self) -> u64 {
        self.borrows
    }

    /// Total demux target switches across VCs.
    pub fn target_switches(&self) -> u64 {
        self.vcs.iter().map(|c| c.target_switches).sum()
    }

    /// Mean data-route utilisation over a window ending at `horizon`.
    ///
    /// Always a finite value in `[0, 1]`: an empty channel or zero-length
    /// window reports 0, and per-VC fractions are clamped so bookings
    /// extending past `horizon` cannot push the mean over unity.
    pub fn utilization(&self, horizon: Ps) -> f64 {
        if self.vcs.is_empty() {
            return 0.0;
        }
        self.vcs
            .iter()
            .map(|c| c.data_route.utilization(horizon))
            .sum::<f64>()
            / self.vcs.len() as f64
    }

    /// Splits the virtual channels into disjoint contiguous groups, one
    /// per entry in `counts`, for per-shard workers. Returns `None` when
    /// the channel has cross-VC behaviour that a per-VC view cannot
    /// reproduce: dynamic wavelength division (transfers scan every VC
    /// for a borrow) or interval logging (one ordered log).
    ///
    /// Shards mutate their VCs' calendars in place — those effects are
    /// visible once the borrows end — but tally transferred bits locally;
    /// the caller folds the tallies back with
    /// [`OpticalChannel::merge_shard_bits`].
    pub fn split_vcs(&mut self, counts: &[usize]) -> Option<Vec<VcShard<'_>>> {
        if !matches!(self.cfg.division, ChannelDivision::Static) || self.interval_log.is_some() {
            return None;
        }
        assert_eq!(
            counts.iter().sum::<usize>(),
            self.vcs.len(),
            "shard counts must cover every virtual channel"
        );
        let cfg = self.cfg;
        let mut shards = Vec::with_capacity(counts.len());
        let mut rest: &mut [VirtualChannel] = &mut self.vcs;
        let mut base = 0;
        for &n in counts {
            let (head, tail) = rest.split_at_mut(n);
            shards.push(VcShard {
                cfg,
                vcs: head,
                base,
                bits_transferred: [0; 2],
            });
            rest = tail;
            base += n;
        }
        Some(shards)
    }

    /// Folds bit tallies accumulated by [`VcShard`]s back into the
    /// channel-wide counters after a parallel phase.
    pub fn merge_shard_bits(&mut self, bits: [u64; 2]) {
        self.bits_transferred[0] += bits[0];
        self.bits_transferred[1] += bits[1];
    }
}

/// A contiguous group of virtual channels owned by one shard worker.
///
/// Exposes the transfer entry points restricted to the owned VCs, with
/// behaviour identical to the whole channel under static division (the
/// only division that splits). VC indices stay *global*.
#[derive(Debug)]
pub struct VcShard<'a> {
    cfg: OpticalChannelConfig,
    vcs: &'a mut [VirtualChannel],
    base: usize,
    bits_transferred: [u64; 2],
}

impl VcShard<'_> {
    /// Per-VC equivalent of [`OpticalChannel::transfer`]. `vc` must fall
    /// inside this shard's range.
    pub fn transfer(
        &mut self,
        now: Ps,
        vc: usize,
        bits: u64,
        class: TrafficClass,
        target_device: usize,
    ) -> (Ps, Ps) {
        assert!(bits > 0, "cannot transfer zero bits");
        let base = self.cfg.freq.transfer_time(bits, self.cfg.vc_width_bits());
        transfer_on_vc(
            &self.cfg,
            &mut self.vcs[vc - self.base],
            &mut self.bits_transferred,
            now,
            Ps::ZERO,
            bits,
            base,
            class,
            target_device,
        )
    }

    /// Per-VC equivalent of [`OpticalChannel::memory_route_transfer`].
    pub fn memory_route_transfer(&mut self, now: Ps, vc: usize, bits: u64) -> (Ps, Ps) {
        assert!(
            self.cfg.dual_route.has_memory_route(),
            "memory route requires dual-route support"
        );
        assert!(bits > 0, "cannot transfer zero bits");
        let width = self.cfg.vc_width_bits();
        let dur = self.cfg.freq.transfer_time(bits, width);
        self.bits_transferred[TrafficClass::Migration as usize] += bits;
        self.vcs[vc - self.base]
            .memory_route
            .book(now, dur, TrafficClass::Migration as usize)
    }

    /// Bits transferred through this shard since the split, by class —
    /// fed back via [`OpticalChannel::merge_shard_bits`].
    pub fn bits_delta(&self) -> [u64; 2] {
        self.bits_transferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(mode: DualRouteMode) -> OpticalChannel {
        OpticalChannel::new(OpticalChannelConfig {
            dual_route: mode,
            ..OpticalChannelConfig::default()
        })
    }

    #[test]
    fn transfer_time_matches_width_and_freq() {
        let mut ch = chan(DualRouteMode::Serialized);
        // 256 bits over 16-bit VC at 30 GHz = 16 cycles ≈ 533 ps + demux.
        let (start, end) = ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand, 0);
        assert_eq!(start, Ps::from_ps(100)); // first demux acquisition
        assert_eq!(end - start, Ps::from_ps(533));
    }

    #[test]
    fn same_target_skips_demux_switch() {
        let mut ch = chan(DualRouteMode::Serialized);
        ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand, 3);
        let free = ch.data_route_free_at(0);
        let (start, _) = ch.transfer(free, 0, 256, TrafficClass::Demand, 3);
        assert_eq!(start, free);
        assert_eq!(ch.target_switches(), 1);
    }

    #[test]
    fn switching_targets_pays_retune() {
        let mut ch = chan(DualRouteMode::Serialized);
        ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand, 0);
        let free = ch.data_route_free_at(0);
        let (start, _) = ch.transfer(free, 0, 256, TrafficClass::Demand, 1);
        assert_eq!(start, free + Ps::from_ps(100));
        assert_eq!(ch.target_switches(), 2);
    }

    #[test]
    fn vcs_are_independent() {
        let mut ch = chan(DualRouteMode::Serialized);
        let (_, e0) = ch.transfer(Ps::ZERO, 0, 1 << 16, TrafficClass::Demand, 0);
        let (s1, _) = ch.transfer(Ps::ZERO, 1, 256, TrafficClass::Demand, 0);
        assert!(s1 < e0, "VC 1 must not queue behind VC 0");
    }

    #[test]
    #[should_panic(expected = "dual-route")]
    fn serialized_channel_has_no_memory_route() {
        let mut ch = chan(DualRouteMode::Serialized);
        ch.memory_route_transfer(Ps::ZERO, 0, 256);
    }

    #[test]
    fn wom_stretches_demand_during_migration() {
        let mut ch = chan(DualRouteMode::Wom);
        // Occupy the memory route for a long migration.
        ch.memory_route_transfer(Ps::ZERO, 0, 1 << 16);
        let (s, e) = ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand, 0);
        // 533 ps stretched by 3/2 = 800 ps.
        assert_eq!(e - s, Ps::from_ps(800));
    }

    #[test]
    fn half_coupled_keeps_full_bandwidth_during_migration() {
        let mut ch = chan(DualRouteMode::HalfCoupled);
        ch.memory_route_transfer(Ps::ZERO, 0, 1 << 16);
        let (s, e) = ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand, 0);
        assert_eq!(e - s, Ps::from_ps(533));
    }

    #[test]
    fn wom_full_speed_when_memory_route_idle() {
        let mut ch = chan(DualRouteMode::Wom);
        let (s, e) = ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand, 0);
        assert_eq!(e - s, Ps::from_ps(533));
    }

    #[test]
    fn migration_fraction_counts_data_route_only() {
        let mut ch = chan(DualRouteMode::HalfCoupled);
        ch.transfer(Ps::ZERO, 0, 1000, TrafficClass::Demand, 0);
        ch.memory_route_transfer(Ps::ZERO, 0, 100_000);
        assert_eq!(ch.migration_fraction(), 0.0);
        ch.transfer(Ps::ZERO, 0, 1000, TrafficClass::Migration, 1);
        assert!(ch.migration_fraction() > 0.4);
    }

    #[test]
    fn more_waveguides_speed_up_transfers() {
        let cfg8 = OpticalChannelConfig {
            waveguides: 8,
            ..OpticalChannelConfig::default()
        };
        let mut ch1 = OpticalChannel::new(OpticalChannelConfig::default());
        let mut ch8 = OpticalChannel::new(cfg8);
        let (s1, e1) = ch1.transfer(Ps::ZERO, 0, 4096, TrafficClass::Demand, 0);
        let (s8, e8) = ch8.transfer(Ps::ZERO, 0, 4096, TrafficClass::Demand, 0);
        assert!((e8 - s8).as_ps() * 7 < (e1 - s1).as_ps() * 8u64);
        assert!((e8 - s8) < (e1 - s1));
    }

    #[test]
    fn bandwidth_matches_table1() {
        let cfg = OpticalChannelConfig::default();
        assert!((cfg.total_bandwidth_gbps() - 360.0).abs() < 1e-9);
        assert_eq!(cfg.vc_width_bits(), 16);
    }

    #[test]
    fn dynamic_division_borrows_idle_vcs() {
        let mut ch = OpticalChannel::new(OpticalChannelConfig {
            division: ChannelDivision::Dynamic {
                reallocation: Ps::from_ps(500),
            },
            ..OpticalChannelConfig::default()
        });
        // Saturate VC 0 far into the future.
        ch.transfer(Ps::ZERO, 0, 1 << 20, TrafficClass::Demand, 0);
        // A second transfer homed on VC 0 should borrow an idle VC and
        // finish long before VC 0 frees up.
        let (_, end) = ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand, 0);
        assert!(end < ch.data_route_free_at(0));
        assert_eq!(ch.vc_borrows(), 1);
    }

    #[test]
    fn dynamic_division_prefers_home_when_idle() {
        let mut ch = OpticalChannel::new(OpticalChannelConfig {
            division: ChannelDivision::Dynamic {
                reallocation: Ps::from_ps(500),
            },
            ..OpticalChannelConfig::default()
        });
        let (start, _) = ch.transfer(Ps::ZERO, 3, 256, TrafficClass::Demand, 0);
        // No borrow penalty: only the demux acquisition delay applies.
        assert_eq!(start, Ps::from_ps(100));
        assert_eq!(ch.vc_borrows(), 0);
    }

    #[test]
    fn static_division_never_borrows() {
        let mut ch = chan(DualRouteMode::Serialized);
        ch.transfer(Ps::ZERO, 0, 1 << 20, TrafficClass::Demand, 0);
        let (start, _) = ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand, 0);
        assert!(start >= ch.data_route_free_at(0) - Ps::from_ps(533));
        assert_eq!(ch.vc_borrows(), 0);
    }

    #[test]
    fn idle_channel_ratios_are_finite_zero() {
        let ch = chan(DualRouteMode::Serialized);
        // Zero-denominator cases: no traffic and/or an empty window must
        // report exactly 0, never NaN or ∞.
        assert_eq!(ch.migration_fraction(), 0.0);
        assert_eq!(ch.utilization(Ps::ZERO), 0.0);
        assert_eq!(ch.utilization(Ps::from_us(1)), 0.0);
    }

    #[test]
    fn utilization_zero_horizon_with_traffic_is_zero() {
        let mut ch = chan(DualRouteMode::Serialized);
        ch.transfer(Ps::ZERO, 0, 4096, TrafficClass::Demand, 0);
        assert_eq!(ch.utilization(Ps::ZERO), 0.0);
    }

    #[test]
    fn utilization_clamped_to_unity() {
        let mut ch = chan(DualRouteMode::Serialized);
        // Saturate every VC far beyond a tiny horizon.
        for vc in 0..ch.vc_count() {
            ch.transfer(Ps::ZERO, vc, 1 << 20, TrafficClass::Demand, 0);
        }
        let u = ch.utilization(Ps::from_ps(1));
        assert!(u.is_finite());
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        assert_eq!(u, 1.0);
    }

    #[test]
    fn interval_logging_records_both_routes() {
        let mut ch = chan(DualRouteMode::HalfCoupled);
        // Disabled by default: nothing recorded.
        ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand, 0);
        assert!(ch.drain_intervals().is_empty());

        ch.set_interval_logging(true);
        let (ds, de) = ch.transfer(Ps::ZERO, 1, 256, TrafficClass::Demand, 0);
        let (ms, me) = ch.memory_route_transfer(Ps::ZERO, 2, 512);
        let log = ch.drain_intervals();
        assert_eq!(log.len(), 2);
        assert_eq!(
            log[0],
            BusyInterval {
                vc: 1,
                start: ds,
                end: de,
                class: TrafficClass::Demand,
                memory_route: false,
            }
        );
        assert_eq!(
            log[1],
            BusyInterval {
                vc: 2,
                start: ms,
                end: me,
                class: TrafficClass::Migration,
                memory_route: true,
            }
        );
        // Drain empties the log.
        assert!(ch.drain_intervals().is_empty());
    }

    #[test]
    fn fault_windows_expire_and_extend() {
        let mut ch = chan(DualRouteMode::Serialized);
        assert!(!ch.vc_faulty(2, Ps::ZERO));
        ch.mark_vc_faulty(2, Ps::from_ns(5));
        assert!(ch.vc_faulty(2, Ps::from_ns(4)));
        assert!(!ch.vc_faulty(2, Ps::from_ns(5)));
        // Extending forward works; shrinking is ignored.
        ch.mark_vc_faulty(2, Ps::from_ns(8));
        ch.mark_vc_faulty(2, Ps::from_ns(1));
        assert!(ch.vc_faulty(2, Ps::from_ns(7)));
    }

    #[test]
    fn healthiest_vc_skips_faulty_and_busy() {
        let mut ch = chan(DualRouteMode::Serialized);
        // Idle channel: lowest index wins.
        assert_eq!(ch.healthiest_vc(Ps::ZERO), Some(0));
        // Make VC 0 faulty and VC 1 busy: VC 2 is next best.
        ch.mark_vc_faulty(0, Ps::from_us(1));
        ch.transfer(Ps::ZERO, 1, 1 << 16, TrafficClass::Demand, 0);
        assert_eq!(ch.healthiest_vc(Ps::ZERO), Some(2));
        // All VCs faulty: no candidate.
        for vc in 0..ch.vc_count() {
            ch.mark_vc_faulty(vc, Ps::from_us(1));
        }
        assert_eq!(ch.healthiest_vc(Ps::ZERO), None);
        // Windows expire: after the window everything is healthy again.
        assert_eq!(ch.healthiest_vc(Ps::from_us(1)), Some(0));
    }

    #[test]
    fn vc_shards_match_whole_channel_transfers() {
        for mode in [
            DualRouteMode::Serialized,
            DualRouteMode::Wom,
            DualRouteMode::HalfCoupled,
        ] {
            let mut whole = chan(mode);
            let mut split = chan(mode);
            // Same transfer sequence through both; the shard view must
            // book identical windows and tally identical bits.
            let script: &[(u64, usize, u64, TrafficClass, usize, bool)] = &[
                (0, 0, 256, TrafficClass::Demand, 0, false),
                (100, 0, 512, TrafficClass::Demand, 1, false),
                (0, 3, 1 << 14, TrafficClass::Migration, 0, false),
                (50, 3, 256, TrafficClass::Demand, 2, false),
                (0, 4, 4096, TrafficClass::Demand, 0, false),
                (0, 0, 2048, TrafficClass::Migration, 0, true),
                (10, 5, 256, TrafficClass::Demand, 1, false),
            ];
            let mut deltas = [0u64; 2];
            {
                let mut shards = split.split_vcs(&[3, 3]).expect("static splits");
                for &(t, vc, bits, class, dev, mem_route) in script {
                    let shard = &mut shards[vc / 3];
                    let got = if mem_route {
                        if !mode.has_memory_route() {
                            continue;
                        }
                        shard.memory_route_transfer(Ps::from_ps(t), vc, bits)
                    } else {
                        shard.transfer(Ps::from_ps(t), vc, bits, class, dev)
                    };
                    let want = if mem_route {
                        whole.memory_route_transfer(Ps::from_ps(t), vc, bits)
                    } else {
                        whole.transfer(Ps::from_ps(t), vc, bits, class, dev)
                    };
                    assert_eq!(got, want, "mode {mode:?} diverged");
                }
                for s in &shards {
                    let d = s.bits_delta();
                    deltas[0] += d[0];
                    deltas[1] += d[1];
                }
            }
            split.merge_shard_bits(deltas);
            assert_eq!(
                split.bits_by_class(TrafficClass::Demand),
                whole.bits_by_class(TrafficClass::Demand)
            );
            assert_eq!(
                split.bits_by_class(TrafficClass::Migration),
                whole.bits_by_class(TrafficClass::Migration)
            );
            assert_eq!(split.target_switches(), whole.target_switches());
            assert_eq!(split.data_route_busy(), whole.data_route_busy());
            assert_eq!(split.memory_route_busy(), whole.memory_route_busy());
        }
    }

    #[test]
    fn dynamic_division_refuses_to_split() {
        let mut ch = OpticalChannel::new(OpticalChannelConfig {
            division: ChannelDivision::Dynamic {
                reallocation: Ps::from_ps(500),
            },
            ..OpticalChannelConfig::default()
        });
        assert!(ch.split_vcs(&[3, 3]).is_none());
        let mut logged = chan(DualRouteMode::Serialized);
        logged.set_interval_logging(true);
        assert!(logged.split_vcs(&[3, 3]).is_none());
    }

    #[test]
    fn bits_accounting_by_class() {
        let mut ch = chan(DualRouteMode::Wom);
        ch.transfer(Ps::ZERO, 0, 100, TrafficClass::Demand, 0);
        ch.memory_route_transfer(Ps::ZERO, 0, 50);
        assert_eq!(ch.bits_by_class(TrafficClass::Demand), 100);
        assert_eq!(ch.bits_by_class(TrafficClass::Migration), 50);
    }
}
