//! Micro-ring resonator (MRR) model.
//!
//! MRRs implement both photonic modulators (transmitters) and detectors
//! (receivers). A ring tuned to full resonance with a wavelength couples
//! (absorbs) all of its light; tuned off resonance it passes the light
//! untouched. Ohm-GPU additionally uses *half-coupled* rings (HCMRR,
//! Section IV-C, after [Peter et al.]): tuned slightly off the carrier
//! (λ₀′), a ring absorbs only part of the light, letting the rest travel
//! on to a second device — the physical basis of the dual routes.
//!
//! Timing: switching between coupled and non-coupled costs ~100 ps; the
//! fine-granule tuning required to hit the half-coupled point costs 500 ps
//! (the paper's motivation for deploying *arrays* of pre-tuned rings
//! instead of retuning one ring on the fly). Tuning energy is 200 fJ/bit
//! (Table I).
//!
//! # Fault model
//!
//! Real rings are thermally sensitive: the resonance point wanders with
//! temperature, and a failed heater leaves a ring pinned wherever it
//! last sat. The fault-injection subsystem models both as [`RingHealth`]
//! states: a *stuck* ring ignores retune requests entirely until
//! repaired, while a *drifted* ring must pay the fine-granule tuning
//! latency on its next retune — even one that would otherwise be free —
//! to re-acquire lock. Fault injection is driven from the fabric layer
//! (`ohm-core`); this module only supplies the mechanism.

use ohm_sim::Ps;

/// Coupling state of a ring relative to a carrier wavelength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CouplingState {
    /// Fully absorbs the carrier (modulating a `0`, or detecting).
    Coupled,
    /// Absorbs half the carrier power, passing the rest downstream.
    HalfCoupled,
    /// Passes the carrier untouched.
    #[default]
    NonCoupled,
}

impl CouplingState {
    /// Fraction of incident power that continues past the ring.
    pub fn pass_fraction(self) -> f64 {
        match self {
            CouplingState::Coupled => 0.0,
            CouplingState::HalfCoupled => 0.5,
            CouplingState::NonCoupled => 1.0,
        }
    }

    /// Fraction of incident power absorbed by the ring.
    pub fn absorb_fraction(self) -> f64 {
        1.0 - self.pass_fraction()
    }
}

/// Whether a ring is deployed as a modulator or a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MrrKind {
    /// Transmitter: modulates electrical data onto the light.
    Modulator,
    /// Receiver: couples light and senses its strength.
    Detector,
}

/// Coarse (coupled ↔ non-coupled) retuning latency.
pub const COARSE_TUNE: Ps = Ps::from_ps(100);
/// Fine-granule retuning latency to reach the half-coupled point.
pub const FINE_TUNE: Ps = Ps::from_ps(500);
/// Tuning energy per modulated/detected bit, in femtojoules (Table I).
pub const TUNING_ENERGY_FJ_PER_BIT: f64 = 200.0;

/// Tuning health of a ring, used by the fault-injection subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RingHealth {
    /// Heater and tuning loop track normally.
    #[default]
    Healthy,
    /// Heater failed: the ring cannot leave its current state.
    Stuck,
    /// Thermal drift: the next retune must pay the fine-granule latency
    /// to re-acquire lock, even if the target equals the current state.
    Drifted,
}

/// An active micro-ring resonator.
///
/// # Example
///
/// ```
/// use ohm_optic::{CouplingState, MicroRing, MrrKind};
/// use ohm_sim::Ps;
///
/// let mut ring = MicroRing::new(MrrKind::Detector);
/// let t = ring.retune(Ps::ZERO, CouplingState::HalfCoupled);
/// assert_eq!(t, Ps::from_ps(500)); // fine-granule tuning
/// assert_eq!(ring.state(), CouplingState::HalfCoupled);
/// ```
#[derive(Debug, Clone)]
pub struct MicroRing {
    kind: MrrKind,
    state: CouplingState,
    health: RingHealth,
    retunes: u64,
    failed_retunes: u64,
    bits_handled: u64,
}

impl MicroRing {
    /// Creates a non-coupled ring of the given kind.
    pub fn new(kind: MrrKind) -> Self {
        MicroRing {
            kind,
            state: CouplingState::NonCoupled,
            health: RingHealth::Healthy,
            retunes: 0,
            failed_retunes: 0,
            bits_handled: 0,
        }
    }

    /// The ring's deployment kind.
    pub fn kind(&self) -> MrrKind {
        self.kind
    }

    /// Current coupling state.
    pub fn state(&self) -> CouplingState {
        self.state
    }

    /// Current tuning health.
    pub fn health(&self) -> RingHealth {
        self.health
    }

    /// Injects a stuck-heater fault: retunes fail until [`MicroRing::repair`].
    pub fn inject_stick(&mut self) {
        self.health = RingHealth::Stuck;
    }

    /// Injects thermal drift: the next retune pays the fine-granule
    /// latency to re-acquire lock, which clears the drift.
    pub fn inject_drift(&mut self) {
        self.health = RingHealth::Drifted;
    }

    /// Restores the ring to healthy tracking.
    pub fn repair(&mut self) {
        self.health = RingHealth::Healthy;
    }

    /// Retunes attempted while the ring was stuck.
    pub fn failed_retunes(&self) -> u64 {
        self.failed_retunes
    }

    /// Retunes the ring to `target`, returning when the new state is
    /// stable. Entering or leaving the half-coupled point pays the
    /// fine-granule tuning latency; other transitions pay the coarse one.
    /// Retuning to the current state is free.
    ///
    /// Fault interactions: a [`RingHealth::Stuck`] ring ignores the
    /// request (state unchanged, returns `now`, counted in
    /// [`MicroRing::failed_retunes`]); a [`RingHealth::Drifted`] ring
    /// pays [`FINE_TUNE`] even for a same-state retune, after which the
    /// drift is cleared.
    pub fn retune(&mut self, now: Ps, target: CouplingState) -> Ps {
        match self.health {
            RingHealth::Stuck => {
                self.failed_retunes += 1;
                return now;
            }
            RingHealth::Drifted => {
                self.health = RingHealth::Healthy;
                self.state = target;
                self.retunes += 1;
                return now + FINE_TUNE;
            }
            RingHealth::Healthy => {}
        }
        if target == self.state {
            return now;
        }
        let fine = matches!(target, CouplingState::HalfCoupled)
            || matches!(self.state, CouplingState::HalfCoupled);
        self.state = target;
        self.retunes += 1;
        now + if fine { FINE_TUNE } else { COARSE_TUNE }
    }

    /// Accounts `bits` modulated or detected through this ring; returns the
    /// tuning energy consumed in femtojoules.
    pub fn handle_bits(&mut self, bits: u64) -> f64 {
        self.bits_handled += bits;
        bits as f64 * TUNING_ENERGY_FJ_PER_BIT
    }

    /// Number of state retunes performed.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Total bits modulated/detected.
    pub fn bits_handled(&self) -> u64 {
        self.bits_handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_fractions() {
        assert_eq!(CouplingState::Coupled.pass_fraction(), 0.0);
        assert_eq!(CouplingState::HalfCoupled.pass_fraction(), 0.5);
        assert_eq!(CouplingState::NonCoupled.pass_fraction(), 1.0);
        assert_eq!(CouplingState::HalfCoupled.absorb_fraction(), 0.5);
    }

    #[test]
    fn coarse_retune_is_fast() {
        let mut r = MicroRing::new(MrrKind::Modulator);
        let t = r.retune(Ps::ZERO, CouplingState::Coupled);
        assert_eq!(t, COARSE_TUNE);
        assert_eq!(r.retunes(), 1);
    }

    #[test]
    fn half_coupled_retune_is_slow_both_ways() {
        let mut r = MicroRing::new(MrrKind::Detector);
        let t1 = r.retune(Ps::ZERO, CouplingState::HalfCoupled);
        assert_eq!(t1, FINE_TUNE);
        let t2 = r.retune(t1, CouplingState::Coupled);
        assert_eq!(t2, t1 + FINE_TUNE);
    }

    #[test]
    fn retune_to_same_state_is_free() {
        let mut r = MicroRing::new(MrrKind::Detector);
        let t = r.retune(Ps::from_ns(1), CouplingState::NonCoupled);
        assert_eq!(t, Ps::from_ns(1));
        assert_eq!(r.retunes(), 0);
    }

    #[test]
    fn stuck_ring_ignores_retunes_until_repaired() {
        let mut r = MicroRing::new(MrrKind::Detector);
        r.inject_stick();
        assert_eq!(r.health(), RingHealth::Stuck);
        let t = r.retune(Ps::from_ns(3), CouplingState::Coupled);
        assert_eq!(t, Ps::from_ns(3));
        assert_eq!(r.state(), CouplingState::NonCoupled);
        assert_eq!(r.failed_retunes(), 1);
        assert_eq!(r.retunes(), 0);

        r.repair();
        let t = r.retune(t, CouplingState::Coupled);
        assert_eq!(t, Ps::from_ns(3) + COARSE_TUNE);
        assert_eq!(r.state(), CouplingState::Coupled);
    }

    #[test]
    fn drifted_ring_pays_fine_tune_once() {
        let mut r = MicroRing::new(MrrKind::Detector);
        r.inject_drift();
        // Same-state retune is no longer free: lock must be re-acquired.
        let t = r.retune(Ps::ZERO, CouplingState::NonCoupled);
        assert_eq!(t, FINE_TUNE);
        assert_eq!(r.health(), RingHealth::Healthy);
        // Drift cleared; same-state retunes are free again.
        assert_eq!(r.retune(t, CouplingState::NonCoupled), t);
    }

    #[test]
    fn tuning_energy_accumulates() {
        let mut r = MicroRing::new(MrrKind::Modulator);
        let fj = r.handle_bits(1000);
        assert_eq!(fj, 200_000.0);
        assert_eq!(r.bits_handled(), 1000);
    }
}
