//! Micro-ring resonator (MRR) model.
//!
//! MRRs implement both photonic modulators (transmitters) and detectors
//! (receivers). A ring tuned to full resonance with a wavelength couples
//! (absorbs) all of its light; tuned off resonance it passes the light
//! untouched. Ohm-GPU additionally uses *half-coupled* rings (HCMRR,
//! Section IV-C, after [Peter et al.]): tuned slightly off the carrier
//! (λ₀′), a ring absorbs only part of the light, letting the rest travel
//! on to a second device — the physical basis of the dual routes.
//!
//! Timing: switching between coupled and non-coupled costs ~100 ps; the
//! fine-granule tuning required to hit the half-coupled point costs 500 ps
//! (the paper's motivation for deploying *arrays* of pre-tuned rings
//! instead of retuning one ring on the fly). Tuning energy is 200 fJ/bit
//! (Table I).

use ohm_sim::Ps;

/// Coupling state of a ring relative to a carrier wavelength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CouplingState {
    /// Fully absorbs the carrier (modulating a `0`, or detecting).
    Coupled,
    /// Absorbs half the carrier power, passing the rest downstream.
    HalfCoupled,
    /// Passes the carrier untouched.
    #[default]
    NonCoupled,
}

impl CouplingState {
    /// Fraction of incident power that continues past the ring.
    pub fn pass_fraction(self) -> f64 {
        match self {
            CouplingState::Coupled => 0.0,
            CouplingState::HalfCoupled => 0.5,
            CouplingState::NonCoupled => 1.0,
        }
    }

    /// Fraction of incident power absorbed by the ring.
    pub fn absorb_fraction(self) -> f64 {
        1.0 - self.pass_fraction()
    }
}

/// Whether a ring is deployed as a modulator or a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MrrKind {
    /// Transmitter: modulates electrical data onto the light.
    Modulator,
    /// Receiver: couples light and senses its strength.
    Detector,
}

/// Coarse (coupled ↔ non-coupled) retuning latency.
pub const COARSE_TUNE: Ps = Ps::from_ps(100);
/// Fine-granule retuning latency to reach the half-coupled point.
pub const FINE_TUNE: Ps = Ps::from_ps(500);
/// Tuning energy per modulated/detected bit, in femtojoules (Table I).
pub const TUNING_ENERGY_FJ_PER_BIT: f64 = 200.0;

/// An active micro-ring resonator.
///
/// # Example
///
/// ```
/// use ohm_optic::{CouplingState, MicroRing, MrrKind};
/// use ohm_sim::Ps;
///
/// let mut ring = MicroRing::new(MrrKind::Detector);
/// let t = ring.retune(Ps::ZERO, CouplingState::HalfCoupled);
/// assert_eq!(t, Ps::from_ps(500)); // fine-granule tuning
/// assert_eq!(ring.state(), CouplingState::HalfCoupled);
/// ```
#[derive(Debug, Clone)]
pub struct MicroRing {
    kind: MrrKind,
    state: CouplingState,
    retunes: u64,
    bits_handled: u64,
}

impl MicroRing {
    /// Creates a non-coupled ring of the given kind.
    pub fn new(kind: MrrKind) -> Self {
        MicroRing {
            kind,
            state: CouplingState::NonCoupled,
            retunes: 0,
            bits_handled: 0,
        }
    }

    /// The ring's deployment kind.
    pub fn kind(&self) -> MrrKind {
        self.kind
    }

    /// Current coupling state.
    pub fn state(&self) -> CouplingState {
        self.state
    }

    /// Retunes the ring to `target`, returning when the new state is
    /// stable. Entering or leaving the half-coupled point pays the
    /// fine-granule tuning latency; other transitions pay the coarse one.
    /// Retuning to the current state is free.
    pub fn retune(&mut self, now: Ps, target: CouplingState) -> Ps {
        if target == self.state {
            return now;
        }
        let fine = matches!(target, CouplingState::HalfCoupled)
            || matches!(self.state, CouplingState::HalfCoupled);
        self.state = target;
        self.retunes += 1;
        now + if fine { FINE_TUNE } else { COARSE_TUNE }
    }

    /// Accounts `bits` modulated or detected through this ring; returns the
    /// tuning energy consumed in femtojoules.
    pub fn handle_bits(&mut self, bits: u64) -> f64 {
        self.bits_handled += bits;
        bits as f64 * TUNING_ENERGY_FJ_PER_BIT
    }

    /// Number of state retunes performed.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Total bits modulated/detected.
    pub fn bits_handled(&self) -> u64 {
        self.bits_handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_fractions() {
        assert_eq!(CouplingState::Coupled.pass_fraction(), 0.0);
        assert_eq!(CouplingState::HalfCoupled.pass_fraction(), 0.5);
        assert_eq!(CouplingState::NonCoupled.pass_fraction(), 1.0);
        assert_eq!(CouplingState::HalfCoupled.absorb_fraction(), 0.5);
    }

    #[test]
    fn coarse_retune_is_fast() {
        let mut r = MicroRing::new(MrrKind::Modulator);
        let t = r.retune(Ps::ZERO, CouplingState::Coupled);
        assert_eq!(t, COARSE_TUNE);
        assert_eq!(r.retunes(), 1);
    }

    #[test]
    fn half_coupled_retune_is_slow_both_ways() {
        let mut r = MicroRing::new(MrrKind::Detector);
        let t1 = r.retune(Ps::ZERO, CouplingState::HalfCoupled);
        assert_eq!(t1, FINE_TUNE);
        let t2 = r.retune(t1, CouplingState::Coupled);
        assert_eq!(t2, t1 + FINE_TUNE);
    }

    #[test]
    fn retune_to_same_state_is_free() {
        let mut r = MicroRing::new(MrrKind::Detector);
        let t = r.retune(Ps::from_ns(1), CouplingState::NonCoupled);
        assert_eq!(t, Ps::from_ns(1));
        assert_eq!(r.retunes(), 0);
    }

    #[test]
    fn tuning_energy_accumulates() {
        let mut r = MicroRing::new(MrrKind::Modulator);
        let fj = r.handle_bits(1000);
        assert_eq!(fj, 200_000.0);
        assert_eq!(r.bits_handled(), 1000);
    }
}
