//! MRR layout counts (Figure 15) and photonic component costs (Table III).
//!
//! Supporting all three migration functions (auto-read/write, reverse-write
//! and swap) between any DRAM/XPoint pair needs a general MRR array:
//! conventional transmit/receive pairs plus half-coupled rings on both the
//! forward and backward paths. The paper then specialises the array per
//! operational mode — planar memory only needs the swap function,
//! two-level memory only needs auto-read/write + reverse-write — cutting
//! ring count by 58% and 42% respectively.
//!
//! We model the per-device-pair ring sets explicitly (from the Figure 15
//! discussion: rings T3–T11 / R1–R11 minus the optional T9–T11) and expose
//! the same reduction arithmetic; the fabrication cost per ring follows
//! Table III ($3 per ~2,100 rings).

/// The heterogeneous-memory operational mode (Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperationalMode {
    /// DRAM and XPoint form one flat address space; DRAM pages swap with
    /// hot XPoint pages (1:8 capacity ratio, 108 GB in the paper).
    Planar,
    /// DRAM is a direct-mapped inclusive cache of XPoint (1:64 ratio,
    /// 390 GB in the paper).
    TwoLevel,
}

/// MRR counts for one DRAM+XPoint device pair on one virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrrLayout {
    /// Fully-coupled transmitter rings.
    pub full_transmitters: u32,
    /// Half-coupled transmitter rings.
    pub half_transmitters: u32,
    /// Fully-coupled receiver rings.
    pub full_receivers: u32,
    /// Half-coupled receiver rings.
    pub half_receivers: u32,
}

impl MrrLayout {
    /// The general design supporting all three functions on any pair
    /// (Figure 15a, required rings only: the text notes T9–T11 are
    /// optional parallelism helpers).
    pub fn general() -> Self {
        // DRAM: T3,T4 + XPoint: T5..T8 => 3 full + 5 half transmitters;
        // R1..R8 conventional/half mix + R11 => 5 full + 6 half receivers.
        MrrLayout {
            full_transmitters: 3,
            half_transmitters: 5,
            full_receivers: 5,
            half_receivers: 6,
        }
    }

    /// The mode-specialised design (Figure 15b).
    pub fn for_mode(mode: OperationalMode) -> Self {
        match mode {
            // Planar only needs the swap function: conventional pairs plus
            // half-coupled transmitters for the shared-light swap.
            OperationalMode::Planar => MrrLayout {
                full_transmitters: 2,
                half_transmitters: 2,
                full_receivers: 3,
                half_receivers: 1,
            },
            // Two-level needs auto-read/write + reverse-write: conventional
            // pairs plus half-coupled receivers on both paths.
            OperationalMode::TwoLevel => MrrLayout {
                full_transmitters: 3,
                half_transmitters: 0,
                full_receivers: 4,
                half_receivers: 4,
            },
        }
    }

    /// Total rings in this layout.
    pub fn total(&self) -> u32 {
        self.full_transmitters + self.half_transmitters + self.full_receivers + self.half_receivers
    }

    /// Total transmitter rings.
    pub fn transmitters(&self) -> u32 {
        self.full_transmitters + self.half_transmitters
    }

    /// Total receiver rings.
    pub fn receivers(&self) -> u32 {
        self.full_receivers + self.half_receivers
    }

    /// Ring-count reduction of this layout relative to the general design.
    pub fn reduction_vs_general(&self) -> f64 {
        let general = MrrLayout::general().total() as f64;
        1.0 - self.total() as f64 / general
    }
}

/// Fabrication cost of micro-rings in dollars (Table III: ~2,100 rings for
/// $3, after \[Hausken\]).
pub const MRR_UNIT_COST_USD: f64 = 3.0 / 2112.0;

/// Cost of a VCSEL laser source array (Table III).
pub const VCSEL_COST_USD: f64 = 100.0;

/// Dollar cost of `rings` micro-rings.
pub fn mrr_cost_usd(rings: u64) -> f64 {
    rings as f64 * MRR_UNIT_COST_USD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_layout_total() {
        let g = MrrLayout::general();
        assert_eq!(g.total(), 19);
        assert_eq!(g.transmitters(), 8);
        assert_eq!(g.receivers(), 11);
    }

    #[test]
    fn planar_reduction_matches_paper_58pct() {
        let r = MrrLayout::for_mode(OperationalMode::Planar).reduction_vs_general();
        assert!((r - 0.58).abs() < 0.01, "planar reduction {r}");
    }

    #[test]
    fn two_level_reduction_matches_paper_42pct() {
        let r = MrrLayout::for_mode(OperationalMode::TwoLevel).reduction_vs_general();
        assert!((r - 0.42).abs() < 0.01, "two-level reduction {r}");
    }

    #[test]
    fn specialised_layouts_are_subsets_in_size() {
        let g = MrrLayout::general().total();
        for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
            assert!(MrrLayout::for_mode(mode).total() < g);
        }
    }

    #[test]
    fn mrr_costs_match_table3_scale() {
        // Table III: 2,112 modulators cost ~$3.
        let c = mrr_cost_usd(2112);
        assert!((c - 3.0).abs() < 1e-9);
        assert!(mrr_cost_usd(4928) > mrr_cost_usd(2368));
    }
}
