//! Silicon nano-photonic network models for the Ohm-GPU reproduction.
//!
//! The paper replaces six 32-bit 15 GHz electrical memory channels with a
//! single optical waveguide carrying DWDM laser light (Table I: 96 bits of
//! wavelength capacity at 30 GHz, statically divided into six 16-bit
//! virtual channels). This crate models that infrastructure:
//!
//! * [`wavelength`] — DWDM wavelength grid and its static division into
//!   virtual channels.
//! * [`mrr`] — micro-ring resonators: full/half/non-coupled states, tuning
//!   times (100 ps coarse, 500 ps fine-granule half-coupling) and tuning
//!   energy (200 fJ/bit).
//! * [`wom`] — the Rivest–Shamir ⟨2,2⟩ write-once-memory code used to
//!   modulate two independent 2-bit payloads into one 3-bit light signal
//!   (Figure 14), at a 2/3 effective-bandwidth cost.
//! * [`channel`] — the optical channel proper: virtual channels with
//!   photonic-demux arbitration, the *dual routes* (data route MC↔device,
//!   memory route device↔device), and per-class busy accounting.
//! * [`arbiter`] — the photonic demultiplexer's control logic as an
//!   explicit state machine (device enables, grant switching, fairness).
//! * [`waveguide`] — physical bus layout: per-device distances, through
//!   losses, and the worst-case link budget.
//! * [`electrical`] — the baseline electrical channel for the `Origin`
//!   and `Hetero` platforms.
//! * [`power`] — the optical power budget: laser power, per-component dB
//!   losses (Table I), and MRR tuning energy.
//! * [`ber`] — bit-error-rate estimation from received optical power via a
//!   Q-factor model (Figure 20b).
//! * [`cost`] — MRR layout counts per operational mode (Figure 15) and the
//!   component cost model behind Table III.
//!
//! # Fault injection
//!
//! Components expose *mechanisms* for degraded operation — stuck/drifted
//! ring health ([`mrr::RingHealth`]), per-VC fault windows and healthy-VC
//! queries ([`channel::OpticalChannel::mark_vc_faulty`],
//! [`channel::OpticalChannel::healthiest_vc`]) — while the *policy*
//! (when to inject, how to recover) lives in `ohm-core`'s fault plan.
//! See DESIGN.md §"Fault & recovery model".

#![warn(missing_docs)]

pub mod arbiter;
pub mod ber;
pub mod channel;
pub mod cost;
pub mod electrical;
pub mod mrr;
pub mod power;
pub mod waveguide;
pub mod wavelength;
pub mod wom;

pub use arbiter::PhotonicDemux;
pub use ber::{ber_from_q, q_factor, BerModel};
pub use channel::{
    BusyInterval, ChannelDivision, DualRouteMode, OpticalChannel, OpticalChannelConfig,
    TrafficClass, VcShard,
};
pub use cost::{MrrLayout, OperationalMode};
pub use electrical::{ElectricalChannel, ElectricalConfig, LaneShard};
pub use mrr::{CouplingState, MicroRing, MrrKind, RingHealth};
pub use power::{OpticalPathLoss, OpticalPowerModel};
pub use waveguide::WaveguideLayout;
pub use wavelength::{Wavelength, WdmGrid};
pub use wom::Wom22;
