//! DWDM wavelength grid and virtual-channel division.
//!
//! An external VCSEL array injects laser light of many wavelengths into a
//! single waveguide (dense wavelength-division multiplexing). Ohm-GPU
//! statically partitions those wavelengths into *virtual channels*, one per
//! GPU memory controller, so controllers never conflict on the channel
//! (Section III-A). Table I: 96 wavelengths (bits of parallel width) split
//! into 6 virtual channels of 16 bits each.

/// A single DWDM wavelength, identified by its grid index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Wavelength(pub u32);

/// A static DWDM grid divided evenly into virtual channels.
///
/// # Example
///
/// ```
/// use ohm_optic::WdmGrid;
///
/// let grid = WdmGrid::new(96, 6); // Table I default
/// assert_eq!(grid.bits_per_channel(), 16);
/// assert_eq!(grid.channel_of(grid.wavelengths_of(4)[0]), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WdmGrid {
    total: u32,
    channels: u32,
}

impl WdmGrid {
    /// Creates a grid of `total` wavelengths divided into `channels`
    /// virtual channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or does not divide `total` evenly.
    pub fn new(total: u32, channels: u32) -> Self {
        assert!(channels > 0, "need at least one virtual channel");
        assert!(
            total.is_multiple_of(channels),
            "wavelengths ({total}) must divide evenly into channels ({channels})"
        );
        WdmGrid { total, channels }
    }

    /// Total wavelengths in the grid.
    pub fn total_wavelengths(&self) -> u32 {
        self.total
    }

    /// Number of virtual channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Parallel bit width of one virtual channel.
    pub fn bits_per_channel(&self) -> u32 {
        self.total / self.channels
    }

    /// The wavelengths belonging to virtual channel `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn wavelengths_of(&self, vc: u32) -> Vec<Wavelength> {
        assert!(vc < self.channels, "virtual channel out of range");
        let w = self.bits_per_channel();
        (vc * w..(vc + 1) * w).map(Wavelength).collect()
    }

    /// The virtual channel that owns wavelength `wl`.
    ///
    /// # Panics
    ///
    /// Panics if the wavelength is outside the grid.
    pub fn channel_of(&self, wl: Wavelength) -> u32 {
        assert!(wl.0 < self.total, "wavelength outside grid");
        wl.0 / self.bits_per_channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_matches_table1() {
        let g = WdmGrid::new(96, 6);
        assert_eq!(g.bits_per_channel(), 16);
        assert_eq!(g.total_wavelengths(), 96);
        assert_eq!(g.channels(), 6);
    }

    #[test]
    fn channels_partition_the_grid() {
        let g = WdmGrid::new(96, 6);
        let mut seen = std::collections::BTreeSet::new();
        for vc in 0..6 {
            for wl in g.wavelengths_of(vc) {
                assert_eq!(g.channel_of(wl), vc);
                assert!(seen.insert(wl), "wavelength assigned twice");
            }
        }
        assert_eq!(seen.len(), 96);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_division_rejected() {
        let _ = WdmGrid::new(97, 6);
    }

    #[test]
    #[should_panic(expected = "virtual channel out of range")]
    fn out_of_range_vc_rejected() {
        let g = WdmGrid::new(96, 6);
        let _ = g.wavelengths_of(6);
    }
}
