//! Write-once-memory (WOM) coding for dual-route modulation.
//!
//! To let the swap function share a laser light with normal memory
//! requests (Figure 14), Ohm-GPU borrows the Rivest–Shamir ⟨2,2⟩ WOM code:
//! 2 data bits are written twice into 3 code bits under the *write-once*
//! constraint that a light bit, once consumed (driven towards `1` in the
//! paper's half-power convention), cannot be restored by a downstream
//! modulator. The memory controller writes the first generation; the
//! XPoint controller overwrites with the second generation; each receiver
//! decodes its own generation from the mapping table.
//!
//! The cost: 3 light bits carry 2 data bits, so the effective bandwidth of
//! the data route drops to 2/3 while WOM is active — the paper's quoted
//! "33% bandwidth reduction", which motivates the half-coupled-MRR
//! alternative (`Ohm-BW`).

/// Which write generation a decoded codeword belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WomGeneration {
    /// Written by the first writer (the memory controller).
    First,
    /// Overwritten by the second writer (the XPoint controller).
    Second,
}

/// The Rivest–Shamir ⟨2,2⟩ WOM code over 3-bit codewords.
///
/// First-generation codes have Hamming weight ≤ 1; second-generation codes
/// are the bitwise complements of first-generation codes (weight ≥ 2), so
/// every overwrite only sets bits — never clears them.
///
/// # Example
///
/// ```
/// use ohm_optic::Wom22;
/// use ohm_optic::wom::WomGeneration;
///
/// let c1 = Wom22::encode_first(0b10);
/// assert_eq!(c1, 0b010);
/// let c2 = Wom22::encode_second(c1, 0b01);
/// assert_eq!(Wom22::decode(c2), (WomGeneration::Second, 0b01));
/// // Write-once: the overwrite never cleared a bit.
/// assert_eq!(c1 & !c2, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Wom22;

impl Wom22 {
    /// Effective bandwidth factor of a WOM-coded route: 2 data bits per 3
    /// light bits.
    pub const BANDWIDTH_FACTOR: f64 = 2.0 / 3.0;

    /// First-generation code for a 2-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a 2-bit value.
    pub fn encode_first(data: u8) -> u8 {
        assert!(data < 4, "WOM payload must be 2 bits");
        match data {
            0b00 => 0b000,
            0b01 => 0b001,
            0b10 => 0b010,
            _ => 0b100,
        }
    }

    /// Second-generation code overwriting `current` with a 2-bit value.
    ///
    /// If the new value equals the currently stored one, the codeword is
    /// left unchanged (no bits need to be consumed). Otherwise the
    /// complement of the value's first-generation code is written, which
    /// by construction only sets bits.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not 2 bits or `current` is not a valid
    /// first-generation codeword.
    pub fn encode_second(current: u8, data: u8) -> u8 {
        assert!(data < 4, "WOM payload must be 2 bits");
        let (generation, stored) = Self::decode(current);
        assert_eq!(
            generation,
            WomGeneration::First,
            "second write requires a first-generation codeword"
        );
        if stored == data {
            return current;
        }
        let code = !Self::encode_first(data) & 0b111;
        debug_assert_eq!(current & !code, 0, "write-once violation");
        code
    }

    /// Decodes a 3-bit codeword into its generation and 2-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `code` is wider than 3 bits.
    pub fn decode(code: u8) -> (WomGeneration, u8) {
        assert!(code < 8, "WOM codeword must be 3 bits");
        match code.count_ones() {
            0 | 1 => {
                let data = match code {
                    0b000 => 0b00,
                    0b001 => 0b01,
                    0b010 => 0b10,
                    _ => 0b11, // 0b100
                };
                (WomGeneration::First, data)
            }
            _ => {
                let data = match code {
                    0b111 => 0b00,
                    0b110 => 0b01,
                    0b101 => 0b10,
                    _ => 0b11, // 0b011
                };
                (WomGeneration::Second, data)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_generation_roundtrip() {
        for d in 0..4u8 {
            let c = Wom22::encode_first(d);
            assert_eq!(Wom22::decode(c), (WomGeneration::First, d));
            assert!(c.count_ones() <= 1);
        }
    }

    #[test]
    fn second_generation_roundtrip_all_pairs() {
        for first in 0..4u8 {
            for second in 0..4u8 {
                let c1 = Wom22::encode_first(first);
                let c2 = Wom22::encode_second(c1, second);
                if first == second {
                    // Unchanged codeword still decodes to the right value.
                    let (_, v) = Wom22::decode(c2);
                    assert_eq!(v, second);
                } else {
                    assert_eq!(Wom22::decode(c2), (WomGeneration::Second, second));
                }
            }
        }
    }

    #[test]
    fn overwrites_never_clear_bits() {
        for first in 0..4u8 {
            for second in 0..4u8 {
                let c1 = Wom22::encode_first(first);
                let c2 = Wom22::encode_second(c1, second);
                assert_eq!(
                    c1 & !c2,
                    0,
                    "bit cleared overwriting {first:02b} with {second:02b}"
                );
            }
        }
    }

    #[test]
    fn all_codewords_decode_uniquely() {
        let mut seen = std::collections::HashMap::new();
        for code in 0..8u8 {
            let (generation, v) = Wom22::decode(code);
            assert!(
                seen.insert(code, (generation, v)).is_none(),
                "duplicate decode for {code:03b}"
            );
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn bandwidth_factor_is_two_thirds() {
        assert!((Wom22::BANDWIDTH_FACTOR - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "2 bits")]
    fn wide_payload_rejected() {
        let _ = Wom22::encode_first(4);
    }

    #[test]
    #[should_panic(expected = "first-generation")]
    fn third_write_rejected() {
        let c1 = Wom22::encode_first(0b01);
        let c2 = Wom22::encode_second(c1, 0b10);
        let _ = Wom22::encode_second(c2, 0b11);
    }
}
