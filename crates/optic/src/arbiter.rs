//! Photonic demultiplexer arbitration.
//!
//! A virtual channel connects one memory controller to many memory
//! devices, but a wavelength can only be absorbed by one detector at a
//! time (Section II-D). The control logic of [Li et al.] arbitrates by
//! *enabling* exactly one device's photonic detectors and disabling the
//! rest (Figure 6b); granting a new device requires retuning its detector
//! ring onto the carrier.
//!
//! [`PhotonicDemux`] models that control logic explicitly: device enable
//! states, grant switching with its retune latency, and fairness
//! accounting. The channel model keeps its own lightweight target
//! tracking for speed; this component exists for detailed studies and is
//! exercised by the unit and property tests.

use ohm_sim::{Counter, Ps};

use crate::mrr::{CouplingState, MicroRing, MrrKind};

/// The demux control logic for one virtual channel.
///
/// # Example
///
/// ```
/// use ohm_optic::arbiter::PhotonicDemux;
/// use ohm_sim::Ps;
///
/// let mut demux = PhotonicDemux::new(2);
/// let granted = demux.grant(Ps::ZERO, 1);
/// assert!(granted > Ps::ZERO); // detector retune
/// assert_eq!(demux.enabled(), Some(1));
/// // Re-granting the same device is free.
/// assert_eq!(demux.grant(granted, 1), granted);
/// ```
#[derive(Debug, Clone)]
pub struct PhotonicDemux {
    detectors: Vec<MicroRing>,
    enabled: Option<usize>,
    grants: Vec<Counter>,
    switches: Counter,
}

impl PhotonicDemux {
    /// Creates a demux over `devices` attached devices, all disabled.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn new(devices: usize) -> Self {
        assert!(devices > 0, "demux needs at least one device");
        PhotonicDemux {
            detectors: (0..devices)
                .map(|_| MicroRing::new(MrrKind::Detector))
                .collect(),
            enabled: None,
            grants: vec![Counter::new(); devices],
            switches: Counter::new(),
        }
    }

    /// Number of attached devices.
    pub fn devices(&self) -> usize {
        self.detectors.len()
    }

    /// The currently enabled device, if any.
    pub fn enabled(&self) -> Option<usize> {
        self.enabled
    }

    /// Grants the channel to `device`, retuning detectors as needed.
    /// Returns when the grant is stable (the new detector is coupled and
    /// the old one released). Granting the current owner is free.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn grant(&mut self, now: Ps, device: usize) -> Ps {
        assert!(device < self.detectors.len(), "device out of range");
        if self.enabled == Some(device) {
            return now;
        }
        let mut stable = now;
        if let Some(old) = self.enabled {
            // The old detector releases the light (can overlap the new
            // detector's retune — both complete before the grant).
            stable = stable.max(self.detectors[old].retune(now, CouplingState::NonCoupled));
        }
        stable = stable.max(self.detectors[device].retune(now, CouplingState::Coupled));
        self.enabled = Some(device);
        self.grants[device].incr();
        self.switches.incr();
        stable
    }

    /// Enables the snarf configuration: `device` holds the light
    /// half-coupled (dual-route observer) while `primary` stays coupled.
    /// Returns when both rings are stable.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range, or they alias.
    pub fn grant_with_snarf(&mut self, now: Ps, primary: usize, observer: usize) -> Ps {
        assert_ne!(primary, observer, "observer must differ from the primary");
        let granted = self.grant(now, primary);
        let snarf = self.detectors[observer].retune(now, CouplingState::HalfCoupled);
        granted.max(snarf)
    }

    /// Times device `device` has been granted the channel.
    pub fn grants_to(&self, device: usize) -> u64 {
        self.grants[device].get()
    }

    /// Total grant switches.
    pub fn switches(&self) -> u64 {
        self.switches.get()
    }

    /// Jain's fairness index over the grant counts (1.0 = perfectly fair;
    /// 1/n = one device monopolises). Returns 1.0 before any grant.
    pub fn fairness(&self) -> f64 {
        let xs: Vec<f64> = self.grants.iter().map(|c| c.get() as f64).collect();
        let sum: f64 = xs.iter().sum();
        if sum == 0.0 {
            return 1.0;
        }
        let sq_sum: f64 = xs.iter().map(|x| x * x).sum();
        (sum * sum) / (xs.len() as f64 * sq_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrr::{COARSE_TUNE, FINE_TUNE};

    #[test]
    fn grant_pays_coarse_retune() {
        let mut demux = PhotonicDemux::new(3);
        let t = demux.grant(Ps::ZERO, 0);
        assert_eq!(t, COARSE_TUNE);
        assert_eq!(demux.enabled(), Some(0));
        assert_eq!(demux.switches(), 1);
    }

    #[test]
    fn regrant_is_free_switch_is_not() {
        let mut demux = PhotonicDemux::new(2);
        let t1 = demux.grant(Ps::ZERO, 0);
        assert_eq!(demux.grant(t1, 0), t1);
        let t2 = demux.grant(t1, 1);
        assert_eq!(t2, t1 + COARSE_TUNE);
        assert_eq!(demux.switches(), 2);
    }

    #[test]
    fn snarf_configuration_uses_fine_tuning() {
        let mut demux = PhotonicDemux::new(2);
        let t = demux.grant_with_snarf(Ps::ZERO, 0, 1);
        // The half-coupled observer needs the fine-granule retune.
        assert_eq!(t, FINE_TUNE);
        assert_eq!(demux.enabled(), Some(0));
    }

    #[test]
    fn fairness_index() {
        let mut demux = PhotonicDemux::new(2);
        assert_eq!(demux.fairness(), 1.0);
        let mut now = Ps::ZERO;
        for i in 0..10 {
            now = demux.grant(now, i % 2);
        }
        assert!(
            (demux.fairness() - 1.0).abs() < 1e-12,
            "alternating is fair"
        );
        // Monopolising device 0 (re-grants don't count): re-create and skew.
        let mut skew = PhotonicDemux::new(4);
        skew.grant(Ps::ZERO, 0);
        assert!((skew.fairness() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "device out of range")]
    fn out_of_range_grant_panics() {
        let mut demux = PhotonicDemux::new(1);
        demux.grant(Ps::ZERO, 1);
    }

    #[test]
    #[should_panic(expected = "observer must differ")]
    fn snarf_aliasing_panics() {
        let mut demux = PhotonicDemux::new(2);
        demux.grant_with_snarf(Ps::ZERO, 1, 1);
    }
}
