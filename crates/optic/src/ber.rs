//! Bit-error-rate estimation for the optical channel.
//!
//! The BER of an optical link is a function of the power reaching the
//! photonic detector [Melloni et al.]: weaker light means a smaller eye
//! opening and a lower Q factor. We use the standard Gaussian-noise
//! relationship `BER = ½·erfc(Q/√2)` with `Q ∝ √P_rx` (amplified-noise
//! regime), calibrated so the paper's default configuration — 0.73 mW per
//! wavelength through the nominal Ohm-base path — lands at the reported
//! BER of 7.2×10⁻¹⁶ (Figure 20b). The *relationships* (longer paths and
//! power splits degrade BER, laser scaling restores it) are structural;
//! only the single anchor point is calibrated.
//!
//! The fault-injection subsystem (`ohm-core`) reuses this model to turn
//! analytical BER into injected transfer corruption: a fault plan's
//! Q-derate divides the live Q-factor of the platform's worst path, and
//! the resulting per-bit error rate — via [`ber_from_q`] — becomes the
//! probability that a transfer fails CRC and must retransmit. The same
//! curve that proves the design meets 10⁻¹⁵ (Section VI-E) thus also
//! drives its degraded-mode behaviour.

use crate::power::{OpticalPathLoss, OpticalPowerModel};

/// Complementary error function, accurate in the deep tail.
///
/// Uses the Abramowitz–Stegun rational approximation for small arguments
/// and the asymptotic expansion for `x ≥ 3`, which is what the 1e-15-range
/// BERs of Figure 20b require.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x >= 3.0 {
        // Asymptotic: erfc(x) = e^{-x²}/(x√π) · Σ (-1)^n (2n-1)!!/(2x²)^n
        let x2 = x * x;
        let mut series = 1.0;
        let mut term = 1.0;
        for n in 1..=6 {
            term *= -((2 * n - 1) as f64) / (2.0 * x2);
            series += term;
        }
        (-x2).exp() / (x * std::f64::consts::PI.sqrt()) * series
    } else {
        // A&S 7.1.26, |error| <= 1.5e-7 — ample at these magnitudes.
        let t = 1.0 / (1.0 + 0.3275911 * x);
        let poly = t
            * (0.254829592
                + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
        poly * (-x * x).exp()
    }
}

/// BER for a given Q factor: `½·erfc(Q/√2)`.
pub fn ber_from_q(q: f64) -> f64 {
    0.5 * erfc(q / std::f64::consts::SQRT_2)
}

/// Q factor for a received power, given a reference `(p_ref, q_ref)`
/// operating point: `Q = q_ref · √(p / p_ref)`.
pub fn q_factor(received_mw: f64, p_ref_mw: f64, q_ref: f64) -> f64 {
    if received_mw <= 0.0 || p_ref_mw <= 0.0 {
        return 0.0;
    }
    q_ref * (received_mw / p_ref_mw).sqrt()
}

/// A calibrated BER model for the optical channel.
///
/// # Example
///
/// ```
/// use ohm_optic::{BerModel, OpticalPathLoss, OpticalPowerModel};
///
/// let model = BerModel::paper_default();
/// let power = OpticalPowerModel::default();
/// let nominal = BerModel::nominal_path();
/// let ber = model.ber(power.received_mw(nominal));
/// assert!((ber / 7.2e-16 - 1.0).abs() < 0.01); // calibrated anchor
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerModel {
    p_ref_mw: f64,
    q_ref: f64,
}

impl BerModel {
    /// The paper's reliability requirement.
    pub const REQUIREMENT: f64 = 1e-15;
    /// The calibration anchor: Ohm-base BER at default laser power.
    pub const ANCHOR_BER: f64 = 7.2e-16;

    /// The nominal Ohm-base light path: MC modulator, 2 cm of waveguide,
    /// filter drop, device detector.
    pub fn nominal_path() -> OpticalPathLoss {
        OpticalPathLoss::new()
            .modulator(0.5)
            .waveguide_cm(2.0)
            .filter_drop()
            .detector()
    }

    /// Builds the model calibrated so that the nominal path at default
    /// laser power yields [`BerModel::ANCHOR_BER`].
    pub fn paper_default() -> Self {
        let p_ref = OpticalPowerModel::default().received_mw(Self::nominal_path());
        Self::calibrated(p_ref, Self::ANCHOR_BER)
    }

    /// Builds a model whose Q at `p_ref_mw` produces exactly `ber_at_ref`.
    ///
    /// # Panics
    ///
    /// Panics if the arguments are not positive or the BER is not below ½.
    pub fn calibrated(p_ref_mw: f64, ber_at_ref: f64) -> Self {
        assert!(p_ref_mw > 0.0, "reference power must be positive");
        assert!(
            ber_at_ref > 0.0 && ber_at_ref < 0.5,
            "BER must be in (0, 0.5)"
        );
        // Bisection for q_ref: ber_from_q is strictly decreasing.
        let (mut lo, mut hi) = (0.0f64, 40.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if ber_from_q(mid) > ber_at_ref {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        BerModel {
            p_ref_mw,
            q_ref: 0.5 * (lo + hi),
        }
    }

    /// BER at a given received power (mW).
    pub fn ber(&self, received_mw: f64) -> f64 {
        ber_from_q(q_factor(received_mw, self.p_ref_mw, self.q_ref))
    }

    /// Whether a received power meets the paper's 10⁻¹⁵ requirement.
    pub fn meets_requirement(&self, received_mw: f64) -> bool {
        self.ber(received_mw) < Self::REQUIREMENT
    }

    /// The calibrated reference Q factor.
    pub fn q_ref(&self) -> f64 {
        self.q_ref
    }

    /// The received power (mW) needed to hit `target_ber`, found by
    /// bisection over the monotone BER curve.
    ///
    /// # Panics
    ///
    /// Panics if `target_ber` is not in `(0, 0.5)`.
    pub fn required_power_mw(&self, target_ber: f64) -> f64 {
        assert!(
            target_ber > 0.0 && target_ber < 0.5,
            "target BER must be in (0, 0.5)"
        );
        let (mut lo, mut hi) = (0.0f64, self.p_ref_mw * 1024.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.ber(mid) > target_ber {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The smallest laser-power multiplier that brings a path with
    /// `path_loss_db` of insertion loss under the 10⁻¹⁵ requirement at the
    /// default per-wavelength laser power.
    pub fn required_laser_scale(&self, path: crate::power::OpticalPathLoss) -> f64 {
        let unit = crate::power::OpticalPowerModel::default();
        let at_one = unit.received_mw(path);
        if at_one <= 0.0 {
            return f64::INFINITY;
        }
        self.required_power_mw(Self::REQUIREMENT) / at_one
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        // Deep tail: erfc(5) = 1.5375e-12.
        assert!((erfc(5.0) / 1.537_46e-12 - 1.0).abs() < 1e-3);
        // Symmetry.
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-7);
    }

    #[test]
    fn ber_is_monotone_in_q() {
        let mut last = 1.0;
        for i in 1..100 {
            let q = i as f64 * 0.2;
            let b = ber_from_q(q);
            assert!(b < last, "BER must decrease with Q");
            last = b;
        }
    }

    #[test]
    fn calibration_hits_anchor() {
        let m = BerModel::paper_default();
        let p = OpticalPowerModel::default().received_mw(BerModel::nominal_path());
        let ber = m.ber(p);
        assert!(
            (ber / BerModel::ANCHOR_BER - 1.0).abs() < 1e-6,
            "ber={ber:e}"
        );
        assert!(m.meets_requirement(p));
    }

    #[test]
    fn q_ref_is_physically_plausible() {
        // BER ~7e-16 corresponds to Q just under 8.
        let m = BerModel::paper_default();
        assert!(m.q_ref() > 7.5 && m.q_ref() < 8.5, "q_ref={}", m.q_ref());
    }

    #[test]
    fn weaker_light_is_worse() {
        let m = BerModel::paper_default();
        let p = OpticalPowerModel::default().received_mw(BerModel::nominal_path());
        assert!(m.ber(p * 0.8) > m.ber(p));
        assert!(m.ber(p * 1.2) < m.ber(p));
    }

    #[test]
    fn zero_power_is_hopeless() {
        let m = BerModel::paper_default();
        assert_eq!(m.ber(0.0), ber_from_q(0.0));
        assert!(!m.meets_requirement(0.0));
    }

    #[test]
    fn required_power_inverts_ber() {
        let m = BerModel::paper_default();
        let p = m.required_power_mw(1e-12);
        assert!((m.ber(p) / 1e-12 - 1.0).abs() < 1e-3);
        // Tighter targets need more power.
        assert!(m.required_power_mw(1e-18) > m.required_power_mw(1e-12));
    }

    #[test]
    fn required_laser_scale_matches_platform_choices() {
        // One half-coupled pass (the dual-route demand path) needs just
        // under 2x laser - the paper rounds up to 2x.
        let m = BerModel::paper_default();
        let dual = BerModel::nominal_path().half_couple_pass(0.5);
        let scale = m.required_laser_scale(dual);
        assert!(scale > 1.5 && scale <= 2.0, "scale {scale}");
        // Two passes (Ohm-BW's half-strength transmit + snarf) need ~4x.
        let bw = dual.half_couple_pass(0.5);
        let scale4 = m.required_laser_scale(bw);
        assert!(scale4 > 3.0 && scale4 <= 4.0, "scale {scale4}");
    }

    #[test]
    fn laser_scaling_compensates_splits() {
        // A dual-route path where the snarfing tap absorbs 45% of the
        // light; 2x laser restores the downstream detector's margin.
        let m = BerModel::paper_default();
        let dual = BerModel::nominal_path().half_couple_pass(0.45);
        let single = OpticalPowerModel::default();
        let boosted = OpticalPowerModel {
            laser_scale: 2.0,
            ..single
        };
        assert!(!m.meets_requirement(single.received_mw(dual)));
        assert!(m.meets_requirement(boosted.received_mw(dual)));
    }
}
