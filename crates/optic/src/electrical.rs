//! Electrical memory channel baseline.
//!
//! The `Origin` and `Hetero` platforms use the traditional electrical
//! memory bus: six independent 32-bit channels clocked at 15 GHz
//! (Table I). Each channel serialises every transfer — demand or
//! migration — on its single set of lanes, which is exactly the contention
//! Ohm-GPU's optical design removes.

use ohm_sim::{Freq, Ps, TaggedCalendar};

use crate::channel::{BusyInterval, TrafficClass};

/// Configuration of the electrical channel array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectricalConfig {
    /// Number of independent channels (Table I: 6).
    pub channels: usize,
    /// Lane width of one channel in bits (Table I: 32).
    pub width_bits: u64,
    /// Channel clock (Table I: 15 GHz).
    pub freq: Freq,
}

impl Default for ElectricalConfig {
    fn default() -> Self {
        ElectricalConfig {
            channels: 6,
            width_bits: 32,
            freq: Freq::from_ghz(15.0),
        }
    }
}

impl ElectricalConfig {
    /// Aggregate raw bandwidth in GB/s.
    pub fn total_bandwidth_gbps(&self) -> f64 {
        self.channels as f64 * self.freq.bandwidth_gbps(self.width_bits)
    }
}

/// An array of electrical memory channels.
///
/// # Example
///
/// ```
/// use ohm_optic::{ElectricalChannel, ElectricalConfig, TrafficClass};
/// use ohm_sim::Ps;
///
/// let mut ch = ElectricalChannel::new(ElectricalConfig::default());
/// let (start, end) = ch.transfer(Ps::ZERO, 0, 32 * 8, TrafficClass::Demand);
/// assert!(end > start);
/// ```
#[derive(Debug, Clone)]
pub struct ElectricalChannel {
    cfg: ElectricalConfig,
    lanes: Vec<TaggedCalendar>,
    bits_transferred: [u64; 2],
    interval_log: Option<Vec<BusyInterval>>,
}

impl ElectricalChannel {
    /// Creates an idle channel array.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels.
    pub fn new(cfg: ElectricalConfig) -> Self {
        assert!(cfg.channels > 0, "need at least one channel");
        ElectricalChannel {
            lanes: (0..cfg.channels).map(|_| TaggedCalendar::new(2)).collect(),
            cfg,
            bits_transferred: [0; 2],
            interval_log: None,
        }
    }

    /// Enables or disables busy-interval logging. Disabling drops any
    /// intervals collected so far.
    pub fn set_interval_logging(&mut self, enabled: bool) {
        self.interval_log = if enabled { Some(Vec::new()) } else { None };
    }

    /// Takes every busy interval logged since the last drain. Empty when
    /// logging is disabled.
    pub fn drain_intervals(&mut self) -> Vec<BusyInterval> {
        self.interval_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Channel configuration.
    pub fn config(&self) -> &ElectricalConfig {
        &self.cfg
    }

    /// Transfers `bits` on channel `ch`; all traffic classes serialise.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range or `bits` is zero.
    pub fn transfer(&mut self, now: Ps, ch: usize, bits: u64, class: TrafficClass) -> (Ps, Ps) {
        assert!(bits > 0, "cannot transfer zero bits");
        let dur = self.cfg.freq.transfer_time(bits, self.cfg.width_bits);
        self.bits_transferred[class as usize] += bits;
        let (start, end) = self.lanes[ch].book(now, dur, class as usize);
        if let Some(log) = self.interval_log.as_mut() {
            log.push(BusyInterval {
                vc: ch,
                start,
                end,
                class,
                memory_route: false,
            });
        }
        (start, end)
    }

    /// When channel `ch` next becomes free.
    pub fn free_at(&self, ch: usize) -> Ps {
        self.lanes[ch].next_free()
    }

    /// Fraction of busy time spent on migration traffic.
    pub fn migration_fraction(&self) -> f64 {
        let total: u64 = self.lanes.iter().map(|l| l.busy_time().as_ps()).sum();
        if total == 0 {
            return 0.0;
        }
        let mig: u64 = self
            .lanes
            .iter()
            .map(|l| l.busy_by_tag(TrafficClass::Migration as usize).as_ps())
            .sum();
        mig as f64 / total as f64
    }

    /// Total busy time across channels.
    pub fn busy_time(&self) -> Ps {
        self.lanes.iter().map(|l| l.busy_time()).sum()
    }

    /// Mean per-lane utilisation over a window ending at `horizon`.
    ///
    /// Always a finite value in `[0, 1]`: a zero-length window reports 0
    /// and per-lane fractions are clamped, mirroring
    /// `OpticalChannel::utilization`.
    pub fn utilization(&self, horizon: Ps) -> f64 {
        if self.lanes.is_empty() {
            return 0.0;
        }
        self.lanes
            .iter()
            .map(|l| l.utilization(horizon))
            .sum::<f64>()
            / self.lanes.len() as f64
    }

    /// Bits transferred so far, by class.
    pub fn bits_by_class(&self, class: TrafficClass) -> u64 {
        self.bits_transferred[class as usize]
    }

    /// Splits the lanes into disjoint contiguous groups, one per entry in
    /// `counts`, for per-shard workers. Returns `None` while interval
    /// logging is enabled (one ordered log cannot be split). Shards tally
    /// transferred bits locally; fold them back with
    /// [`ElectricalChannel::merge_shard_bits`].
    pub fn split_lanes(&mut self, counts: &[usize]) -> Option<Vec<LaneShard<'_>>> {
        if self.interval_log.is_some() {
            return None;
        }
        assert_eq!(
            counts.iter().sum::<usize>(),
            self.lanes.len(),
            "shard counts must cover every lane"
        );
        let cfg = self.cfg;
        let mut shards = Vec::with_capacity(counts.len());
        let mut rest: &mut [TaggedCalendar] = &mut self.lanes;
        let mut base = 0;
        for &n in counts {
            let (head, tail) = rest.split_at_mut(n);
            shards.push(LaneShard {
                cfg,
                lanes: head,
                base,
                bits_transferred: [0; 2],
            });
            rest = tail;
            base += n;
        }
        Some(shards)
    }

    /// Folds bit tallies accumulated by [`LaneShard`]s back into the
    /// channel-wide counters after a parallel phase.
    pub fn merge_shard_bits(&mut self, bits: [u64; 2]) {
        self.bits_transferred[0] += bits[0];
        self.bits_transferred[1] += bits[1];
    }
}

/// A contiguous group of electrical lanes owned by one shard worker.
/// Channel indices stay *global*; behaviour matches
/// [`ElectricalChannel::transfer`] exactly.
#[derive(Debug)]
pub struct LaneShard<'a> {
    cfg: ElectricalConfig,
    lanes: &'a mut [TaggedCalendar],
    base: usize,
    bits_transferred: [u64; 2],
}

impl LaneShard<'_> {
    /// Per-lane equivalent of [`ElectricalChannel::transfer`]. `ch` must
    /// fall inside this shard's range.
    pub fn transfer(&mut self, now: Ps, ch: usize, bits: u64, class: TrafficClass) -> (Ps, Ps) {
        assert!(bits > 0, "cannot transfer zero bits");
        let dur = self.cfg.freq.transfer_time(bits, self.cfg.width_bits);
        self.bits_transferred[class as usize] += bits;
        self.lanes[ch - self.base].book(now, dur, class as usize)
    }

    /// Bits transferred through this shard since the split, by class.
    pub fn bits_delta(&self) -> [u64; 2] {
        self.bits_transferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_matches_table1() {
        let cfg = ElectricalConfig::default();
        assert!((cfg.total_bandwidth_gbps() - 360.0).abs() < 1e-9);
    }

    #[test]
    fn transfers_serialise_per_channel() {
        let mut ch = ElectricalChannel::new(ElectricalConfig::default());
        let (_, e1) = ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand);
        let (s2, _) = ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Migration);
        assert_eq!(s2, e1);
        // Other channels stay free.
        assert_eq!(ch.free_at(1), Ps::ZERO);
    }

    #[test]
    fn transfer_duration_matches_width() {
        let mut ch = ElectricalChannel::new(ElectricalConfig::default());
        // 256 bits over 32 lanes at 15 GHz = 8 cycles ≈ 533 ps.
        let (s, e) = ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand);
        assert_eq!(e - s, Ps::from_ps(533));
    }

    #[test]
    fn migration_fraction_counts_all_traffic() {
        let mut ch = ElectricalChannel::new(ElectricalConfig::default());
        ch.transfer(Ps::ZERO, 0, 3000, TrafficClass::Demand);
        ch.transfer(Ps::ZERO, 0, 1000, TrafficClass::Migration);
        let f = ch.migration_fraction();
        assert!(f > 0.2 && f < 0.3, "fraction {f}");
        assert_eq!(ch.bits_by_class(TrafficClass::Migration), 1000);
    }

    #[test]
    fn idle_channel_ratios_are_finite_zero() {
        let ch = ElectricalChannel::new(ElectricalConfig::default());
        assert_eq!(ch.migration_fraction(), 0.0);
        assert_eq!(ch.utilization(Ps::ZERO), 0.0);
        assert_eq!(ch.utilization(Ps::from_us(1)), 0.0);
    }

    #[test]
    fn utilization_clamped_to_unity() {
        let mut ch = ElectricalChannel::new(ElectricalConfig::default());
        for lane in 0..ch.config().channels {
            ch.transfer(Ps::ZERO, lane, 1 << 20, TrafficClass::Demand);
        }
        let u = ch.utilization(Ps::from_ps(1));
        assert!(u.is_finite());
        assert_eq!(u, 1.0);
    }

    #[test]
    fn interval_logging_records_lane_windows() {
        let mut ch = ElectricalChannel::new(ElectricalConfig::default());
        ch.transfer(Ps::ZERO, 0, 256, TrafficClass::Demand);
        assert!(ch.drain_intervals().is_empty());

        ch.set_interval_logging(true);
        let (s, e) = ch.transfer(Ps::ZERO, 3, 256, TrafficClass::Migration);
        let log = ch.drain_intervals();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].vc, 3);
        assert_eq!((log[0].start, log[0].end), (s, e));
        assert_eq!(log[0].class, TrafficClass::Migration);
        assert!(!log[0].memory_route);
        assert!(ch.drain_intervals().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = ElectricalChannel::new(ElectricalConfig {
            channels: 0,
            ..ElectricalConfig::default()
        });
    }
}
