//! Physical waveguide layout.
//!
//! The optical channel is a *bus*: the waveguide leaves the memory
//! controller, passes every memory device in turn, and light for a far
//! device accumulates the propagation loss of the whole run plus the
//! through-loss of every ring array it passes (Figure 6b). This module
//! models that geometry, giving per-device path losses that feed the BER
//! analysis — the paper's 0.73 mW laser budget must close for the
//! *farthest* device.

use crate::power::OpticalPathLoss;

/// Through-loss of passing one (untuned) device ring array, in dB.
pub const DEVICE_THROUGH_DB: f64 = 0.05;

/// Geometry of one waveguide run.
///
/// # Example
///
/// ```
/// use ohm_optic::waveguide::WaveguideLayout;
///
/// let layout = WaveguideLayout::new(0.5, 1.0, 4); // 0.5 cm to first, 1 cm spacing
/// assert_eq!(layout.devices(), 4);
/// assert!(layout.loss_to(3).total_db() > layout.loss_to(0).total_db());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveguideLayout {
    /// Distance from the controller to the first device, cm.
    lead_cm: f64,
    /// Spacing between adjacent devices, cm.
    spacing_cm: f64,
    /// Devices on the run.
    devices: usize,
}

impl WaveguideLayout {
    /// Creates a layout with `devices` devices spaced `spacing_cm` apart,
    /// the first `lead_cm` from the controller.
    ///
    /// # Panics
    ///
    /// Panics if there are no devices or a distance is negative.
    pub fn new(lead_cm: f64, spacing_cm: f64, devices: usize) -> Self {
        assert!(devices > 0, "a waveguide run needs at least one device");
        assert!(
            lead_cm >= 0.0 && spacing_cm >= 0.0,
            "distances cannot be negative"
        );
        WaveguideLayout {
            lead_cm,
            spacing_cm,
            devices,
        }
    }

    /// The paper's 24-device configuration on a 4 cm run.
    pub fn paper_default() -> Self {
        WaveguideLayout::new(0.5, 3.5 / 23.0, 24)
    }

    /// Number of devices on the run.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Distance from the controller to device `index`, cm.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn distance_to(&self, index: usize) -> f64 {
        assert!(index < self.devices, "device index out of range");
        self.lead_cm + self.spacing_cm * index as f64
    }

    /// Total run length, cm.
    pub fn length_cm(&self) -> f64 {
        self.distance_to(self.devices - 1)
    }

    /// The controller→device path loss for device `index`: modulator,
    /// propagation over the distance, the through-loss of every array
    /// passed on the way, the filter drop and the detector.
    pub fn loss_to(&self, index: usize) -> OpticalPathLoss {
        let mut path = OpticalPathLoss::new()
            .modulator(0.5)
            .waveguide_cm(self.distance_to(index))
            .filter_drop()
            .detector();
        for _ in 0..index {
            path = path.through_device();
        }
        path
    }

    /// The worst-case (farthest-device) path loss — the one the laser
    /// budget must close.
    pub fn worst_loss(&self) -> OpticalPathLoss {
        self.loss_to(self.devices - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::BerModel;
    use crate::power::OpticalPowerModel;

    #[test]
    fn distances_accumulate() {
        let l = WaveguideLayout::new(1.0, 0.5, 4);
        assert_eq!(l.distance_to(0), 1.0);
        assert_eq!(l.distance_to(3), 2.5);
        assert_eq!(l.length_cm(), 2.5);
    }

    #[test]
    fn farther_devices_lose_more() {
        let l = WaveguideLayout::paper_default();
        let mut last = -1.0;
        for d in 0..l.devices() {
            let db = l.loss_to(d).total_db();
            assert!(db > last, "loss must grow along the run");
            last = db;
        }
    }

    #[test]
    fn paper_run_closes_the_link_budget() {
        // The farthest of the 24 devices must still meet 1e-15 with the
        // default 0.73 mW laser — the budget the paper's Table I implies.
        let l = WaveguideLayout::paper_default();
        let model = BerModel::paper_default();
        let power = OpticalPowerModel::default();
        let worst = power.received_mw(l.worst_loss());
        // The worst device needs < 2x the nominal-path power.
        let scale = model.required_laser_scale(l.worst_loss());
        assert!(scale < 2.0, "farthest device needs {scale:.2}x laser");
        assert!(worst > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_device_panics() {
        let l = WaveguideLayout::new(1.0, 1.0, 2);
        let _ = l.distance_to(2);
    }
}
