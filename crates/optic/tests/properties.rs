//! Randomized-property tests for photonic-layer invariants, driven by the
//! workspace's own deterministic [`SplitMix64`] generator.

use ohm_optic::wom::WomGeneration;
use ohm_optic::{
    BerModel, DualRouteMode, OpticalChannel, OpticalChannelConfig, OpticalPathLoss,
    OpticalPowerModel, TrafficClass, Wom22,
};
use ohm_sim::{Ps, SplitMix64};

/// Every (first, second) WOM write pair decodes the second value and
/// never clears a light bit.
#[test]
fn wom_write_once_and_decodable() {
    for first in 0u8..4 {
        for second in 0u8..4 {
            let c1 = Wom22::encode_first(first);
            let c2 = Wom22::encode_second(c1, second);
            assert_eq!(c1 & !c2, 0, "write-once violated");
            let (generation, v) = Wom22::decode(c2);
            assert_eq!(v, second);
            if first != second {
                assert_eq!(generation, WomGeneration::Second);
            }
        }
    }
}

/// Channel transfers never overlap on the same VC data route, and
/// demand + migration busy time partitions the total.
#[test]
fn channel_data_route_never_double_books() {
    let mut rng = SplitMix64::new(0xC4A);
    for _case in 0..48 {
        let n = 1 + rng.next_below(100) as usize;
        let mut ch = OpticalChannel::new(OpticalChannelConfig::default());
        let mut now = Ps::ZERO;
        let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 6];
        for _ in 0..n {
            let vc = rng.next_below(6) as usize;
            let bits = 1 + rng.next_below(4095);
            let class = if rng.chance(0.5) {
                TrafficClass::Demand
            } else {
                TrafficClass::Migration
            };
            let dev = rng.next_below(4) as usize;
            let (s, e) = ch.transfer(now, vc, bits, class, dev);
            assert!(s >= now);
            for &(ps, pe) in &intervals[vc] {
                assert!(e.as_ps() <= ps || s.as_ps() >= pe, "overlap on vc {vc}");
            }
            intervals[vc].push((s.as_ps(), e.as_ps()));
            now += Ps::from_ps(50);
        }
        let f = ch.migration_fraction();
        assert!((0.0..=1.0).contains(&f));
    }
}

/// In WOM mode a transfer is never faster than the same transfer in
/// half-coupled mode under identical interference.
#[test]
fn wom_never_beats_half_coupled() {
    let mut rng = SplitMix64::new(0x303);
    for _case in 0..256 {
        let bits = 1 + rng.next_below(16383);
        let mk = |mode| {
            OpticalChannel::new(OpticalChannelConfig {
                dual_route: mode,
                ..OpticalChannelConfig::default()
            })
        };
        let mut wom = mk(DualRouteMode::Wom);
        let mut hc = mk(DualRouteMode::HalfCoupled);
        wom.memory_route_transfer(Ps::ZERO, 0, 1 << 20);
        hc.memory_route_transfer(Ps::ZERO, 0, 1 << 20);
        let (ws, we) = wom.transfer(Ps::ZERO, 0, bits, TrafficClass::Demand, 0);
        let (hs, he) = hc.transfer(Ps::ZERO, 0, bits, TrafficClass::Demand, 0);
        assert!(we - ws >= he - hs);
    }
}

/// BER is monotone: more received power never increases BER, and any
/// positive power yields a BER strictly below 0.5.
#[test]
fn ber_monotone_in_power() {
    let mut rng = SplitMix64::new(0xBE6);
    for _case in 0..1_000 {
        let p1 = 0.01 + rng.next_f64() * 9.99;
        let p2 = 0.01 + rng.next_f64() * 9.99;
        let m = BerModel::paper_default();
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        assert!(m.ber(hi) <= m.ber(lo));
        assert!(m.ber(lo) < 0.5);
    }
}

/// Path loss composition is additive: splitting a waveguide run into
/// two segments gives the same total loss.
#[test]
fn path_loss_additive() {
    let mut rng = SplitMix64::new(0xADD);
    for _case in 0..1_000 {
        let a = rng.next_f64() * 5.0;
        let b = rng.next_f64() * 5.0;
        let whole = OpticalPathLoss::new().waveguide_cm(a + b).total_db();
        let split = OpticalPathLoss::new()
            .waveguide_cm(a)
            .waveguide_cm(b)
            .total_db();
        assert!((whole - split).abs() < 1e-9);
    }
}

/// Laser scaling scales received power linearly for any path.
#[test]
fn laser_scale_is_linear() {
    let mut rng = SplitMix64::new(0x1A5);
    for _case in 0..1_000 {
        let scale = 1.0 + rng.next_f64() * 7.0;
        let cm = rng.next_f64() * 10.0;
        let path = OpticalPathLoss::new().waveguide_cm(cm).detector();
        let base = OpticalPowerModel::default();
        let scaled = OpticalPowerModel {
            laser_scale: scale,
            ..base
        };
        let ratio = scaled.received_mw(path) / base.received_mw(path);
        assert!((ratio - scale).abs() < 1e-9);
    }
}
