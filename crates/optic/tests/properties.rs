//! Property-based tests for photonic-layer invariants.

use ohm_optic::wom::WomGeneration;
use ohm_optic::{
    BerModel, DualRouteMode, OpticalChannel, OpticalChannelConfig, OpticalPathLoss,
    OpticalPowerModel, TrafficClass, Wom22,
};
use ohm_sim::Ps;
use proptest::prelude::*;

proptest! {
    /// Every (first, second) WOM write pair decodes the second value and
    /// never clears a light bit.
    #[test]
    fn wom_write_once_and_decodable(first in 0u8..4, second in 0u8..4) {
        let c1 = Wom22::encode_first(first);
        let c2 = Wom22::encode_second(c1, second);
        prop_assert_eq!(c1 & !c2, 0, "write-once violated");
        let (generation, v) = Wom22::decode(c2);
        prop_assert_eq!(v, second);
        if first != second {
            prop_assert_eq!(generation, WomGeneration::Second);
        }
    }

    /// Channel transfers never overlap on the same VC data route, and
    /// demand + migration busy time partitions the total.
    #[test]
    fn channel_data_route_never_double_books(
        ops in prop::collection::vec((0usize..6, 1u64..4096, any::<bool>(), 0usize..4), 1..100)
    ) {
        let mut ch = OpticalChannel::new(OpticalChannelConfig::default());
        let mut now = Ps::ZERO;
        let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 6];
        for &(vc, bits, is_demand, dev) in &ops {
            let class = if is_demand { TrafficClass::Demand } else { TrafficClass::Migration };
            let (s, e) = ch.transfer(now, vc, bits, class, dev);
            prop_assert!(s >= now);
            for &(ps, pe) in &intervals[vc] {
                prop_assert!(e.as_ps() <= ps || s.as_ps() >= pe, "overlap on vc {vc}");
            }
            intervals[vc].push((s.as_ps(), e.as_ps()));
            now += Ps::from_ps(50);
        }
        let f = ch.migration_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// In WOM mode a transfer is never faster than the same transfer in
    /// half-coupled mode under identical interference.
    #[test]
    fn wom_never_beats_half_coupled(bits in 1u64..16384) {
        let mk = |mode| OpticalChannel::new(OpticalChannelConfig {
            dual_route: mode,
            ..OpticalChannelConfig::default()
        });
        let mut wom = mk(DualRouteMode::Wom);
        let mut hc = mk(DualRouteMode::HalfCoupled);
        wom.memory_route_transfer(Ps::ZERO, 0, 1 << 20);
        hc.memory_route_transfer(Ps::ZERO, 0, 1 << 20);
        let (ws, we) = wom.transfer(Ps::ZERO, 0, bits, TrafficClass::Demand, 0);
        let (hs, he) = hc.transfer(Ps::ZERO, 0, bits, TrafficClass::Demand, 0);
        prop_assert!(we - ws >= he - hs);
    }

    /// BER is monotone: more received power never increases BER, and any
    /// positive power yields a BER strictly below 0.5.
    #[test]
    fn ber_monotone_in_power(p1 in 0.01f64..10.0, p2 in 0.01f64..10.0) {
        let m = BerModel::paper_default();
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(m.ber(hi) <= m.ber(lo));
        prop_assert!(m.ber(lo) < 0.5);
    }

    /// Path loss composition is additive: splitting a waveguide run into
    /// two segments gives the same total loss.
    #[test]
    fn path_loss_additive(a in 0.0f64..5.0, b in 0.0f64..5.0) {
        let whole = OpticalPathLoss::new().waveguide_cm(a + b).total_db();
        let split = OpticalPathLoss::new().waveguide_cm(a).waveguide_cm(b).total_db();
        prop_assert!((whole - split).abs() < 1e-9);
    }

    /// Laser scaling scales received power linearly for any path.
    #[test]
    fn laser_scale_is_linear(scale in 1.0f64..8.0, cm in 0.0f64..10.0) {
        let path = OpticalPathLoss::new().waveguide_cm(cm).detector();
        let base = OpticalPowerModel::default();
        let scaled = OpticalPowerModel { laser_scale: scale, ..base };
        let ratio = scaled.received_mw(path) / base.received_mw(path);
        prop_assert!((ratio - scale).abs() < 1e-9);
    }
}
