//! SM ↔ L2 interconnect.
//!
//! The baseline GPU connects its SMs, shared L2 banks and memory
//! controllers through an on-chip network (paper, Figure 2). We model it
//! as a crossbar: a fixed traversal latency plus per-destination-port
//! serialisation at the network's flit bandwidth.

use ohm_sim::{Calendar, Freq, Ps};

/// Interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterconnectConfig {
    /// One-way traversal latency (wire + router pipeline).
    pub hop_latency: Ps,
    /// Number of destination ports (L2 banks / memory partitions).
    pub ports: usize,
    /// Port clock.
    pub freq: Freq,
    /// Port width in bits.
    pub width_bits: u64,
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        InterconnectConfig {
            hop_latency: Ps::from_ns(5),
            ports: 6,
            freq: Freq::from_ghz(1.2),
            // Wide enough (~460 GB/s aggregate) that the on-chip network
            // is never the bottleneck ahead of the 360 GB/s memory
            // channel, matching the paper's bottleneck ordering.
            width_bits: 512,
        }
    }
}

/// A crossbar with per-port serialisation.
///
/// # Example
///
/// ```
/// use ohm_sm::{Interconnect, InterconnectConfig};
/// use ohm_sim::Ps;
///
/// let mut xbar = Interconnect::new(InterconnectConfig::default());
/// let arrival = xbar.traverse(Ps::ZERO, 0, 128);
/// assert!(arrival > Ps::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Interconnect {
    cfg: InterconnectConfig,
    ports: Vec<Calendar>,
    messages: u64,
}

impl Interconnect {
    /// Creates an idle crossbar.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero ports.
    pub fn new(cfg: InterconnectConfig) -> Self {
        assert!(cfg.ports > 0, "interconnect needs at least one port");
        Interconnect {
            ports: vec![Calendar::new(); cfg.ports],
            cfg,
            messages: 0,
        }
    }

    /// The interconnect configuration.
    pub fn config(&self) -> &InterconnectConfig {
        &self.cfg
    }

    /// Sends `bytes` to destination `port`, returning the arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn traverse(&mut self, now: Ps, port: usize, bytes: u64) -> Ps {
        let serialise = self.cfg.freq.transfer_time(bytes * 8, self.cfg.width_bits);
        let (_, sent) = self.ports[port].book(now, serialise);
        self.messages += 1;
        sent + self.cfg.hop_latency
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Folds message counts accumulated by [`PortShard`]s back into the
    /// crossbar-wide counter after a parallel phase.
    pub fn add_messages(&mut self, n: u64) {
        self.messages += n;
    }

    /// The minimum traversal time for a `bytes`-sized message on an idle
    /// port: serialisation plus the hop latency. This is the crossbar's
    /// contribution to the conservative-parallelism lookahead floor — no
    /// traversal can complete sooner.
    pub fn min_latency(&self, bytes: u64) -> Ps {
        self.cfg.freq.transfer_time(bytes * 8, self.cfg.width_bits) + self.cfg.hop_latency
    }

    /// Total serialisation busy time across ports.
    pub fn busy_time(&self) -> Ps {
        self.ports.iter().map(|p| p.busy_time()).sum()
    }

    /// Splits the ports into disjoint contiguous groups, one per entry in
    /// `counts`, for use by per-shard workers. `counts` must sum to the
    /// port count. Each shard books its ports through global port indices
    /// and tallies messages locally; the caller folds the tallies back
    /// with [`Interconnect::add_messages`] once the shards are dropped.
    pub fn split_ports(&mut self, counts: &[usize]) -> Vec<PortShard<'_>> {
        assert_eq!(
            counts.iter().sum::<usize>(),
            self.ports.len(),
            "shard counts must cover every port"
        );
        let cfg = self.cfg;
        let mut shards = Vec::with_capacity(counts.len());
        let mut rest: &mut [Calendar] = &mut self.ports;
        let mut base = 0;
        for &n in counts {
            let (head, tail) = rest.split_at_mut(n);
            shards.push(PortShard {
                cfg,
                ports: head,
                base,
                messages: 0,
            });
            rest = tail;
            base += n;
        }
        shards
    }
}

/// A contiguous group of crossbar ports owned by one shard worker.
///
/// Behaves exactly like [`Interconnect::traverse`] restricted to the
/// owned ports; message counts accumulate locally and are merged back by
/// the coordinator (the count feeds the end-of-run resource summary).
#[derive(Debug)]
pub struct PortShard<'a> {
    cfg: InterconnectConfig,
    ports: &'a mut [Calendar],
    base: usize,
    /// Messages sent through this shard since the split.
    pub messages: u64,
}

impl PortShard<'_> {
    /// Sends `bytes` to destination `port` (a *global* port index, which
    /// must fall inside this shard's range), returning the arrival time.
    pub fn traverse(&mut self, now: Ps, port: usize, bytes: u64) -> Ps {
        let serialise = self.cfg.freq.transfer_time(bytes * 8, self.cfg.width_bits);
        let (_, sent) = self.ports[port - self.base].book(now, serialise);
        self.messages += 1;
        sent + self.cfg.hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_includes_hop_latency() {
        let cfg = InterconnectConfig::default();
        let mut x = Interconnect::new(cfg);
        let arrival = x.traverse(Ps::ZERO, 0, 32);
        // 256 bits over 512-bit port = 1 cycle at 1.2 GHz ≈ 833 ps + 5 ns.
        assert_eq!(arrival, Ps::from_ps(833) + Ps::from_ns(5));
    }

    #[test]
    fn same_port_serialises() {
        let mut x = Interconnect::new(InterconnectConfig::default());
        let a = x.traverse(Ps::ZERO, 0, 1024);
        let b = x.traverse(Ps::ZERO, 0, 1024);
        assert!(b > a);
        assert_eq!(x.messages(), 2);
    }

    #[test]
    fn different_ports_parallel() {
        let mut x = Interconnect::new(InterconnectConfig::default());
        let a = x.traverse(Ps::ZERO, 0, 1024);
        let b = x.traverse(Ps::ZERO, 1, 1024);
        assert_eq!(a, b);
    }

    #[test]
    fn shards_book_the_same_ports_as_the_whole() {
        let mut whole = Interconnect::new(InterconnectConfig::default());
        let mut split = Interconnect::new(InterconnectConfig::default());
        let a1 = whole.traverse(Ps::ZERO, 1, 1024);
        let a4 = whole.traverse(Ps::ZERO, 4, 256);
        let msgs = {
            let mut shards = split.split_ports(&[3, 3]);
            let (lo, hi) = {
                let (l, h) = shards.split_at_mut(1);
                (&mut l[0], &mut h[0])
            };
            assert_eq!(lo.traverse(Ps::ZERO, 1, 1024), a1);
            assert_eq!(hi.traverse(Ps::ZERO, 4, 256), a4);
            lo.messages + hi.messages
        };
        assert_eq!(msgs, 2);
        split.add_messages(msgs);
        assert_eq!(split.messages(), whole.messages());
        assert_eq!(split.busy_time(), whole.busy_time());
    }

    #[test]
    fn min_latency_matches_idle_traverse() {
        let mut x = Interconnect::new(InterconnectConfig::default());
        assert_eq!(x.min_latency(32), x.traverse(Ps::ZERO, 2, 32));
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = Interconnect::new(InterconnectConfig {
            ports: 0,
            ..Default::default()
        });
    }
}
