//! SM ↔ L2 interconnect.
//!
//! The baseline GPU connects its SMs, shared L2 banks and memory
//! controllers through an on-chip network (paper, Figure 2). We model it
//! as a crossbar: a fixed traversal latency plus per-destination-port
//! serialisation at the network's flit bandwidth.

use ohm_sim::{Calendar, Freq, Ps};

/// Interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterconnectConfig {
    /// One-way traversal latency (wire + router pipeline).
    pub hop_latency: Ps,
    /// Number of destination ports (L2 banks / memory partitions).
    pub ports: usize,
    /// Port clock.
    pub freq: Freq,
    /// Port width in bits.
    pub width_bits: u64,
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        InterconnectConfig {
            hop_latency: Ps::from_ns(5),
            ports: 6,
            freq: Freq::from_ghz(1.2),
            // Wide enough (~460 GB/s aggregate) that the on-chip network
            // is never the bottleneck ahead of the 360 GB/s memory
            // channel, matching the paper's bottleneck ordering.
            width_bits: 512,
        }
    }
}

/// A crossbar with per-port serialisation.
///
/// # Example
///
/// ```
/// use ohm_sm::{Interconnect, InterconnectConfig};
/// use ohm_sim::Ps;
///
/// let mut xbar = Interconnect::new(InterconnectConfig::default());
/// let arrival = xbar.traverse(Ps::ZERO, 0, 128);
/// assert!(arrival > Ps::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Interconnect {
    cfg: InterconnectConfig,
    ports: Vec<Calendar>,
    messages: u64,
}

impl Interconnect {
    /// Creates an idle crossbar.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero ports.
    pub fn new(cfg: InterconnectConfig) -> Self {
        assert!(cfg.ports > 0, "interconnect needs at least one port");
        Interconnect {
            ports: vec![Calendar::new(); cfg.ports],
            cfg,
            messages: 0,
        }
    }

    /// The interconnect configuration.
    pub fn config(&self) -> &InterconnectConfig {
        &self.cfg
    }

    /// Sends `bytes` to destination `port`, returning the arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn traverse(&mut self, now: Ps, port: usize, bytes: u64) -> Ps {
        let serialise = self.cfg.freq.transfer_time(bytes * 8, self.cfg.width_bits);
        let (_, sent) = self.ports[port].book(now, serialise);
        self.messages += 1;
        sent + self.cfg.hop_latency
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total serialisation busy time across ports.
    pub fn busy_time(&self) -> Ps {
        self.ports.iter().map(|p| p.busy_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_includes_hop_latency() {
        let cfg = InterconnectConfig::default();
        let mut x = Interconnect::new(cfg);
        let arrival = x.traverse(Ps::ZERO, 0, 32);
        // 256 bits over 512-bit port = 1 cycle at 1.2 GHz ≈ 833 ps + 5 ns.
        assert_eq!(arrival, Ps::from_ps(833) + Ps::from_ns(5));
    }

    #[test]
    fn same_port_serialises() {
        let mut x = Interconnect::new(InterconnectConfig::default());
        let a = x.traverse(Ps::ZERO, 0, 1024);
        let b = x.traverse(Ps::ZERO, 0, 1024);
        assert!(b > a);
        assert_eq!(x.messages(), 2);
    }

    #[test]
    fn different_ports_parallel() {
        let mut x = Interconnect::new(InterconnectConfig::default());
        let a = x.traverse(Ps::ZERO, 0, 1024);
        let b = x.traverse(Ps::ZERO, 1, 1024);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = Interconnect::new(InterconnectConfig {
            ports: 0,
            ..Default::default()
        });
    }
}
