//! Warp instruction-stream vocabulary.
//!
//! A warp's execution, as the memory system sees it, is a sequence of
//! [`WarpSlice`]s: a burst of arithmetic instructions followed by at most
//! one memory access. Workload generators implement
//! [`InstructionStream`] to produce these slices with the APKI, read ratio
//! and locality of the Table II applications.

use ohm_sim::Addr;

/// Whether an access loads or stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load; the warp blocks until data returns.
    Load,
    /// A store; the warp continues once the store is accepted.
    Store,
}

impl AccessKind {
    /// True for [`AccessKind::Load`].
    pub fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

/// One scheduling quantum of a warp: `compute_insts` back-to-back
/// instructions, then optionally one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpSlice {
    /// Arithmetic instructions issued before the access (may be zero).
    pub compute_insts: u64,
    /// The memory access closing the slice, if any.
    pub access: Option<(Addr, AccessKind)>,
}

impl WarpSlice {
    /// A compute-only slice.
    pub fn compute(insts: u64) -> Self {
        WarpSlice {
            compute_insts: insts,
            access: None,
        }
    }

    /// A slice ending in a memory access.
    pub fn memory(insts: u64, addr: Addr, kind: AccessKind) -> Self {
        WarpSlice {
            compute_insts: insts,
            access: Some((addr, kind)),
        }
    }

    /// Total instructions in the slice (the access counts as one).
    pub fn instructions(&self) -> u64 {
        self.compute_insts + u64::from(self.access.is_some())
    }
}

/// A source of warp slices — one per (SM, warp) lane.
///
/// Implementations must be deterministic given their construction seed.
pub trait InstructionStream {
    /// Produces the next slice for warp `warp` of SM `sm`, or `None` when
    /// the kernel has run out of work for that lane.
    fn next_slice(&mut self, sm: usize, warp: usize) -> Option<WarpSlice>;

    /// Names of the stream's execution phases, in phase-index order.
    ///
    /// Phase-structured streams (e.g. an LLM prefill→decode plan) report
    /// their phase vocabulary here so the simulator can attribute work
    /// per phase. Unphased streams return an empty vector (the default),
    /// which disables per-phase accounting entirely.
    fn phase_names(&self) -> Vec<String> {
        Vec::new()
    }

    /// Index into [`InstructionStream::phase_names`] of the phase that
    /// produced the most recent slice on lane (`sm`, `warp`).
    ///
    /// Queried by the simulator immediately after
    /// [`InstructionStream::next_slice`] returns `Some`; the default
    /// (`0`) is correct for unphased streams.
    fn last_phase(&self, sm: usize, warp: usize) -> usize {
        let _ = (sm, warp);
        0
    }
}

impl<F> InstructionStream for F
where
    F: FnMut(usize, usize) -> Option<WarpSlice>,
{
    fn next_slice(&mut self, sm: usize, warp: usize) -> Option<WarpSlice> {
        self(sm, warp)
    }
}

// Lets adapters (e.g. a trace recorder) wrap an already-boxed stream.
impl InstructionStream for Box<dyn InstructionStream> {
    fn next_slice(&mut self, sm: usize, warp: usize) -> Option<WarpSlice> {
        (**self).next_slice(sm, warp)
    }

    fn phase_names(&self) -> Vec<String> {
        (**self).phase_names()
    }

    fn last_phase(&self, sm: usize, warp: usize) -> usize {
        (**self).last_phase(sm, warp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_instruction_count() {
        assert_eq!(WarpSlice::compute(10).instructions(), 10);
        assert_eq!(
            WarpSlice::memory(10, Addr::ZERO, AccessKind::Load).instructions(),
            11
        );
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Load.is_load());
        assert!(!AccessKind::Store.is_load());
    }

    #[test]
    fn closures_are_streams() {
        let mut n = 0;
        let mut stream = move |_sm: usize, _warp: usize| {
            n += 1;
            if n <= 2 {
                Some(WarpSlice::compute(n))
            } else {
                None
            }
        };
        assert_eq!(stream.next_slice(0, 0), Some(WarpSlice::compute(1)));
        assert_eq!(stream.next_slice(0, 0), Some(WarpSlice::compute(2)));
        assert_eq!(stream.next_slice(0, 0), None);
    }
}
