//! Set-associative write-back caches.
//!
//! Models the GPU's private L1D (Table I: 48 KB, 6-way) and shared L2
//! (6 MB, 8-way). Timing is not kept here — the cache answers *what*
//! happened (hit, miss, dirty eviction) and the system model charges the
//! appropriate latencies.

use ohm_sim::Addr;

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The paper's L1D: 48 KB, 6-way, 128 B lines.
    pub fn l1d_table1() -> Self {
        CacheConfig {
            size_bytes: 48 * 1024,
            ways: 6,
            line_bytes: 128,
        }
    }

    /// The paper's shared L2: 6 MB, 8-way, 128 B lines.
    pub fn l2_table1() -> Self {
        CacheConfig {
            size_bytes: 6 * 1024 * 1024,
            ways: 8,
            line_bytes: 128,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize / self.ways
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty line evicted to make room (write-back required).
    pub writeback: Option<Addr>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement.
///
/// # Example
///
/// ```
/// use ohm_sm::{Cache, CacheConfig};
/// use ohm_sim::Addr;
///
/// let mut c = Cache::new(CacheConfig::l1d_table1());
/// let first = c.access(Addr::new(0x1000), false);
/// assert!(!first.hit);
/// let second = c.access(Addr::new(0x1000), false);
/// assert!(second.hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// All lines in one flat allocation, `num_sets` rows of `cfg.ways`
    /// each — one cache-friendly slab instead of a Vec per set.
    lines: Vec<Line>,
    num_sets: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two
    /// line size, or capacity not divisible into sets).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.ways > 0, "cache must have at least one way");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = cfg.sets();
        assert!(sets > 0, "cache capacity too small for its geometry");
        assert_eq!(
            sets as u64 * cfg.ways as u64 * cfg.line_bytes,
            cfg.size_bytes,
            "capacity must equal sets * ways * line size"
        );
        Cache {
            lines: vec![Line::default(); sets * cfg.ways],
            num_sets: sets,
            cfg,
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The ways of one set as a slice of the flat line slab.
    fn set(&self, set_idx: usize) -> &[Line] {
        &self.lines[set_idx * self.cfg.ways..(set_idx + 1) * self.cfg.ways]
    }

    fn set_mut(&mut self, set_idx: usize) -> &mut [Line] {
        let ways = self.cfg.ways;
        &mut self.lines[set_idx * ways..(set_idx + 1) * ways]
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn index(&self, addr: Addr) -> (usize, u64) {
        let line = addr.block_index(self.cfg.line_bytes);
        let set = (line % self.num_sets as u64) as usize;
        let tag = line / self.num_sets as u64;
        (set, tag)
    }

    fn line_addr(&self, set: usize, tag: u64) -> Addr {
        Addr::from_block(tag * self.num_sets as u64 + set as u64, self.cfg.line_bytes)
    }

    /// Accesses the line containing `addr`; on a miss the line is
    /// allocated (write-allocate) and the LRU victim evicted.
    pub fn access(&mut self, addr: Addr, is_write: bool) -> Lookup {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.index(addr);
        let ways = self.cfg.ways;
        // Borrow the set directly from the slab so the counter fields
        // stay independently writable.
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= is_write;
            self.hits += 1;
            return Lookup {
                hit: true,
                writeback: None,
            };
        }

        self.misses += 1;
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("non-empty set");
        let victim = set[victim_idx];
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: tick,
        };
        let writeback = (victim.valid && victim.dirty).then(|| {
            self.writebacks += 1;
            self.line_addr(set_idx, victim.tag)
        });
        Lookup {
            hit: false,
            writeback,
        }
    }

    /// Whether the line containing `addr` is present (no LRU update).
    pub fn contains(&self, addr: Addr) -> bool {
        let (set, tag) = self.index(addr);
        self.set(set).iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr`, returning its address if it
    /// was present and dirty (write-back required).
    pub fn invalidate(&mut self, addr: Addr) -> Option<Addr> {
        let (set_idx, tag) = self.index(addr);
        let line_addr = self.line_addr(set_idx, tag);
        let set = self.set_mut(set_idx);
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            let was_dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return was_dirty.then_some(line_addr);
        }
        None
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions performed.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit rate over all accesses so far (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry_of_table1_caches() {
        assert_eq!(CacheConfig::l1d_table1().sets(), 64);
        assert_eq!(CacheConfig::l2_table1().sets(), 6144);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(Addr::new(0), false).hit);
        assert!(c.access(Addr::new(0), false).hit);
        assert!(c.access(Addr::new(63), false).hit); // same line
        assert!(!c.access(Addr::new(64), false).hit); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 is addressed by lines 0, 4, 8, ... (4 sets).
        let line = |i: u64| Addr::new(i * 4 * 64);
        c.access(line(0), false);
        c.access(line(1), false);
        c.access(line(0), false); // refresh line 0
        c.access(line(2), false); // evicts line 1
        assert!(c.contains(line(0)));
        assert!(!c.contains(line(1)));
        assert!(c.contains(line(2)));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = tiny();
        let line = |i: u64| Addr::new(i * 4 * 64);
        c.access(line(0), true); // dirty
        c.access(line(1), false);
        let l = c.access(line(2), false); // evicts dirty line 0
        assert_eq!(l.writeback, Some(line(0)));
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        let line = |i: u64| Addr::new(i * 4 * 64);
        c.access(line(0), false);
        c.access(line(1), false);
        let l = c.access(line(2), false);
        assert_eq!(l.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        let line = |i: u64| Addr::new(i * 4 * 64);
        c.access(line(0), false); // clean fill
        c.access(line(0), true); // write hit dirties it
        c.access(line(1), false);
        // Line 0 (last touched before line 1) is the LRU victim and must
        // be written back because the write hit marked it dirty.
        let l = c.access(line(2), false);
        assert_eq!(l.writeback, Some(line(0)));
    }

    #[test]
    fn invalidate_returns_dirty_address() {
        let mut c = tiny();
        c.access(Addr::new(0), true);
        assert_eq!(c.invalidate(Addr::new(0)), Some(Addr::new(0)));
        assert!(!c.contains(Addr::new(0)));
        assert_eq!(c.invalidate(Addr::new(0)), None);
    }

    #[test]
    fn hit_rate() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(Addr::new(0), false);
        c.access(Addr::new(0), false);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must equal")]
    fn inconsistent_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 500,
            ways: 2,
            line_bytes: 64,
        });
    }
}
