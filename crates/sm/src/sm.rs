//! Streaming multiprocessors and warps.
//!
//! Each SM (Table I: 16 SMs at 1.2 GHz) runs a set of warps in lockstep
//! groups of 32 threads. We model warp execution event-wise: a warp books
//! its compute segment on the SM's issue pipeline (one warp issues per
//! cycle, so concurrent warps naturally interleave and hide each other's
//! memory latency), then blocks on its memory access until the memory
//! system responds. IPC falls out as retired instructions over elapsed
//! time — the paper's Figure 16 metric.

use ohm_sim::{Calendar, Freq, Ps};

/// Identifies a warp as (SM index, warp slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WarpId {
    /// SM index.
    pub sm: usize,
    /// Warp slot within the SM.
    pub warp: usize,
}

/// Per-SM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmConfig {
    /// Core clock (Table I: 1.2 GHz).
    pub freq: Freq,
    /// Resident warps per SM.
    pub warps: usize,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig {
            freq: Freq::from_ghz(1.2),
            warps: 24,
        }
    }
}

/// Execution state of one warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Ready to fetch its next slice.
    Ready,
    /// Waiting for a memory response.
    Blocked,
    /// Out of work.
    Finished,
}

/// A warp's bookkeeping.
#[derive(Debug, Clone)]
pub struct Warp {
    state: WarpState,
    retired: u64,
}

impl Default for Warp {
    fn default() -> Self {
        Warp {
            state: WarpState::Ready,
            retired: 0,
        }
    }
}

impl Warp {
    /// Current state.
    pub fn state(&self) -> WarpState {
        self.state
    }

    /// Instructions retired by this warp.
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

/// One streaming multiprocessor.
///
/// # Example
///
/// ```
/// use ohm_sm::{Sm, SmConfig};
/// use ohm_sim::Ps;
///
/// let mut sm = Sm::new(SmConfig::default());
/// // Warp 0 issues a 100-instruction compute segment.
/// let done = sm.issue_compute(Ps::ZERO, 0, 100);
/// assert!(done > Ps::ZERO);
/// assert_eq!(sm.retired(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Sm {
    cfg: SmConfig,
    issue: Calendar,
    warps: Vec<Warp>,
}

impl Sm {
    /// Creates an idle SM with all warps ready.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero warps.
    pub fn new(cfg: SmConfig) -> Self {
        assert!(cfg.warps > 0, "an SM needs at least one warp");
        Sm {
            issue: Calendar::new(),
            warps: vec![Warp::default(); cfg.warps],
            cfg,
        }
    }

    /// The SM configuration.
    pub fn config(&self) -> &SmConfig {
        &self.cfg
    }

    /// Books `insts` instructions of warp `warp` on the issue pipeline,
    /// returning their completion time. The warp retires them immediately
    /// for accounting purposes.
    ///
    /// # Panics
    ///
    /// Panics if `warp` is out of range.
    pub fn issue_compute(&mut self, now: Ps, warp: usize, insts: u64) -> Ps {
        let w = &mut self.warps[warp];
        w.retired += insts;
        if insts == 0 {
            return now;
        }
        let dur = self.cfg.freq.cycles(insts);
        let (_, end) = self.issue.book(now, dur);
        end
    }

    /// Marks warp `warp` blocked on a memory access (it also retires the
    /// access instruction).
    pub fn block_on_memory(&mut self, warp: usize) {
        self.warps[warp].retired += 1;
        self.warps[warp].state = WarpState::Blocked;
    }

    /// Marks warp `warp` ready again (memory response arrived).
    pub fn unblock(&mut self, warp: usize) {
        debug_assert_eq!(self.warps[warp].state, WarpState::Blocked);
        self.warps[warp].state = WarpState::Ready;
    }

    /// Marks warp `warp` finished (its stream ran dry).
    pub fn finish(&mut self, warp: usize) {
        self.warps[warp].state = WarpState::Finished;
    }

    /// State of warp `warp`.
    pub fn warp_state(&self, warp: usize) -> WarpState {
        self.warps[warp].state
    }

    /// Whether every warp has finished.
    pub fn all_finished(&self) -> bool {
        self.warps.iter().all(|w| w.state == WarpState::Finished)
    }

    /// Total instructions retired by this SM.
    pub fn retired(&self) -> u64 {
        self.warps.iter().map(|w| w.retired).sum()
    }

    /// Issue-pipeline busy time (for utilisation reporting).
    pub fn busy_time(&self) -> Ps {
        self.issue.busy_time()
    }

    /// IPC over a window ending at `horizon` (instructions per SM cycle).
    pub fn ipc(&self, horizon: Ps) -> f64 {
        let cycles = self.cfg.freq.cycles_in(horizon);
        if cycles == 0 {
            0.0
        } else {
            self.retired() as f64 / cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_books_cycles() {
        let mut sm = Sm::new(SmConfig::default());
        let done = sm.issue_compute(Ps::ZERO, 0, 120);
        // 120 cycles at 1.2 GHz = 100 ns.
        assert_eq!(done, Ps::from_ns(100));
    }

    #[test]
    fn warps_share_the_issue_pipeline() {
        let mut sm = Sm::new(SmConfig::default());
        let a = sm.issue_compute(Ps::ZERO, 0, 120);
        let b = sm.issue_compute(Ps::ZERO, 1, 120);
        assert_eq!(b, a + Ps::from_ns(100));
    }

    #[test]
    fn zero_instruction_segment_is_free() {
        let mut sm = Sm::new(SmConfig::default());
        assert_eq!(sm.issue_compute(Ps::from_ns(3), 0, 0), Ps::from_ns(3));
    }

    #[test]
    fn block_unblock_cycle() {
        let mut sm = Sm::new(SmConfig::default());
        assert_eq!(sm.warp_state(0), WarpState::Ready);
        sm.block_on_memory(0);
        assert_eq!(sm.warp_state(0), WarpState::Blocked);
        sm.unblock(0);
        assert_eq!(sm.warp_state(0), WarpState::Ready);
        assert_eq!(sm.retired(), 1); // the memory instruction
    }

    #[test]
    fn finish_tracking() {
        let mut sm = Sm::new(SmConfig {
            warps: 2,
            ..SmConfig::default()
        });
        sm.finish(0);
        assert!(!sm.all_finished());
        sm.finish(1);
        assert!(sm.all_finished());
    }

    #[test]
    fn ipc_accounting() {
        let mut sm = Sm::new(SmConfig::default());
        sm.issue_compute(Ps::ZERO, 0, 600);
        // 600 instructions in 1000 ns = 1200 cycles -> IPC 0.5.
        let ipc = sm.ipc(Ps::from_us(1));
        assert!((ipc - 0.5).abs() < 1e-3, "ipc={ipc}");
        assert_eq!(sm.ipc(Ps::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn zero_warps_rejected() {
        let _ = Sm::new(SmConfig {
            warps: 0,
            ..SmConfig::default()
        });
    }
}
