//! GPU streaming-multiprocessor model for the Ohm-GPU reproduction.
//!
//! This crate is the "MacSim-lite" substitute for the paper's GPU
//! simulator substrate (see DESIGN.md for the substitution argument). It
//! models the parts of the GPU that shape memory traffic:
//!
//! * [`sm`] — streaming multiprocessors executing warps in an event-driven
//!   fashion: a warp alternates compute segments (booked on the SM's issue
//!   pipeline) and blocking memory operations, so memory latency is hidden
//!   exactly to the extent that other warps have issueable work — the same
//!   mechanism a cycle-level GPU model captures.
//! * [`cache`] — set-associative write-back caches for the private L1D
//!   (48 KB, 6-way) and shared L2 (6 MB, 8-way) of Table I.
//! * [`mshr`] — miss-status holding registers that merge concurrent misses
//!   to the same line.
//! * [`interconnect`] — the SM↔L2 crossbar with per-bank ports.
//! * [`types`] — the warp instruction-stream vocabulary shared with the
//!   workload generators.

#![warn(missing_docs)]

pub mod cache;
pub mod interconnect;
pub mod mshr;
pub mod sm;
pub mod types;

pub use cache::{Cache, CacheConfig, Lookup};
pub use interconnect::{Interconnect, InterconnectConfig, PortShard};
pub use mshr::{Mshr, MshrOutcome};
pub use sm::{Sm, SmConfig, Warp, WarpId, WarpState};
pub use types::{AccessKind, InstructionStream, WarpSlice};
