//! Miss-status holding registers.
//!
//! MSHRs merge concurrent misses to the same cache line into a single
//! memory request: the first miss is *primary* (it goes to memory), later
//! ones are *secondary* (they piggy-back on the primary's response). A
//! full MSHR file stalls further misses — a first-order throughput limit
//! for memory-intensive GPU kernels.

use std::collections::HashMap;

use ohm_sim::Addr;

/// Outcome of registering a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss to the line: issue it to memory.
    Primary,
    /// Merged with an outstanding miss: wait for its response.
    Secondary,
    /// No free entries: the requester must retry later.
    Full,
}

/// An MSHR file tracking outstanding misses by line address, with a list
/// of waiter tokens per line.
///
/// # Example
///
/// ```
/// use ohm_sm::{Mshr, MshrOutcome};
/// use ohm_sim::Addr;
///
/// let mut m: Mshr<u32> = Mshr::new(4, 64);
/// assert_eq!(m.register(Addr::new(0x100), 1), MshrOutcome::Primary);
/// assert_eq!(m.register(Addr::new(0x100), 2), MshrOutcome::Secondary);
/// assert_eq!(m.complete(Addr::new(0x100)), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<T> {
    entries: HashMap<u64, Vec<T>>,
    capacity: usize,
    line_bytes: u64,
    merges: u64,
    stalls: u64,
    peak: usize,
}

impl<T> Mshr<T> {
    /// Creates an MSHR file with `capacity` line entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `line_bytes` is not a power of two.
    pub fn new(capacity: usize, line_bytes: u64) -> Self {
        assert!(capacity > 0, "MSHR file cannot be empty");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Mshr {
            entries: HashMap::with_capacity(capacity),
            capacity,
            line_bytes,
            merges: 0,
            stalls: 0,
            peak: 0,
        }
    }

    fn line_of(&self, addr: Addr) -> u64 {
        addr.block_index(self.line_bytes)
    }

    /// Registers a miss by `waiter` for the line containing `addr`.
    pub fn register(&mut self, addr: Addr, waiter: T) -> MshrOutcome {
        let line = self.line_of(addr);
        if let Some(waiters) = self.entries.get_mut(&line) {
            waiters.push(waiter);
            self.merges += 1;
            return MshrOutcome::Secondary;
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            return MshrOutcome::Full;
        }
        self.entries.insert(line, vec![waiter]);
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Primary
    }

    /// Completes the outstanding miss for the line containing `addr`,
    /// returning all waiters (empty if the line was not outstanding).
    pub fn complete(&mut self, addr: Addr) -> Vec<T> {
        let line = self.line_of(addr);
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Whether the line containing `addr` has an outstanding miss.
    pub fn is_outstanding(&self, addr: Addr) -> bool {
        self.entries.contains_key(&self.line_of(addr))
    }

    /// Currently occupied entries.
    pub fn occupied(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file has no free entries.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Secondary merges recorded.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Registration attempts rejected because the file was full.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Peak simultaneous occupancy.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_secondary_complete_cycle() {
        let mut m: Mshr<&str> = Mshr::new(2, 64);
        assert_eq!(m.register(Addr::new(0), "a"), MshrOutcome::Primary);
        assert_eq!(m.register(Addr::new(32), "b"), MshrOutcome::Secondary); // same line
        assert!(m.is_outstanding(Addr::new(63)));
        assert_eq!(m.complete(Addr::new(0)), vec!["a", "b"]);
        assert!(!m.is_outstanding(Addr::new(0)));
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn full_file_stalls() {
        let mut m: Mshr<u8> = Mshr::new(2, 64);
        m.register(Addr::new(0), 0);
        m.register(Addr::new(64), 1);
        assert!(m.is_full());
        assert_eq!(m.register(Addr::new(128), 2), MshrOutcome::Full);
        assert_eq!(m.stalls(), 1);
        // Merging into an existing entry is still allowed while full.
        assert_eq!(m.register(Addr::new(0), 3), MshrOutcome::Secondary);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m: Mshr<u8> = Mshr::new(2, 64);
        assert!(m.complete(Addr::new(0)).is_empty());
    }

    #[test]
    fn peak_occupancy_tracks_high_water() {
        let mut m: Mshr<u8> = Mshr::new(4, 64);
        m.register(Addr::new(0), 0);
        m.register(Addr::new(64), 1);
        m.complete(Addr::new(0));
        m.complete(Addr::new(64));
        assert_eq!(m.occupied(), 0);
        assert_eq!(m.peak_occupancy(), 2);
    }
}
