//! Property-based tests for the GPU front-end components.

use ohm_sim::{Addr, Ps, SplitMix64};
use ohm_sm::{Cache, CacheConfig, Mshr, MshrOutcome, Sm, SmConfig};
use proptest::prelude::*;

proptest! {
    /// An access to a line always hits if the line was accessed within the
    /// last `ways` distinct-line accesses to its set (LRU guarantee).
    #[test]
    fn cache_lru_recency_guarantee(seed in any::<u64>()) {
        let cfg = CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 64 };
        let mut cache = Cache::new(cfg);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..500 {
            let line = rng.next_below(256);
            let a = Addr::new(line * 64);
            cache.access(a, rng.chance(0.3));
            // Immediate re-access must hit: the line is MRU.
            prop_assert!(cache.access(a, false).hit, "MRU line evicted");
        }
    }

    /// The cache never reports more lines resident than its capacity.
    #[test]
    fn cache_capacity_respected(lines in prop::collection::vec(0u64..512, 1..300)) {
        let cfg = CacheConfig { size_bytes: 2048, ways: 2, line_bytes: 64 };
        let mut cache = Cache::new(cfg);
        for &l in &lines {
            cache.access(Addr::new(l * 64), false);
        }
        let resident = (0..512).filter(|&l| cache.contains(Addr::new(l * 64))).count();
        prop_assert!(resident as u64 <= cfg.size_bytes / cfg.line_bytes);
    }

    /// Hits + misses always equals total accesses, and writebacks never
    /// exceed misses (only evictions produce them).
    #[test]
    fn cache_accounting_identities(ops in prop::collection::vec((0u64..128, any::<bool>()), 1..200)) {
        let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64 };
        let mut cache = Cache::new(cfg);
        for &(l, w) in &ops {
            cache.access(Addr::new(l * 64), w);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), ops.len() as u64);
        prop_assert!(cache.writebacks() <= cache.misses());
    }

    /// MSHR: every registered primary is completed exactly once with all
    /// its secondaries; occupancy returns to zero.
    #[test]
    fn mshr_complete_returns_all_waiters(lines in prop::collection::vec(0u64..16, 1..100)) {
        let mut m: Mshr<usize> = Mshr::new(64, 64);
        let mut expected: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &l) in lines.iter().enumerate() {
            let addr = Addr::new(l * 64);
            match m.register(addr, i) {
                MshrOutcome::Primary | MshrOutcome::Secondary => {
                    expected.entry(l).or_default().push(i);
                }
                MshrOutcome::Full => unreachable!("capacity 64 > 16 distinct lines"),
            }
        }
        for (l, want) in expected {
            let got = m.complete(Addr::new(l * 64));
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(m.occupied(), 0);
    }

    /// SM issue pipeline: total busy time equals instructions issued times
    /// the cycle time, and bookings never overlap.
    #[test]
    fn sm_issue_accounting(segments in prop::collection::vec((0usize..8, 1u64..200), 1..100)) {
        let cfg = SmConfig::default();
        let mut sm = Sm::new(cfg);
        let mut total = 0u64;
        let mut now = Ps::ZERO;
        for &(warp, insts) in &segments {
            let end = sm.issue_compute(now, warp, insts);
            prop_assert!(end >= now);
            total += insts;
            now += Ps::from_ps(100);
        }
        prop_assert_eq!(sm.retired(), total);
        // Busy time within rounding of the per-instruction cycle time.
        let expect = cfg.freq.cycles(total);
        let busy = sm.busy_time();
        let diff = busy.as_ps().abs_diff(expect.as_ps());
        prop_assert!(diff <= segments.len() as u64, "busy {busy} vs {expect}");
    }
}
