//! Randomized-property tests for the GPU front-end components, driven by
//! the workspace's own deterministic [`SplitMix64`] generator.

use ohm_sim::{Addr, Ps, SplitMix64};
use ohm_sm::{Cache, CacheConfig, Mshr, MshrOutcome, Sm, SmConfig};

/// An access to a line always hits if the line was accessed within the
/// last `ways` distinct-line accesses to its set (LRU guarantee).
#[test]
fn cache_lru_recency_guarantee() {
    let mut meta = SplitMix64::new(0x18D);
    for _case in 0..16 {
        let cfg = CacheConfig {
            size_bytes: 4096,
            ways: 4,
            line_bytes: 64,
        };
        let mut cache = Cache::new(cfg);
        let mut rng = SplitMix64::new(meta.next_u64());
        for _ in 0..500 {
            let line = rng.next_below(256);
            let a = Addr::new(line * 64);
            cache.access(a, rng.chance(0.3));
            // Immediate re-access must hit: the line is MRU.
            assert!(cache.access(a, false).hit, "MRU line evicted");
        }
    }
}

/// The cache never reports more lines resident than its capacity.
#[test]
fn cache_capacity_respected() {
    let mut rng = SplitMix64::new(0xCAB);
    for _case in 0..48 {
        let n = 1 + rng.next_below(300) as usize;
        let cfg = CacheConfig {
            size_bytes: 2048,
            ways: 2,
            line_bytes: 64,
        };
        let mut cache = Cache::new(cfg);
        for _ in 0..n {
            cache.access(Addr::new(rng.next_below(512) * 64), false);
        }
        let resident = (0..512)
            .filter(|&l| cache.contains(Addr::new(l * 64)))
            .count();
        assert!(resident as u64 <= cfg.size_bytes / cfg.line_bytes);
    }
}

/// Hits + misses always equals total accesses, and writebacks never
/// exceed misses (only evictions produce them).
#[test]
fn cache_accounting_identities() {
    let mut rng = SplitMix64::new(0xACC);
    for _case in 0..48 {
        let n = 1 + rng.next_below(200) as usize;
        let cfg = CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        };
        let mut cache = Cache::new(cfg);
        for _ in 0..n {
            cache.access(Addr::new(rng.next_below(128) * 64), rng.chance(0.5));
        }
        assert_eq!(cache.hits() + cache.misses(), n as u64);
        assert!(cache.writebacks() <= cache.misses());
    }
}

/// MSHR: every registered primary is completed exactly once with all
/// its secondaries; occupancy returns to zero.
#[test]
fn mshr_complete_returns_all_waiters() {
    let mut rng = SplitMix64::new(0x358);
    for _case in 0..48 {
        let n = 1 + rng.next_below(100) as usize;
        let lines: Vec<u64> = (0..n).map(|_| rng.next_below(16)).collect();
        let mut m: Mshr<usize> = Mshr::new(64, 64);
        let mut expected: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &l) in lines.iter().enumerate() {
            let addr = Addr::new(l * 64);
            match m.register(addr, i) {
                MshrOutcome::Primary | MshrOutcome::Secondary => {
                    expected.entry(l).or_default().push(i);
                }
                MshrOutcome::Full => unreachable!("capacity 64 > 16 distinct lines"),
            }
        }
        for (l, want) in expected {
            let got = m.complete(Addr::new(l * 64));
            assert_eq!(got, want);
        }
        assert_eq!(m.occupied(), 0);
    }
}

/// SM issue pipeline: total busy time equals instructions issued times
/// the cycle time, and bookings never overlap.
#[test]
fn sm_issue_accounting() {
    let mut rng = SplitMix64::new(0x155);
    for _case in 0..48 {
        let n = 1 + rng.next_below(100) as usize;
        let cfg = SmConfig::default();
        let mut sm = Sm::new(cfg);
        let mut total = 0u64;
        let mut now = Ps::ZERO;
        for _ in 0..n {
            let warp = rng.next_below(8) as usize;
            let insts = 1 + rng.next_below(199);
            let end = sm.issue_compute(now, warp, insts);
            assert!(end >= now);
            total += insts;
            now += Ps::from_ps(100);
        }
        assert_eq!(sm.retired(), total);
        // Busy time within rounding of the per-instruction cycle time.
        let expect = cfg.freq.cycles(total);
        let busy = sm.busy_time();
        let diff = busy.as_ps().abs_diff(expect.as_ps());
        assert!(diff <= n as u64, "busy {busy} vs {expect}");
    }
}
