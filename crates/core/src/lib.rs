//! Full-system assembly for the Ohm-GPU reproduction.
//!
//! This crate wires the substrates together into the seven evaluated GPU
//! platforms and runs the paper's experiments:
//!
//! * [`config`] — Table I system configurations and scaling helpers.
//! * [`system`] — the event-driven full-system model: SMs and warps on
//!   top of L1/L2 caches, six memory controllers, an electrical or
//!   optical channel, DRAM/XPoint devices, and the platform-specific
//!   migration machinery.
//! * [`metrics`] — the [`SimReport`] produced by every run: IPC, memory
//!   latency, bandwidth breakdown, energy breakdown.
//! * [`energy`] — the energy model (GPUWattch-style DRAM numbers, Optane
//!   measurements for XPoint, the Table I optical power model).
//! * [`reliability`] — per-platform optical BER evaluation (Figure 20b).
//! * [`fault`] — deterministic fault injection and the graceful-
//!   degradation machinery (retransmission, re-arbitration, electrical
//!   fallback, media retry).
//! * [`cost`] — the Table III component-cost model and the
//!   cost-performance analysis of Figure 21.
//! * [`runner`] — the two execution surfaces: the single-cell
//!   [`runner::Run`] builder and the [`runner::GridRun`] sweep that
//!   produces the rows printed by the figure harnesses.
//! * [`checkpoint`] — the durable-sweep substrate: an append-only,
//!   CRC-checked journal of per-cell results keyed by the
//!   [`checkpoint::CellSpec`] content hash, behind
//!   [`runner::GridRun::checkpoint`] and the `ohm-serve` result cache.
//! * [`sweep`] — single-knob parameter sweeps (the ablation harnesses'
//!   backbone).
//! * [`par`] — the deterministic scoped-thread fan-out behind the
//!   parallel [`runner`] and [`sweep`] paths.
//!
//! The system model itself is layered (see [`system`]): a warp engine
//! over cache glue over a memory subsystem whose platform policy is a
//! [`system::MemoryBackend`] and whose channel is a [`system::Fabric`],
//! all reporting through one [`system::StatsSink`].
//!
//! # Quickstart
//!
//! ```
//! use ohm_core::config::SystemConfig;
//! use ohm_core::runner::Run;
//! use ohm_hetero::Platform;
//! use ohm_optic::OperationalMode;
//! use ohm_workloads::workload_by_name;
//!
//! let cfg = SystemConfig::quick_test();
//! let spec = workload_by_name("bfsdata").unwrap();
//! let report = Run::new(&cfg)
//!     .platform(Platform::OhmBase)
//!     .mode(OperationalMode::Planar)
//!     .workload(&spec)
//!     .execute();
//! assert!(report.ipc > 0.0);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod cost;
pub mod energy;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod par;
pub mod reliability;
pub mod runner;
pub mod sweep;
pub mod system;
mod trace;

pub use checkpoint::{CellSpec, FsyncPolicy, Journal, JournalError};
pub use config::{ConfigError, SystemConfig, SystemConfigBuilder};
pub use fault::{FaultCounters, FaultPlan, LifecyclePlan, RecoveryEvent};
pub use metrics::{FaultReport, PhaseRow, PhaseStageRow, PhaseSummary, SimReport, WearReport};
#[allow(deprecated)]
pub use runner::{run_platform, run_recorded, run_replay};
pub use runner::{GridRun, Run};
pub use system::System;

// Re-export the vocabulary types users need alongside this crate.
pub use ohm_hetero::Platform;
pub use ohm_optic::OperationalMode;
