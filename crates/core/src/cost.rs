//! Component cost model (Table III) and cost-performance analysis
//! (Figure 21).
//!
//! Memory prices follow the paper's sources (GDDR6 ≈ $11.7/GB, XPoint ≈
//! $1.3/GB, after \[Hagedoorn\] and \[Tallis\]); MRR fabrication cost follows
//! \[Hausken\] (~$3 per ~2,100 rings); the GPU baseline is the NVIDIA K80's
//! $5,000 launch price. Ring counts per platform/mode are computed from
//! the Figure 15 layouts scaled to the paper's 24-device configuration
//! and the per-wavelength ring multiplicity.

use ohm_hetero::Platform;
use ohm_optic::cost::{mrr_cost_usd, MrrLayout, VCSEL_COST_USD};
use ohm_optic::OperationalMode;

/// GDDR-class DRAM price per gigabyte (Table III: $140 for 12 GB).
pub const DRAM_USD_PER_GB: f64 = 140.0 / 12.0;
/// XPoint price per gigabyte (Table III: $125 for 96 GB ≈ $499 for 384 GB).
pub const XPOINT_USD_PER_GB: f64 = 125.0 / 96.0;
/// Launch price of the baseline GPU (NVIDIA K80).
pub const GPU_BASE_USD: f64 = 5000.0;
/// Memory devices attached to the optical channel (Section VI-B).
pub const MEMORY_DEVICES: u32 = 24;
/// Rings per transmitter/receiver: one per wavelength of its virtual
/// channel (Table I: 16-bit virtual channels).
pub const RINGS_PER_PAIR_SIDE: u32 = 16;

/// The paper's memory capacities per mode (GB): `(dram, xpoint)`.
pub fn mode_capacities_gb(mode: OperationalMode) -> (f64, f64) {
    match mode {
        OperationalMode::Planar => (12.0, 96.0),
        OperationalMode::TwoLevel => (6.0, 384.0),
    }
}

/// A Table III cost row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// DRAM device cost.
    pub dram_usd: f64,
    /// XPoint device cost.
    pub xpoint_usd: f64,
    /// Photonic modulator count.
    pub modulators: u64,
    /// Photonic modulator cost.
    pub modulators_usd: f64,
    /// Photonic detector count.
    pub detectors: u64,
    /// Photonic detector cost.
    pub detectors_usd: f64,
    /// Laser source cost (0 for electrical platforms).
    pub vcsel_usd: f64,
}

impl CostBreakdown {
    /// Memory-system cost on top of the GPU itself.
    pub fn memory_system_usd(&self) -> f64 {
        self.dram_usd + self.xpoint_usd + self.modulators_usd + self.detectors_usd + self.vcsel_usd
    }

    /// Full platform cost including the GPU.
    pub fn total_usd(&self) -> f64 {
        GPU_BASE_USD + self.memory_system_usd()
    }
}

/// Ring counts (modulators, detectors) for a platform in a mode.
///
/// Per-device transmitter/receiver multiplicities are derived from the
/// Table III totals (24 devices × sides × 16 rings per side + 192
/// controller rings): the conventional design deploys 5 sides each way;
/// the dual-route designs add half-coupled transmitters in planar mode
/// (swap) and half-coupled receivers in two-level mode (auto-read/write +
/// reverse-write), per Figure 15. The relative *reductions* of the
/// specialised layouts are modelled by [`MrrLayout`].
pub fn ring_counts(platform: Platform, mode: OperationalMode) -> (u64, u64) {
    let caps = platform.migration_caps();
    let dual = caps.swap || caps.reverse_write || caps.auto_rw;
    let (t_sides, r_sides): (u64, u64) = if !dual {
        (5, 5)
    } else {
        match mode {
            OperationalMode::Planar => (6, 8),
            OperationalMode::TwoLevel => (5, 12),
        }
    };
    let per_side = RINGS_PER_PAIR_SIDE as u64;
    let devices = MEMORY_DEVICES as u64;
    // Controller-side rings: one pair per virtual channel direction.
    let controller_rings = 6 * 2 * per_side;
    let modulators = devices * t_sides * per_side + controller_rings;
    let detectors = devices * r_sides * per_side + controller_rings;
    let _ = MrrLayout::general(); // layout model lives in ohm-optic::cost
    (modulators, detectors)
}

/// Builds the Table III cost row for a platform in a mode.
pub fn cost_breakdown(platform: Platform, mode: OperationalMode) -> CostBreakdown {
    let (dram_gb, xpoint_gb) = match platform {
        Platform::Origin => (24.0, 0.0),
        Platform::Oracle => {
            let (d, x) = mode_capacities_gb(mode);
            (d + x, 0.0) // all-DRAM at the heterogeneous capacity
        }
        _ => mode_capacities_gb(mode),
    };
    let optical = platform.laser_power_scale() > 0.0;
    let (modulators, detectors) = if optical {
        ring_counts(platform, mode)
    } else {
        (0, 0)
    };
    CostBreakdown {
        dram_usd: dram_gb * DRAM_USD_PER_GB,
        xpoint_usd: xpoint_gb * XPOINT_USD_PER_GB,
        modulators,
        modulators_usd: mrr_cost_usd(modulators),
        detectors,
        detectors_usd: mrr_cost_usd(detectors),
        vcsel_usd: if optical { VCSEL_COST_USD } else { 0.0 },
    }
}

/// Cost-performance ratio: normalised performance per dollar, scaled so
/// the numbers are readable (Figure 21, higher is better).
pub fn cost_performance(normalized_perf: f64, total_usd: f64) -> f64 {
    assert!(total_usd > 0.0, "cost must be positive");
    normalized_perf / total_usd * 1e4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_prices_match_table3() {
        let planar = cost_breakdown(Platform::OhmBw, OperationalMode::Planar);
        assert!((planar.dram_usd - 140.0).abs() < 1.0);
        assert!((planar.xpoint_usd - 125.0).abs() < 1.0);
        let two = cost_breakdown(Platform::OhmBw, OperationalMode::TwoLevel);
        assert!((two.dram_usd - 70.0).abs() < 1.0);
        assert!((two.xpoint_usd - 499.0).abs() < 2.0);
    }

    #[test]
    fn ring_counts_match_table3() {
        // Table III: Ohm-base planar has 2,112 modulators and detectors.
        let (m_base, d_base) = ring_counts(Platform::OhmBase, OperationalMode::Planar);
        assert_eq!(m_base, 2112);
        assert_eq!(d_base, 2112);
        // Ohm-BW planar: 2,176 / 3,136 in the paper — ours within 15%.
        let (m_bwp, d_bwp) = ring_counts(Platform::OhmBw, OperationalMode::Planar);
        assert!(
            (m_bwp as f64 / 2176.0 - 1.0).abs() < 0.15,
            "bw planar modulators {m_bwp}"
        );
        assert!(
            (d_bwp as f64 / 3136.0 - 1.0).abs() < 0.15,
            "bw planar detectors {d_bwp}"
        );
        // Ohm-BW two-level: 2,368 / 4,928 in the paper — ours within 15%.
        let (m_bwt, d_bwt) = ring_counts(Platform::OhmBw, OperationalMode::TwoLevel);
        assert!(
            (m_bwt as f64 / 2368.0 - 1.0).abs() < 0.15,
            "bw two-level modulators {m_bwt}"
        );
        assert!(
            (d_bwt as f64 / 4928.0 - 1.0).abs() < 0.15,
            "bw two-level detectors {d_bwt}"
        );
    }

    #[test]
    fn ohm_bw_overhead_fraction_matches_paper() {
        // Paper: planar +7.6%, two-level +13.5% over the $5k GPU.
        let planar = cost_breakdown(Platform::OhmBw, OperationalMode::Planar);
        let frac_p = planar.memory_system_usd() / GPU_BASE_USD;
        assert!((frac_p - 0.076).abs() < 0.01, "planar overhead {frac_p}");
        let two = cost_breakdown(Platform::OhmBw, OperationalMode::TwoLevel);
        let frac_t = two.memory_system_usd() / GPU_BASE_USD;
        assert!((frac_t - 0.135).abs() < 0.01, "two-level overhead {frac_t}");
    }

    #[test]
    fn oracle_is_much_more_expensive() {
        let oracle = cost_breakdown(Platform::Oracle, OperationalMode::TwoLevel);
        let bw = cost_breakdown(Platform::OhmBw, OperationalMode::TwoLevel);
        assert!(oracle.total_usd() > bw.total_usd() * 1.3);
    }

    #[test]
    fn cost_performance_orders_platforms() {
        // With the paper's relative performance (Origin 1.0, Ohm-BW 2.8,
        // Oracle 3.2) the CP ordering matches Figure 21.
        let origin = cost_performance(
            1.0,
            cost_breakdown(Platform::Origin, OperationalMode::Planar).total_usd(),
        );
        let bw = cost_performance(
            2.8,
            cost_breakdown(Platform::OhmBw, OperationalMode::Planar).total_usd(),
        );
        let oracle = cost_performance(
            3.2,
            cost_breakdown(Platform::Oracle, OperationalMode::Planar).total_usd(),
        );
        assert!(
            bw > origin && bw > oracle,
            "bw {bw}, origin {origin}, oracle {oracle}"
        );
    }

    #[test]
    #[should_panic(expected = "cost must be positive")]
    fn zero_cost_rejected() {
        let _ = cost_performance(1.0, 0.0);
    }
}
