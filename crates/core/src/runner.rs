//! Experiment sweep helpers.
//!
//! The figure harnesses in `ohm-bench` all follow the same shape: run a
//! set of platforms over the Table II workloads in one or both memory
//! modes, then normalise. [`GridRun`] is the single entry point for
//! those grids — an options struct selecting worker count, per-cell
//! wall-clock profiling and stderr progress.

use std::sync::atomic::{AtomicUsize, Ordering};

use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::trace::{TraceError, TraceRecorder, TraceReplay};
use ohm_workloads::WorkloadSpec;

use crate::config::SystemConfig;
use crate::metrics::SimReport;
use crate::par::{default_threads, par_map_indexed, par_map_indexed_profiled};
use crate::system::System;

/// Runs one platform/mode/workload combination.
pub fn run_platform(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
) -> SimReport {
    System::new(cfg, platform, mode, spec).run()
}

/// Runs one cell exactly as [`run_platform`] would while capturing its
/// instruction stream to `out` in the `ohm-trace v1` format
/// (`docs/TRACE_FORMAT.md`). The recorder is a pass-through, so the
/// returned report is bit-identical to an unrecorded run; replaying the
/// captured trace with [`run_replay`] reproduces it bit-identically in
/// turn.
///
/// # Errors
///
/// [`TraceError::Io`] when the writer fails (header, any record, or the
/// final flush).
pub fn run_recorded<W: std::io::Write + 'static>(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    out: W,
) -> Result<(SimReport, W), TraceError> {
    let base = crate::system::base_stream(cfg, spec);
    let (recorder, handle) = TraceRecorder::new(base, out, cfg.line_bytes as u32)?;
    let mut sys = System::with_stream(cfg, platform, mode, spec, Box::new(recorder));
    let report = sys.run();
    drop(sys); // releases the recorder so the handle can finish
    Ok((report, handle.finish()?))
}

/// Runs one cell driven by a recorded trace, streaming records from
/// `reader` (never materialising the trace). A trace captured by
/// [`run_recorded`] replayed under the same configuration produces a
/// bit-identical [`SimReport`], with one exception: trace records carry
/// no phase identity, so a replayed phase-structured run reports
/// `phases: None` (every other field matches).
///
/// # Errors
///
/// The header errors of
/// [`TraceReader::new`](ohm_workloads::trace::TraceReader::new) before
/// the run, or the [`TraceError`] of the first malformed record hit
/// mid-replay (the run completes on the records before it).
pub fn run_replay<R: std::io::BufRead + 'static>(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    reader: R,
) -> Result<SimReport, TraceError> {
    let replay = TraceReplay::new(reader)?;
    let errors = replay.error_handle();
    let report = System::with_stream(cfg, platform, mode, spec, Box::new(replay)).run();
    match errors.take() {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

/// Options for one grid run — the single entry point for sweeping
/// platforms over workloads.
///
/// ```no_run
/// # use ohm_core::config::SystemConfig;
/// # use ohm_core::runner::GridRun;
/// # use ohm_hetero::Platform;
/// # use ohm_optic::OperationalMode;
/// # let specs = Vec::new();
/// let result = GridRun::new()
///     .profile(true)
///     .run(
///         &SystemConfig::quick_test(),
///         &Platform::ALL,
///         OperationalMode::Planar,
///         &specs,
///     );
/// let grid = result.rows; // grid[workload][platform]
/// ```
#[derive(Debug, Clone)]
pub struct GridRun {
    threads: usize,
    cell_threads: usize,
    profile: bool,
    progress: bool,
}

impl Default for GridRun {
    fn default() -> Self {
        GridRun::new()
    }
}

impl GridRun {
    /// A grid run over all available cores, without profiling or
    /// progress output.
    pub fn new() -> Self {
        GridRun {
            threads: default_threads(),
            cell_threads: crate::system::default_cell_threads(),
            profile: false,
            progress: false,
        }
    }

    /// A single-threaded grid run — the reference the parallel path is
    /// checked against, and the right choice when cells are being
    /// wall-clock timed (no core contention).
    pub fn serial() -> Self {
        GridRun::new().threads(1)
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Requests intra-cell event-loop workers per simulation
    /// ([`System::set_cell_threads`], DESIGN.md §3.8). The request is
    /// re-budgeted at run time with
    /// [`budget_cell_threads`](crate::par::budget_cell_threads) so
    /// grid-level × cell-level workers never oversubscribe the machine;
    /// strict-mode results are identical either way.
    pub fn cell_threads(mut self, cell_threads: usize) -> Self {
        self.cell_threads = cell_threads.max(1);
        self
    }

    /// Requests per-cell wall-clock profiles ([`GridResult::profiles`]).
    pub fn profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Prints one `[done/total] platform workload` line to stderr as
    /// each cell completes. Completion order is nondeterministic under
    /// parallelism; simulated results are unaffected.
    pub fn progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Runs `platforms` over `specs` in `mode`, returning
    /// `rows[workload][platform]` in input order.
    ///
    /// Cells run in parallel across `threads` workers; each cell builds
    /// its own [`System`], so the reports are bit-identical to a serial
    /// run's regardless of the worker count.
    pub fn run(
        &self,
        cfg: &SystemConfig,
        platforms: &[Platform],
        mode: OperationalMode,
        specs: &[WorkloadSpec],
    ) -> GridResult {
        let cols = platforms.len();
        let n = specs.len() * cols;
        let done = AtomicUsize::new(0);
        let cell_threads = crate::par::budget_cell_threads(self.threads, self.cell_threads);
        let job = |i: usize| {
            let mut sys = System::new(cfg, platforms[i % cols], mode, &specs[i / cols]);
            sys.set_cell_threads(cell_threads);
            let report = sys.run();
            if self.progress {
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "[{finished}/{n}] {} {}",
                    report.platform.name(),
                    report.workload
                );
            }
            report
        };
        if self.profile {
            let cells = par_map_indexed_profiled(n, self.threads, job);
            let profiles = cells
                .iter()
                .map(|(r, wall)| CellProfile::new(r, *wall))
                .collect();
            GridResult {
                rows: chunk_rows(cells.into_iter().map(|(r, _)| r).collect(), cols),
                profiles: Some(profiles),
            }
        } else {
            let cells = par_map_indexed(n, self.threads, job);
            GridResult {
                rows: chunk_rows(cells, cols),
                profiles: None,
            }
        }
    }
}

/// The outcome of a [`GridRun`].
#[derive(Debug, Clone)]
pub struct GridResult {
    /// `rows[workload][platform]`, in input order.
    pub rows: Vec<Vec<SimReport>>,
    /// Per-cell wall-clock profiles in row-major cell order; `Some`
    /// only when [`GridRun::profile`] was requested.
    pub profiles: Option<Vec<CellProfile>>,
}

/// Splits a flat row-major cell vector into `rows[workload][platform]`.
fn chunk_rows(cells: Vec<SimReport>, cols: usize) -> Vec<Vec<SimReport>> {
    if cols == 0 {
        return Vec::new();
    }
    let mut rows: Vec<Vec<SimReport>> = Vec::with_capacity(cells.len() / cols);
    let mut cells = cells.into_iter();
    loop {
        let row: Vec<SimReport> = cells.by_ref().take(cols).collect();
        if row.is_empty() {
            return rows;
        }
        rows.push(row);
    }
}

/// Wall-clock profile of one grid cell — harness-side reporting only;
/// the [`SimReport`] itself never carries wall-clock time, so simulated
/// results stay deterministic.
#[derive(Debug, Clone)]
pub struct CellProfile {
    /// Platform simulated in this cell.
    pub platform: Platform,
    /// Workload name.
    pub workload: String,
    /// Host wall-clock time the cell's simulation took.
    pub wall: std::time::Duration,
    /// Simulated makespan of the cell.
    pub sim_makespan: ohm_sim::Ps,
    /// Simulation throughput: retired instructions + memory requests
    /// processed per host second.
    pub events_per_sec: f64,
}

impl CellProfile {
    fn new(report: &SimReport, wall: std::time::Duration) -> Self {
        let events = report.instructions + report.mem_requests;
        CellProfile {
            platform: report.platform,
            workload: report.workload.clone(),
            wall,
            sim_makespan: report.makespan,
            events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        }
    }
}

/// Renders cell profiles as a fixed-width table (one line per cell plus
/// a total), for printing to stderr after a grid run.
pub fn format_profiles(profiles: &[CellProfile]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<10} {:>10} {:>12} {:>14}",
        "platform", "workload", "wall_ms", "sim_us", "events/sec"
    );
    for p in profiles {
        let _ = writeln!(
            out,
            "{:<12} {:<10} {:>10.1} {:>12.1} {:>14.0}",
            p.platform.name(),
            p.workload,
            p.wall.as_secs_f64() * 1e3,
            p.sim_makespan.as_us_f64(),
            p.events_per_sec
        );
    }
    let total: f64 = profiles.iter().map(|p| p.wall.as_secs_f64()).sum();
    let _ = writeln!(
        out,
        "total wall: {:.2}s over {} cells",
        total,
        profiles.len()
    );
    out
}

/// Geometric mean of a positive series (0 for an empty one).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Normalises each row of a grid to the column `baseline` (e.g. IPC
/// normalised to Ohm-base, as in Figure 16).
///
/// A stalled baseline cell (IPC ≤ 0, or non-finite) yields `0.0` for
/// its whole row rather than Inf/NaN — the ratio-metric policy
/// throughout the workspace is that degenerate denominators report a
/// finite zero, so [`column_geomeans`] stays finite.
pub fn normalize_ipc(grid: &[Vec<SimReport>], baseline: usize) -> Vec<Vec<f64>> {
    grid.iter()
        .map(|row| {
            let base = row[baseline].ipc;
            if base <= 0.0 || !base.is_finite() {
                return vec![0.0; row.len()];
            }
            row.iter().map(|r| r.ipc / base).collect()
        })
        .collect()
}

/// Per-column geometric mean across workloads of a normalised grid.
pub fn column_geomeans(normalized: &[Vec<f64>]) -> Vec<f64> {
    if normalized.is_empty() {
        return Vec::new();
    }
    let cols = normalized[0].len();
    (0..cols)
        .map(|c| {
            let col: Vec<f64> = normalized.iter().map(|row| row[c]).collect();
            geomean(&col)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohm_workloads::workload_by_name;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn grid_shape_and_normalisation() {
        let cfg = SystemConfig::quick_test();
        let specs = vec![workload_by_name("lud").unwrap()];
        let platforms = [Platform::OhmBase, Platform::Oracle];
        let grid = GridRun::new()
            .run(&cfg, &platforms, OperationalMode::Planar, &specs)
            .rows;
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].len(), 2);
        let norm = normalize_ipc(&grid, 0);
        assert!((norm[0][0] - 1.0).abs() < 1e-12);
        let means = column_geomeans(&norm);
        assert_eq!(means.len(), 2);
        assert!((means[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_profile_matches_rows() {
        let cfg = SystemConfig::quick_test();
        let specs = vec![workload_by_name("lud").unwrap()];
        let platforms = [Platform::OhmBase, Platform::Oracle];
        let result =
            GridRun::serial()
                .profile(true)
                .run(&cfg, &platforms, OperationalMode::Planar, &specs);
        let profiles = result.profiles.expect("profiles requested");
        assert_eq!(profiles.len(), 2);
        for (p, r) in profiles.iter().zip(&result.rows[0]) {
            assert_eq!(p.platform, r.platform);
            assert_eq!(p.workload, r.workload);
            assert_eq!(p.sim_makespan, r.makespan);
            assert!(p.events_per_sec > 0.0);
        }
        // Unprofiled runs carry no profiles.
        let plain = GridRun::serial().run(&cfg, &platforms, OperationalMode::Planar, &specs);
        assert!(plain.profiles.is_none());
    }

    #[test]
    fn normalize_ipc_guards_zero_baseline() {
        let cfg = SystemConfig::quick_test();
        let spec = workload_by_name("lud").unwrap();
        let proto = run_platform(&cfg, Platform::OhmBase, OperationalMode::Planar, &spec);
        let report = |ipc: f64| {
            let mut r = proto.clone();
            r.ipc = ipc;
            r
        };
        let grid = vec![
            vec![report(2.0), report(1.0)],
            vec![report(3.0), report(0.0)],
        ];
        let norm = normalize_ipc(&grid, 1);
        assert_eq!(norm[0], vec![2.0, 1.0]);
        // Zero baseline: whole row reports finite zero, not Inf/NaN.
        assert_eq!(norm[1], vec![0.0, 0.0]);
        let means = column_geomeans(&norm);
        assert!(means.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn grid_cell_threads_is_bit_identical_and_budgeted() {
        let cfg = SystemConfig::quick_test();
        let specs = vec![workload_by_name("pagerank").unwrap()];
        let platforms = [Platform::OhmBase, Platform::Oracle];
        let reference = GridRun::serial()
            .cell_threads(1)
            .run(&cfg, &platforms, OperationalMode::Planar, &specs)
            .rows;
        // Grid workers × cell workers together; strict mode keeps the
        // reports bit-identical while the budget caps oversubscription.
        let sharded = GridRun::new()
            .threads(2)
            .cell_threads(8)
            .run(&cfg, &platforms, OperationalMode::Planar, &specs)
            .rows;
        assert_eq!(reference, sharded);
    }

    #[test]
    fn chunking_handles_empty_grids() {
        assert!(chunk_rows(Vec::new(), 3).is_empty());
        assert!(chunk_rows(Vec::new(), 0).is_empty());
    }
}
