//! Experiment sweep helpers.
//!
//! The figure harnesses in `ohm-bench` all follow the same shape: run a
//! set of platforms over the Table II workloads in one or both memory
//! modes, then normalise. These helpers centralise that plumbing.

use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::WorkloadSpec;

use crate::config::SystemConfig;
use crate::metrics::SimReport;
use crate::par::{default_threads, par_map_indexed};
use crate::system::System;

/// Runs one platform/mode/workload combination.
pub fn run_platform(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
) -> SimReport {
    System::new(cfg, platform, mode, spec).run()
}

/// Runs several platforms over several workloads in one mode, returning
/// `results[workload][platform]` in input order.
///
/// Cells run in parallel across the machine's cores; each cell builds
/// its own [`System`], so the reports are bit-identical to
/// [`run_grid_serial`]'s.
pub fn run_grid(
    cfg: &SystemConfig,
    platforms: &[Platform],
    mode: OperationalMode,
    specs: &[WorkloadSpec],
) -> Vec<Vec<SimReport>> {
    run_grid_threaded(cfg, platforms, mode, specs, default_threads())
}

/// [`run_grid`] on the caller's thread only — the reference the parallel
/// path is checked against.
pub fn run_grid_serial(
    cfg: &SystemConfig,
    platforms: &[Platform],
    mode: OperationalMode,
    specs: &[WorkloadSpec],
) -> Vec<Vec<SimReport>> {
    run_grid_threaded(cfg, platforms, mode, specs, 1)
}

/// [`run_grid`] over an explicit worker count.
pub fn run_grid_threaded(
    cfg: &SystemConfig,
    platforms: &[Platform],
    mode: OperationalMode,
    specs: &[WorkloadSpec],
    threads: usize,
) -> Vec<Vec<SimReport>> {
    let cols = platforms.len();
    let cells = par_map_indexed(specs.len() * cols, threads, |i| {
        run_platform(cfg, platforms[i % cols], mode, &specs[i / cols])
    });
    let mut rows: Vec<Vec<SimReport>> = Vec::with_capacity(specs.len());
    let mut cells = cells.into_iter();
    for _ in 0..specs.len() {
        rows.push(cells.by_ref().take(cols).collect());
    }
    rows
}

/// Geometric mean of a positive series (0 for an empty one).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Normalises each row of a grid to the column `baseline` (e.g. IPC
/// normalised to Ohm-base, as in Figure 16).
pub fn normalize_ipc(grid: &[Vec<SimReport>], baseline: usize) -> Vec<Vec<f64>> {
    grid.iter()
        .map(|row| {
            let base = row[baseline].ipc;
            row.iter().map(|r| r.ipc / base).collect()
        })
        .collect()
}

/// Per-column geometric mean across workloads of a normalised grid.
pub fn column_geomeans(normalized: &[Vec<f64>]) -> Vec<f64> {
    if normalized.is_empty() {
        return Vec::new();
    }
    let cols = normalized[0].len();
    (0..cols)
        .map(|c| {
            let col: Vec<f64> = normalized.iter().map(|row| row[c]).collect();
            geomean(&col)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohm_workloads::workload_by_name;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn grid_shape_and_normalisation() {
        let cfg = SystemConfig::quick_test();
        let specs = vec![workload_by_name("lud").unwrap()];
        let platforms = [Platform::OhmBase, Platform::Oracle];
        let grid = run_grid(&cfg, &platforms, OperationalMode::Planar, &specs);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].len(), 2);
        let norm = normalize_ipc(&grid, 0);
        assert!((norm[0][0] - 1.0).abs() < 1e-12);
        let means = column_geomeans(&norm);
        assert_eq!(means.len(), 2);
        assert!((means[0] - 1.0).abs() < 1e-12);
    }
}
