//! Experiment sweep helpers.
//!
//! The figure harnesses in `ohm-bench` all follow the same shape: run a
//! set of platforms over the Table II workloads in one or both memory
//! modes, then normalise. These helpers centralise that plumbing.

use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::WorkloadSpec;

use crate::config::SystemConfig;
use crate::metrics::SimReport;
use crate::par::{default_threads, par_map_indexed, par_map_indexed_profiled};
use crate::system::System;

/// Runs one platform/mode/workload combination.
pub fn run_platform(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
) -> SimReport {
    System::new(cfg, platform, mode, spec).run()
}

/// Runs several platforms over several workloads in one mode, returning
/// `results[workload][platform]` in input order.
///
/// Cells run in parallel across the machine's cores; each cell builds
/// its own [`System`], so the reports are bit-identical to
/// [`run_grid_serial`]'s.
pub fn run_grid(
    cfg: &SystemConfig,
    platforms: &[Platform],
    mode: OperationalMode,
    specs: &[WorkloadSpec],
) -> Vec<Vec<SimReport>> {
    run_grid_threaded(cfg, platforms, mode, specs, default_threads())
}

/// [`run_grid`] on the caller's thread only — the reference the parallel
/// path is checked against.
pub fn run_grid_serial(
    cfg: &SystemConfig,
    platforms: &[Platform],
    mode: OperationalMode,
    specs: &[WorkloadSpec],
) -> Vec<Vec<SimReport>> {
    run_grid_threaded(cfg, platforms, mode, specs, 1)
}

/// [`run_grid`] over an explicit worker count.
pub fn run_grid_threaded(
    cfg: &SystemConfig,
    platforms: &[Platform],
    mode: OperationalMode,
    specs: &[WorkloadSpec],
    threads: usize,
) -> Vec<Vec<SimReport>> {
    let cols = platforms.len();
    let cells = par_map_indexed(specs.len() * cols, threads, |i| {
        run_platform(cfg, platforms[i % cols], mode, &specs[i / cols])
    });
    let mut rows: Vec<Vec<SimReport>> = Vec::with_capacity(specs.len());
    let mut cells = cells.into_iter();
    for _ in 0..specs.len() {
        rows.push(cells.by_ref().take(cols).collect());
    }
    rows
}

/// Wall-clock profile of one grid cell — harness-side reporting only;
/// the [`SimReport`] itself never carries wall-clock time, so simulated
/// results stay deterministic.
#[derive(Debug, Clone)]
pub struct CellProfile {
    /// Platform simulated in this cell.
    pub platform: Platform,
    /// Workload name.
    pub workload: String,
    /// Host wall-clock time the cell's simulation took.
    pub wall: std::time::Duration,
    /// Simulated makespan of the cell.
    pub sim_makespan: ohm_sim::Ps,
    /// Simulation throughput: retired instructions + memory requests
    /// processed per host second.
    pub events_per_sec: f64,
}

impl CellProfile {
    fn new(report: &SimReport, wall: std::time::Duration) -> Self {
        let events = report.instructions + report.mem_requests;
        CellProfile {
            platform: report.platform,
            workload: report.workload.clone(),
            wall,
            sim_makespan: report.makespan,
            events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        }
    }
}

/// Renders cell profiles as a fixed-width table (one line per cell plus
/// a total), for printing to stderr after a grid run.
pub fn format_profiles(profiles: &[CellProfile]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<10} {:>10} {:>12} {:>14}",
        "platform", "workload", "wall_ms", "sim_us", "events/sec"
    );
    for p in profiles {
        let _ = writeln!(
            out,
            "{:<12} {:<10} {:>10.1} {:>12.1} {:>14.0}",
            p.platform.name(),
            p.workload,
            p.wall.as_secs_f64() * 1e3,
            p.sim_makespan.as_us_f64(),
            p.events_per_sec
        );
    }
    let total: f64 = profiles.iter().map(|p| p.wall.as_secs_f64()).sum();
    let _ = writeln!(
        out,
        "total wall: {:.2}s over {} cells",
        total,
        profiles.len()
    );
    out
}

/// [`run_grid_threaded`] that additionally profiles each cell's
/// wall-clock cost, returning `(grid, profiles)` with profiles in cell
/// (row-major) order.
pub fn run_grid_profiled(
    cfg: &SystemConfig,
    platforms: &[Platform],
    mode: OperationalMode,
    specs: &[WorkloadSpec],
    threads: usize,
) -> (Vec<Vec<SimReport>>, Vec<CellProfile>) {
    let cols = platforms.len();
    let cells = par_map_indexed_profiled(specs.len() * cols, threads, |i| {
        run_platform(cfg, platforms[i % cols], mode, &specs[i / cols])
    });
    let profiles: Vec<CellProfile> = cells
        .iter()
        .map(|(r, wall)| CellProfile::new(r, *wall))
        .collect();
    let mut rows: Vec<Vec<SimReport>> = Vec::with_capacity(specs.len());
    let mut cells = cells.into_iter().map(|(r, _)| r);
    for _ in 0..specs.len() {
        rows.push(cells.by_ref().take(cols).collect());
    }
    (rows, profiles)
}

/// Geometric mean of a positive series (0 for an empty one).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Normalises each row of a grid to the column `baseline` (e.g. IPC
/// normalised to Ohm-base, as in Figure 16).
pub fn normalize_ipc(grid: &[Vec<SimReport>], baseline: usize) -> Vec<Vec<f64>> {
    grid.iter()
        .map(|row| {
            let base = row[baseline].ipc;
            row.iter().map(|r| r.ipc / base).collect()
        })
        .collect()
}

/// Per-column geometric mean across workloads of a normalised grid.
pub fn column_geomeans(normalized: &[Vec<f64>]) -> Vec<f64> {
    if normalized.is_empty() {
        return Vec::new();
    }
    let cols = normalized[0].len();
    (0..cols)
        .map(|c| {
            let col: Vec<f64> = normalized.iter().map(|row| row[c]).collect();
            geomean(&col)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohm_workloads::workload_by_name;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn grid_shape_and_normalisation() {
        let cfg = SystemConfig::quick_test();
        let specs = vec![workload_by_name("lud").unwrap()];
        let platforms = [Platform::OhmBase, Platform::Oracle];
        let grid = run_grid(&cfg, &platforms, OperationalMode::Planar, &specs);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].len(), 2);
        let norm = normalize_ipc(&grid, 0);
        assert!((norm[0][0] - 1.0).abs() < 1e-12);
        let means = column_geomeans(&norm);
        assert_eq!(means.len(), 2);
        assert!((means[0] - 1.0).abs() < 1e-12);
    }
}
