//! Experiment run helpers.
//!
//! Two entry points cover every way the workspace executes simulations:
//! [`Run`] is the fluent single-cell builder (plain, trace-recorded, or
//! trace-replayed execution of one platform/mode/workload cell), and
//! [`GridRun`] sweeps platforms over workloads — an options struct
//! selecting worker count, per-cell wall-clock profiling, stderr
//! progress, checkpointing and fault isolation. The figure harnesses in
//! `ohm-bench` and the `ohm-serve` daemon both run cells through these
//! and nothing else.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_sim::{ExponentialBackoff, Ps};
use ohm_workloads::trace::{TraceError, TraceRecorder, TraceReplay};
use ohm_workloads::WorkloadSpec;

use crate::checkpoint::{self, CellSpec, FsyncPolicy, Journal};
use crate::config::SystemConfig;
use crate::metrics::{EnergyReport, SimReport};
use crate::par::{
    default_threads, par_map_indexed, par_map_indexed_profiled, par_try_map_indexed,
    par_try_map_indexed_profiled, CellError, RetryPolicy,
};
use crate::system::System;

/// Fluent builder for one simulation cell — the single-run counterpart
/// of [`GridRun`], and the one typed execution surface behind the
/// deprecated `run_platform`/`run_recorded`/`run_replay` trio.
///
/// Defaults: [`Platform::OhmBase`], [`OperationalMode::Planar`], the
/// engine's own cell-thread default. The workload has no sensible
/// default and must be set before executing.
///
/// ```
/// use ohm_core::config::SystemConfig;
/// use ohm_core::runner::Run;
/// use ohm_core::{OperationalMode, Platform};
/// use ohm_workloads::workload_by_name;
///
/// let cfg = SystemConfig::quick_test();
/// let spec = workload_by_name("bfsdata").unwrap();
/// let report = Run::new(&cfg)
///     .platform(Platform::OhmBase)
///     .mode(OperationalMode::Planar)
///     .workload(&spec)
///     .execute();
/// assert!(report.ipc > 0.0);
/// ```
///
/// Recording and replay attach through [`Run::record`] / [`Run::replay`],
/// which return mode-specific builders whose `execute` carries the
/// matching result type (the extra writer/reader state and the
/// [`TraceError`] paths don't exist on a plain run).
#[derive(Debug, Clone)]
pub struct Run<'a> {
    cfg: &'a SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    workload: Option<&'a WorkloadSpec>,
    cell_threads: Option<usize>,
}

impl<'a> Run<'a> {
    /// A run of `cfg` with the default platform/mode and no workload
    /// selected yet.
    pub fn new(cfg: &'a SystemConfig) -> Run<'a> {
        Run {
            cfg,
            platform: Platform::OhmBase,
            mode: OperationalMode::Planar,
            workload: None,
            cell_threads: None,
        }
    }

    /// Selects the platform (default [`Platform::OhmBase`]).
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }

    /// Selects the memory mode (default [`OperationalMode::Planar`]).
    pub fn mode(mut self, mode: OperationalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the workload. Required before any `execute`.
    pub fn workload(mut self, spec: &'a WorkloadSpec) -> Self {
        self.workload = Some(spec);
        self
    }

    /// Requests intra-cell event-loop workers
    /// ([`System::set_cell_threads`], DESIGN.md §3.8). Strict-mode
    /// results are bit-identical at any count; unset, the engine's
    /// `OHM_CELL_THREADS` default applies.
    pub fn cell_threads(mut self, cell_threads: usize) -> Self {
        self.cell_threads = Some(cell_threads.max(1));
        self
    }

    /// The configured workload, or the documented panic.
    fn spec_or_panic(&self) -> &'a WorkloadSpec {
        self.workload
            .expect("Run: no workload selected — call .workload(spec) before executing")
    }

    /// The [`CellSpec`] identity of this run — the content-addressed
    /// cache key contract shared with [`GridRun::checkpoint`] and the
    /// `ohm-serve` result cache. Recording and replay deliberately do
    /// not perturb it: a replayed run is the *same cell* (bit-identical
    /// report), so it must hit the same cache slot.
    ///
    /// # Panics
    ///
    /// If no workload was selected.
    pub fn spec(&self) -> CellSpec {
        CellSpec::new(
            self.cfg.clone(),
            self.platform,
            self.mode,
            *self.spec_or_panic(),
        )
    }

    /// Runs the cell.
    ///
    /// # Panics
    ///
    /// If no workload was selected.
    pub fn execute(&self) -> SimReport {
        let mut sys = System::new(self.cfg, self.platform, self.mode, self.spec_or_panic());
        if let Some(n) = self.cell_threads {
            sys.set_cell_threads(n);
        }
        sys.run()
    }

    /// Captures the run's instruction stream to `out` in the
    /// `ohm-trace v1` format (`docs/TRACE_FORMAT.md`). The recorder is a
    /// pass-through, so the recorded run's report is bit-identical to
    /// [`Run::execute`]'s; replaying the captured trace via
    /// [`Run::replay`] reproduces it bit-identically in turn.
    pub fn record<W: std::io::Write + 'static>(self, out: W) -> RecordedRun<'a, W> {
        RecordedRun { run: self, out }
    }

    /// Drives the run from a recorded trace, streaming records from
    /// `reader` (never materialising the trace) instead of generating
    /// the workload.
    pub fn replay<R: std::io::BufRead + 'static>(self, reader: R) -> ReplayRun<'a, R> {
        ReplayRun { run: self, reader }
    }
}

/// A [`Run`] that records its instruction stream — see [`Run::record`].
#[derive(Debug)]
pub struct RecordedRun<'a, W> {
    run: Run<'a>,
    out: W,
}

impl<W: std::io::Write + 'static> RecordedRun<'_, W> {
    /// Runs the cell, returning its report and the writer with the
    /// complete trace flushed into it.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the writer fails (header, any record, or
    /// the final flush).
    ///
    /// # Panics
    ///
    /// If no workload was selected.
    pub fn execute(self) -> Result<(SimReport, W), TraceError> {
        let spec = self.run.spec_or_panic();
        let base = crate::system::base_stream(self.run.cfg, spec);
        let (recorder, handle) =
            TraceRecorder::new(base, self.out, self.run.cfg.line_bytes as u32)?;
        let mut sys = System::with_stream(
            self.run.cfg,
            self.run.platform,
            self.run.mode,
            spec,
            Box::new(recorder),
        );
        if let Some(n) = self.run.cell_threads {
            sys.set_cell_threads(n);
        }
        let report = sys.run();
        drop(sys); // releases the recorder so the handle can finish
        Ok((report, handle.finish()?))
    }
}

/// A [`Run`] driven by a recorded trace — see [`Run::replay`].
#[derive(Debug)]
pub struct ReplayRun<'a, R> {
    run: Run<'a>,
    reader: R,
}

impl<R: std::io::BufRead + 'static> ReplayRun<'_, R> {
    /// Runs the cell against the trace. A trace captured by
    /// [`Run::record`] replayed under the same configuration produces a
    /// bit-identical [`SimReport`], with one exception: trace records
    /// carry no phase identity, so a replayed phase-structured run
    /// reports `phases: None` (every other field matches).
    ///
    /// # Errors
    ///
    /// The header errors of
    /// [`TraceReader::new`](ohm_workloads::trace::TraceReader::new)
    /// before the run, or the [`TraceError`] of the first malformed
    /// record hit mid-replay (the run completes on the records before
    /// it).
    ///
    /// # Panics
    ///
    /// If no workload was selected.
    pub fn execute(self) -> Result<SimReport, TraceError> {
        let spec = self.run.spec_or_panic();
        let replay = TraceReplay::new(self.reader)?;
        let errors = replay.error_handle();
        let mut sys = System::with_stream(
            self.run.cfg,
            self.run.platform,
            self.run.mode,
            spec,
            Box::new(replay),
        );
        if let Some(n) = self.run.cell_threads {
            sys.set_cell_threads(n);
        }
        let report = sys.run();
        match errors.take() {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}

/// Runs one platform/mode/workload combination.
#[deprecated(
    since = "0.2.0",
    note = "use `Run::new(cfg).platform(p).mode(m).workload(spec).execute()`"
)]
pub fn run_platform(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
) -> SimReport {
    Run::new(cfg)
        .platform(platform)
        .mode(mode)
        .workload(spec)
        .execute()
}

/// Runs one cell while capturing its instruction stream.
///
/// # Errors
///
/// [`TraceError::Io`] when the writer fails.
#[deprecated(
    since = "0.2.0",
    note = "use `Run::new(cfg).platform(p).mode(m).workload(spec).record(out).execute()`"
)]
pub fn run_recorded<W: std::io::Write + 'static>(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    out: W,
) -> Result<(SimReport, W), TraceError> {
    Run::new(cfg)
        .platform(platform)
        .mode(mode)
        .workload(spec)
        .record(out)
        .execute()
}

/// Runs one cell driven by a recorded trace.
///
/// # Errors
///
/// As [`ReplayRun::execute`].
#[deprecated(
    since = "0.2.0",
    note = "use `Run::new(cfg).platform(p).mode(m).workload(spec).replay(reader).execute()`"
)]
pub fn run_replay<R: std::io::BufRead + 'static>(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    reader: R,
) -> Result<SimReport, TraceError> {
    Run::new(cfg)
        .platform(platform)
        .mode(mode)
        .workload(spec)
        .replay(reader)
        .execute()
}

/// Options for one grid run — the single entry point for sweeping
/// platforms over workloads.
///
/// ```no_run
/// # use ohm_core::config::SystemConfig;
/// # use ohm_core::runner::GridRun;
/// # use ohm_hetero::Platform;
/// # use ohm_optic::OperationalMode;
/// # let specs = Vec::new();
/// let result = GridRun::new()
///     .profile(true)
///     .run(
///         &SystemConfig::quick_test(),
///         &Platform::ALL,
///         OperationalMode::Planar,
///         &specs,
///     );
/// let grid = result.rows; // grid[workload][platform]
/// ```
#[derive(Debug, Clone)]
pub struct GridRun {
    threads: usize,
    cell_threads: usize,
    profile: bool,
    progress: bool,
    checkpoint: Option<PathBuf>,
    fsync: FsyncPolicy,
    isolate: bool,
    max_retries: u32,
    backoff: ExponentialBackoff,
    deadline: Option<Duration>,
}

impl Default for GridRun {
    fn default() -> Self {
        GridRun::new()
    }
}

impl GridRun {
    /// A grid run over all available cores, without profiling or
    /// progress output — strict mode, no checkpoint.
    pub fn new() -> Self {
        GridRun {
            threads: default_threads(),
            cell_threads: crate::system::default_cell_threads(),
            profile: false,
            progress: false,
            checkpoint: None,
            fsync: FsyncPolicy::OnClose,
            isolate: false,
            max_retries: 0,
            backoff: ExponentialBackoff {
                base: Ps::from_ms(100),
                cap: Ps::from_ms(2_000),
            },
            deadline: None,
        }
    }

    /// A single-threaded grid run — the reference the parallel path is
    /// checked against, and the right choice when cells are being
    /// wall-clock timed (no core contention).
    pub fn serial() -> Self {
        GridRun::new().threads(1)
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Requests intra-cell event-loop workers per simulation
    /// ([`System::set_cell_threads`], DESIGN.md §3.8). The request is
    /// re-budgeted at run time with
    /// [`budget_cell_threads`](crate::par::budget_cell_threads) so
    /// grid-level × cell-level workers never oversubscribe the machine;
    /// strict-mode results are identical either way.
    pub fn cell_threads(mut self, cell_threads: usize) -> Self {
        self.cell_threads = cell_threads.max(1);
        self
    }

    /// Requests per-cell wall-clock profiles ([`GridResult::profiles`]).
    pub fn profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Prints one `[done/total] platform workload` line to stderr as
    /// each cell completes. Completion order is nondeterministic under
    /// parallelism; simulated results are unaffected.
    pub fn progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Journals every completed cell to `path` and, on a later run with
    /// the same path, replays verified records instead of re-simulating
    /// (DESIGN.md §3.10). Cells are keyed by
    /// [`checkpoint::cell_key`] — config, platform, mode, and workload
    /// content; worker counts and profiling flags deliberately excluded
    /// — so a resumed run is bit-identical to an uninterrupted one,
    /// with resumed cells reported as [`CellOutcome::Cached`].
    ///
    /// The journal is opened (or created) at [`GridRun::run`] time;
    /// `run` panics with the [`JournalError`](crate::JournalError) if
    /// the file exists but is not a valid journal, rather than silently
    /// overwriting it.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Durability policy for checkpoint journal appends (default
    /// [`FsyncPolicy::OnClose`], the historical behaviour). Use
    /// [`FsyncPolicy::Always`] when at most one record may be lost to a
    /// host crash — the `ohm-serve` daemon's setting.
    pub fn fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Switches per-cell fault isolation on: a panicking cell is retried
    /// with exponential backoff up to [`GridRun::max_retries`], then
    /// quarantined as a [`CellOutcome::Quarantined`] while every other
    /// cell completes. Off (strict mode, the default), a panicking cell
    /// rethrows and tears down the whole grid — exactly today's
    /// contract.
    pub fn isolate(mut self, isolate: bool) -> Self {
        self.isolate = isolate;
        self
    }

    /// Retries allowed per panicking cell before quarantine (implies
    /// [`GridRun::isolate`]). Default 0: quarantine on first panic.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self.isolate = true;
        self
    }

    /// Wall-clock spacing between retry attempts of a panicking cell.
    /// The [`Ps`] schedule is interpreted as real time (`Ps::from_ms(100)`
    /// = 100 ms); default 100 ms doubling to a 2 s cap.
    pub fn retry_backoff(mut self, backoff: ExponentialBackoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Wall-clock budget per cell attempt (implies [`GridRun::isolate`]).
    /// A cell that outlives it is abandoned — reported as
    /// [`CellOutcome::TimedOut`], never retried — while the rest of the
    /// sweep drains. The abandoned attempt's thread leaks until its
    /// event loop returns (see
    /// [`par_try_map_indexed`]).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self.isolate = true;
        self
    }

    /// Runs `platforms` over `specs` in `mode`, returning
    /// `rows[workload][platform]` in input order.
    ///
    /// Cells run in parallel across `threads` workers; each cell builds
    /// its own [`System`], so the reports are bit-identical to a serial
    /// run's regardless of the worker count. With
    /// [`GridRun::checkpoint`] set, cells with a verified journal record
    /// are replayed instead of re-simulated; with [`GridRun::isolate`]
    /// set, failing cells are quarantined (their row slot holds a
    /// zeroed placeholder report — check [`GridResult::outcomes`]
    /// before trusting a cell).
    ///
    /// # Panics
    ///
    /// Rethrows a cell panic in strict mode (the default), and panics
    /// if the checkpoint journal cannot be opened or appended to.
    pub fn run(
        &self,
        cfg: &SystemConfig,
        platforms: &[Platform],
        mode: OperationalMode,
        specs: &[WorkloadSpec],
    ) -> GridResult {
        let cols = platforms.len();
        let n = specs.len() * cols;
        let cell_threads = crate::par::budget_cell_threads(self.threads, self.cell_threads);

        let journal: Arc<Option<Mutex<Journal>>> = Arc::new(self.checkpoint.as_ref().map(|p| {
            Mutex::new(
                Journal::open_with(p, self.fsync)
                    .unwrap_or_else(|e| panic!("GridRun::checkpoint({}): {e}", p.display())),
            )
        }));
        let keys: Vec<u64> = (0..n)
            .map(|i| checkpoint::cell_key(cfg, platforms[i % cols], mode, &specs[i / cols]))
            .collect();

        // Resolve cached cells from the journal before spinning up
        // workers: a resumed run only pays for what is missing.
        let mut slots: Vec<Option<SimReport>> = (0..n).map(|_| None).collect();
        let mut outcomes: Vec<CellOutcome> = vec![CellOutcome::Completed; n];
        if let Some(j) = journal.as_ref() {
            let j = j.lock().expect("journal lock");
            for i in 0..n {
                if let Some(r) = j.get(keys[i]) {
                    slots[i] = Some(r.clone());
                    outcomes[i] = CellOutcome::Cached;
                }
            }
        }
        let todo: Arc<Vec<usize>> = Arc::new((0..n).filter(|&i| slots[i].is_none()).collect());
        let m = todo.len();
        let done = Arc::new(AtomicUsize::new(n - m));

        // One owned job serves all four execution paths; the isolated
        // variants additionally require it to be `'static`, so the cell
        // inputs are cloned in (cheap next to a simulation).
        let job = {
            let cfg = cfg.clone();
            let platforms = platforms.to_vec();
            let specs = specs.to_vec();
            let todo = Arc::clone(&todo);
            let keys = keys.clone();
            let journal = Arc::clone(&journal);
            let done = Arc::clone(&done);
            let progress = self.progress;
            move |j: usize| {
                let i = todo[j];
                let report = Run::new(&cfg)
                    .platform(platforms[i % cols])
                    .mode(mode)
                    .workload(&specs[i / cols])
                    .cell_threads(cell_threads)
                    .execute();
                // Journal inside the job, not after the sweep: a run
                // killed mid-grid keeps every cell that finished.
                if let Some(jr) = journal.as_ref() {
                    jr.lock()
                        .expect("journal lock")
                        .append(keys[i], &report)
                        .unwrap_or_else(|e| panic!("checkpoint journal append: {e}"));
                }
                if progress {
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "[{finished}/{n}] {} {}",
                        report.platform.name(),
                        report.workload
                    );
                }
                report
            }
        };

        let policy = RetryPolicy {
            max_retries: self.max_retries,
            backoff: self.backoff,
            deadline: self.deadline,
        };
        type Executed = Vec<Result<(SimReport, Option<Duration>), CellError>>;
        let executed: Executed = match (self.isolate, self.profile) {
            (false, false) => par_map_indexed(m, self.threads, job)
                .into_iter()
                .map(|r| Ok((r, None)))
                .collect(),
            (false, true) => par_map_indexed_profiled(m, self.threads, job)
                .into_iter()
                .map(|(r, w)| Ok((r, Some(w))))
                .collect(),
            (true, false) => par_try_map_indexed(m, self.threads, policy, job)
                .into_iter()
                .map(|res| res.map(|r| (r, None)))
                .collect(),
            (true, true) => par_try_map_indexed_profiled(m, self.threads, policy, job)
                .into_iter()
                .map(|res| res.map(|(r, w)| (r, Some(w))))
                .collect(),
        };

        let mut walls: Vec<Option<Duration>> = vec![None; n];
        for (j, res) in executed.into_iter().enumerate() {
            let i = todo[j];
            match res {
                Ok((report, wall)) => {
                    walls[i] = wall;
                    slots[i] = Some(report);
                }
                Err(mut e) => {
                    // The try-map reported the todo-local index; grid
                    // consumers want the row-major cell index.
                    e.index = i;
                    outcomes[i] = if e.timed_out {
                        CellOutcome::TimedOut(e)
                    } else {
                        CellOutcome::Quarantined(e)
                    };
                    slots[i] = Some(tombstone(platforms[i % cols], mode, &specs[i / cols]));
                }
            }
        }
        let cells: Vec<SimReport> = slots
            .into_iter()
            .map(|s| s.expect("every cell resolved"))
            .collect();
        let profiles = self.profile.then(|| {
            // Cached and failed cells carry zero wall time: nothing was
            // simulated for them this run.
            cells
                .iter()
                .zip(&walls)
                .map(|(r, w)| CellProfile::new(r, w.unwrap_or(Duration::ZERO)))
                .collect()
        });
        GridResult {
            rows: chunk_rows(cells, cols),
            profiles,
            outcomes,
        }
    }
}

/// Placeholder report occupying the row slot of a quarantined or
/// timed-out cell: identity fields set, every measurement zero, every
/// optional section absent. Consumers that care must consult
/// [`GridResult::outcomes`]; the zeros keep downstream arithmetic
/// finite (`normalize_ipc` already guards zero baselines).
fn tombstone(platform: Platform, mode: OperationalMode, spec: &WorkloadSpec) -> SimReport {
    SimReport {
        platform,
        mode,
        workload: spec.name.to_string(),
        makespan: Ps::ZERO,
        instructions: 0,
        ipc: 0.0,
        mem_requests: 0,
        avg_mem_latency_ns: 0.0,
        l1_hit_rate: 0.0,
        l2_hit_rate: 0.0,
        hetero_dram_hit_rate: 0.0,
        migration_channel_fraction: 0.0,
        migrations: 0,
        channel_utilization: 0.0,
        channel_bits: (0, 0),
        energy: EnergyReport {
            dma_j: 0.0,
            dram_static_j: 0.0,
            dram_dynamic_j: 0.0,
            xpoint_j: 0.0,
        },
        host: None,
        wear_imbalance: 0.0,
        stages: None,
        faults: None,
        wear: None,
        phases: None,
    }
}

/// How one grid cell reached its row slot.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// Simulated to completion this run.
    Completed,
    /// Replayed from the checkpoint journal without re-simulating.
    Cached,
    /// Panicked on every allowed attempt ([`GridRun::max_retries`]); the
    /// row slot holds a zeroed placeholder.
    Quarantined(CellError),
    /// Abandoned for exceeding [`GridRun::deadline`]; the row slot holds
    /// a zeroed placeholder.
    TimedOut(CellError),
}

impl CellOutcome {
    /// The failure behind a quarantined or timed-out cell, if any.
    pub fn error(&self) -> Option<&CellError> {
        match self {
            CellOutcome::Completed | CellOutcome::Cached => None,
            CellOutcome::Quarantined(e) | CellOutcome::TimedOut(e) => Some(e),
        }
    }

    /// `true` for the cells whose row slot is a placeholder, not a
    /// simulated result.
    pub fn is_failure(&self) -> bool {
        self.error().is_some()
    }
}

/// The outcome of a [`GridRun`].
#[derive(Debug, Clone)]
pub struct GridResult {
    /// `rows[workload][platform]`, in input order.
    pub rows: Vec<Vec<SimReport>>,
    /// Per-cell wall-clock profiles in row-major cell order; `Some`
    /// only when [`GridRun::profile`] was requested.
    pub profiles: Option<Vec<CellProfile>>,
    /// Per-cell outcomes in row-major cell order — how each row slot
    /// was produced. All [`CellOutcome::Completed`] for a plain strict
    /// run.
    pub outcomes: Vec<CellOutcome>,
}

impl GridResult {
    /// Order-sensitive content digest over every report in the grid —
    /// the golden value behind the resume-bit-identity guarantee: a
    /// resumed run's digest equals an uninterrupted run's.
    pub fn digest(&self) -> u64 {
        checkpoint::grid_digest(self.rows.iter().flatten())
    }

    /// The quarantined and timed-out cells, in row-major order.
    pub fn failures(&self) -> impl Iterator<Item = &CellError> {
        self.outcomes.iter().filter_map(CellOutcome::error)
    }
}

/// Splits a flat row-major cell vector into `rows[workload][platform]`.
fn chunk_rows(cells: Vec<SimReport>, cols: usize) -> Vec<Vec<SimReport>> {
    if cols == 0 {
        return Vec::new();
    }
    let mut rows: Vec<Vec<SimReport>> = Vec::with_capacity(cells.len() / cols);
    let mut cells = cells.into_iter();
    loop {
        let row: Vec<SimReport> = cells.by_ref().take(cols).collect();
        if row.is_empty() {
            return rows;
        }
        rows.push(row);
    }
}

/// Wall-clock profile of one grid cell — harness-side reporting only;
/// the [`SimReport`] itself never carries wall-clock time, so simulated
/// results stay deterministic.
#[derive(Debug, Clone)]
pub struct CellProfile {
    /// Platform simulated in this cell.
    pub platform: Platform,
    /// Workload name.
    pub workload: String,
    /// Host wall-clock time the cell's simulation took.
    pub wall: std::time::Duration,
    /// Simulated makespan of the cell.
    pub sim_makespan: ohm_sim::Ps,
    /// Simulation throughput: retired instructions + memory requests
    /// processed per host second.
    pub events_per_sec: f64,
}

impl CellProfile {
    fn new(report: &SimReport, wall: std::time::Duration) -> Self {
        let events = report.instructions + report.mem_requests;
        CellProfile {
            platform: report.platform,
            workload: report.workload.clone(),
            wall,
            sim_makespan: report.makespan,
            events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        }
    }
}

/// Renders cell profiles as a fixed-width table (one line per cell plus
/// a total), for printing to stderr after a grid run.
pub fn format_profiles(profiles: &[CellProfile]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<10} {:>10} {:>12} {:>14}",
        "platform", "workload", "wall_ms", "sim_us", "events/sec"
    );
    for p in profiles {
        let _ = writeln!(
            out,
            "{:<12} {:<10} {:>10.1} {:>12.1} {:>14.0}",
            p.platform.name(),
            p.workload,
            p.wall.as_secs_f64() * 1e3,
            p.sim_makespan.as_us_f64(),
            p.events_per_sec
        );
    }
    let total: f64 = profiles.iter().map(|p| p.wall.as_secs_f64()).sum();
    let _ = writeln!(
        out,
        "total wall: {:.2}s over {} cells",
        total,
        profiles.len()
    );
    out
}

/// Geometric mean of a positive series (0 for an empty one).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Normalises each row of a grid to the column `baseline` (e.g. IPC
/// normalised to Ohm-base, as in Figure 16).
///
/// A stalled baseline cell (IPC ≤ 0, or non-finite) yields `0.0` for
/// its whole row rather than Inf/NaN — the ratio-metric policy
/// throughout the workspace is that degenerate denominators report a
/// finite zero, so [`column_geomeans`] stays finite.
pub fn normalize_ipc(grid: &[Vec<SimReport>], baseline: usize) -> Vec<Vec<f64>> {
    grid.iter()
        .map(|row| {
            let base = row[baseline].ipc;
            if base <= 0.0 || !base.is_finite() {
                return vec![0.0; row.len()];
            }
            row.iter().map(|r| r.ipc / base).collect()
        })
        .collect()
}

/// Per-column geometric mean across workloads of a normalised grid.
pub fn column_geomeans(normalized: &[Vec<f64>]) -> Vec<f64> {
    if normalized.is_empty() {
        return Vec::new();
    }
    let cols = normalized[0].len();
    (0..cols)
        .map(|c| {
            let col: Vec<f64> = normalized.iter().map(|row| row[c]).collect();
            geomean(&col)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohm_workloads::workload_by_name;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn grid_shape_and_normalisation() {
        let cfg = SystemConfig::quick_test();
        let specs = vec![workload_by_name("lud").unwrap()];
        let platforms = [Platform::OhmBase, Platform::Oracle];
        let grid = GridRun::new()
            .run(&cfg, &platforms, OperationalMode::Planar, &specs)
            .rows;
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].len(), 2);
        let norm = normalize_ipc(&grid, 0);
        assert!((norm[0][0] - 1.0).abs() < 1e-12);
        let means = column_geomeans(&norm);
        assert_eq!(means.len(), 2);
        assert!((means[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_profile_matches_rows() {
        let cfg = SystemConfig::quick_test();
        let specs = vec![workload_by_name("lud").unwrap()];
        let platforms = [Platform::OhmBase, Platform::Oracle];
        let result =
            GridRun::serial()
                .profile(true)
                .run(&cfg, &platforms, OperationalMode::Planar, &specs);
        let profiles = result.profiles.expect("profiles requested");
        assert_eq!(profiles.len(), 2);
        for (p, r) in profiles.iter().zip(&result.rows[0]) {
            assert_eq!(p.platform, r.platform);
            assert_eq!(p.workload, r.workload);
            assert_eq!(p.sim_makespan, r.makespan);
            assert!(p.events_per_sec > 0.0);
        }
        // Unprofiled runs carry no profiles.
        let plain = GridRun::serial().run(&cfg, &platforms, OperationalMode::Planar, &specs);
        assert!(plain.profiles.is_none());
    }

    #[test]
    fn normalize_ipc_guards_zero_baseline() {
        let cfg = SystemConfig::quick_test();
        let spec = workload_by_name("lud").unwrap();
        let proto = Run::new(&cfg).workload(&spec).execute();
        let report = |ipc: f64| {
            let mut r = proto.clone();
            r.ipc = ipc;
            r
        };
        let grid = vec![
            vec![report(2.0), report(1.0)],
            vec![report(3.0), report(0.0)],
        ];
        let norm = normalize_ipc(&grid, 1);
        assert_eq!(norm[0], vec![2.0, 1.0]);
        // Zero baseline: whole row reports finite zero, not Inf/NaN.
        assert_eq!(norm[1], vec![0.0, 0.0]);
        let means = column_geomeans(&norm);
        assert!(means.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn grid_cell_threads_is_bit_identical_and_budgeted() {
        let cfg = SystemConfig::quick_test();
        let specs = vec![workload_by_name("pagerank").unwrap()];
        let platforms = [Platform::OhmBase, Platform::Oracle];
        let reference = GridRun::serial()
            .cell_threads(1)
            .run(&cfg, &platforms, OperationalMode::Planar, &specs)
            .rows;
        // Grid workers × cell workers together; strict mode keeps the
        // reports bit-identical while the budget caps oversubscription.
        let sharded = GridRun::new()
            .threads(2)
            .cell_threads(8)
            .run(&cfg, &platforms, OperationalMode::Planar, &specs)
            .rows;
        assert_eq!(reference, sharded);
    }

    #[test]
    fn chunking_handles_empty_grids() {
        assert!(chunk_rows(Vec::new(), 3).is_empty());
        assert!(chunk_rows(Vec::new(), 0).is_empty());
    }
}
