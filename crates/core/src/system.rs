//! The event-driven full-system model.
//!
//! [`System`] assembles one of the seven evaluated platforms around a
//! Table II workload and runs it to completion. Warps are the units of
//! progress: each warp alternates compute segments (booked on its SM's
//! issue pipeline) and memory accesses (resolved through L1 → L2 → memory
//! controller → channel → device, with platform-specific migration
//! machinery). Timing is resolved synchronously through calendar
//! resources; the event queue only carries warp resumptions and migration
//! completions, which keeps runs fast while preserving FCFS contention at
//! every shared resource.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use ohm_hetero::{
    ConflictDetector, MigrationCaps, PlanarConfig, PlanarLocation, PlanarMapping, Platform,
    SwapRequest, TwoLevelCache, TwoLevelConfig, TwoLevelOutcome,
};
use ohm_mem::protocol::SwapCmd;
use ohm_mem::{DdrMonitor, DdrSequenceGenerator, DramModule, MemKind, XPointController};
use ohm_optic::{
    DualRouteMode, ElectricalChannel, OperationalMode, OpticalChannel, OpticalChannelConfig,
    TrafficClass,
};
use ohm_sim::{Addr, EventQueue, Ps, RunningStats, TimeSeries};
use ohm_sm::{AccessKind, Cache, InstructionStream, Interconnect, Sm, WarpId, WarpState};

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("platform", &self.platform)
            .field("mode", &self.mode)
            .field("workload", &self.spec.name)
            .field("sms", &self.sms.len())
            .field("now", &self.queue.now())
            .finish_non_exhaustive()
    }
}
use ohm_workloads::{HostStorage, HostStorageConfig, KernelWorkload, WorkloadSpec};

use crate::config::SystemConfig;
use crate::energy::{energy_report, EnergyInputs};
use crate::metrics::{HostReport, SimReport};

/// Command/address bits preceding each data burst on the channel.
const CMD_BITS: u64 = 64;
/// Device indices on a virtual channel, for demux-arbitration tracking.
const DEV_DRAM: usize = 0;
const DEV_XPOINT: usize = 1;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A warp is ready to fetch its next slice.
    Resume(WarpId),
    /// A delegated migration released its pages.
    MigrationDone { mc: usize, id: u64 },
}

/// Either channel technology behind a uniform transfer interface.
#[derive(Debug)]
enum Channel {
    Optical(OpticalChannel),
    Electrical(ElectricalChannel),
}

impl Channel {
    fn xfer(
        &mut self,
        now: Ps,
        ch: usize,
        bits: u64,
        class: TrafficClass,
        device: usize,
    ) -> (Ps, Ps) {
        match self {
            Channel::Optical(c) => c.transfer(now, ch, bits, class, device),
            Channel::Electrical(c) => c.transfer(now, ch, bits, class),
        }
    }

    fn memory_route(&mut self, now: Ps, ch: usize, bits: u64) -> (Ps, Ps) {
        match self {
            Channel::Optical(c) => c.memory_route_transfer(now, ch, bits),
            Channel::Electrical(_) => {
                unreachable!("electrical platforms never use the memory route")
            }
        }
    }

    fn migration_fraction(&self) -> f64 {
        match self {
            Channel::Optical(c) => c.migration_fraction(),
            Channel::Electrical(c) => c.migration_fraction(),
        }
    }

    fn utilization(&self, horizon: Ps) -> f64 {
        match self {
            Channel::Optical(c) => c.utilization(horizon),
            Channel::Electrical(c) => {
                if horizon == Ps::ZERO {
                    0.0
                } else {
                    let per = c.busy_time().as_ps() as f64 / c.config().channels as f64;
                    per / horizon.as_ps() as f64
                }
            }
        }
    }

    fn bits(&self) -> (u64, u64) {
        match self {
            Channel::Optical(c) => (
                c.bits_by_class(TrafficClass::Demand),
                c.bits_by_class(TrafficClass::Migration),
            ),
            Channel::Electrical(c) => (
                c.bits_by_class(TrafficClass::Demand),
                c.bits_by_class(TrafficClass::Migration),
            ),
        }
    }
}

/// Origin's resident-set manager: FIFO replacement at *segment*
/// granularity (applications stage whole buffers with cudaMemcpy-style
/// transfers, not single pages) over the scaled 24 GB GPU memory,
/// backed by the host/SSD path.
#[derive(Debug)]
struct ResidentSet {
    capacity_segments: usize,
    segment_bytes: u64,
    /// segment -> last-touch stamp (LRU replacement).
    resident: HashMap<u64, u64>,
    dirty: HashSet<u64>,
    clock: u64,
}

impl ResidentSet {
    /// Creates a resident set pre-warmed with the first `capacity`
    /// segments: the initial input staging happens before the kernel
    /// launches (a cudaMemcpy ahead of the timed region), so the kernel
    /// only pays for capacity misses — the thrashing the paper's
    /// breakdown attributes to the too-small GPU memory.
    fn new(capacity_segments: usize, segment_bytes: u64) -> Self {
        let capacity = capacity_segments.max(1);
        ResidentSet {
            capacity_segments: capacity,
            segment_bytes,
            resident: (0..capacity as u64).map(|s| (s, 0)).collect(),
            dirty: HashSet::new(),
            clock: 0,
        }
    }

    /// Returns whether the access faulted, plus the evicted segment (and
    /// whether it was dirty) when an eviction was needed.
    fn touch(&mut self, addr: Addr, is_write: bool) -> (bool, Option<(u64, bool)>) {
        let seg = addr.block_index(self.segment_bytes);
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&seg) {
            *stamp = self.clock;
            if is_write {
                self.dirty.insert(seg);
            }
            return (false, None);
        }
        let evicted = if self.resident.len() >= self.capacity_segments {
            let victim = self
                .resident
                .iter()
                .min_by_key(|&(_, &stamp)| stamp)
                .map(|(&s, _)| s)
                .expect("resident set non-empty at capacity");
            self.resident.remove(&victim);
            let was_dirty = self.dirty.remove(&victim);
            Some((victim, was_dirty))
        } else {
            None
        };
        self.resident.insert(seg, self.clock);
        if is_write {
            self.dirty.insert(seg);
        }
        (true, evicted)
    }
}

/// One memory controller and the devices behind it.
#[derive(Debug)]
struct MemoryController {
    ctrl: ohm_sim::Calendar,
    dram: DramModule,
    xpoint: Option<XPointController>,
    planar: Option<PlanarMapping>,
    two_level: Option<TwoLevelCache>,
    conflicts: ConflictDetector,
    /// DDR sequence generator (swap function, in the XPoint controller).
    ddr_seq: DdrSequenceGenerator,
    /// DDR monitor (reverse write, in the memory controller).
    ddr_monitor: DdrMonitor,
    /// Completion times of in-flight misses (MSHR occupancy).
    outstanding: BinaryHeap<Reverse<u64>>,
    mshr_stalls: u64,
    migrations: u64,
    dram_service_hits: u64,
    service_total: u64,
}

/// The assembled full system.
///
/// # Example
///
/// ```
/// use ohm_core::config::SystemConfig;
/// use ohm_core::system::System;
/// use ohm_hetero::Platform;
/// use ohm_optic::OperationalMode;
/// use ohm_workloads::workload_by_name;
///
/// let cfg = SystemConfig::quick_test();
/// let spec = workload_by_name("lud").unwrap();
/// let mut sys = System::new(&cfg, Platform::OhmBase, OperationalMode::TwoLevel, &spec);
/// let report = sys.run();
/// assert!(report.instructions > 0);
/// ```
pub struct System {
    cfg: SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    caps: MigrationCaps,
    spec: WorkloadSpec,
    queue: EventQueue<Event>,
    stream: Box<dyn InstructionStream>,
    sms: Vec<Sm>,
    l1s: Vec<Cache>,
    l2: Cache,
    xbar: Interconnect,
    mcs: Vec<MemoryController>,
    channel: Channel,
    host: Option<HostStorage>,
    residents: Option<ResidentSet>,
    in_flight: HashMap<u64, Ps>,
    mem_latency: RunningStats,
    slice_latency: RunningStats,
    /// Demand bytes entering the memory controllers, over time.
    demand_timeline: TimeSeries,
    dram_read_latency: RunningStats,
    xpoint_read_latency: RunningStats,
    stall_latency: RunningStats,
    xp_cmd_stage: RunningStats,
    xp_dev_stage: RunningStats,
    xp_resp_stage: RunningStats,
    swap_window: RunningStats,
    mem_requests: u64,
    /// When the last warp retired its final instruction (the kernel's
    /// completion time; bookkeeping events may trail it).
    kernel_end: Ps,
    dram_capacity: u64,
    xpoint_capacity: u64,
}

impl System {
    /// Builds a platform around a workload.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero controllers, footprint
    /// smaller than one page per controller, mismatched line sizes).
    pub fn new(
        cfg: &SystemConfig,
        platform: Platform,
        mode: OperationalMode,
        spec: &WorkloadSpec,
    ) -> Self {
        let stream = Box::new(KernelWorkload::new(
            *spec,
            cfg.gpu.sms,
            cfg.gpu.sm.warps,
            cfg.insts_per_warp,
            cfg.seed,
        ));
        Self::with_stream(cfg, platform, mode, spec, stream)
    }

    /// Builds a platform around an arbitrary instruction stream (e.g. a
    /// replayed [`ohm_workloads::TraceWorkload`]); `spec` still provides
    /// the footprint (for capacity sizing) and the report's name.
    pub fn with_stream(
        cfg: &SystemConfig,
        platform: Platform,
        mode: OperationalMode,
        spec: &WorkloadSpec,
        stream: Box<dyn InstructionStream>,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid system configuration: {e}");
        }
        let controllers = cfg.memory.controllers;
        let page = cfg.memory.page_bytes;
        let footprint_pages = (spec.footprint_bytes / page).max(1);
        let pages_per_mc = footprint_pages.div_ceil(controllers as u64);

        // Per-MC capacities, preserving the mode's capacity ratios.
        let (dram_local, xp_local) = match (platform.is_heterogeneous(), mode) {
            (true, OperationalMode::Planar) => {
                let group = cfg.memory.planar_ratio as u64 + 1;
                let groups = pages_per_mc.div_ceil(group);
                (groups * page, groups * cfg.memory.planar_ratio as u64 * page)
            }
            (true, OperationalMode::TwoLevel) => {
                let span = pages_per_mc * page;
                let dram = (span / (cfg.memory.two_level_ratio as u64 + 1))
                    .next_power_of_two()
                    .max(cfg.line_bytes);
                (dram, span)
            }
            (false, _) => match platform {
                Platform::Origin => {
                    let span = pages_per_mc * page;
                    let dram = ((span as f64 * cfg.memory.origin_resident_fraction) as u64)
                        .max(page);
                    (dram, 0)
                }
                _ => (pages_per_mc * page, 0), // Oracle: all-DRAM
            },
        };

        // Every platform presents the same per-channel DRAM interface
        // (dual-rank modules); capacity differences change how much data
        // fits, not the pin-side bank parallelism.
        let dram_cfg = ohm_mem::DramConfig {
            timing: cfg.memory.dram_timing,
            banks: cfg.memory.dram_banks,
            ranks: cfg.memory.dram_ranks,
            row_bytes: 2048,
            capacity_bytes: dram_local.max(2048),
            refresh_enabled: true,
        };
        let xp_cfg = ohm_mem::xpoint_ctrl::XpCtrlConfig {
            media: ohm_mem::XPointConfig {
                capacity_bytes: xp_local.max(page),
                line_bytes: cfg.line_bytes,
                ..cfg.memory.xpoint.media
            },
            ..cfg.memory.xpoint
        };

        let caps = platform.migration_caps();
        let mcs = (0..controllers)
            .map(|_| MemoryController {
                ctrl: ohm_sim::Calendar::new(),
                dram: DramModule::new(dram_cfg),
                xpoint: platform
                    .is_heterogeneous()
                    .then(|| XPointController::new(xp_cfg)),
                planar: (platform.is_heterogeneous() && mode == OperationalMode::Planar).then(
                    || {
                        PlanarMapping::new(PlanarConfig {
                            page_bytes: page,
                            ratio: cfg.memory.planar_ratio,
                            hot_threshold: cfg.memory.hot_threshold,
                            capacity_bytes: pages_per_mc
                                .div_ceil(cfg.memory.planar_ratio as u64 + 1)
                                * (cfg.memory.planar_ratio as u64 + 1)
                                * page,
                        })
                    },
                ),
                two_level: (platform.is_heterogeneous() && mode == OperationalMode::TwoLevel)
                    .then(|| {
                        TwoLevelCache::new(TwoLevelConfig {
                            dram_bytes: dram_local.max(cfg.line_bytes),
                            xpoint_bytes: xp_local.max(page),
                            line_bytes: cfg.line_bytes,
                        })
                    }),
                conflicts: ConflictDetector::new(page),
                ddr_seq: DdrSequenceGenerator::new(cfg.line_bytes),
                ddr_monitor: DdrMonitor::new(),
                outstanding: BinaryHeap::new(),
                mshr_stalls: 0,
                migrations: 0,
                dram_service_hits: 0,
                service_total: 0,
            })
            .collect();

        // WOM coding exists to share a light between the memory controller
        // and the swap function (Section V-B) — planar mode only. The
        // two-level mode's auto-read/write + reverse-write use half-coupled
        // MRR *receivers* (Figure 15b) and carry no coding penalty.
        let dual_route = if caps.swap || caps.reverse_write || caps.auto_rw {
            if caps.wom_coding && mode == OperationalMode::Planar {
                DualRouteMode::Wom
            } else {
                DualRouteMode::HalfCoupled
            }
        } else {
            DualRouteMode::Serialized
        };

        let channel = match platform {
            Platform::Origin | Platform::Hetero => {
                Channel::Electrical(ElectricalChannel::new(cfg.electrical))
            }
            _ => Channel::Optical(OpticalChannel::new(OpticalChannelConfig {
                dual_route,
                ..cfg.optical
            })),
        };

        let host = matches!(platform, Platform::Origin).then(|| {
            let base = HostStorageConfig::default();
            let k = cfg.memory.host_scale.max(1.0);
            HostStorage::new(HostStorageConfig {
                ssd_read_latency: base.ssd_read_latency.scale(1.0 / k),
                ssd_write_latency: base.ssd_write_latency.scale(1.0 / k),
                ssd_bandwidth_bps: (base.ssd_bandwidth_bps as f64 * k) as u64,
                dma_bandwidth_bps: (base.dma_bandwidth_bps as f64 * k) as u64,
                dma_setup: base.dma_setup.scale(1.0 / k),
            })
        });
        let residents = matches!(platform, Platform::Origin).then(|| {
            let seg = cfg.memory.origin_segment_bytes;
            let capacity_bytes =
                (spec.footprint_bytes as f64 * cfg.memory.origin_resident_fraction) as u64;
            ResidentSet::new(((capacity_bytes / seg) as usize).max(2), seg)
        });

        System {
            platform,
            mode,
            caps,
            spec: *spec,
            queue: EventQueue::with_capacity(cfg.gpu.sms * cfg.gpu.sm.warps),
            stream,
            sms: (0..cfg.gpu.sms).map(|_| Sm::new(cfg.gpu.sm)).collect(),
            l1s: (0..cfg.gpu.sms).map(|_| Cache::new(cfg.gpu.l1)).collect(),
            l2: Cache::new(cfg.gpu.l2),
            xbar: Interconnect::new(cfg.gpu.xbar),
            mcs,
            channel,
            host,
            residents,
            in_flight: HashMap::new(),
            mem_latency: RunningStats::new(),
            slice_latency: RunningStats::new(),
            demand_timeline: TimeSeries::new(Ps::from_us(10)),
            dram_read_latency: RunningStats::new(),
            xpoint_read_latency: RunningStats::new(),
            stall_latency: RunningStats::new(),
            xp_cmd_stage: RunningStats::new(),
            xp_dev_stage: RunningStats::new(),
            xp_resp_stage: RunningStats::new(),
            swap_window: RunningStats::new(),
            mem_requests: 0,
            kernel_end: Ps::ZERO,
            dram_capacity: dram_local * controllers as u64,
            xpoint_capacity: xp_local * controllers as u64,
            cfg: cfg.clone(),
        }
    }

    /// Runs the kernel to completion and reports.
    pub fn run(&mut self) -> SimReport {
        for sm in 0..self.cfg.gpu.sms {
            for warp in 0..self.cfg.gpu.sm.warps {
                self.queue.push(Ps::ZERO, Event::Resume(WarpId { sm, warp }));
            }
        }
        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                Event::Resume(w) => self.step_warp(t, w),
                Event::MigrationDone { mc, id } => self.mcs[mc].conflicts.complete(id),
            }
        }
        self.report()
    }

    fn step_warp(&mut self, now: Ps, w: WarpId) {
        if self.sms[w.sm].warp_state(w.warp) == WarpState::Blocked {
            self.sms[w.sm].unblock(w.warp);
        }
        let Some(slice) = self.stream.next_slice(w.sm, w.warp) else {
            self.sms[w.sm].finish(w.warp);
            self.kernel_end = self.kernel_end.max(now);
            return;
        };
        let after_compute = self.sms[w.sm].issue_compute(now, w.warp, slice.compute_insts);
        match slice.access {
            None => self.queue.push(after_compute, Event::Resume(w)),
            Some((addr, kind)) => {
                self.sms[w.sm].block_on_memory(w.warp);
                let resume_at = self.memory_access(after_compute, w, addr, kind);
                self.slice_latency.push_ps(resume_at - now);
                self.queue.push(resume_at, Event::Resume(w));
            }
        }
    }

    /// Resolves one warp memory access, returning when the warp resumes.
    fn memory_access(&mut self, now: Ps, w: WarpId, addr: Addr, kind: AccessKind) -> Ps {
        let line_addr = addr.align_down(self.cfg.line_bytes);
        let one_cycle = self.cfg.gpu.sm.freq.period();

        if kind.is_load()
            && self.l1s[w.sm].access(line_addr, false).hit {
                return now + self.cfg.gpu.l1_hit_latency;
            }

        // To L2 over the crossbar.
        let mc = self.mc_of(line_addr);
        let at_l2 = self.xbar.traverse(now + self.cfg.gpu.l1_hit_latency, mc, CMD_BITS / 8);
        let l2_done = at_l2 + self.cfg.gpu.l2_hit_latency;
        let lookup = self.l2.access(line_addr, !kind.is_load());

        // Dirty L2 victim: background write to memory.
        if let Some(victim) = lookup.writeback {
            let vmc = self.mc_of(victim);
            self.memory_write(l2_done, vmc, victim);
        }

        if lookup.hit {
            return if kind.is_load() {
                
                self.xbar.traverse(l2_done, mc, self.cfg.line_bytes)
            } else {
                now + one_cycle
            };
        }

        // L2 miss: go to memory (loads block; stores write through the fill).
        if kind.is_load() {
            let data_at_mc = self.memory_read(l2_done, mc, line_addr);
            
            self.xbar.traverse(data_at_mc, mc, self.cfg.line_bytes)
        } else {
            self.memory_write(l2_done, mc, line_addr);
            now + one_cycle
        }
    }

    fn mc_of(&self, addr: Addr) -> usize {
        (addr.block_index(self.cfg.memory.interleave_bytes)
            % self.cfg.memory.controllers as u64) as usize
    }

    /// Translates a global address to the controller-local address space.
    fn local_addr(&self, addr: Addr) -> Addr {
        let il = self.cfg.memory.interleave_bytes;
        let chunk = addr.block_index(il) / self.cfg.memory.controllers as u64;
        Addr::from_block(chunk, il).offset(addr.offset_in(il))
    }

    /// A demand read reaching memory controller `mc`; returns when data is
    /// back at the controller.
    fn memory_read(&mut self, now: Ps, mc: usize, addr: Addr) -> Ps {
        let line = addr.block_index(self.cfg.line_bytes);
        if let Some(&done) = self.in_flight.get(&line) {
            if done > now {
                return done; // MSHR merge with the outstanding fill
            }
            self.in_flight.remove(&line);
        }
        self.mem_requests += 1;
        self.demand_timeline.record(now, self.cfg.line_bytes as f64);
        // MSHR file: a full set of outstanding misses delays this one
        // until the earliest in-flight miss completes.
        let now = {
            let m = &mut self.mcs[mc];
            while m.outstanding.peek().is_some_and(|&Reverse(t)| t <= now.as_ps()) {
                m.outstanding.pop();
            }
            if m.outstanding.len() >= self.cfg.memory.mshr_per_mc {
                m.mshr_stalls += 1;
                match m.outstanding.pop() {
                    Some(Reverse(t)) => now.max(Ps::from_ps(t)),
                    None => now,
                }
            } else {
                now
            }
        };
        let (_, t0) = self.mcs[mc].ctrl.book(now, self.cfg.memory.mc_overhead);
        let done = self.service(t0, mc, addr, MemKind::Read);
        self.mcs[mc].outstanding.push(Reverse(done.as_ps()));
        self.mem_latency.push_ps(done - now);
        self.in_flight.insert(line, done);
        done
    }

    /// A write reaching memory controller `mc` (stores, L2 writebacks).
    fn memory_write(&mut self, now: Ps, mc: usize, addr: Addr) {
        let (_, t0) = self.mcs[mc].ctrl.book(now, self.cfg.memory.mc_overhead);
        let _ = self.service(t0, mc, addr, MemKind::Write);
    }

    /// Platform/mode-dependent service of one line request at one MC.
    /// `ga` is the global line address.
    fn service(&mut self, now: Ps, mc: usize, ga: Addr, kind: MemKind) -> Ps {
        self.mcs[mc].service_total += 1;
        let la = self.local_addr(ga);
        match self.platform {
            Platform::Origin => self.service_origin_at(now, mc, ga, la, kind),
            Platform::Oracle => {
                self.mcs[mc].dram_service_hits += 1;
                self.dram_line_rt(now, mc, la, kind)
            }
            _ => match self.mode {
                OperationalMode::Planar => self.service_planar(now, mc, la, kind),
                OperationalMode::TwoLevel => self.service_two_level(now, mc, la, kind),
            },
        }
    }

    /// Round-trip of one line to the DRAM device: command, bank access,
    /// and (for reads) the data burst back.
    fn dram_line_rt(&mut self, now: Ps, mc: usize, la: Addr, kind: MemKind) -> Ps {
        let line_bits = self.cfg.line_bytes * 8;
        match kind {
            MemKind::Read => {
                let (_, cmd_done) =
                    self.channel.xfer(now, mc, CMD_BITS, TrafficClass::Demand, DEV_DRAM);
                let acc = self.mcs[mc].dram.access(cmd_done, la, kind);
                let (_, data_done) = self.channel.xfer(
                    acc.data_at,
                    mc,
                    line_bits,
                    TrafficClass::Demand,
                    DEV_DRAM,
                );
                data_done
            }
            MemKind::Write => {
                let (_, xfer_done) = self.channel.xfer(
                    now,
                    mc,
                    CMD_BITS + line_bits,
                    TrafficClass::Demand,
                    DEV_DRAM,
                );
                self.mcs[mc].dram.access(xfer_done, la, kind).data_at
            }
        }
    }

    /// Round-trip of one line to the XPoint device.
    fn xpoint_line_rt(&mut self, now: Ps, mc: usize, la: Addr, kind: MemKind) -> Ps {
        let line_bits = self.cfg.line_bytes * 8;
        match kind {
            MemKind::Read => {
                let (_, cmd_done) =
                    self.channel.xfer(now, mc, CMD_BITS, TrafficClass::Demand, DEV_XPOINT);
                let ready = {
                    let xp = self.mcs[mc].xpoint.as_mut().expect("heterogeneous platform");
                    xp.read(cmd_done, la).ready_at
                };
                let (_, data_done) =
                    self.channel.xfer(ready, mc, line_bits, TrafficClass::Demand, DEV_XPOINT);
                self.xp_cmd_stage.push_ps(cmd_done - now);
                self.xp_dev_stage.push_ps(ready - cmd_done);
                self.xp_resp_stage.push_ps(data_done - ready);
                data_done
            }
            MemKind::Write => {
                let (_, xfer_done) = self.channel.xfer(
                    now,
                    mc,
                    CMD_BITS + line_bits,
                    TrafficClass::Demand,
                    DEV_XPOINT,
                );
                let xp = self.mcs[mc].xpoint.as_mut().expect("heterogeneous platform");
                xp.write(xfer_done, la).ready_at
            }
        }
    }

    /// Origin: check global residency (staging over the host path on a
    /// fault), then serve from GPU DRAM. `ga` is the global address, `la`
    /// the controller-local one.
    fn service_origin_at(
        &mut self,
        now: Ps,
        mc: usize,
        ga: Addr,
        la: Addr,
        kind: MemKind,
    ) -> Ps {
        let seg_bytes = self.cfg.memory.origin_segment_bytes;
        let (fault, evicted) = self
            .residents
            .as_mut()
            .expect("origin platform tracks residency")
            .touch(ga, matches!(kind, MemKind::Write));
        let mut ready = now;
        if fault {
            let host = self.host.as_mut().expect("origin platform has a host");
            if let Some((_victim, true)) = evicted {
                host.stage_out(now, seg_bytes);
            }
            ready = host.stage_in(now, seg_bytes).transfer_done;
        } else {
            self.mcs[mc].dram_service_hits += 1;
        }
        self.dram_line_rt(ready, mc, la, kind)
    }

    fn service_planar(&mut self, now: Ps, mc: usize, la: Addr, kind: MemKind) -> Ps {
        let swap = self.mcs[mc].planar.as_mut().expect("planar mode").record_access(la);
        if let Some(req) = swap {
            self.schedule_planar_swap(now, mc, req);
        }
        let loc = self.mcs[mc].planar.as_ref().expect("planar mode").lookup(la);
        match loc {
            PlanarLocation::Dram(pa) => {
                // While the page's swap is still in flight the data lives
                // at its old XPoint location; serve from the stale copy
                // rather than stalling (the remap commits at swap end).
                if let Some(r) = self.mcs[mc].conflicts.redirect_dram(pa) {
                    let done = self.xpoint_line_rt(now, mc, r.paired, kind);
                    if kind.is_read() {
                        self.xpoint_read_latency.push_ps(done - now);
                    }
                    return done;
                }
                self.mcs[mc].dram_service_hits += 1;
                let done = self.dram_line_rt(now, mc, pa, kind);
                if kind.is_read() {
                    self.dram_read_latency.push_ps(done - now);
                }
                done
            }
            PlanarLocation::XPoint(pa) => {
                if let Some(r) = self.mcs[mc].conflicts.redirect_xpoint(pa) {
                    self.mcs[mc].dram_service_hits += 1;
                    let done = self.dram_line_rt(now, mc, r.paired, kind);
                    if kind.is_read() {
                        self.dram_read_latency.push_ps(done - now);
                    }
                    return done;
                }
                let done = self.xpoint_line_rt(now, mc, pa, kind);
                if kind.is_read() {
                    self.xpoint_read_latency.push_ps(done - now);
                }
                done
            }
        }
    }

    /// Books the DRAM side of a page copy: `lines` consecutive line
    /// accesses (mostly row hits), returning the last completion.
    fn dram_page_op(&mut self, start: Ps, mc: usize, base: Addr, kind: MemKind) -> Ps {
        let lines = self.cfg.memory.page_bytes / self.cfg.line_bytes;
        let mut done = start;
        for i in 0..lines {
            let acc =
                self.mcs[mc].dram.access(start, base.offset(i * self.cfg.line_bytes), kind);
            done = done.max(acc.data_at);
        }
        done
    }

    /// Registers the two pages of a swap with *independent* release
    /// times: the promoted page is DRAM-served once the promote leg's
    /// DRAM write completes, regardless of how long the (cold) demoted
    /// page's XPoint write stays buffered.
    fn register_swap_pages(
        &mut self,
        mc: usize,
        req: &SwapRequest,
        promote_done: Ps,
        demote_done: Ps,
    ) {
        let id1 = self.mcs[mc].conflicts.register_dram_page(
            req.dram_addr,
            req.xpoint_addr,
            promote_done,
        );
        self.queue.push(promote_done, Event::MigrationDone { mc, id: id1 });
        let id2 = self.mcs[mc].conflicts.register_xpoint_page(
            req.xpoint_addr,
            req.dram_addr,
            demote_done,
        );
        self.queue.push(demote_done, Event::MigrationDone { mc, id: id2 });
    }

    fn schedule_planar_swap(&mut self, now: Ps, mc: usize, req: SwapRequest) {
        let page_bits = req.page_bytes * 8;
        let lines = req.page_bytes / self.cfg.line_bytes;
        self.mcs[mc].migrations += 1;

        if self.caps.swap {
            // SWAP-CMD metadata on the data route; the copy itself rides
            // the memory route under the XPoint controller's DDR sequence
            // generator (Figures 10a and 11).
            let (_, cmd_done) = self.channel.xfer(
                now,
                mc,
                SwapCmd::METADATA_BITS,
                TrafficClass::Migration,
                DEV_XPOINT,
            );
            let preset = self.mcs[mc].dram.preset_row(cmd_done, req.dram_addr);
            let promote_read = {
                let xp = self.mcs[mc].xpoint.as_mut().expect("planar");
                xp.read_page(cmd_done, req.xpoint_addr, lines).ready_at
            };
            let (_, to_dram) =
                self.channel.memory_route(promote_read.max(preset), mc, page_bits);
            // The XPoint controller's DDR sequence generator drives the
            // DRAM transactions directly (Figure 11, steps 3-4).
            let dram_written = {
                let m = &mut self.mcs[mc];
                m.ddr_seq.execute_page(&mut m.dram, to_dram, req.dram_addr, req.page_bytes, MemKind::Write)
            };
            let dram_read = {
                let m = &mut self.mcs[mc];
                m.ddr_seq.execute_page(&mut m.dram, preset, req.dram_addr, req.page_bytes, MemKind::Read)
            };
            let (_, to_xp) = self.channel.memory_route(dram_read, mc, page_bits);
            let xp_written = {
                let xp = self.mcs[mc].xpoint.as_mut().expect("planar");
                xp.write_page(to_xp, req.xpoint_addr, lines).ready_at
            };
            self.swap_window.push_ps(dram_written - now);
            self.register_swap_pages(mc, &req, dram_written, xp_written);
        } else if self.caps.auto_rw {
            // Reads before writes: the XPoint controller prioritises
            // latency-critical reads over buffered write drains, so the
            // promote leg's page read is booked first.
            //
            // Promote leg runs through the controller: XP -> MC -> DRAM.
            let promote_read = {
                let xp = self.mcs[mc].xpoint.as_mut().expect("planar");
                xp.read_page(now, req.xpoint_addr, lines).ready_at
            };
            let (_, up) = self.channel.xfer(
                promote_read,
                mc,
                page_bits,
                TrafficClass::Migration,
                DEV_XPOINT,
            );
            let (_, down) =
                self.channel.xfer(up, mc, page_bits, TrafficClass::Migration, DEV_DRAM);
            let dram_written = self.dram_page_op(down, mc, req.dram_addr, MemKind::Write);
            // Demote leg: the MC reads the DRAM page over the data route;
            // the XPoint controller snarfs it - no second transfer.
            let dram_read = self.dram_page_op(now, mc, req.dram_addr, MemKind::Read);
            let (_, demote_xfer) = self.channel.xfer(
                dram_read,
                mc,
                page_bits,
                TrafficClass::Migration,
                DEV_DRAM,
            );
            {
                let xp = self.mcs[mc].xpoint.as_mut().expect("planar");
                for i in 0..lines {
                    xp.snarf_write(demote_xfer, req.xpoint_addr.offset(i * self.cfg.line_bytes));
                }
            }
            // The MC is not held for the copy: it keeps issuing demand
            // requests to devices that are not busy (Figure 7a, step 1);
            // the migration's cost is the channel and device occupancy.
            self.swap_window.push_ps(dram_written - now);
            self.register_swap_pages(mc, &req, dram_written, demote_xfer);
        } else {
            // Via-controller: both legs are two full transfers each, and
            // the MC is occupied for the duration (Hetero / Ohm-base).
            let promote_read = {
                let xp = self.mcs[mc].xpoint.as_mut().expect("planar");
                xp.read_page(now, req.xpoint_addr, lines).ready_at
            };
            let (_, up) = self.channel.xfer(
                promote_read,
                mc,
                page_bits,
                TrafficClass::Migration,
                DEV_XPOINT,
            );
            let (_, down) =
                self.channel.xfer(up, mc, page_bits, TrafficClass::Migration, DEV_DRAM);
            let dram_written = self.dram_page_op(down, mc, req.dram_addr, MemKind::Write);
            let dram_read = self.dram_page_op(now, mc, req.dram_addr, MemKind::Read);
            let (_, up2) = self.channel.xfer(
                dram_read,
                mc,
                page_bits,
                TrafficClass::Migration,
                DEV_DRAM,
            );
            let (_, down2) =
                self.channel.xfer(up2, mc, page_bits, TrafficClass::Migration, DEV_XPOINT);
            let xp_written = {
                let xp = self.mcs[mc].xpoint.as_mut().expect("planar");
                xp.write_page(down2, req.xpoint_addr, lines).ready_at
            };
            self.swap_window.push_ps(dram_written - now);
            self.register_swap_pages(mc, &req, dram_written, xp_written);
        }
        self.mcs[mc].planar.as_mut().expect("planar").commit_swap(&req);
    }

    fn service_two_level(&mut self, now: Ps, mc: usize, la: Addr, kind: MemKind) -> Ps {
        let line_bits = self.cfg.line_bytes * 8;
        let is_write = matches!(kind, MemKind::Write);
        let span = self.mcs[mc].two_level.as_ref().expect("two-level").config().xpoint_bytes;
        let la = Addr::new(la.get() % span);
        let outcome = self.mcs[mc].two_level.as_mut().expect("two-level").access(la, is_write);
        match outcome {
            TwoLevelOutcome::Hit { dram_addr } => {
                self.mcs[mc].dram_service_hits += 1;
                let stall = self.mcs[mc].conflicts.stall_until(dram_addr).unwrap_or(Ps::ZERO);
                self.dram_line_rt(now.max(stall), mc, dram_addr, kind)
            }
            TwoLevelOutcome::Miss { dram_addr, xpoint_addr, evict_to } => {
                self.mcs[mc].migrations += 1;
                // 1. Tag-check read: the MC always reads the DRAM line (tag
                //    travels with data in the ECC bits).
                let tag_read = self.dram_line_rt(now, mc, dram_addr, MemKind::Read);
                // 2. Fetch the missing line from XPoint (demand-critical:
                //    the read is booked before the victim's buffered write
                //    so it is not queued behind a 763 ns drain). With
                //    reverse write, the XPoint->DRAM fill transfer itself
                //    delivers the data: the MC's DDR monitor snarfs the
                //    memory-route burst (Figure 12), so nothing but the
                //    command uses the data route.
                let data_at_mc = if self.caps.reverse_write {
                    let (_, cmd_done) = self.channel.xfer(
                        tag_read,
                        mc,
                        CMD_BITS,
                        TrafficClass::Demand,
                        DEV_XPOINT,
                    );
                    let ready = {
                        let xp = self.mcs[mc].xpoint.as_mut().expect("two-level");
                        xp.read(cmd_done, xpoint_addr).ready_at
                    };
                    self.mcs[mc].ddr_monitor.arm(cmd_done, xpoint_addr);
                    let (fill_start, fill_done) =
                        self.channel.memory_route(ready, mc, line_bits);
                    self.mcs[mc].ddr_monitor.begin_snarf(fill_start);
                    self.mcs[mc].ddr_monitor.complete(fill_done);
                    self.mcs[mc].dram.access(fill_done, dram_addr, MemKind::Write);
                    fill_done
                } else {
                    self.xpoint_line_rt(tag_read, mc, xpoint_addr, MemKind::Read)
                };
                // 3. Dirty victim eviction.
                if let Some(victim) = evict_to {
                    if self.caps.auto_rw {
                        // The XPoint controller snarfed the tag-read burst
                        // and takes over the eviction (Figure 9b).
                        let xp = self.mcs[mc].xpoint.as_mut().expect("two-level");
                        xp.snarf_write(tag_read, victim);
                    } else {
                        let (_, evict_xfer) = self.channel.xfer(
                            tag_read,
                            mc,
                            CMD_BITS + line_bits,
                            TrafficClass::Migration,
                            DEV_XPOINT,
                        );
                        let xp = self.mcs[mc].xpoint.as_mut().expect("two-level");
                        xp.write(evict_xfer, victim);
                    }
                }
                // 4. Fill the DRAM cacheline (reverse write already filled
                //    it from the snarfed burst above).
                if !self.caps.reverse_write {
                    let (_, fill_xfer) = self.channel.xfer(
                        data_at_mc,
                        mc,
                        CMD_BITS + line_bits,
                        TrafficClass::Migration,
                        DEV_DRAM,
                    );
                    self.mcs[mc].dram.access(fill_xfer, dram_addr, MemKind::Write);
                }
                data_at_mc
            }
        }
    }

    /// Demand bytes arriving at the memory controllers over time
    /// (10 µs buckets) — a bandwidth timeline for plotting.
    pub fn demand_timeline(&self) -> &TimeSeries {
        &self.demand_timeline
    }

    /// One-line-per-resource busy summary for debugging and examples.
    pub fn resource_summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let horizon = self.queue.now();
        let _ = writeln!(out, "makespan: {horizon}");
        let issue_busy: Ps = self.sms.iter().map(|s| s.busy_time()).sum();
        let _ = writeln!(
            out,
            "sm issue: busy {} over {} SMs ({:.1}% of makespan each)",
            issue_busy,
            self.sms.len(),
            100.0 * issue_busy.as_ps() as f64
                / (self.sms.len() as f64 * horizon.as_ps().max(1) as f64),
        );
        let _ = writeln!(
            out,
            "xbar: {} messages, busy {} ({:.1}% per port)",
            self.xbar.messages(),
            self.xbar.busy_time(),
            100.0 * self.xbar.busy_time().as_ps() as f64
                / (self.cfg.gpu.xbar.ports as f64 * horizon.as_ps().max(1) as f64),
        );
        for (i, mc) in self.mcs.iter().enumerate() {
            let _ = writeln!(
                out,
                "mc{i}: ctrl busy {} ({:.1}%), ctrl free@{}, dram busy {} ({} banks), xp reads {} writes {} stalls {}, conflicts {}/{}",
                mc.ctrl.busy_time(),
                100.0 * mc.ctrl.busy_time().as_ps() as f64 / horizon.as_ps().max(1) as f64,
                mc.ctrl.next_free(),
                mc.dram.busy_time(),
                self.cfg.memory.dram_banks,
                mc.xpoint.as_ref().map_or(0, |x| x.media().reads()),
                mc.xpoint.as_ref().map_or(0, |x| x.media().writes()),
                mc.xpoint.as_ref().map_or(0, |x| x.media().write_stalls()),
                mc.conflicts.stalls(),
                mc.conflicts.checks(),
            );
        }
        let _ = writeln!(out, "slice latency: {} (ns)", self.slice_latency);
        let _ = writeln!(out, "dram read latency: {} (ns)", self.dram_read_latency);
        let _ = writeln!(out, "xpoint read latency: {} (ns)", self.xpoint_read_latency);
        let _ = writeln!(out, "conflict stall: {} (ns)", self.stall_latency);
        let _ = writeln!(out, "xp stages cmd: {} dev: {} resp: {}",
            self.xp_cmd_stage, self.xp_dev_stage, self.xp_resp_stage);
        let _ = writeln!(out, "swap window: {} (ns)", self.swap_window);
        let (d, m) = self.channel.bits();
        let _ = writeln!(
            out,
            "channel: demand {d} bits, migration {m} bits, util {:.3}",
            self.channel.utilization(horizon)
        );
        out
    }

    fn report(&mut self) -> SimReport {
        // Migration-completion bookkeeping may trail the last warp; the
        // kernel's makespan is when the warps finished.
        let makespan = if self.kernel_end > Ps::ZERO { self.kernel_end } else { self.queue.now() };
        let instructions: u64 = self.sms.iter().map(|s| s.retired()).sum();
        let cycles = self.cfg.gpu.sm.freq.cycles_in(makespan).max(1);
        let l1_hits: u64 = self.l1s.iter().map(|c| c.hits()).sum();
        let l1_total: u64 = self.l1s.iter().map(|c| c.hits() + c.misses()).sum();

        let (demand_bits, migration_bits) = self.channel.bits();
        let dram_activations: u64 = self.mcs.iter().map(|m| m.dram.activations()).sum();
        let dram_accesses: u64 =
            self.mcs.iter().map(|m| m.dram.reads() + m.dram.writes()).sum();
        let (xp_reads, xp_writes) = self.mcs.iter().fold((0, 0), |(r, w), m| {
            m.xpoint
                .as_ref()
                .map(|x| (r + x.media().reads(), w + x.media().writes()))
                .unwrap_or((r, w))
        });

        let energy = energy_report(
            self.platform,
            &EnergyInputs {
                makespan,
                channel_bits: demand_bits + migration_bits,
                dram_capacity_bytes: self.dram_capacity,
                dram_activations,
                dram_accesses,
                dram_access_bits: self.cfg.line_bytes * 8,
                xpoint_capacity_bytes: self.xpoint_capacity,
                xpoint_reads: xp_reads,
                xpoint_writes: xp_writes,
                xpoint_line_bits: self.cfg.line_bytes * 8,
                wavelengths: self.cfg.optical.grid.total_wavelengths()
                    * self.cfg.optical.waveguides,
            },
        );

        let host = self.host.as_ref().map(|h| HostReport {
            storage_busy: h.storage_busy(),
            dma_busy: h.dma_busy(),
            staged_in: h.staged_in(),
            staged_out: h.staged_out(),
            bytes_moved: h.bytes_moved(),
        });

        let service_total: u64 = self.mcs.iter().map(|m| m.service_total).sum();
        let dram_service: u64 = self.mcs.iter().map(|m| m.dram_service_hits).sum();
        let wear = {
            let stats: Vec<f64> = self
                .mcs
                .iter()
                .filter_map(|m| m.xpoint.as_ref().map(|x| x.wear_stats().imbalance))
                .collect();
            if stats.is_empty() {
                1.0
            } else {
                stats.iter().sum::<f64>() / stats.len() as f64
            }
        };

        SimReport {
            platform: self.platform,
            mode: self.mode,
            workload: self.spec.name.to_string(),
            makespan,
            instructions,
            ipc: instructions as f64 / cycles as f64,
            mem_requests: self.mem_requests,
            avg_mem_latency_ns: self.mem_latency.mean(),
            l1_hit_rate: if l1_total == 0 { 0.0 } else { l1_hits as f64 / l1_total as f64 },
            l2_hit_rate: self.l2.hit_rate(),
            hetero_dram_hit_rate: if service_total == 0 {
                1.0
            } else {
                dram_service as f64 / service_total as f64
            },
            migration_channel_fraction: self.channel.migration_fraction(),
            migrations: self.mcs.iter().map(|m| m.migrations).sum(),
            channel_utilization: self.channel.utilization(makespan),
            channel_bits: (demand_bits, migration_bits),
            energy,
            host,
            wear_imbalance: wear,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohm_workloads::workload_by_name;

    fn run(platform: Platform, mode: OperationalMode, workload: &str) -> SimReport {
        let cfg = SystemConfig::quick_test();
        let spec = workload_by_name(workload).unwrap();
        System::new(&cfg, platform, mode, &spec).run()
    }

    #[test]
    fn oracle_runs_and_retires_everything() {
        let cfg = SystemConfig::quick_test();
        let r = run(Platform::Oracle, OperationalMode::Planar, "lud");
        assert_eq!(
            r.instructions,
            (cfg.gpu.sms * cfg.gpu.sm.warps) as u64 * cfg.insts_per_warp
        );
        assert!(r.ipc > 0.0);
        assert!(r.makespan > Ps::ZERO);
        assert_eq!(r.migrations, 0);
    }

    #[test]
    fn planar_migrates_and_pays_for_it() {
        let base = run(Platform::OhmBase, OperationalMode::Planar, "pagerank");
        assert!(base.migrations > 0, "skewed workload must trigger promotions");
        assert!(base.migration_channel_fraction > 0.0);
        let oracle = run(Platform::Oracle, OperationalMode::Planar, "pagerank");
        assert!(base.avg_mem_latency_ns > oracle.avg_mem_latency_ns);
    }

    #[test]
    fn two_level_misses_produce_migrations() {
        let r = run(Platform::OhmBase, OperationalMode::TwoLevel, "pagerank");
        assert!(r.migrations > 0);
        assert!(r.hetero_dram_hit_rate < 1.0);
        assert!(r.hetero_dram_hit_rate > 0.0);
    }

    #[test]
    fn swap_function_frees_the_data_route() {
        let base = run(Platform::OhmBase, OperationalMode::Planar, "pagerank");
        let wom = run(Platform::OhmWom, OperationalMode::Planar, "pagerank");
        assert!(
            wom.migration_channel_fraction < base.migration_channel_fraction,
            "wom {} vs base {}",
            wom.migration_channel_fraction,
            base.migration_channel_fraction
        );
    }

    #[test]
    fn reverse_write_eliminates_two_level_migration_traffic() {
        let wom = run(Platform::OhmWom, OperationalMode::TwoLevel, "pagerank");
        assert!(
            wom.migration_channel_fraction < 0.02,
            "got {}",
            wom.migration_channel_fraction
        );
    }

    #[test]
    fn origin_pays_for_host_staging() {
        // At an unscaled host path (host_scale = 1) the staging cost must
        // dominate and push Origin below Hetero, as in the paper's
        // Figure 3 / Figure 16; the scaled default is calibrated against
        // the evaluation configuration instead (see EXPERIMENTS.md).
        let mut cfg = SystemConfig::quick_test();
        cfg.memory.host_scale = 1.0;
        let spec = ohm_workloads::workload_by_name("pagerank").unwrap();
        let origin = System::new(&cfg, Platform::Origin, OperationalMode::Planar, &spec).run();
        let host = origin.host.expect("origin reports host staging");
        assert!(host.staged_in > 0);
        assert!(host.storage_busy > Ps::ZERO && host.dma_busy > Ps::ZERO);
        let hetero = System::new(&cfg, Platform::Hetero, OperationalMode::Planar, &spec).run();
        assert!(origin.ipc < hetero.ipc, "origin {} vs hetero {}", origin.ipc, hetero.ipc);
    }

    #[test]
    fn platform_ordering_on_a_skewed_workload() {
        // quick_test runs carry per-run noise from reordered swap
        // triggers, so the ordering is asserted with slack; the full
        // evaluation config (fig16 harness) reproduces the paper's chain.
        let base = run(Platform::OhmBase, OperationalMode::Planar, "pagerank");
        let bw = run(Platform::OhmBw, OperationalMode::Planar, "pagerank");
        let oracle = run(Platform::Oracle, OperationalMode::Planar, "pagerank");
        assert!(bw.ipc >= base.ipc * 0.95, "bw {} vs base {}", bw.ipc, base.ipc);
        assert!(oracle.ipc >= bw.ipc, "oracle {} vs bw {}", oracle.ipc, bw.ipc);
    }

    #[test]
    fn demand_timeline_accounts_read_traffic() {
        let cfg = SystemConfig::quick_test();
        let spec = ohm_workloads::workload_by_name("bfsdata").unwrap();
        let mut sys = System::new(&cfg, Platform::Oracle, OperationalMode::Planar, &spec);
        let r = sys.run();
        let timeline = sys.demand_timeline();
        assert!(timeline.total() > 0.0);
        assert_eq!(
            timeline.total() as u64,
            r.mem_requests * cfg.line_bytes,
            "timeline must sum to the demand reads"
        );
        assert!(timeline.peak() >= timeline.mean());
    }

    #[test]
    fn deterministic_repeat_runs() {
        let a = run(Platform::AutoRw, OperationalMode::Planar, "FDTD");
        let b = run(Platform::AutoRw, OperationalMode::Planar, "FDTD");
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.mem_requests, b.mem_requests);
    }
}
