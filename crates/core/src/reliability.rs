//! Per-platform optical reliability analysis (Figure 20b).
//!
//! Each platform's light paths are assembled from the Table I components;
//! the platform's laser scaling (1×/2×/4×) then determines the power at
//! every detector, and the calibrated [`BerModel`] turns that into a BER.
//! The half-coupled rings are tuned to absorb 45% of the carrier — a
//! design point that keeps both the tap and the pass-through detector
//! above the 10⁻¹⁵ requirement once the laser is scaled.

use ohm_hetero::Platform;
use ohm_optic::{BerModel, OpticalPathLoss, OpticalPowerModel};

/// Fraction of carrier power absorbed by a half-coupled ring (design
/// point; see module docs).
pub const HALF_COUPLE_ABSORB: f64 = 0.5;

/// One evaluated light path of a platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerPoint {
    /// Which function the path serves.
    pub function: &'static str,
    /// Received power at the detector, mW.
    pub received_mw: f64,
    /// Estimated bit error rate.
    pub ber: f64,
    /// Whether the paper's 10⁻¹⁵ requirement is met.
    pub meets_requirement: bool,
}

fn point(
    model: &BerModel,
    power: &OpticalPowerModel,
    function: &'static str,
    path: OpticalPathLoss,
) -> BerPoint {
    let received_mw = power.received_mw(path);
    let ber = model.ber(received_mw);
    BerPoint {
        function,
        received_mw,
        ber,
        meets_requirement: ber < BerModel::REQUIREMENT,
    }
}

/// Evaluates every light path a platform uses (Figure 20b's data points).
///
/// Electrical platforms return an empty set.
pub fn platform_ber(platform: Platform) -> Vec<BerPoint> {
    let scale = platform.laser_power_scale();
    if scale == 0.0 {
        return Vec::new();
    }
    let model = BerModel::paper_default();
    let power = OpticalPowerModel {
        laser_scale: scale,
        ..OpticalPowerModel::default()
    };
    let nominal = BerModel::nominal_path();
    let caps = platform.migration_caps();

    // Ohm-BW's transmitters are *permanently* half-coupled (Figure 13b:
    // even a logical `0` keeps half the carrier strength), so every one of
    // its paths starts 3 dB down; the 4x laser absorbs it.
    let tx_half = caps.swap && !caps.wom_coding;
    let demand_base = if tx_half {
        nominal.half_couple_pass(HALF_COUPLE_ABSORB)
    } else {
        nominal
    };

    let mut points = vec![point(
        &model,
        &power,
        "memory request",
        if scale > 1.0 {
            // Dual-route platforms route demand light past the XPoint
            // controller's half-coupled receiver.
            demand_base.half_couple_pass(HALF_COUPLE_ABSORB)
        } else {
            demand_base
        },
    )];

    if caps.auto_rw {
        // The snarfing detector receives the tapped fraction.
        points.push(point(
            &model,
            &power,
            "auto-read/write snarf",
            demand_base.half_couple_tap(HALF_COUPLE_ABSORB),
        ));
    }
    if caps.swap {
        // The swap function threads the light through the second writer's
        // arm: an extra millimetre of waveguide on top of the split. With
        // half-coupled transmitters (Ohm-BW) the first writer also only
        // draws half strength, costing one more 3 dB split that the 4×
        // laser absorbs.
        let swap_path = demand_base
            .half_couple_pass(HALF_COUPLE_ABSORB)
            .waveguide_cm(0.1);
        points.push(point(&model, &power, "swap", swap_path));
    }
    points
}

/// The worst BER across all of a platform's paths (`None` for electrical
/// platforms).
pub fn worst_ber(platform: Platform) -> Option<f64> {
    platform_ber(platform)
        .into_iter()
        .map(|p| p.ber)
        .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.max(b))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electrical_platforms_have_no_optical_ber() {
        assert!(platform_ber(Platform::Origin).is_empty());
        assert!(platform_ber(Platform::Hetero).is_empty());
        assert_eq!(worst_ber(Platform::Hetero), None);
    }

    #[test]
    fn ohm_base_hits_the_anchor() {
        let pts = platform_ber(Platform::OhmBase);
        assert_eq!(pts.len(), 1);
        assert!((pts[0].ber / BerModel::ANCHOR_BER - 1.0).abs() < 0.01);
        assert!(pts[0].meets_requirement);
    }

    #[test]
    fn all_optical_platforms_meet_the_requirement() {
        for p in [
            Platform::OhmBase,
            Platform::AutoRw,
            Platform::OhmWom,
            Platform::OhmBw,
        ] {
            for pt in platform_ber(p) {
                assert!(
                    pt.meets_requirement,
                    "{} / {} has BER {:.2e}",
                    p.name(),
                    pt.function,
                    pt.ber
                );
            }
        }
    }

    #[test]
    fn dual_route_platforms_evaluate_more_paths() {
        assert!(platform_ber(Platform::AutoRw).len() > platform_ber(Platform::OhmBase).len());
        assert!(platform_ber(Platform::OhmWom).len() > platform_ber(Platform::AutoRw).len());
    }

    #[test]
    fn worst_ber_is_max() {
        let pts = platform_ber(Platform::OhmBw);
        let worst = worst_ber(Platform::OhmBw).unwrap();
        assert!(pts.iter().all(|p| p.ber <= worst));
    }
}
