//! Per-platform optical reliability analysis (Figure 20b).
//!
//! Each platform's light paths are assembled from the Table I components;
//! the platform's laser scaling (1×/2×/4×) then determines the power at
//! every detector, and the calibrated [`BerModel`] turns that into a BER.
//! The half-coupled rings are tuned to absorb 45% of the carrier — a
//! design point that keeps both the tap and the pass-through detector
//! above the 10⁻¹⁵ requirement once the laser is scaled.

use ohm_hetero::Platform;
use ohm_optic::{BerModel, OpticalPathLoss, OpticalPowerModel};

/// Fraction of carrier power absorbed by a half-coupled ring (design
/// point; see module docs).
pub const HALF_COUPLE_ABSORB: f64 = 0.5;

/// One evaluated light path of a platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerPoint {
    /// Which function the path serves.
    pub function: &'static str,
    /// Received power at the detector, mW.
    pub received_mw: f64,
    /// Estimated bit error rate.
    pub ber: f64,
    /// Whether the paper's 10⁻¹⁵ requirement is met.
    pub meets_requirement: bool,
}

fn point(
    model: &BerModel,
    power: &OpticalPowerModel,
    function: &'static str,
    path: OpticalPathLoss,
) -> BerPoint {
    let received_mw = power.received_mw(path);
    let ber = model.ber(received_mw);
    BerPoint {
        function,
        received_mw,
        ber,
        meets_requirement: ber < BerModel::REQUIREMENT,
    }
}

/// Evaluates every light path a platform uses (Figure 20b's data points).
///
/// Electrical platforms return an empty set.
pub fn platform_ber(platform: Platform) -> Vec<BerPoint> {
    let scale = platform.laser_power_scale();
    if scale == 0.0 {
        return Vec::new();
    }
    let model = BerModel::paper_default();
    let power = OpticalPowerModel {
        laser_scale: scale,
        ..OpticalPowerModel::default()
    };
    let nominal = BerModel::nominal_path();
    let caps = platform.migration_caps();

    // Ohm-BW's transmitters are *permanently* half-coupled (Figure 13b:
    // even a logical `0` keeps half the carrier strength), so every one of
    // its paths starts 3 dB down; the 4x laser absorbs it.
    let tx_half = caps.swap && !caps.wom_coding;
    let demand_base = if tx_half {
        nominal.half_couple_pass(HALF_COUPLE_ABSORB)
    } else {
        nominal
    };

    let mut points = vec![point(
        &model,
        &power,
        "memory request",
        if scale > 1.0 {
            // Dual-route platforms route demand light past the XPoint
            // controller's half-coupled receiver.
            demand_base.half_couple_pass(HALF_COUPLE_ABSORB)
        } else {
            demand_base
        },
    )];

    if caps.auto_rw {
        // The snarfing detector receives the tapped fraction.
        points.push(point(
            &model,
            &power,
            "auto-read/write snarf",
            demand_base.half_couple_tap(HALF_COUPLE_ABSORB),
        ));
    }
    if caps.swap {
        // The swap function threads the light through the second writer's
        // arm: an extra millimetre of waveguide on top of the split. With
        // half-coupled transmitters (Ohm-BW) the first writer also only
        // draws half strength, costing one more 3 dB split that the 4×
        // laser absorbs.
        let swap_path = demand_base
            .half_couple_pass(HALF_COUPLE_ABSORB)
            .waveguide_cm(0.1);
        points.push(point(&model, &power, "swap", swap_path));
    }
    points
}

/// Why a reliability query could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliabilityError {
    /// The platform has no optical light paths to analyse (electrical
    /// platforms: `Origin`, `Hetero`).
    NoOpticalPaths(Platform),
}

impl std::fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReliabilityError::NoOpticalPaths(p) => {
                write!(f, "platform {} has no optical light paths", p.name())
            }
        }
    }
}

impl std::error::Error for ReliabilityError {}

/// The worst BER across all of a platform's paths.
///
/// Electrical platforms are an explicit [`ReliabilityError::NoOpticalPaths`]
/// error: callers must decide how to handle a platform with nothing to
/// analyse instead of silently skipping it.
pub fn worst_ber(platform: Platform) -> Result<f64, ReliabilityError> {
    platform_ber(platform)
        .into_iter()
        .map(|p| p.ber)
        .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.max(b))))
        .ok_or(ReliabilityError::NoOpticalPaths(platform))
}

/// The worst-path BER of a platform with its Q-factor divided by
/// `q_derate` — the live operating point the fault-injection subsystem
/// corrupts transfers at.
///
/// `q_derate = 1.0` reproduces [`worst_ber`] exactly; larger derates
/// model eye closure from thermal drift, ageing lasers or detector noise
/// (Section VI-E's margin discussion) and push the BER up the Figure 20b
/// curve. The derate applies to Q, not BER, so small derates produce the
/// steep super-exponential degradation real links exhibit.
///
/// # Panics
///
/// Panics if `q_derate` is not finite or is below 1.0.
pub fn degraded_ber(platform: Platform, q_derate: f64) -> Result<f64, ReliabilityError> {
    assert!(
        q_derate.is_finite() && q_derate >= 1.0,
        "q_derate must be finite and >= 1.0, got {q_derate}"
    );
    let model = BerModel::paper_default();
    // The model's reference operating point: nominal path at 1x laser.
    let p_ref = OpticalPowerModel::default().received_mw(BerModel::nominal_path());
    platform_ber(platform)
        .into_iter()
        .map(|p| {
            let q = ohm_optic::q_factor(p.received_mw, p_ref, model.q_ref());
            ohm_optic::ber_from_q(q / q_derate)
        })
        .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.max(b))))
        .ok_or(ReliabilityError::NoOpticalPaths(platform))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electrical_platforms_have_no_optical_ber() {
        assert!(platform_ber(Platform::Origin).is_empty());
        assert!(platform_ber(Platform::Hetero).is_empty());
        assert_eq!(
            worst_ber(Platform::Hetero),
            Err(ReliabilityError::NoOpticalPaths(Platform::Hetero))
        );
        assert_eq!(
            worst_ber(Platform::Origin),
            Err(ReliabilityError::NoOpticalPaths(Platform::Origin))
        );
        // The error is self-describing for CLI surfaces.
        let msg = worst_ber(Platform::Hetero).unwrap_err().to_string();
        assert!(msg.contains("no optical light paths"), "{msg}");
    }

    #[test]
    fn ohm_base_hits_the_anchor() {
        let pts = platform_ber(Platform::OhmBase);
        assert_eq!(pts.len(), 1);
        assert!((pts[0].ber / BerModel::ANCHOR_BER - 1.0).abs() < 0.01);
        assert!(pts[0].meets_requirement);
    }

    #[test]
    fn all_optical_platforms_meet_the_requirement() {
        for p in [
            Platform::OhmBase,
            Platform::AutoRw,
            Platform::OhmWom,
            Platform::OhmBw,
        ] {
            for pt in platform_ber(p) {
                assert!(
                    pt.meets_requirement,
                    "{} / {} has BER {:.2e}",
                    p.name(),
                    pt.function,
                    pt.ber
                );
            }
        }
    }

    #[test]
    fn dual_route_platforms_evaluate_more_paths() {
        assert!(platform_ber(Platform::AutoRw).len() > platform_ber(Platform::OhmBase).len());
        assert!(platform_ber(Platform::OhmWom).len() > platform_ber(Platform::AutoRw).len());
    }

    #[test]
    fn worst_ber_is_max() {
        let pts = platform_ber(Platform::OhmBw);
        let worst = worst_ber(Platform::OhmBw).unwrap();
        assert!(pts.iter().all(|p| p.ber <= worst));
    }

    #[test]
    fn degraded_ber_at_unit_derate_matches_worst() {
        for p in [Platform::OhmBase, Platform::OhmWom, Platform::OhmBw] {
            let worst = worst_ber(p).unwrap();
            let degraded = degraded_ber(p, 1.0).unwrap();
            assert!(
                (degraded / worst - 1.0).abs() < 1e-9,
                "{}: {degraded:e} vs {worst:e}",
                p.name()
            );
        }
    }

    #[test]
    fn degraded_ber_is_monotone_in_derate() {
        let mut last = degraded_ber(Platform::OhmBase, 1.0).unwrap();
        for derate in [1.5, 2.0, 3.0, 4.0] {
            let b = degraded_ber(Platform::OhmBase, derate).unwrap();
            assert!(b > last, "derate {derate}: {b:e} !> {last:e}");
            last = b;
        }
        // A derate of 2 collapses Q from ~8 to ~4: BER in the 1e-5 band,
        // enough to visibly exercise retransmission on real transfers.
        let b2 = degraded_ber(Platform::OhmBase, 2.0).unwrap();
        assert!(b2 > 1e-7 && b2 < 1e-3, "b2={b2:e}");
    }

    #[test]
    fn degraded_ber_errors_on_electrical_platforms() {
        assert_eq!(
            degraded_ber(Platform::Origin, 2.0),
            Err(ReliabilityError::NoOpticalPaths(Platform::Origin))
        );
    }

    #[test]
    #[should_panic(expected = "q_derate")]
    fn degraded_ber_rejects_sub_unit_derate() {
        let _ = degraded_ber(Platform::OhmBase, 0.5);
    }
}
