//! Energy model.
//!
//! Component energies follow the paper's sources: an empirical
//! GPUWattch-style DRAM model [Leng et al.], Optane DC measurements for
//! XPoint [Izraelevitz et al.], and the Table I optical power model
//! (200 fJ/bit MRR tuning, 0.73 mW laser per wavelength). Absolute joules
//! are indicative; the figures compare platforms under identical demand,
//! which is what the model preserves.

use ohm_hetero::Platform;
use ohm_optic::OpticalPowerModel;
use ohm_sim::Ps;

use crate::metrics::EnergyReport;

/// Electrical channel energy per transferred bit. Calibrated so the
/// optical channel's total DMA energy (tuning + laser wall power) lands
/// at the paper's ~57% saving over the electrical lanes under the
/// evaluation traffic mix; the absolute value is within the 1–10 pJ/bit
/// range reported for on-board electrical links.
pub const ELECTRICAL_PJ_PER_BIT: f64 = 1.25;
/// Optical modulation+detection energy per bit (2 × 200 fJ tuning).
pub const OPTICAL_PJ_PER_BIT: f64 = 0.4;
/// DRAM background power per gigabyte (refresh + standby).
pub const DRAM_STATIC_W_PER_GB: f64 = 0.35;
/// DRAM activate energy per row activation.
pub const DRAM_ACTIVATE_NJ: f64 = 1.5;
/// DRAM access (read/write burst) energy per bit.
pub const DRAM_ACCESS_PJ_PER_BIT: f64 = 12.0;
/// XPoint media read energy per bit.
pub const XPOINT_READ_PJ_PER_BIT: f64 = 35.0;
/// XPoint media write energy per bit.
pub const XPOINT_WRITE_PJ_PER_BIT: f64 = 110.0;
/// XPoint background power per gigabyte (far lower than DRAM: no refresh).
pub const XPOINT_STATIC_W_PER_GB: f64 = 0.02;

/// Raw activity counts feeding the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyInputs {
    /// Run makespan.
    pub makespan: Ps,
    /// Bits moved over the memory channel (all classes).
    pub channel_bits: u64,
    /// Installed DRAM capacity in bytes.
    pub dram_capacity_bytes: u64,
    /// DRAM row activations.
    pub dram_activations: u64,
    /// DRAM line accesses (reads + writes).
    pub dram_accesses: u64,
    /// DRAM access granularity in bits.
    pub dram_access_bits: u64,
    /// Installed XPoint capacity in bytes.
    pub xpoint_capacity_bytes: u64,
    /// XPoint media line reads.
    pub xpoint_reads: u64,
    /// XPoint media line writes.
    pub xpoint_writes: u64,
    /// XPoint line size in bits.
    pub xpoint_line_bits: u64,
    /// Active wavelengths (optical platforms; 0 for electrical).
    pub wavelengths: u32,
}

/// Computes the Figure 19 energy breakdown for a platform's activity.
pub fn energy_report(platform: Platform, inputs: &EnergyInputs) -> EnergyReport {
    let secs = inputs.makespan.as_secs_f64();
    let gb = |bytes: u64| bytes as f64 / (1u64 << 30) as f64;

    let dma_j = if platform.laser_power_scale() > 0.0 {
        let power = OpticalPowerModel {
            laser_scale: platform.laser_power_scale(),
            ..OpticalPowerModel::default()
        };
        inputs.channel_bits as f64 * OPTICAL_PJ_PER_BIT * 1e-12
            + power.laser_wall_power_w(inputs.wavelengths) * secs
    } else {
        inputs.channel_bits as f64 * ELECTRICAL_PJ_PER_BIT * 1e-12
    };

    let dram_static_j = DRAM_STATIC_W_PER_GB * gb(inputs.dram_capacity_bytes) * secs;
    let dram_dynamic_j = inputs.dram_activations as f64 * DRAM_ACTIVATE_NJ * 1e-9
        + inputs.dram_accesses as f64
            * inputs.dram_access_bits as f64
            * DRAM_ACCESS_PJ_PER_BIT
            * 1e-12;

    let xpoint_j = XPOINT_STATIC_W_PER_GB * gb(inputs.xpoint_capacity_bytes) * secs
        + inputs.xpoint_reads as f64
            * inputs.xpoint_line_bits as f64
            * XPOINT_READ_PJ_PER_BIT
            * 1e-12
        + inputs.xpoint_writes as f64
            * inputs.xpoint_line_bits as f64
            * XPOINT_WRITE_PJ_PER_BIT
            * 1e-12;

    EnergyReport {
        dma_j,
        dram_static_j,
        dram_dynamic_j,
        xpoint_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_inputs() -> EnergyInputs {
        EnergyInputs {
            makespan: Ps::from_ms(1),
            channel_bits: 1_000_000_000,
            dram_capacity_bytes: 1 << 30,
            dram_activations: 1_000,
            dram_accesses: 100_000,
            dram_access_bits: 1024,
            xpoint_capacity_bytes: 8 << 30,
            xpoint_reads: 50_000,
            xpoint_writes: 10_000,
            xpoint_line_bits: 2048,
            wavelengths: 96,
        }
    }

    #[test]
    fn optical_dma_beats_electrical_at_high_traffic() {
        let inputs = base_inputs();
        let hetero = energy_report(Platform::Hetero, &inputs);
        let ohm = energy_report(Platform::OhmBase, &inputs);
        assert!(
            ohm.dma_j < hetero.dma_j,
            "ohm {} vs hetero {}",
            ohm.dma_j,
            hetero.dma_j
        );
        // Non-channel components are platform-independent.
        assert_eq!(ohm.dram_dynamic_j, hetero.dram_dynamic_j);
        assert_eq!(ohm.xpoint_j, hetero.xpoint_j);
    }

    #[test]
    fn laser_scaling_raises_optical_energy() {
        let inputs = base_inputs();
        let base = energy_report(Platform::OhmBase, &inputs);
        let bw = energy_report(Platform::OhmBw, &inputs);
        assert!(bw.dma_j > base.dma_j);
    }

    #[test]
    fn dram_static_scales_with_time_and_capacity() {
        let mut inputs = base_inputs();
        let short = energy_report(Platform::OhmBase, &inputs);
        inputs.makespan = Ps::from_ms(2);
        let long = energy_report(Platform::OhmBase, &inputs);
        assert!((long.dram_static_j / short.dram_static_j - 2.0).abs() < 1e-9);
        inputs.dram_capacity_bytes *= 4;
        let big = energy_report(Platform::OhmBase, &inputs);
        assert!((big.dram_static_j / long.dram_static_j - 4.0).abs() < 1e-9);
    }

    #[test]
    fn xpoint_writes_cost_more_than_reads() {
        let mut r = base_inputs();
        r.xpoint_reads = 1000;
        r.xpoint_writes = 0;
        let mut w = base_inputs();
        w.xpoint_reads = 0;
        w.xpoint_writes = 1000;
        let er = energy_report(Platform::OhmBase, &r);
        let ew = energy_report(Platform::OhmBase, &w);
        assert!(ew.xpoint_j > er.xpoint_j);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let e = energy_report(Platform::OhmWom, &base_inputs());
        let total = e.dma_j + e.dram_static_j + e.dram_dynamic_j + e.xpoint_j;
        assert!((e.total_j() - total).abs() < 1e-15);
    }
}
