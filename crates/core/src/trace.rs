//! Chrome-trace-event export of an observed run.
//!
//! The observability layer (enabled with
//! [`System::enable_observability`](crate::system::System::enable_observability))
//! collects request-path stage intervals and channel busy windows; this
//! module serialises them into the Chrome trace-event JSON format, which
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly.
//!
//! The format is hand-rolled (the workspace carries no JSON dependency):
//! every interval becomes a complete (`"ph": "X"`) event with `ts`/`dur`
//! in microseconds, and each track gets a `thread_name` metadata event so
//! the UI shows readable lanes. Simulated time maps to trace time — no
//! wall-clock ever enters the file, so exports are deterministic.

use ohm_optic::BusyInterval;
use ohm_sim::Ps;

use crate::json::escape_json;
use crate::system::stats::{Observability, Stage, StageEvent};

/// Process id used for request-path stage tracks.
const PID_STAGES: u32 = 1;
/// Process id used for channel (per-VC) tracks.
const PID_CHANNEL: u32 = 2;

fn ps_to_us(t: Ps) -> f64 {
    t.as_ps() as f64 / 1e6
}

fn push_event(out: &mut String, name: &str, cat: &str, pid: u32, tid: u32, start: Ps, end: Ps) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.6},\"dur\":{:.6},\"pid\":{},\"tid\":{}}}",
        escape_json(name),
        escape_json(cat),
        ps_to_us(start),
        ps_to_us(end.max(start) - start).max(1e-6),
        pid,
        tid
    );
}

fn push_thread_name(out: &mut String, pid: u32, tid: u32, name: &str) {
    use std::fmt::Write;
    let name = escape_json(name);
    let _ = write!(
        out,
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{name}\"}}}}"
    );
}

fn push_process_name(out: &mut String, pid: u32, name: &str) {
    use std::fmt::Write;
    let name = escape_json(name);
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
         \"args\":{{\"name\":\"{name}\"}}}}"
    );
}

/// Track (tid) of one stage event: stages are grouped per resource so
/// e.g. every controller gets its own set of lanes.
fn stage_tid(ev: &StageEvent) -> u32 {
    ev.res * Stage::COUNT as u32 + ev.stage as u32
}

fn stage_track_name(ev: &StageEvent) -> String {
    match ev.stage {
        Stage::L1Hit => format!("sm{} {}", ev.res, ev.stage.name()),
        _ => format!("mc{} {}", ev.res, ev.stage.name()),
    }
}

/// Track (tid) of one channel interval: two lanes (data/memory route)
/// per virtual channel.
fn channel_tid(iv: &BusyInterval) -> u32 {
    iv.vc as u32 * 2 + iv.memory_route as u32
}

fn channel_track_name(iv: &BusyInterval) -> String {
    let route = if iv.memory_route { "memory" } else { "data" };
    format!("vc{} {route}-route", iv.vc)
}

/// Serialises the collected intervals as one Chrome trace-event JSON
/// document (`{"traceEvents": [...]}`).
pub(crate) fn chrome_trace_json(obs: &Observability) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write;

    let mut out =
        String::with_capacity(64 + 160 * (obs.events.len() + obs.channel_intervals.len()));
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };

    sep(&mut out);
    push_process_name(&mut out, PID_STAGES, "request path");
    sep(&mut out);
    push_process_name(&mut out, PID_CHANNEL, "memory channel");

    // Name each track once.
    let mut stage_tracks: BTreeMap<u32, String> = BTreeMap::new();
    for ev in &obs.events {
        stage_tracks
            .entry(stage_tid(ev))
            .or_insert_with(|| stage_track_name(ev));
    }
    for (tid, name) in &stage_tracks {
        sep(&mut out);
        push_thread_name(&mut out, PID_STAGES, *tid, name);
    }
    let mut channel_tracks: BTreeMap<u32, String> = BTreeMap::new();
    for iv in &obs.channel_intervals {
        channel_tracks
            .entry(channel_tid(iv))
            .or_insert_with(|| channel_track_name(iv));
    }
    for (tid, name) in &channel_tracks {
        sep(&mut out);
        push_thread_name(&mut out, PID_CHANNEL, *tid, name);
    }

    for ev in &obs.events {
        sep(&mut out);
        push_event(
            &mut out,
            ev.stage.name(),
            "stage",
            PID_STAGES,
            stage_tid(ev),
            ev.start,
            ev.end,
        );
    }
    for iv in &obs.channel_intervals {
        sep(&mut out);
        let name = match iv.class {
            ohm_optic::TrafficClass::Demand => "demand",
            ohm_optic::TrafficClass::Migration => "migration",
        };
        push_event(
            &mut out,
            name,
            "channel",
            PID_CHANNEL,
            channel_tid(iv),
            iv.start,
            iv.end,
        );
    }

    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"droppedEvents\":{}}}}}",
        obs.dropped
    );
    out
}
