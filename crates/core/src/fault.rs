//! Deterministic fault injection and graceful degradation.
//!
//! The paper's optical network is only viable because errors stay below
//! the 10⁻¹⁵ BER requirement (Section VI-E, Figure 20b) and because the
//! DDR-T handshake tolerates nondeterministic XPoint latency (Section
//! II-C). A production-scale simulator must also answer the question the
//! paper never does: *what happens when those assumptions erode?* This
//! module is the policy layer of that answer. A [`FaultPlan`] configured
//! on [`SystemConfig`](crate::config::SystemConfig) drives three fault
//! classes through the layers below:
//!
//! 1. **Optical corruption** — transfers fail CRC with a probability
//!    derived from the *live* Q-factor of the platform's worst light
//!    path ([`crate::reliability::degraded_ber`]), degraded by
//!    [`FaultPlan::q_derate`]. Detection triggers bounded retransmission
//!    with exponential backoff on the failing VC; exhaustion escalates
//!    to the electrical fallback path.
//! 2. **MRR stick/drift** — a demux ring sticks or drifts
//!    ([`ohm_optic::mrr::RingHealth`]), making its VC untrustworthy for a
//!    repair window. The fabric re-arbitrates onto a healthy wavelength,
//!    or degrades to the electrical path when none exists.
//! 3. **XPoint media stalls** — media ops hang past their DDR-T window
//!    ([`ohm_mem::XpFaultConfig`]), are reissued, and poison the line
//!    after a capped number of retries.
//!
//! Every recovery action is a first-class [`Stage`] in the observability
//! taxonomy (`retransmit`, `rearbitrate`, `fallback-electrical`,
//! `media-retry`), so Chrome traces and `StageSummary` tables show
//! degraded runs with no extra plumbing.
//!
//! # Determinism contract
//!
//! All randomness comes from [`SplitMix64`](ohm_sim::SplitMix64) streams
//! forked from [`FaultPlan::seed`]. The same seed and the same plan
//! produce a bit-identical [`SimReport`](crate::metrics::SimReport);
//! an all-zero plan ([`FaultPlan::quiescent`]) draws nothing and is
//! bit-identical to running with no plan at all. DESIGN.md §"Fault &
//! recovery model" states the full contract.

use ohm_mem::{XpFaultConfig, XpLifecycleConfig};
use ohm_sim::{ExponentialBackoff, Ps};

use crate::system::Stage;

/// A deterministic fault-injection plan for one run.
///
/// The default severity knobs are exposed directly so experiments can
/// dial individual fault classes; [`FaultPlan::at_severity`] maps one
/// scalar onto all of them for sweep harnesses like `fig_resilience`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed for every fault RNG stream (independent of the
    /// workload-generation seed).
    pub seed: u64,
    /// Q-factor divisor applied to the platform's worst-path Q when
    /// deriving the per-bit corruption probability. `1.0` keeps the
    /// analytical operating point (BER ≈ 7.2e-16 — practically no
    /// corruption); `2.0` collapses Q≈8 to Q≈4 (BER ≈ 1e-5/bit). Must
    /// be finite and ≥ 1.0.
    pub q_derate: f64,
    /// Retransmissions allowed per transfer before escalating to the
    /// electrical fallback path.
    pub max_retransmissions: u32,
    /// Backoff schedule between retransmissions of one transfer.
    pub retx_backoff: ExponentialBackoff,
    /// Probability, in parts-per-million per transfer, that the VC's
    /// demux ring develops a stick or drift fault.
    pub mrr_fault_ppm: u32,
    /// How long a faulted ring's VC stays untrusted before thermal
    /// recalibration repairs it.
    pub mrr_repair: Ps,
    /// XPoint media stall/retry/poison knobs.
    pub xpoint: XpFaultConfig,
}

impl FaultPlan {
    /// A plan that injects nothing. Runs configured with it draw no
    /// random numbers and produce reports bit-identical to plan-free
    /// runs — the determinism baseline the test suite pins.
    pub fn quiescent(seed: u64) -> Self {
        FaultPlan {
            seed,
            q_derate: 1.0,
            max_retransmissions: 0,
            retx_backoff: ExponentialBackoff::NONE,
            mrr_fault_ppm: 0,
            mrr_repair: Ps::ZERO,
            xpoint: XpFaultConfig::NONE,
        }
    }

    /// Maps a severity scalar in `[0, 1]` onto all fault knobs at once.
    ///
    /// Severity 0 is [`FaultPlan::quiescent`]; severity 1 is a heavily
    /// degraded substrate (Q halved twice over, ~0.2% MRR faults and ~2%
    /// media stalls per operation) where every recovery path fires
    /// constantly and the optical advantage has largely evaporated —
    /// the far end of the `fig_resilience` curve.
    ///
    /// # Panics
    ///
    /// Panics if `severity` is not finite or outside `[0, 1]`.
    pub fn at_severity(seed: u64, severity: f64) -> Self {
        assert!(
            severity.is_finite() && (0.0..=1.0).contains(&severity),
            "severity must be in [0, 1], got {severity}"
        );
        if severity == 0.0 {
            return FaultPlan::quiescent(seed);
        }
        FaultPlan {
            seed,
            q_derate: 1.0 + 2.0 * severity,
            max_retransmissions: 3,
            retx_backoff: ExponentialBackoff {
                base: Ps::from_ns(1),
                cap: Ps::from_ns(8),
            },
            mrr_fault_ppm: (severity * 2_000.0) as u32,
            mrr_repair: Ps::from_ns(500),
            xpoint: XpFaultConfig {
                stall_ppm: (severity * 20_000.0) as u32,
                stall: Ps::from_ns(100),
                max_retries: 2,
            },
        }
    }

    /// Whether the plan can inject anything at all. A quiescent plan
    /// keeps every layer on its fault-free (and RNG-free) path.
    pub fn is_quiescent(&self) -> bool {
        self.q_derate <= 1.0 && self.mrr_fault_ppm == 0 && self.xpoint.stall_ppm == 0
    }
}

/// A deterministic wear-out lifecycle plan for one run: the endurance,
/// ECC, and spare-provisioning knobs of the XPoint tier's end of life
/// (see [`ohm_mem::lifecycle`]).
///
/// Orthogonal to [`FaultPlan`]: faults are *transient* events injected on
/// an otherwise healthy device, while the lifecycle is the *permanent*
/// aging of the media itself. The two share the determinism contract —
/// all randomness forks from [`LifecyclePlan::seed`], and a quiescent
/// plan is bit-identical to running with no plan at all.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecyclePlan {
    /// Root seed for the per-controller lifecycle RNG streams
    /// (independent of workload and fault seeds).
    pub seed: u64,
    /// XPoint endurance/ECC/spare knobs.
    pub xpoint: XpLifecycleConfig,
}

impl LifecyclePlan {
    /// A plan under which nothing ever wears out. Controllers are not
    /// armed and no RNG is drawn — the determinism baseline.
    pub fn quiescent(seed: u64) -> Self {
        LifecyclePlan {
            seed,
            xpoint: XpLifecycleConfig::NONE,
        }
    }

    /// An accelerated-aging plan: `endurance_writes` is the per-bucket
    /// write budget (see [`ohm_mem::lifecycle`]) with 10% process
    /// variation, ECC onset at 50% wear, a correctable:uncorrectable
    /// ratio of 10:1 at full wear, and 32 spare lines per controller.
    /// Sweeping the budget downward is the `fig_lifetime` aging axis.
    pub fn accelerated(seed: u64, endurance_writes: u64) -> Self {
        if endurance_writes == 0 {
            return LifecyclePlan::quiescent(seed);
        }
        LifecyclePlan {
            seed,
            xpoint: XpLifecycleConfig {
                endurance_writes,
                endurance_jitter_pct: 10,
                ecc_onset: 0.5,
                ecc_correctable_ppm: 200_000,
                ecc_uncorrectable_ppm: 20_000,
                spare_lines: 32,
            },
        }
    }

    /// Whether the plan can age anything at all.
    pub fn is_quiescent(&self) -> bool {
        self.xpoint.is_disabled()
    }
}

/// Fabric-side fault/recovery counters, surfaced through
/// [`FaultReport`](crate::metrics::FaultReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Transfers that failed CRC at least once.
    pub corrupted_transfers: u64,
    /// Retransmissions performed (a transfer can retransmit repeatedly).
    pub retransmissions: u64,
    /// Transfers whose retransmission budget ran out.
    pub retx_exhausted: u64,
    /// MRR stick/drift faults injected.
    pub mrr_faults: u64,
    /// Transfers re-arbitrated onto a healthy VC.
    pub rearbitrations: u64,
    /// Transfers degraded onto the electrical fallback path.
    pub electrical_fallbacks: u64,
}

/// One recovery action taken by the fabric, drained by the memory
/// subsystem into the observability taxonomy after each service call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Which recovery stage ([`Stage::Retransmit`], [`Stage::Rearbitrate`],
    /// [`Stage::FallbackElectrical`] or [`Stage::MediaRetry`]).
    pub stage: Stage,
    /// The virtual channel (equivalently, memory controller) involved.
    pub vc: usize,
    /// When the recovery began (e.g. first CRC failure detected).
    pub start: Ps,
    /// When the recovered operation finally completed.
    pub end: Ps,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_plan_is_quiescent() {
        let p = FaultPlan::quiescent(1);
        assert!(p.is_quiescent());
        assert_eq!(p, FaultPlan::at_severity(1, 0.0));
    }

    #[test]
    fn severity_scales_monotonically() {
        let lo = FaultPlan::at_severity(9, 0.25);
        let hi = FaultPlan::at_severity(9, 1.0);
        assert!(!lo.is_quiescent());
        assert!(lo.q_derate < hi.q_derate);
        assert!(lo.mrr_fault_ppm < hi.mrr_fault_ppm);
        assert!(lo.xpoint.stall_ppm < hi.xpoint.stall_ppm);
        assert_eq!(hi.q_derate, 3.0);
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn severity_out_of_range_rejected() {
        let _ = FaultPlan::at_severity(0, 1.5);
    }

    #[test]
    fn lifecycle_plan_quiescence() {
        assert!(LifecyclePlan::quiescent(7).is_quiescent());
        assert!(LifecyclePlan::accelerated(7, 0).is_quiescent());
        let aging = LifecyclePlan::accelerated(7, 10_000);
        assert!(!aging.is_quiescent());
        assert_eq!(aging.xpoint.endurance_writes, 10_000);
        assert!(aging.xpoint.spare_lines > 0);
        assert!(aging.xpoint.ecc_correctable_ppm > aging.xpoint.ecc_uncorrectable_ppm);
    }
}
