//! Simulation reports.
//!
//! Every run of [`System`](crate::system::System) produces a [`SimReport`]
//! carrying the quantities the paper's figures plot: IPC (Figure 16),
//! average memory access latency (Figure 17), the migration share of
//! channel bandwidth (Figures 8 and 18), the energy breakdown (Figure 19)
//! and the host-staging breakdown (Figure 3).

use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_sim::Ps;

/// Energy breakdown in joules (Figure 19 components).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Channel/DMA energy: electrical lane switching, or optical MRR
    /// tuning plus laser wall power.
    pub dma_j: f64,
    /// DRAM background (refresh + standby) energy over the run.
    pub dram_static_j: f64,
    /// DRAM activate/read/write energy.
    pub dram_dynamic_j: f64,
    /// XPoint media energy.
    pub xpoint_j: f64,
}

impl EnergyReport {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.dma_j + self.dram_static_j + self.dram_dynamic_j + self.xpoint_j
    }
}

/// Host/SSD staging breakdown (Figure 3) — only populated for `Origin`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HostReport {
    /// SSD busy time.
    pub storage_busy: Ps,
    /// DMA busy time.
    pub dma_busy: Ps,
    /// Page-in operations.
    pub staged_in: u64,
    /// Page-out operations.
    pub staged_out: u64,
    /// Bytes moved over the host path.
    pub bytes_moved: u64,
}

/// One row of the per-stage latency table.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Stage name (see `system::stats::Stage`).
    pub name: &'static str,
    /// Recorded intervals.
    pub count: u64,
    /// Mean stage latency, ns.
    pub mean_ns: f64,
    /// Median lower bound (log-bucket resolution), ns.
    pub p50_ns: f64,
    /// 99th-percentile lower bound (log-bucket resolution), ns.
    pub p99_ns: f64,
}

/// Busy-time summary of one resource's utilization timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUtil {
    /// Resource track name (e.g. `vc0 data-route`, `mc1 dram`).
    pub name: String,
    /// Total busy time, µs.
    pub busy_us: f64,
    /// Mean windowed utilization over the run, in `[0, 1]`.
    pub mean_utilization: f64,
    /// Peak windowed utilization, in `[0, 1]`.
    pub peak_utilization: f64,
}

/// Per-stage latency breakdown and per-resource utilization of one run.
///
/// Only populated when observability was enabled before the run; it is
/// deliberately *not* part of the CSV row so figure exports are
/// unaffected.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// One row per request-path stage, in display order.
    pub stages: Vec<StageRow>,
    /// Per-resource busy/utilization rows (channels, devices).
    pub utilization: Vec<ResourceUtil>,
    /// Trace events dropped after the collector's cap.
    pub dropped_events: u64,
}

impl StageSummary {
    /// Renders the summary as a fixed-width text table.
    pub fn format_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>12} {:>12} {:>12}",
            "stage", "count", "mean_ns", "p50_ns", "p99_ns"
        );
        for row in &self.stages {
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>12.1} {:>12.1} {:>12.1}",
                row.name, row.count, row.mean_ns, row.p50_ns, row.p99_ns
            );
        }
        if !self.utilization.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<20} {:>12} {:>10} {:>10}",
                "resource", "busy_us", "mean_util", "peak_util"
            );
            for r in &self.utilization {
                let _ = writeln!(
                    out,
                    "{:<20} {:>12.3} {:>10.3} {:>10.3}",
                    r.name, r.busy_us, r.mean_utilization, r.peak_utilization
                );
            }
        }
        if self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "\n({} trace events dropped at cap)",
                self.dropped_events
            );
        }
        out
    }
}

/// One request-path stage's tally within one phase (count and mean
/// only — the per-phase collector keeps sums, not histograms).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStageRow {
    /// Stage name (see `system::stats::Stage`).
    pub name: &'static str,
    /// Intervals attributed to the phase.
    pub count: u64,
    /// Mean stage latency, ns.
    pub mean_ns: f64,
}

/// Per-phase breakdown row of a phase-structured run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Phase name, from the workload's `PhasePlan`.
    pub name: String,
    /// Instructions issued in the phase, summed over lanes.
    pub instructions: u64,
    /// Instructions per SM-cycle over the phase's issue span. Phases of
    /// different lanes overlap in time, so per-phase IPCs are *not*
    /// additive — each is the phase's own progress rate over its span.
    pub ipc: f64,
    /// First issue and last compute-drain time of the phase.
    pub span: (Ps, Ps),
    /// Demand requests reaching the memory controllers.
    pub mem_requests: u64,
    /// Mean demand-read round-trip latency, ns.
    pub avg_mem_latency_ns: f64,
    /// Mean warp-slice latency (issue to resume), ns.
    pub avg_slice_latency_ns: f64,
    /// Controller services satisfied by the DRAM side.
    pub dram_served: u64,
    /// Controller services satisfied by the XPoint side.
    pub xpoint_served: u64,
    /// DRAM share of controller services (1.0 when nothing was served).
    pub dram_hit_rate: f64,
    /// Non-empty stage tallies attributed to the phase, in stage order.
    pub stages: Vec<PhaseStageRow>,
}

/// Per-phase breakdown of one phase-structured run.
///
/// Only populated when the run was driven by a phased stream (a
/// `PhasePlan` in the configuration, or any stream with a non-empty
/// phase vocabulary); like [`StageSummary`] it is deliberately not part
/// of the CSV row.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// One row per phase, in plan order.
    pub phases: Vec<PhaseRow>,
}

impl PhaseSummary {
    /// Renders the breakdown as a fixed-width text table: one headline
    /// row per phase, then the phase's stage tallies indented under it.
    pub fn format_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>8} {:>10} {:>12} {:>10} {:>10} {:>9}",
            "phase", "insts", "ipc", "mem_reqs", "avg_mem_ns", "dram", "xpoint", "dram_hit"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<14} {:>12} {:>8.3} {:>10} {:>12.1} {:>10} {:>10} {:>9.3}",
                p.name,
                p.instructions,
                p.ipc,
                p.mem_requests,
                p.avg_mem_latency_ns,
                p.dram_served,
                p.xpoint_served,
                p.dram_hit_rate,
            );
            for s in &p.stages {
                let _ = writeln!(
                    out,
                    "  {:<20} {:>10} x {:>10.1} ns",
                    s.name, s.count, s.mean_ns
                );
            }
        }
        out
    }
}

/// Fault-injection and recovery tallies of one run.
///
/// Only populated when the run's [`SystemConfig`](crate::config::SystemConfig)
/// carried a [`FaultPlan`](crate::fault::FaultPlan); like
/// [`StageSummary`] it is deliberately not part of the CSV row. The first
/// six counters come from the fabric, the last three from the XPoint
/// controllers (summed across MCs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Transfers that failed CRC at least once.
    pub corrupted_transfers: u64,
    /// Optical retransmissions performed.
    pub retransmissions: u64,
    /// Transfers whose retransmission budget was exhausted.
    pub retx_exhausted: u64,
    /// MRR stick/drift faults injected.
    pub mrr_faults: u64,
    /// Transfers re-arbitrated onto a healthy wavelength.
    pub rearbitrations: u64,
    /// Transfers degraded onto the electrical fallback path.
    pub electrical_fallbacks: u64,
    /// XPoint media operations that stalled past their DDR-T window.
    pub media_stalls: u64,
    /// XPoint media reissues (DDR-T retries).
    pub media_retries: u64,
    /// Lines poisoned after exhausting their *injected-fault* media-retry
    /// budget. Wear-retirement escalations are counted separately in
    /// [`WearReport::dead_lines`], so this tally stays comparable with
    /// injection-only reference runs (`fig_resilience`).
    pub poisoned_lines: u64,
}

impl FaultReport {
    /// Total recovery actions of any kind — a quick "did anything
    /// degrade" scalar for harnesses.
    pub fn total_recoveries(&self) -> u64 {
        self.retransmissions + self.rearbitrations + self.electrical_fallbacks + self.media_retries
    }
}

/// Planner-side view of capacity degradation, reported by the memory
/// backend (planar or two-level) when the XPoint tier loses lines.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlannerWear {
    /// Planner actions suppressed by retirement: planar hot-page swaps
    /// pinned in DRAM, or two-level fills bypassed.
    pub pinned: u64,
    /// Mean usable fraction of the planner's XPoint window across
    /// controllers (1.0 = nothing retired).
    pub usable_fraction: f64,
    /// Effective XPoint:DRAM ratio after retirement (planar mode; equals
    /// the usable fraction times the configured ratio).
    pub effective_ratio: f64,
}

/// Wear-out lifecycle tallies of one run.
///
/// Only populated when the run's
/// [`SystemConfig`](crate::config::SystemConfig) carried a
/// [`LifecyclePlan`](crate::fault::LifecyclePlan); like [`FaultReport`]
/// it is deliberately not part of the CSV row. Controller counters are
/// summed across MCs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WearReport {
    /// Logical lines retired (remapped into spares or escalated).
    pub retired_lines: u64,
    /// Spare slots consumed by retirement remaps.
    pub spares_used: u64,
    /// Spare slots provisioned across all controllers.
    pub spares_total: u64,
    /// Correctable ECC errors fixed transparently.
    pub ecc_corrected: u64,
    /// Uncorrectable ECC errors (each retired a line).
    pub ecc_uncorrectable: u64,
    /// Lines dead past the spare budget — lost capacity.
    pub dead_lines: u64,
    /// Fraction of the XPoint line space still usable at the end of the
    /// run (dead lines excluded), in `[0, 1]`.
    pub usable_capacity: f64,
    /// Effective-capacity curve: `(when, usable fraction)` samples taken
    /// at spare-exhausted escalations, merged across controllers and
    /// downsampled. Monotone non-increasing in the second component.
    pub capacity_curve: Vec<(Ps, f64)>,
    /// Planner-side degradation view, when the backend reports one.
    pub planner: Option<PlannerWear>,
}

/// The result of one full-system simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Platform simulated.
    pub platform: Platform,
    /// Heterogeneous-memory mode.
    pub mode: OperationalMode,
    /// Workload name (Table II).
    pub workload: String,
    /// Wall-clock makespan of the kernel.
    pub makespan: Ps,
    /// Total instructions retired across all SMs.
    pub instructions: u64,
    /// Instructions per SM-cycle, summed over SMs.
    pub ipc: f64,
    /// Demand memory requests that reached the memory controllers.
    pub mem_requests: u64,
    /// Mean memory access latency (MC arrival to data at MC), ns.
    pub avg_mem_latency_ns: f64,
    /// L1 data-cache hit rate.
    pub l1_hit_rate: f64,
    /// L2 hit rate.
    pub l2_hit_rate: f64,
    /// DRAM-cache (two-level) or DRAM-residence (planar) hit rate of the
    /// heterogeneous memory; 1.0 for homogeneous platforms.
    pub hetero_dram_hit_rate: f64,
    /// Fraction of channel (data-route) busy time used by migrations.
    pub migration_channel_fraction: f64,
    /// Page/line migrations performed.
    pub migrations: u64,
    /// Mean data-route utilisation of the memory channel.
    pub channel_utilization: f64,
    /// Bits moved on the memory channel (demand, migration).
    pub channel_bits: (u64, u64),
    /// Energy breakdown.
    pub energy: EnergyReport,
    /// Host-staging breakdown (Origin only).
    pub host: Option<HostReport>,
    /// XPoint wear-leveling imbalance (max/mean bucket writes).
    pub wear_imbalance: f64,
    /// Per-stage latency/utilization breakdown; `Some` only when
    /// observability was enabled for the run. Not exported to CSV.
    pub stages: Option<StageSummary>,
    /// Fault/recovery tallies; `Some` only when the run carried a
    /// fault plan. Not exported to CSV.
    pub faults: Option<FaultReport>,
    /// Wear-out lifecycle tallies; `Some` only when the run carried a
    /// lifecycle plan. Not exported to CSV.
    pub wear: Option<WearReport>,
    /// Per-phase breakdown; `Some` only when the run was driven by a
    /// phase-structured stream. Not exported to CSV.
    pub phases: Option<PhaseSummary>,
}

impl SimReport {
    /// Column names matching [`SimReport::csv_row`], for plotting exports.
    pub fn csv_header() -> &'static str {
        "platform,mode,workload,makespan_us,instructions,ipc,mem_requests,\
         avg_mem_latency_ns,l1_hit,l2_hit,hetero_dram_hit,migration_fraction,\
         migrations,channel_utilization,demand_bits,migration_bits,\
         dma_j,dram_static_j,dram_dynamic_j,xpoint_j,wear_imbalance"
    }

    /// One comma-separated row of this report's headline numbers.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:?},{},{:.3},{},{:.6},{},{:.3},{:.4},{:.4},{:.4},{:.4},{},{:.4},{},{},{:.6e},{:.6e},{:.6e},{:.6e},{:.3}",
            self.platform.name(),
            self.mode,
            self.workload,
            self.makespan.as_us_f64(),
            self.instructions,
            self.ipc,
            self.mem_requests,
            self.avg_mem_latency_ns,
            self.l1_hit_rate,
            self.l2_hit_rate,
            self.hetero_dram_hit_rate,
            self.migration_channel_fraction,
            self.migrations,
            self.channel_utilization,
            self.channel_bits.0,
            self.channel_bits.1,
            self.energy.dma_j,
            self.energy.dram_static_j,
            self.energy.dram_dynamic_j,
            self.energy.xpoint_j,
            self.wear_imbalance,
        )
    }

    /// Speedup of this report's IPC over a baseline report's IPC.
    ///
    /// # Panics
    ///
    /// Panics if the baseline IPC is zero.
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        assert!(baseline.ipc > 0.0, "baseline IPC must be positive");
        self.ipc / baseline.ipc
    }

    /// Memory latency normalised to a baseline report.
    ///
    /// # Panics
    ///
    /// Panics if the baseline latency is zero.
    pub fn latency_normalized_to(&self, baseline: &SimReport) -> f64 {
        assert!(
            baseline.avg_mem_latency_ns > 0.0,
            "baseline latency must be positive"
        );
        self.avg_mem_latency_ns / baseline.avg_mem_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(ipc: f64, lat: f64) -> SimReport {
        SimReport {
            platform: Platform::OhmBase,
            mode: OperationalMode::Planar,
            workload: "test".into(),
            makespan: Ps::from_us(1),
            instructions: 1000,
            ipc,
            mem_requests: 10,
            avg_mem_latency_ns: lat,
            l1_hit_rate: 0.5,
            l2_hit_rate: 0.5,
            hetero_dram_hit_rate: 0.5,
            migration_channel_fraction: 0.1,
            migrations: 1,
            channel_utilization: 0.5,
            channel_bits: (100, 10),
            energy: EnergyReport::default(),
            host: None,
            wear_imbalance: 1.0,
            stages: None,
            faults: None,
            wear: None,
            phases: None,
        }
    }

    #[test]
    fn speedup_and_normalisation() {
        let base = dummy(1.0, 100.0);
        let fast = dummy(2.0, 50.0);
        assert_eq!(fast.speedup_over(&base), 2.0);
        assert_eq!(fast.latency_normalized_to(&base), 0.5);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = dummy(1.5, 42.0);
        let cols = SimReport::csv_header().split(',').count();
        let cells = r.csv_row().split(',').count();
        assert_eq!(cols, cells);
        assert!(r.csv_row().starts_with("Ohm-base,Planar,test,"));
    }

    #[test]
    fn energy_total() {
        let e = EnergyReport {
            dma_j: 1.0,
            dram_static_j: 2.0,
            dram_dynamic_j: 3.0,
            xpoint_j: 4.0,
        };
        assert_eq!(e.total_j(), 10.0);
    }

    #[test]
    #[should_panic(expected = "baseline IPC")]
    fn zero_baseline_rejected() {
        let base = dummy(0.0, 100.0);
        let _ = dummy(1.0, 1.0).speedup_over(&base);
    }
}
