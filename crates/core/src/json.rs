//! Minimal JSON support for the hand-rolled readers and writers.
//!
//! The workspace carries no JSON dependency; the trace exporter and the
//! bench harness write JSON by hand. Every *string* they interpolate —
//! track names, hostnames, workload names — must go through
//! [`escape_json`], otherwise a name containing `"` or `\` produces an
//! invalid document.
//!
//! The `ohm-serve` daemon additionally needs to *read* JSON (sweep-job
//! requests arrive over HTTP), so this module also carries a small
//! recursive-descent parser into [`JsonValue`] — objects keep their
//! key order in a `Vec` (no maps, so re-rendering is deterministic),
//! numbers are `f64`, and nesting depth is capped so a hostile body
//! cannot overflow the stack.

use std::fmt::Write;

/// Appends `s` to `out` with JSON string escaping applied (quotes,
/// backslashes, and control characters; no surrounding quotes).
pub fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` as a JSON-escaped string (no surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_json_into(&mut out, s);
    out
}

/// Undoes [`escape_json`]: decodes the escapes the encoder can produce
/// (plus the full `\uXXXX` form) back to the original string.
///
/// Returns `None` on a malformed escape — a lone trailing backslash, an
/// unknown escape character, or a `\u` sequence that is not four hex
/// digits naming a valid scalar. The checkpoint journal uses this to
/// decode string fields of a record, so a corrupt-but-CRC-valid record
/// is reported as malformed instead of silently mis-decoded.
pub fn unescape_json(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'b' => out.push('\u{08}'),
            'f' => out.push('\u{0c}'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// A parsed JSON document.
///
/// Objects preserve their textual key order (a `Vec`, not a map), so a
/// value re-rendered field by field is deterministic — the same policy
/// as the rest of the workspace's hand-rolled encoders. Numbers are
/// carried as `f64`: every integer the simulator's job specs use
/// (footprints, seeds, counts) is well below 2^53 and round-trips
/// exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in textual key order. Duplicate keys are kept as
    /// written; [`JsonValue::get`] returns the first.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object (first occurrence), if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer: present
    /// only for a number that is finite, integral, in `u64` range, and
    /// below 2^53 (the largest width `f64` carries exactly).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n.fract() == 0.0 && (0.0..9_007_199_254_740_992.0).contains(&n)).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in textual order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Deepest object/array nesting [`parse_json`] accepts. Job specs are
/// three levels deep; 64 leaves headroom without letting a hostile body
/// recurse the parser off the stack.
const MAX_JSON_DEPTH: usize = 64;

/// Parses one JSON document, rejecting trailing non-whitespace.
///
/// # Errors
///
/// A human-readable description naming the byte offset of the first
/// violation.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Recursive-descent JSON parser state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Consumes `lit` (used for `true`/`false`/`null` after their first
    /// byte has been peeked).
    fn expect(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_JSON_DEPTH {
            return Err(format!("nesting deeper than {MAX_JSON_DEPTH}"));
        }
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.expect("null").map(|()| JsonValue::Null),
            Some(b't') => self.expect("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.expect("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected byte {:?} at {}", c as char, self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.pos += 1; // consume `{`
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(format!("expected object key at byte {}", self.pos));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(format!("expected `:` at byte {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        let start = self.pos;
        self.pos += 1; // consume opening quote
        let mut escaped = false;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(format!("unterminated string starting at byte {start}")),
                Some(b'\\') if !escaped => {
                    escaped = true;
                    self.pos += 1;
                }
                Some(b'"') if !escaped => {
                    let raw = std::str::from_utf8(&self.bytes[start + 1..self.pos])
                        .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?;
                    self.pos += 1;
                    return unescape_json(raw)
                        .ok_or_else(|| format!("bad escape in string at byte {start}"));
                }
                Some(_) => {
                    escaped = false;
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII span");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [`unescape_json`], asserting well-formedness (the round-trip
    /// tests below only feed it encoder output).
    fn unescape(s: &str) -> String {
        unescape_json(s).expect("encoder output is well-formed")
    }

    #[test]
    fn hostile_name_round_trips() {
        let hostile = "pager\"ank\\2026\n\tname with \u{1} ctrl and \u{0c} feed";
        let escaped = escape_json(hostile);
        // The escaped form must contain no raw quote, backslash-outside-
        // escape, or control character…
        assert!(!escaped.contains('\n'));
        assert!(!escaped.contains('\t'));
        assert!(escaped.chars().all(|c| (c as u32) >= 0x20));
        let mut quoted = String::from("\"");
        quoted.push_str(&escaped);
        quoted.push('"');
        assert!(quoted[1..quoted.len() - 1]
            .match_indices('"')
            .all(|(i, _)| quoted.as_bytes()[i] == b'\\'));
        // …and decode back to the original.
        assert_eq!(unescape(&escaped), hostile);
    }

    #[test]
    fn plain_names_pass_through_unchanged() {
        for name in ["pagerank", "mc3 CtrlQueue", "vc5 data-route", "host-01"] {
            assert_eq!(escape_json(name), name);
        }
    }

    #[test]
    fn into_variant_appends() {
        let mut out = String::from("prefix:");
        escape_json_into(&mut out, "a\"b");
        assert_eq!(out, "prefix:a\\\"b");
    }

    #[test]
    fn unescape_rejects_malformed_escapes() {
        assert_eq!(unescape_json("trailing\\"), None);
        assert_eq!(unescape_json("bad \\x escape"), None);
        assert_eq!(unescape_json("\\u12"), None);
        assert_eq!(unescape_json("\\uzzzz"), None);
        // Surrogate code points are not valid scalars.
        assert_eq!(unescape_json("\\ud800"), None);
        // The solidus escape is legal JSON even though the encoder
        // never emits it.
        assert_eq!(unescape_json("a\\/b").as_deref(), Some("a/b"));
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse_json("-2.5").unwrap().as_f64(), Some(-2.5));
        assert_eq!(parse_json("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(
            parse_json("\"a\\\"b\"").unwrap().as_str(),
            Some("a\"b"),
            "escapes decode"
        );
    }

    #[test]
    fn parses_structures_preserving_order() {
        let v = parse_json(r#"{"b": [1, 2, {"x": null}], "a": "y", "b": 9}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj.len(), 3, "duplicate keys kept as written");
        assert_eq!(obj[0].0, "b");
        assert_eq!(obj[1].0, "a");
        // `get` returns the first occurrence.
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("x"), Some(&JsonValue::Null));
        assert_eq!(v.get("a").unwrap().as_str(), Some("y"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse_json("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse_json("{}").unwrap(), JsonValue::Obj(vec![]));
    }

    #[test]
    fn round_trips_escaped_strings() {
        let hostile = "pager\"ank\\with spaces\n\ttab";
        let doc = format!("{{\"name\": \"{}\"}}", escape_json(hostile));
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some(hostile));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": }",
            "{a: 1}",
            "tru",
            "1 2",
            "[1] extra",
            "\"unterminated",
            "\"bad \\x escape\"",
            "nan",
            "1e999", // overflows to infinity — not a finite JSON number
            "--1",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn caps_nesting_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse_json(&deep).unwrap_err().contains("nesting"));
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn u64_extraction_is_exact_only() {
        assert_eq!(parse_json("0").unwrap().as_u64(), Some(0));
        assert_eq!(
            parse_json("9007199254740991").unwrap().as_u64(),
            Some((1 << 53) - 1)
        );
        assert_eq!(parse_json("-1").unwrap().as_u64(), None);
        assert_eq!(parse_json("1.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("1e300").unwrap().as_u64(), None);
        assert_eq!(parse_json("true").unwrap().as_u64(), None);
    }
}
