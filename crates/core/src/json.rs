//! Minimal JSON string escaping for the hand-rolled writers.
//!
//! The workspace carries no JSON dependency; the trace exporter and the
//! bench harness write JSON by hand. Every *string* they interpolate —
//! track names, hostnames, workload names — must go through
//! [`escape_json`], otherwise a name containing `"` or `\` produces an
//! invalid document.

use std::fmt::Write;

/// Appends `s` to `out` with JSON string escaping applied (quotes,
/// backslashes, and control characters; no surrounding quotes).
pub fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` as a JSON-escaped string (no surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_json_into(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Undoes [`escape_json`] for the round-trip test below; only the
    /// escapes the encoder can produce need decoding.
    fn unescape(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{08}'),
                Some('f') => out.push('\u{0c}'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).expect("valid \\u escape");
                    out.push(char::from_u32(code).expect("valid scalar"));
                }
                other => panic!("unexpected escape: {other:?}"),
            }
        }
        out
    }

    #[test]
    fn hostile_name_round_trips() {
        let hostile = "pager\"ank\\2026\n\tname with \u{1} ctrl and \u{0c} feed";
        let escaped = escape_json(hostile);
        // The escaped form must contain no raw quote, backslash-outside-
        // escape, or control character…
        assert!(!escaped.contains('\n'));
        assert!(!escaped.contains('\t'));
        assert!(escaped.chars().all(|c| (c as u32) >= 0x20));
        let mut quoted = String::from("\"");
        quoted.push_str(&escaped);
        quoted.push('"');
        assert!(quoted[1..quoted.len() - 1]
            .match_indices('"')
            .all(|(i, _)| quoted.as_bytes()[i] == b'\\'));
        // …and decode back to the original.
        assert_eq!(unescape(&escaped), hostile);
    }

    #[test]
    fn plain_names_pass_through_unchanged() {
        for name in ["pagerank", "mc3 CtrlQueue", "vc5 data-route", "host-01"] {
            assert_eq!(escape_json(name), name);
        }
    }

    #[test]
    fn into_variant_appends() {
        let mut out = String::from("prefix:");
        escape_json_into(&mut out, "a\"b");
        assert_eq!(out, "prefix:a\\\"b");
    }
}
