//! Minimal JSON string escaping for the hand-rolled writers.
//!
//! The workspace carries no JSON dependency; the trace exporter and the
//! bench harness write JSON by hand. Every *string* they interpolate —
//! track names, hostnames, workload names — must go through
//! [`escape_json`], otherwise a name containing `"` or `\` produces an
//! invalid document.

use std::fmt::Write;

/// Appends `s` to `out` with JSON string escaping applied (quotes,
/// backslashes, and control characters; no surrounding quotes).
pub fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` as a JSON-escaped string (no surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_json_into(&mut out, s);
    out
}

/// Undoes [`escape_json`]: decodes the escapes the encoder can produce
/// (plus the full `\uXXXX` form) back to the original string.
///
/// Returns `None` on a malformed escape — a lone trailing backslash, an
/// unknown escape character, or a `\u` sequence that is not four hex
/// digits naming a valid scalar. The checkpoint journal uses this to
/// decode string fields of a record, so a corrupt-but-CRC-valid record
/// is reported as malformed instead of silently mis-decoded.
pub fn unescape_json(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'b' => out.push('\u{08}'),
            'f' => out.push('\u{0c}'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [`unescape_json`], asserting well-formedness (the round-trip
    /// tests below only feed it encoder output).
    fn unescape(s: &str) -> String {
        unescape_json(s).expect("encoder output is well-formed")
    }

    #[test]
    fn hostile_name_round_trips() {
        let hostile = "pager\"ank\\2026\n\tname with \u{1} ctrl and \u{0c} feed";
        let escaped = escape_json(hostile);
        // The escaped form must contain no raw quote, backslash-outside-
        // escape, or control character…
        assert!(!escaped.contains('\n'));
        assert!(!escaped.contains('\t'));
        assert!(escaped.chars().all(|c| (c as u32) >= 0x20));
        let mut quoted = String::from("\"");
        quoted.push_str(&escaped);
        quoted.push('"');
        assert!(quoted[1..quoted.len() - 1]
            .match_indices('"')
            .all(|(i, _)| quoted.as_bytes()[i] == b'\\'));
        // …and decode back to the original.
        assert_eq!(unescape(&escaped), hostile);
    }

    #[test]
    fn plain_names_pass_through_unchanged() {
        for name in ["pagerank", "mc3 CtrlQueue", "vc5 data-route", "host-01"] {
            assert_eq!(escape_json(name), name);
        }
    }

    #[test]
    fn into_variant_appends() {
        let mut out = String::from("prefix:");
        escape_json_into(&mut out, "a\"b");
        assert_eq!(out, "prefix:a\\\"b");
    }

    #[test]
    fn unescape_rejects_malformed_escapes() {
        assert_eq!(unescape_json("trailing\\"), None);
        assert_eq!(unescape_json("bad \\x escape"), None);
        assert_eq!(unescape_json("\\u12"), None);
        assert_eq!(unescape_json("\\uzzzz"), None);
        // Surrogate code points are not valid scalars.
        assert_eq!(unescape_json("\\ud800"), None);
        // The solidus escape is legal JSON even though the encoder
        // never emits it.
        assert_eq!(unescape_json("a\\/b").as_deref(), Some("a/b"));
    }
}
