//! Parameter-sweep utilities.
//!
//! The ablation harnesses all share a shape: vary one knob, run a
//! platform, collect reports. These helpers centralise that plumbing and
//! keep sweeps deterministic (the same seed per point).

use std::sync::Arc;

use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::WorkloadSpec;

use crate::config::SystemConfig;
use crate::metrics::SimReport;
use crate::par::{default_threads, par_map_indexed, par_try_map_indexed, CellError, RetryPolicy};
use crate::system::System;

/// One sweep point: the knob value and the report it produced.
#[derive(Debug, Clone)]
pub struct SweepPoint<T> {
    /// The knob value.
    pub value: T,
    /// The resulting report.
    pub report: SimReport,
}

/// Runs `platform`/`mode`/`spec` once per knob value, applying `configure`
/// to a fresh copy of `base` each time.
///
/// # Example
///
/// ```
/// use ohm_core::config::SystemConfig;
/// use ohm_core::sweep::sweep;
/// use ohm_hetero::Platform;
/// use ohm_optic::OperationalMode;
/// use ohm_workloads::workload_by_name;
///
/// let base = SystemConfig::quick_test();
/// let spec = workload_by_name("gctopo").unwrap();
/// let points = sweep(
///     &base,
///     Platform::OhmWom,
///     OperationalMode::Planar,
///     &spec,
///     [4u32, 64],
///     |cfg, &threshold| cfg.memory.hot_threshold = threshold,
/// );
/// assert_eq!(points.len(), 2);
/// // Aggressive promotion migrates more.
/// assert!(points[0].report.migrations >= points[1].report.migrations);
/// ```
pub fn sweep<T, I, F>(
    base: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    values: I,
    configure: F,
) -> Vec<SweepPoint<T>>
where
    T: Sync,
    I: IntoIterator<Item = T>,
    F: Fn(&mut SystemConfig, &T) + Sync,
{
    sweep_threaded(
        base,
        platform,
        mode,
        spec,
        values,
        configure,
        default_threads(),
    )
}

/// [`sweep`] on the caller's thread only — the reference the parallel
/// path is checked against.
pub fn sweep_serial<T, I, F>(
    base: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    values: I,
    configure: F,
) -> Vec<SweepPoint<T>>
where
    T: Sync,
    I: IntoIterator<Item = T>,
    F: Fn(&mut SystemConfig, &T) + Sync,
{
    sweep_threaded(base, platform, mode, spec, values, configure, 1)
}

/// [`sweep`] over an explicit worker count. Each point builds its own
/// config and [`System`], so points are independent and the reports are
/// bit-identical at any thread count.
pub fn sweep_threaded<T, I, F>(
    base: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    values: I,
    configure: F,
    threads: usize,
) -> Vec<SweepPoint<T>>
where
    T: Sync,
    I: IntoIterator<Item = T>,
    F: Fn(&mut SystemConfig, &T) + Sync,
{
    let values: Vec<T> = values.into_iter().collect();
    let reports = par_map_indexed(values.len(), threads, |i| {
        let mut cfg = base.clone();
        configure(&mut cfg, &values[i]);
        System::new(&cfg, platform, mode, spec).run()
    });
    values
        .into_iter()
        .zip(reports)
        .map(|(value, report)| SweepPoint { value, report })
        .collect()
}

/// One point of a fault-isolated sweep: the knob value and either its
/// report or the typed failure that quarantined it.
#[derive(Debug, Clone)]
pub struct TrySweepPoint<T> {
    /// The knob value.
    pub value: T,
    /// The report, or the error that exhausted the point's retries.
    pub outcome: Result<SimReport, CellError>,
}

/// Fault-isolated [`sweep_threaded`]: a panicking point (a knob value
/// the configuration rejects, say) is retried under `policy` and then
/// quarantined as a typed [`CellError`] instead of tearing down the
/// whole sweep — the surviving points still report.
///
/// The `configure` closure runs inside the isolated job, so a panic in
/// *it* (not just in the simulation) is quarantined the same way. The
/// `'static` bounds pay for the watchdog machinery — see
/// [`par_try_map_indexed`].
// Mirrors `sweep_threaded`'s axis parameters plus the fault policy;
// bundling them into a struct would diverge from the sibling sweeps.
#[allow(clippy::too_many_arguments)]
pub fn try_sweep<T, I, F>(
    base: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    values: I,
    policy: RetryPolicy,
    threads: usize,
    configure: F,
) -> Vec<TrySweepPoint<T>>
where
    T: Clone + Send + Sync + 'static,
    I: IntoIterator<Item = T>,
    F: Fn(&mut SystemConfig, &T) + Send + Sync + 'static,
{
    let values: Arc<Vec<T>> = Arc::new(values.into_iter().collect());
    let n = values.len();
    let job = {
        let values = Arc::clone(&values);
        let base = base.clone();
        let spec = *spec;
        move |i: usize| {
            let mut cfg = base.clone();
            configure(&mut cfg, &values[i]);
            System::new(&cfg, platform, mode, &spec).run()
        }
    };
    let outcomes = par_try_map_indexed(n, threads, policy, job);
    values
        .iter()
        .cloned()
        .zip(outcomes)
        .map(|(value, outcome)| TrySweepPoint { value, outcome })
        .collect()
}

/// The knob value whose report maximises `metric`, with its report.
///
/// Returns `None` for an empty sweep.
pub fn best_by<T, F>(points: &[SweepPoint<T>], mut metric: F) -> Option<&SweepPoint<T>>
where
    F: FnMut(&SimReport) -> f64,
{
    points
        .iter()
        .max_by(|a, b| metric(&a.report).total_cmp(&metric(&b.report)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohm_workloads::workload_by_name;

    #[test]
    fn sweep_runs_each_point_deterministically() {
        let base = SystemConfig::quick_test();
        let spec = workload_by_name("bfsdata").unwrap();
        let points = sweep(
            &base,
            Platform::OhmBase,
            OperationalMode::Planar,
            &spec,
            [1u32, 2, 1],
            |cfg, &w| cfg.optical.waveguides = w,
        );
        assert_eq!(points.len(), 3);
        // Same knob value => identical run.
        assert_eq!(points[0].report.makespan, points[2].report.makespan);
        assert_eq!(points[0].value, points[2].value);
    }

    #[test]
    fn try_sweep_quarantines_a_poison_point() {
        let base = SystemConfig::quick_test();
        let spec = workload_by_name("bfsdata").unwrap();
        let points = try_sweep(
            &base,
            Platform::OhmBase,
            OperationalMode::Planar,
            &spec,
            [1u32, 2, 4],
            RetryPolicy::NONE,
            2,
            |cfg, &w| {
                // A panic in `configure` itself must be quarantined too.
                assert!(w != 2, "knob value 2 is poison");
                cfg.optical.waveguides = w;
            },
        );
        assert_eq!(points.len(), 3);
        assert!(points[0].outcome.is_ok());
        assert!(points[2].outcome.is_ok());
        let e = points[1].outcome.as_ref().unwrap_err();
        assert_eq!(e.index, 1);
        assert!(e.payload.contains("poison"), "{e}");
        // Quarantine did not perturb the surviving points.
        let reference = sweep_serial(
            &base,
            Platform::OhmBase,
            OperationalMode::Planar,
            &spec,
            [1u32],
            |cfg, &w| cfg.optical.waveguides = w,
        );
        assert_eq!(
            points[0].outcome.as_ref().unwrap(),
            &reference[0].report,
            "isolated point diverged from the strict path"
        );
    }

    #[test]
    fn best_by_selects_the_maximum() {
        let base = SystemConfig::quick_test();
        let spec = workload_by_name("pagerank").unwrap();
        let points = sweep(
            &base,
            Platform::OhmBw,
            OperationalMode::Planar,
            &spec,
            [1u32, 4],
            |cfg, &w| cfg.optical.waveguides = w,
        );
        let best = best_by(&points, |r| r.ipc).expect("non-empty");
        assert!(points.iter().all(|p| p.report.ipc <= best.report.ipc));
        assert!(best_by(&[] as &[SweepPoint<u32>], |r| r.ipc).is_none());
    }
}
