//! Parameter-sweep utilities.
//!
//! The ablation harnesses all share a shape: vary one knob, run a
//! platform, collect reports. These helpers centralise that plumbing and
//! keep sweeps deterministic (the same seed per point).

use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::WorkloadSpec;

use crate::config::SystemConfig;
use crate::metrics::SimReport;
use crate::par::{default_threads, par_map_indexed};
use crate::system::System;

/// One sweep point: the knob value and the report it produced.
#[derive(Debug, Clone)]
pub struct SweepPoint<T> {
    /// The knob value.
    pub value: T,
    /// The resulting report.
    pub report: SimReport,
}

/// Runs `platform`/`mode`/`spec` once per knob value, applying `configure`
/// to a fresh copy of `base` each time.
///
/// # Example
///
/// ```
/// use ohm_core::config::SystemConfig;
/// use ohm_core::sweep::sweep;
/// use ohm_hetero::Platform;
/// use ohm_optic::OperationalMode;
/// use ohm_workloads::workload_by_name;
///
/// let base = SystemConfig::quick_test();
/// let spec = workload_by_name("gctopo").unwrap();
/// let points = sweep(
///     &base,
///     Platform::OhmWom,
///     OperationalMode::Planar,
///     &spec,
///     [4u32, 64],
///     |cfg, &threshold| cfg.memory.hot_threshold = threshold,
/// );
/// assert_eq!(points.len(), 2);
/// // Aggressive promotion migrates more.
/// assert!(points[0].report.migrations >= points[1].report.migrations);
/// ```
pub fn sweep<T, I, F>(
    base: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    values: I,
    configure: F,
) -> Vec<SweepPoint<T>>
where
    T: Sync,
    I: IntoIterator<Item = T>,
    F: Fn(&mut SystemConfig, &T) + Sync,
{
    sweep_threaded(
        base,
        platform,
        mode,
        spec,
        values,
        configure,
        default_threads(),
    )
}

/// [`sweep`] on the caller's thread only — the reference the parallel
/// path is checked against.
pub fn sweep_serial<T, I, F>(
    base: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    values: I,
    configure: F,
) -> Vec<SweepPoint<T>>
where
    T: Sync,
    I: IntoIterator<Item = T>,
    F: Fn(&mut SystemConfig, &T) + Sync,
{
    sweep_threaded(base, platform, mode, spec, values, configure, 1)
}

/// [`sweep`] over an explicit worker count. Each point builds its own
/// config and [`System`], so points are independent and the reports are
/// bit-identical at any thread count.
pub fn sweep_threaded<T, I, F>(
    base: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    values: I,
    configure: F,
    threads: usize,
) -> Vec<SweepPoint<T>>
where
    T: Sync,
    I: IntoIterator<Item = T>,
    F: Fn(&mut SystemConfig, &T) + Sync,
{
    let values: Vec<T> = values.into_iter().collect();
    let reports = par_map_indexed(values.len(), threads, |i| {
        let mut cfg = base.clone();
        configure(&mut cfg, &values[i]);
        System::new(&cfg, platform, mode, spec).run()
    });
    values
        .into_iter()
        .zip(reports)
        .map(|(value, report)| SweepPoint { value, report })
        .collect()
}

/// The knob value whose report maximises `metric`, with its report.
///
/// Returns `None` for an empty sweep.
pub fn best_by<T, F>(points: &[SweepPoint<T>], mut metric: F) -> Option<&SweepPoint<T>>
where
    F: FnMut(&SimReport) -> f64,
{
    points
        .iter()
        .max_by(|a, b| metric(&a.report).total_cmp(&metric(&b.report)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohm_workloads::workload_by_name;

    #[test]
    fn sweep_runs_each_point_deterministically() {
        let base = SystemConfig::quick_test();
        let spec = workload_by_name("bfsdata").unwrap();
        let points = sweep(
            &base,
            Platform::OhmBase,
            OperationalMode::Planar,
            &spec,
            [1u32, 2, 1],
            |cfg, &w| cfg.optical.waveguides = w,
        );
        assert_eq!(points.len(), 3);
        // Same knob value => identical run.
        assert_eq!(points[0].report.makespan, points[2].report.makespan);
        assert_eq!(points[0].value, points[2].value);
    }

    #[test]
    fn best_by_selects_the_maximum() {
        let base = SystemConfig::quick_test();
        let spec = workload_by_name("pagerank").unwrap();
        let points = sweep(
            &base,
            Platform::OhmBw,
            OperationalMode::Planar,
            &spec,
            [1u32, 4],
            |cfg, &w| cfg.optical.waveguides = w,
        );
        let best = best_by(&points, |r| r.ipc).expect("non-empty");
        assert!(points.iter().all(|p| p.report.ipc <= best.report.ipc));
        assert!(best_by(&[] as &[SweepPoint<u32>], |r| r.ipc).is_none());
    }
}
