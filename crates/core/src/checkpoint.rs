//! Durable sweep execution: the append-only, CRC-checked cell journal.
//!
//! A multi-hour [`GridRun`](crate::runner::GridRun) used to be all-or-
//! nothing: a killed process lost every completed cell. This module is
//! the durability substrate behind
//! [`GridRun::checkpoint`](crate::runner::GridRun::checkpoint): each
//! finished cell is appended to a journal on disk, keyed by a canonical
//! content hash of everything that determines its result, and a
//! restarted run replays verified records instead of re-simulating.
//!
//! # Journal format (`ohm-journal v1`)
//!
//! A journal is a UTF-8 file with a one-line header followed by framed
//! records:
//!
//! ```text
//! ohm-journal v1
//! REC <key:016x> <payload-bytes> <crc32:08x>
//! <payload…>
//! REC …
//! ```
//!
//! The payload is a [`SimReport`] in the line-oriented codec below; the
//! CRC32 (IEEE) covers exactly the payload bytes. Records are appended
//! and flushed one at a time, so a `SIGKILL` can lose at most the
//! record being written. On open the tail is verified frame by frame: a
//! torn `REC` line, a short payload, or a CRC mismatch truncates the
//! file at the last verified record — a half-written tail can never
//! poison the store. A record that frames and CRC-verifies but does not
//! *decode* is a different animal (a journal written by an incompatible
//! build), and is reported as a hard [`JournalError::Malformed`] rather
//! than silently dropped.
//!
//! # Cell keys and canonicalization
//!
//! [`cell_key`] hashes the canonical forms of the
//! [`SystemConfig`] (its complete derived
//! `Debug` rendering — every field, no maps, deterministic; see
//! [`SystemConfig::canonical`]), the platform, the mode, and the
//! workload spec. Anything that can change a simulated result is in the
//! key; harness knobs that provably cannot (worker counts, progress and
//! profiling flags — strict-mode results are bit-identical across all
//! of them, DESIGN.md §3.8) are deliberately not. Renaming or adding a
//! config field changes the canonical form and therefore the key, which
//! is the conservative behaviour a result cache wants: a config whose
//! *meaning* may have moved is re-simulated, never replayed.
//!
//! # Determinism contract
//!
//! The codec is bit-exact: every `f64` travels as its IEEE-754 bit
//! pattern, so `decode(encode(r)) == r` down to the last bit (including
//! NaN payloads and signed zeros). Combined with the simulator's own
//! determinism (same config ⇒ same report), a resumed grid is
//! bit-identical to an uninterrupted one — [`report_digest`] over the
//! rows is the golden assertion the test suite and the CI chaos job
//! both pin.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{Seek as _, Write as _};
use std::path::{Path, PathBuf};

use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_sim::Ps;
use ohm_workloads::WorkloadSpec;

use crate::config::SystemConfig;
use crate::json::{escape_json, unescape_json};
use crate::metrics::{
    EnergyReport, FaultReport, HostReport, PhaseRow, PhaseStageRow, PhaseSummary, PlannerWear,
    ResourceUtil, SimReport, StageRow, StageSummary, WearReport,
};
use crate::system::Stage;

/// Header line identifying a journal file and its format version.
pub const JOURNAL_HEADER: &str = "ohm-journal v1";

/// A problem opening or reading a journal.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file exists but does not start with [`JOURNAL_HEADER`] —
    /// either not a journal at all, or one written by an incompatible
    /// format version. Never truncated: refusing to touch it beats
    /// destroying a file the caller mis-pointed at.
    BadHeader {
        /// What the first line actually was.
        found: String,
    },
    /// A record framed and CRC-verified but its payload did not decode
    /// as a [`SimReport`] — a journal from an incompatible build.
    Malformed {
        /// 0-based record index within the journal.
        record: usize,
        /// What failed to decode.
        what: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader { found } => write!(
                f,
                "not an `{JOURNAL_HEADER}` file (first line: {found:?}); refusing to touch it"
            ),
            JournalError::Malformed { record, what } => write!(
                f,
                "journal record {record} verified but did not decode ({what}); \
                 the journal was written by an incompatible build — delete it to re-run"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// How aggressively [`Journal::append`] pushes records to stable
/// storage — the durability knob behind the "≤ 1 record lost" claim.
///
/// Every append is `write + flush` regardless of policy, so once
/// `append` returns the operating system holds the full frame and a
/// `SIGKILL` of the *process* cannot lose it. The policies differ in
/// when the record reaches the *disk*: what survives a crash of the
/// host itself (power loss, kernel panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every append: at most the record being written is
    /// lost even if the host crashes. The right choice for a long-lived
    /// daemon whose cache outlives any one process (`ohm-serve`).
    Always,
    /// One `fsync` when the journal closes (and on explicit
    /// [`Journal::sync`]). Process kills still lose at most one record;
    /// a host crash may lose everything since open. The default —
    /// matches the historical `GridRun::checkpoint` contract, where a
    /// lost journal merely costs re-simulation.
    #[default]
    OnClose,
}

impl FsyncPolicy {
    /// Parses the policy's command-line rendering (`always`/`on-close`).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "on-close" => Some(FsyncPolicy::OnClose),
            _ => None,
        }
    }

    /// The command-line rendering accepted by [`FsyncPolicy::parse`].
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::OnClose => "on-close",
        }
    }
}

/// An open checkpoint journal: the recovered in-memory index plus an
/// append handle positioned after the last verified record.
///
/// Appends are `write + flush` per record, so the operating system has
/// the full frame even if the process is later `SIGKILL`ed; whether the
/// record also reaches stable storage per append is the
/// [`FsyncPolicy`]. A torn record is truncated on the next open.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    entries: HashMap<u64, SimReport>,
    truncated_bytes: u64,
    fsync: FsyncPolicy,
    syncs: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path` with the default
    /// [`FsyncPolicy::OnClose`] durability.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failures,
    /// [`JournalError::BadHeader`] when the file exists but is not a
    /// journal, and [`JournalError::Malformed`] when a CRC-valid record
    /// does not decode (incompatible build).
    pub fn open(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        Journal::open_with(path, FsyncPolicy::default())
    }

    /// [`Journal::open`] with an explicit [`FsyncPolicy`].
    ///
    /// # Errors
    ///
    /// As [`Journal::open`].
    pub fn open_with(path: impl AsRef<Path>, fsync: FsyncPolicy) -> Result<Journal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };

        let mut entries = HashMap::new();
        let mut verified_len = 0u64;
        let mut fresh = true;
        if !bytes.is_empty() {
            fresh = false;
            let header_end = match bytes.iter().position(|&b| b == b'\n') {
                Some(i) if &bytes[..i] == JOURNAL_HEADER.as_bytes() => i + 1,
                _ => {
                    let found = String::from_utf8_lossy(
                        &bytes[..bytes
                            .iter()
                            .position(|&b| b == b'\n')
                            .unwrap_or(bytes.len().min(64))],
                    )
                    .into_owned();
                    return Err(JournalError::BadHeader { found });
                }
            };
            let mut pos = header_end;
            let mut record = 0usize;
            loop {
                match next_record(&bytes, pos) {
                    Frame::End => break,
                    Frame::Torn => break, // truncate at `pos`
                    Frame::Record { key, payload, next } => {
                        let text = match std::str::from_utf8(payload) {
                            Ok(t) => t,
                            Err(_) => {
                                return Err(JournalError::Malformed {
                                    record,
                                    what: "payload is not UTF-8".into(),
                                })
                            }
                        };
                        let report = decode_report(text)
                            .map_err(|what| JournalError::Malformed { record, what })?;
                        entries.insert(key, report);
                        pos = next;
                        record += 1;
                    }
                }
            }
            verified_len = pos as u64;
        }

        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        let truncated_bytes = if fresh {
            file.write_all(JOURNAL_HEADER.as_bytes())?;
            file.write_all(b"\n")?;
            file.flush()?;
            0
        } else {
            let torn = bytes.len() as u64 - verified_len;
            if torn > 0 {
                file.set_len(verified_len)?;
            }
            torn
        };
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Journal {
            path,
            file,
            entries,
            truncated_bytes,
            fsync,
            syncs: 0,
        })
    }

    /// The verified report stored for `key`, if any.
    pub fn get(&self, key: u64) -> Option<&SimReport> {
        self.entries.get(&key)
    }

    /// Number of verified records recovered or appended so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of torn/corrupt tail discarded when the journal was
    /// opened (0 for a clean or fresh journal).
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated_bytes
    }

    /// The path this journal lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the operating system, so a
    /// `SIGKILL` after this call returns cannot lose the record. Under
    /// [`FsyncPolicy::Always`] the record is additionally `fsync`ed to
    /// stable storage before this returns.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the write, flush, or sync fails.
    pub fn append(&mut self, key: u64, report: &SimReport) -> Result<(), JournalError> {
        let payload = encode_report(report);
        let frame = format!(
            "REC {key:016x} {} {:08x}\n",
            payload.len(),
            crc32(payload.as_bytes())
        );
        self.file.write_all(frame.as_bytes())?;
        self.file.write_all(payload.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        if self.fsync == FsyncPolicy::Always {
            self.sync()?;
        }
        self.entries.insert(key, report.clone());
        Ok(())
    }

    /// Forces everything appended so far to stable storage (`fsync`).
    /// Called automatically per append under [`FsyncPolicy::Always`] and
    /// once on drop under [`FsyncPolicy::OnClose`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the sync fails.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data()?;
        self.syncs += 1;
        Ok(())
    }

    /// The durability policy this journal was opened with.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// Number of `fsync`s issued since open — one per append under
    /// [`FsyncPolicy::Always`], normally zero until close under
    /// [`FsyncPolicy::OnClose`]. Observability for the durability tests.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

impl Drop for Journal {
    /// Best-effort close-time `fsync` under [`FsyncPolicy::OnClose`]
    /// (every record was already flushed to the OS per append; callers
    /// that must *know* the data is on disk call [`Journal::sync`]).
    fn drop(&mut self) {
        if self.fsync == FsyncPolicy::OnClose {
            let _ = self.sync();
        }
    }
}

/// One parsed frame during recovery.
enum Frame<'a> {
    /// Clean end of file.
    End,
    /// Incomplete or corrupt frame — truncate here.
    Torn,
    /// A verified record.
    Record {
        key: u64,
        payload: &'a [u8],
        next: usize,
    },
}

/// Parses the frame starting at `pos`, verifying its CRC.
fn next_record(bytes: &[u8], pos: usize) -> Frame<'_> {
    if pos >= bytes.len() {
        return Frame::End;
    }
    let rest = &bytes[pos..];
    let Some(line_end) = rest.iter().position(|&b| b == b'\n') else {
        return Frame::Torn;
    };
    let Ok(line) = std::str::from_utf8(&rest[..line_end]) else {
        return Frame::Torn;
    };
    let mut parts = line.split(' ');
    let (Some("REC"), Some(key), Some(len), Some(crc), None) = (
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
    ) else {
        return Frame::Torn;
    };
    let (Ok(key), Ok(len), Ok(crc)) = (
        u64::from_str_radix(key, 16),
        len.parse::<usize>(),
        u32::from_str_radix(crc, 16),
    ) else {
        return Frame::Torn;
    };
    let body = &rest[line_end + 1..];
    // Payload plus its terminating newline must both be present.
    if body.len() < len + 1 || body[len] != b'\n' {
        return Frame::Torn;
    }
    let payload = &body[..len];
    if crc32(payload) != crc {
        return Frame::Torn;
    }
    Frame::Record {
        key,
        payload,
        next: pos + line_end + 1 + len + 1,
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the per-record
/// integrity check. Bitwise implementation; journal records are small
/// and written once per simulated cell, so table-free is plenty.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a over `bytes` — the 64-bit content hash behind [`cell_key`]
/// and [`report_digest`].
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical content form of one grid cell — the single string
/// every cache layer hashes. `\x1f` separators keep field boundaries
/// unambiguous even if a rendering ever ends with a digit the next one
/// starts with.
fn canonical_cell(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
) -> String {
    format!(
        "{}\x1f{:?}\x1f{mode:?}\x1f{spec:?}",
        cfg.canonical(),
        platform
    )
}

/// The canonical content key of one grid cell: everything that
/// determines its simulated result, nothing that cannot (see the module
/// docs for the canonicalization rules). Borrowed-view twin of
/// [`CellSpec::key`] — both hash the same canonical form, so a key
/// computed either way addresses the same journal record.
pub fn cell_key(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
) -> u64 {
    fnv1a(canonical_cell(cfg, platform, mode, spec).as_bytes())
}

/// One simulation cell as a value: the full (config, platform, mode,
/// workload) tuple that determines a [`SimReport`], with its canonical
/// content hash.
///
/// This is the cache contract in one type. [`GridRun`] keys journal
/// records by it, the `ohm-serve` daemon keys its shared result cache
/// by it, and [`Run`] executes exactly one of it — all through the same
/// [`CellSpec::key`] (identical to [`cell_key`] over the same inputs),
/// so a result computed by any layer is addressable by every other.
///
/// [`GridRun`]: crate::runner::GridRun
/// [`Run`]: crate::runner::Run
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Full system configuration (hashed via
    /// [`SystemConfig::canonical`]).
    pub config: SystemConfig,
    /// Platform simulated in this cell.
    pub platform: Platform,
    /// Heterogeneous-memory operational mode.
    pub mode: OperationalMode,
    /// Workload descriptor (name, APKI, pattern, footprint).
    pub workload: WorkloadSpec,
}

impl CellSpec {
    /// Bundles one cell's inputs.
    pub fn new(
        config: SystemConfig,
        platform: Platform,
        mode: OperationalMode,
        workload: WorkloadSpec,
    ) -> CellSpec {
        CellSpec {
            config,
            platform,
            mode,
            workload,
        }
    }

    /// The canonical content form this cell hashes to — see the module
    /// docs for what is (and deliberately is not) included.
    pub fn canonical(&self) -> String {
        canonical_cell(&self.config, self.platform, self.mode, &self.workload)
    }

    /// The cell's content-addressed cache key: FNV-1a over
    /// [`CellSpec::canonical`]. Identical to [`cell_key`] over the same
    /// inputs.
    pub fn key(&self) -> u64 {
        cell_key(&self.config, self.platform, self.mode, &self.workload)
    }

    /// A [`Run`](crate::runner::Run) configured to execute exactly this
    /// cell — the one typed job-execution surface shared by the grid
    /// runner and the daemon.
    pub fn run(&self) -> crate::runner::Run<'_> {
        crate::runner::Run::new(&self.config)
            .platform(self.platform)
            .mode(self.mode)
            .workload(&self.workload)
    }
}

/// Bit-exact digest of one report — FNV-1a over its canonical encoding.
/// Two reports share a digest iff every field (every `f64` bit) agrees.
pub fn report_digest(report: &SimReport) -> u64 {
    fnv1a(encode_report(report).as_bytes())
}

/// Order-sensitive digest of a whole grid (rows of reports) — the
/// golden assertion that a resumed sweep equals an uninterrupted one.
pub fn grid_digest<'a>(rows: impl IntoIterator<Item = &'a SimReport>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in rows {
        let d = report_digest(r);
        h = (h ^ d).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// SimReport codec
// ---------------------------------------------------------------------

/// Renders an `f64` as its exact bit pattern.
fn fx(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Encodes a report in the journal's line-oriented, bit-exact form.
/// Free-form strings are JSON-escaped and placed *last* on their line
/// (names may contain spaces); every `f64` travels as its bit pattern.
pub fn encode_report(r: &SimReport) -> String {
    let mut o = String::with_capacity(512);
    let _ = writeln!(o, "platform {}", escape_json(r.platform.name()));
    let _ = writeln!(o, "mode {:?}", r.mode);
    let _ = writeln!(o, "workload {}", escape_json(&r.workload));
    let _ = writeln!(o, "makespan {}", r.makespan.as_ps());
    let _ = writeln!(o, "instructions {}", r.instructions);
    let _ = writeln!(o, "ipc {}", fx(r.ipc));
    let _ = writeln!(o, "mem_requests {}", r.mem_requests);
    let _ = writeln!(o, "avg_mem_latency_ns {}", fx(r.avg_mem_latency_ns));
    let _ = writeln!(o, "l1_hit_rate {}", fx(r.l1_hit_rate));
    let _ = writeln!(o, "l2_hit_rate {}", fx(r.l2_hit_rate));
    let _ = writeln!(o, "hetero_dram_hit_rate {}", fx(r.hetero_dram_hit_rate));
    let _ = writeln!(
        o,
        "migration_channel_fraction {}",
        fx(r.migration_channel_fraction)
    );
    let _ = writeln!(o, "migrations {}", r.migrations);
    let _ = writeln!(o, "channel_utilization {}", fx(r.channel_utilization));
    let _ = writeln!(o, "channel_bits {} {}", r.channel_bits.0, r.channel_bits.1);
    let _ = writeln!(
        o,
        "energy {} {} {} {}",
        fx(r.energy.dma_j),
        fx(r.energy.dram_static_j),
        fx(r.energy.dram_dynamic_j),
        fx(r.energy.xpoint_j)
    );
    let _ = writeln!(o, "wear_imbalance {}", fx(r.wear_imbalance));
    match &r.host {
        None => {
            let _ = writeln!(o, "host none");
        }
        Some(h) => {
            let _ = writeln!(
                o,
                "host {} {} {} {} {}",
                h.storage_busy.as_ps(),
                h.dma_busy.as_ps(),
                h.staged_in,
                h.staged_out,
                h.bytes_moved
            );
        }
    }
    match &r.faults {
        None => {
            let _ = writeln!(o, "faults none");
        }
        Some(ft) => {
            let _ = writeln!(
                o,
                "faults {} {} {} {} {} {} {} {} {}",
                ft.corrupted_transfers,
                ft.retransmissions,
                ft.retx_exhausted,
                ft.mrr_faults,
                ft.rearbitrations,
                ft.electrical_fallbacks,
                ft.media_stalls,
                ft.media_retries,
                ft.poisoned_lines
            );
        }
    }
    match &r.wear {
        None => {
            let _ = writeln!(o, "wear none");
        }
        Some(w) => {
            let _ = writeln!(
                o,
                "wear {} {} {} {} {} {} {} {}",
                w.retired_lines,
                w.spares_used,
                w.spares_total,
                w.ecc_corrected,
                w.ecc_uncorrectable,
                w.dead_lines,
                fx(w.usable_capacity),
                w.capacity_curve.len()
            );
            for (when, frac) in &w.capacity_curve {
                let _ = writeln!(o, "wear.curve {} {}", when.as_ps(), fx(*frac));
            }
            match &w.planner {
                None => {
                    let _ = writeln!(o, "wear.planner none");
                }
                Some(p) => {
                    let _ = writeln!(
                        o,
                        "wear.planner {} {} {}",
                        p.pinned,
                        fx(p.usable_fraction),
                        fx(p.effective_ratio)
                    );
                }
            }
        }
    }
    match &r.stages {
        None => {
            let _ = writeln!(o, "stages none");
        }
        Some(s) => {
            let _ = writeln!(
                o,
                "stages {} {} {}",
                s.dropped_events,
                s.stages.len(),
                s.utilization.len()
            );
            for row in &s.stages {
                let _ = writeln!(
                    o,
                    "stage {} {} {} {} {}",
                    row.count,
                    fx(row.mean_ns),
                    fx(row.p50_ns),
                    fx(row.p99_ns),
                    escape_json(row.name)
                );
            }
            for u in &s.utilization {
                let _ = writeln!(
                    o,
                    "util {} {} {} {}",
                    fx(u.busy_us),
                    fx(u.mean_utilization),
                    fx(u.peak_utilization),
                    escape_json(&u.name)
                );
            }
        }
    }
    match &r.phases {
        None => {
            let _ = writeln!(o, "phases none");
        }
        Some(p) => {
            let _ = writeln!(o, "phases {}", p.phases.len());
            for row in &p.phases {
                let _ = writeln!(
                    o,
                    "phase {} {} {} {} {} {} {} {} {} {} {} {}",
                    row.instructions,
                    fx(row.ipc),
                    row.span.0.as_ps(),
                    row.span.1.as_ps(),
                    row.mem_requests,
                    fx(row.avg_mem_latency_ns),
                    fx(row.avg_slice_latency_ns),
                    row.dram_served,
                    row.xpoint_served,
                    fx(row.dram_hit_rate),
                    row.stages.len(),
                    escape_json(&row.name)
                );
                for s in &row.stages {
                    let _ = writeln!(
                        o,
                        "pstage {} {} {}",
                        s.count,
                        fx(s.mean_ns),
                        escape_json(s.name)
                    );
                }
            }
        }
    }
    o
}

/// Sequential field reader over an encoded report.
struct Fields<'a> {
    lines: std::str::Lines<'a>,
}

type DecodeResult<T> = Result<T, String>;

impl<'a> Fields<'a> {
    /// Consumes the next line, checks its `key`, and returns the
    /// space-separated values after it.
    fn line(&mut self, key: &str) -> DecodeResult<&'a str> {
        let line = self.lines.next().ok_or_else(|| format!("missing {key}"))?;
        line.strip_prefix(key)
            .and_then(|rest| {
                rest.strip_prefix(' ')
                    .or(Some("").filter(|_| rest.is_empty()))
            })
            .ok_or_else(|| format!("expected `{key}`, found {line:?}"))
    }
}

fn parse_u64(s: &str, what: &str) -> DecodeResult<u64> {
    s.parse().map_err(|_| format!("bad u64 for {what}: {s:?}"))
}

fn parse_usize(s: &str, what: &str) -> DecodeResult<usize> {
    s.parse()
        .map_err(|_| format!("bad count for {what}: {s:?}"))
}

fn parse_f64(s: &str, what: &str) -> DecodeResult<f64> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bits for {what}: {s:?}"))
}

fn parse_ps(s: &str, what: &str) -> DecodeResult<Ps> {
    parse_u64(s, what).map(Ps::from_ps)
}

fn parse_name(s: &str, what: &str) -> DecodeResult<String> {
    unescape_json(s).ok_or_else(|| format!("bad escape in {what}: {s:?}"))
}

/// Splits a line into exactly `n` leading fields plus the remainder
/// (which may contain spaces — names go last).
fn split_n<'a>(line: &'a str, n: usize, what: &str) -> DecodeResult<(Vec<&'a str>, &'a str)> {
    let mut rest = line;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let (head, tail) = rest
            .split_once(' ')
            .ok_or_else(|| format!("short {what} line: {line:?}"))?;
        fields.push(head);
        rest = tail;
    }
    Ok((fields, rest))
}

/// Splits a fixed-arity line into exactly `n` fields (no free-form
/// tail allowed).
fn split_exact<'a>(line: &'a str, n: usize, what: &str) -> DecodeResult<Vec<&'a str>> {
    let fields: Vec<&str> = line.split(' ').collect();
    if fields.len() != n {
        return Err(format!(
            "{what} line has {} fields, expected {n}: {line:?}",
            fields.len()
        ));
    }
    Ok(fields)
}

/// Maps a decoded stage name back to the `'static` taxonomy name.
fn static_stage_name(name: &str) -> DecodeResult<&'static str> {
    Stage::ALL
        .iter()
        .map(|s| s.name())
        .find(|n| *n == name)
        .ok_or_else(|| format!("unknown stage name {name:?}"))
}

/// Decodes a report previously produced by [`encode_report`].
///
/// # Errors
///
/// A human-readable description of the first field that failed — the
/// journal surfaces it inside [`JournalError::Malformed`].
pub fn decode_report(text: &str) -> DecodeResult<SimReport> {
    let mut f = Fields {
        lines: text.lines(),
    };

    let platform_name = parse_name(f.line("platform")?, "platform")?;
    let platform = Platform::ALL
        .iter()
        .copied()
        .find(|p| p.name() == platform_name)
        .ok_or_else(|| format!("unknown platform {platform_name:?}"))?;
    let mode = match f.line("mode")? {
        "Planar" => OperationalMode::Planar,
        "TwoLevel" => OperationalMode::TwoLevel,
        other => return Err(format!("unknown mode {other:?}")),
    };
    let workload = parse_name(f.line("workload")?, "workload")?;
    let makespan = parse_ps(f.line("makespan")?, "makespan")?;
    let instructions = parse_u64(f.line("instructions")?, "instructions")?;
    let ipc = parse_f64(f.line("ipc")?, "ipc")?;
    let mem_requests = parse_u64(f.line("mem_requests")?, "mem_requests")?;
    let avg_mem_latency_ns = parse_f64(f.line("avg_mem_latency_ns")?, "avg_mem_latency_ns")?;
    let l1_hit_rate = parse_f64(f.line("l1_hit_rate")?, "l1_hit_rate")?;
    let l2_hit_rate = parse_f64(f.line("l2_hit_rate")?, "l2_hit_rate")?;
    let hetero_dram_hit_rate = parse_f64(f.line("hetero_dram_hit_rate")?, "hetero_dram_hit_rate")?;
    let migration_channel_fraction = parse_f64(
        f.line("migration_channel_fraction")?,
        "migration_channel_fraction",
    )?;
    let migrations = parse_u64(f.line("migrations")?, "migrations")?;
    let channel_utilization = parse_f64(f.line("channel_utilization")?, "channel_utilization")?;
    let bits = split_exact(f.line("channel_bits")?, 2, "channel_bits")?;
    let channel_bits = (
        parse_u64(bits[0], "channel_bits.0")?,
        parse_u64(bits[1], "channel_bits.1")?,
    );
    let e = split_exact(f.line("energy")?, 4, "energy")?;
    let energy = EnergyReport {
        dma_j: parse_f64(e[0], "energy.dma_j")?,
        dram_static_j: parse_f64(e[1], "energy.dram_static_j")?,
        dram_dynamic_j: parse_f64(e[2], "energy.dram_dynamic_j")?,
        xpoint_j: parse_f64(e[3], "energy.xpoint_j")?,
    };
    let wear_imbalance = parse_f64(f.line("wear_imbalance")?, "wear_imbalance")?;

    let host = match f.line("host")? {
        "none" => None,
        line => {
            let h = split_exact(line, 5, "host")?;
            Some(HostReport {
                storage_busy: parse_ps(h[0], "host.storage_busy")?,
                dma_busy: parse_ps(h[1], "host.dma_busy")?,
                staged_in: parse_u64(h[2], "host.staged_in")?,
                staged_out: parse_u64(h[3], "host.staged_out")?,
                bytes_moved: parse_u64(h[4], "host.bytes_moved")?,
            })
        }
    };

    let faults = match f.line("faults")? {
        "none" => None,
        line => {
            let t = split_exact(line, 9, "faults")?;
            let n = |i: usize, what| parse_u64(t[i], what);
            Some(FaultReport {
                corrupted_transfers: n(0, "faults.corrupted")?,
                retransmissions: n(1, "faults.retx")?,
                retx_exhausted: n(2, "faults.exhausted")?,
                mrr_faults: n(3, "faults.mrr")?,
                rearbitrations: n(4, "faults.rearb")?,
                electrical_fallbacks: n(5, "faults.fallback")?,
                media_stalls: n(6, "faults.stalls")?,
                media_retries: n(7, "faults.retries")?,
                poisoned_lines: n(8, "faults.poisoned")?,
            })
        }
    };

    let wear = match f.line("wear")? {
        "none" => None,
        line => {
            let w = split_exact(line, 8, "wear")?;
            let curve_len = parse_usize(w[7], "wear.curve count")?;
            let mut capacity_curve = Vec::with_capacity(curve_len.min(4096));
            for _ in 0..curve_len {
                let c = split_exact(f.line("wear.curve")?, 2, "wear.curve")?;
                capacity_curve.push((
                    parse_ps(c[0], "wear.curve.when")?,
                    parse_f64(c[1], "wear.curve.frac")?,
                ));
            }
            let planner = match f.line("wear.planner")? {
                "none" => None,
                pline => {
                    let p = split_exact(pline, 3, "wear.planner")?;
                    Some(PlannerWear {
                        pinned: parse_u64(p[0], "wear.planner.pinned")?,
                        usable_fraction: parse_f64(p[1], "wear.planner.usable")?,
                        effective_ratio: parse_f64(p[2], "wear.planner.ratio")?,
                    })
                }
            };
            Some(WearReport {
                retired_lines: parse_u64(w[0], "wear.retired")?,
                spares_used: parse_u64(w[1], "wear.spares_used")?,
                spares_total: parse_u64(w[2], "wear.spares_total")?,
                ecc_corrected: parse_u64(w[3], "wear.ecc_c")?,
                ecc_uncorrectable: parse_u64(w[4], "wear.ecc_u")?,
                dead_lines: parse_u64(w[5], "wear.dead")?,
                usable_capacity: parse_f64(w[6], "wear.usable")?,
                capacity_curve,
                planner,
            })
        }
    };

    let stages = match f.line("stages")? {
        "none" => None,
        line => {
            let s = split_exact(line, 3, "stages")?;
            let dropped_events = parse_u64(s[0], "stages.dropped")?;
            let nstages = parse_usize(s[1], "stages count")?;
            let nutil = parse_usize(s[2], "util count")?;
            let mut rows = Vec::with_capacity(nstages.min(4096));
            for _ in 0..nstages {
                let (v, name) = split_n(f.line("stage")?, 4, "stage")?;
                rows.push(StageRow {
                    name: static_stage_name(&parse_name(name, "stage.name")?)?,
                    count: parse_u64(v[0], "stage.count")?,
                    mean_ns: parse_f64(v[1], "stage.mean")?,
                    p50_ns: parse_f64(v[2], "stage.p50")?,
                    p99_ns: parse_f64(v[3], "stage.p99")?,
                });
            }
            let mut utilization = Vec::with_capacity(nutil.min(4096));
            for _ in 0..nutil {
                let (v, name) = split_n(f.line("util")?, 3, "util")?;
                utilization.push(ResourceUtil {
                    name: parse_name(name, "util.name")?,
                    busy_us: parse_f64(v[0], "util.busy")?,
                    mean_utilization: parse_f64(v[1], "util.mean")?,
                    peak_utilization: parse_f64(v[2], "util.peak")?,
                });
            }
            Some(StageSummary {
                stages: rows,
                utilization,
                dropped_events,
            })
        }
    };

    let phases = match f.line("phases")? {
        "none" => None,
        line => {
            let nrows = parse_usize(line, "phases count")?;
            let mut rows = Vec::with_capacity(nrows.min(4096));
            for _ in 0..nrows {
                let (v, name) = split_n(f.line("phase")?, 11, "phase")?;
                let nstages = parse_usize(v[10], "phase stage count")?;
                let mut pstages = Vec::with_capacity(nstages.min(4096));
                for _ in 0..nstages {
                    let (pv, pname) = split_n(f.line("pstage")?, 2, "pstage")?;
                    pstages.push(PhaseStageRow {
                        name: static_stage_name(&parse_name(pname, "pstage.name")?)?,
                        count: parse_u64(pv[0], "pstage.count")?,
                        mean_ns: parse_f64(pv[1], "pstage.mean")?,
                    });
                }
                rows.push(PhaseRow {
                    name: parse_name(name, "phase.name")?,
                    instructions: parse_u64(v[0], "phase.instructions")?,
                    ipc: parse_f64(v[1], "phase.ipc")?,
                    span: (
                        parse_ps(v[2], "phase.span.0")?,
                        parse_ps(v[3], "phase.span.1")?,
                    ),
                    mem_requests: parse_u64(v[4], "phase.mem_requests")?,
                    avg_mem_latency_ns: parse_f64(v[5], "phase.avg_mem")?,
                    avg_slice_latency_ns: parse_f64(v[6], "phase.avg_slice")?,
                    dram_served: parse_u64(v[7], "phase.dram")?,
                    xpoint_served: parse_u64(v[8], "phase.xpoint")?,
                    dram_hit_rate: parse_f64(v[9], "phase.dram_hit")?,
                    stages: pstages,
                });
            }
            Some(PhaseSummary { phases: rows })
        }
    };

    if let Some(extra) = f.lines.next() {
        return Err(format!("trailing line after report: {extra:?}"));
    }

    Ok(SimReport {
        platform,
        mode,
        workload,
        makespan,
        instructions,
        ipc,
        mem_requests,
        avg_mem_latency_ns,
        l1_hit_rate,
        l2_hit_rate,
        hetero_dram_hit_rate,
        migration_channel_fraction,
        migrations,
        channel_utilization,
        channel_bits,
        energy,
        host,
        wear_imbalance,
        stages,
        faults,
        wear,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic report with every optional section populated and
    /// adversarial floats (NaN, -0.0, subnormal) — the codec must carry
    /// all of them bit-exactly.
    fn full_report() -> SimReport {
        SimReport {
            platform: Platform::OhmWom,
            mode: OperationalMode::TwoLevel,
            workload: "pager\"ank\\with spaces\n".into(),
            makespan: Ps::from_ps(u64::MAX - 3),
            instructions: 123_456,
            ipc: f64::NAN,
            mem_requests: 789,
            avg_mem_latency_ns: -0.0,
            l1_hit_rate: f64::from_bits(1), // smallest subnormal
            l2_hit_rate: 0.75,
            hetero_dram_hit_rate: f64::INFINITY,
            migration_channel_fraction: 0.125,
            migrations: 42,
            channel_utilization: 0.5,
            channel_bits: (u64::MAX, 0),
            energy: EnergyReport {
                dma_j: 1.0e-300,
                dram_static_j: 2.5,
                dram_dynamic_j: -3.5,
                xpoint_j: 0.0,
            },
            host: Some(HostReport {
                storage_busy: Ps::from_ps(7),
                dma_busy: Ps::from_ps(8),
                staged_in: 9,
                staged_out: 10,
                bytes_moved: 11,
            }),
            wear_imbalance: 1.0,
            stages: Some(StageSummary {
                stages: vec![StageRow {
                    name: Stage::CtrlQueue.name(),
                    count: 3,
                    mean_ns: 1.5,
                    p50_ns: 1.0,
                    p99_ns: 9.0,
                }],
                utilization: vec![ResourceUtil {
                    name: "mc3 CtrlQueue".into(),
                    busy_us: 0.25,
                    mean_utilization: 0.5,
                    peak_utilization: 1.0,
                }],
                dropped_events: 17,
            }),
            faults: Some(FaultReport {
                corrupted_transfers: 1,
                retransmissions: 2,
                retx_exhausted: 3,
                mrr_faults: 4,
                rearbitrations: 5,
                electrical_fallbacks: 6,
                media_stalls: 7,
                media_retries: 8,
                poisoned_lines: 9,
            }),
            wear: Some(WearReport {
                retired_lines: 1,
                spares_used: 2,
                spares_total: 3,
                ecc_corrected: 4,
                ecc_uncorrectable: 5,
                dead_lines: 6,
                usable_capacity: 0.9,
                capacity_curve: vec![(Ps::from_ps(1), 1.0), (Ps::from_ps(2), 0.5)],
                planner: Some(PlannerWear {
                    pinned: 12,
                    usable_fraction: 0.8,
                    effective_ratio: 6.4,
                }),
            }),
            phases: Some(PhaseSummary {
                phases: vec![PhaseRow {
                    name: "prefill gemm".into(),
                    instructions: 1000,
                    ipc: 3.5,
                    span: (Ps::from_ps(10), Ps::from_ps(20)),
                    mem_requests: 30,
                    avg_mem_latency_ns: 100.0,
                    avg_slice_latency_ns: 50.0,
                    dram_served: 20,
                    xpoint_served: 10,
                    dram_hit_rate: 2.0 / 3.0,
                    stages: vec![PhaseStageRow {
                        name: Stage::DeviceXPoint.name(),
                        count: 10,
                        mean_ns: 190.0,
                    }],
                }],
            }),
        }
    }

    /// A minimal report with every optional section absent.
    fn bare_report() -> SimReport {
        SimReport {
            host: None,
            stages: None,
            faults: None,
            wear: None,
            phases: None,
            workload: "lud".into(),
            ..full_report()
        }
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        for r in [full_report(), bare_report()] {
            let text = encode_report(&r);
            let back = decode_report(&text).expect("decodes");
            // PartialEq would reject the NaN field; compare re-encodings,
            // which carry every f64 as its bit pattern.
            assert_eq!(encode_report(&back), text);
            assert_eq!(report_digest(&back), report_digest(&r));
        }
    }

    #[test]
    fn decode_rejects_tampered_fields() {
        let good = encode_report(&bare_report());
        // Unknown platform.
        let bad = good.replacen("platform Ohm-WOM", "platform Om-NOM", 1);
        assert!(decode_report(&bad).unwrap_err().contains("platform"));
        // Unknown stage name in a full report.
        let full = encode_report(&full_report());
        let bad = full.replacen("ctrl-queue", "warp-queue", 1);
        assert!(decode_report(&bad).unwrap_err().contains("stage"));
        // Truncated payload.
        let cut = &good[..good.len() / 2];
        assert!(decode_report(cut).is_err());
        // Trailing junk.
        let mut long = good.clone();
        long.push_str("extra line\n");
        assert!(decode_report(&long).unwrap_err().contains("trailing"));
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn cell_key_separates_configs_and_cells() {
        let cfg = SystemConfig::quick_test();
        let spec = ohm_workloads::workload_by_name("lud").unwrap();
        let base = cell_key(&cfg, Platform::OhmBase, OperationalMode::Planar, &spec);
        // Same inputs, same key.
        assert_eq!(
            base,
            cell_key(&cfg, Platform::OhmBase, OperationalMode::Planar, &spec)
        );
        // Any axis moving changes the key.
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert_ne!(
            base,
            cell_key(&other, Platform::OhmBase, OperationalMode::Planar, &spec)
        );
        assert_ne!(
            base,
            cell_key(&cfg, Platform::Oracle, OperationalMode::Planar, &spec)
        );
        assert_ne!(
            base,
            cell_key(&cfg, Platform::OhmBase, OperationalMode::TwoLevel, &spec)
        );
        let fat = spec.with_footprint(spec.footprint_bytes * 2);
        assert_ne!(
            base,
            cell_key(&cfg, Platform::OhmBase, OperationalMode::Planar, &fat)
        );
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "ohm-journal-unit-{}-{name}.ohmj",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn journal_persists_and_recovers_records() {
        let path = tmp_path("persist");
        let (a, b) = (full_report(), bare_report());
        {
            let mut j = Journal::open(&path).unwrap();
            assert!(j.is_empty());
            j.append(1, &a).unwrap();
            j.append(2, &b).unwrap();
            assert_eq!(j.len(), 2);
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.truncated_bytes(), 0);
        assert_eq!(
            report_digest(j.get(1).unwrap()),
            report_digest(&a),
            "recovered record must be bit-identical"
        );
        assert_eq!(report_digest(j.get(2).unwrap()), report_digest(&b));
        assert!(j.get(3).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_then_appendable() {
        let path = tmp_path("torn");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(1, &bare_report()).unwrap();
            j.append(2, &full_report()).unwrap();
        }
        // Tear the final record in half — a mid-write SIGKILL.
        let bytes = std::fs::read(&path).unwrap();
        let torn_at = bytes.len() - 40;
        std::fs::write(&path, &bytes[..torn_at]).unwrap();

        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 1, "torn tail record dropped");
        assert!(j.truncated_bytes() > 0);
        assert!(j.get(1).is_some() && j.get(2).is_none());
        // The file was physically truncated and stays appendable.
        j.append(2, &full_report()).unwrap();
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.truncated_bytes(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_tail_crc_is_truncated() {
        let path = tmp_path("crc");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(1, &bare_report()).unwrap();
            j.append(2, &bare_report()).unwrap();
        }
        // Flip one payload byte of the *last* record.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 1, "CRC-corrupt tail dropped");
        assert!(j.truncated_bytes() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_is_refused_not_destroyed() {
        let path = tmp_path("foreign");
        std::fs::write(&path, "important data, definitely not a journal\n").unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(matches!(err, JournalError::BadHeader { .. }), "{err}");
        assert!(err.to_string().contains("refusing"));
        // The file is untouched.
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "important data, definitely not a journal\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn incompatible_record_is_a_hard_error() {
        let path = tmp_path("incompat");
        // A CRC-valid record whose payload is not a report: written by
        // "another build", must not be silently dropped.
        let payload = b"platform future-field\n";
        let mut text = format!("{JOURNAL_HEADER}\n");
        text.push_str(&format!(
            "REC {:016x} {} {:08x}\n",
            9u64,
            payload.len(),
            crc32(payload)
        ));
        text.push_str(std::str::from_utf8(payload).unwrap());
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(
            matches!(err, JournalError::Malformed { record: 0, .. }),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cell_spec_key_matches_cell_key() {
        let cfg = SystemConfig::quick_test();
        let spec = ohm_workloads::workload_by_name("pagerank").unwrap();
        let cell = CellSpec::new(
            cfg.clone(),
            Platform::OhmWom,
            OperationalMode::TwoLevel,
            spec,
        );
        assert_eq!(
            cell.key(),
            cell_key(&cfg, Platform::OhmWom, OperationalMode::TwoLevel, &spec),
            "the typed spec and the borrowed view must hash identically"
        );
        assert_eq!(cell.key(), fnv1a(cell.canonical().as_bytes()));
        // Any axis moving changes the key.
        let mut other = cell.clone();
        other.platform = Platform::Oracle;
        assert_ne!(cell.key(), other.key());
        let mut other = cell.clone();
        other.workload = spec.with_footprint(spec.footprint_bytes * 2);
        assert_ne!(cell.key(), other.key());
    }

    #[test]
    fn fsync_policy_parses_and_names() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("on-close"), Some(FsyncPolicy::OnClose));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        for p in [FsyncPolicy::Always, FsyncPolicy::OnClose] {
            assert_eq!(FsyncPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::OnClose);
    }

    #[test]
    fn fsync_always_syncs_every_append() {
        let path = tmp_path("fsync-always");
        let mut j = Journal::open_with(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(j.fsync_policy(), FsyncPolicy::Always);
        assert_eq!(j.syncs(), 0);
        j.append(1, &bare_report()).unwrap();
        assert_eq!(j.syncs(), 1, "Always must fsync per append");
        j.append(2, &full_report()).unwrap();
        assert_eq!(j.syncs(), 2);
        drop(j);
        // Everything is recoverable afterwards.
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_on_close_syncs_once_at_drop() {
        let path = tmp_path("fsync-close");
        let mut j = Journal::open_with(&path, FsyncPolicy::OnClose).unwrap();
        j.append(1, &bare_report()).unwrap();
        j.append(2, &full_report()).unwrap();
        assert_eq!(j.syncs(), 0, "OnClose must not fsync per append");
        // An explicit sync is available to callers that need a barrier.
        j.sync().unwrap();
        assert_eq!(j.syncs(), 1);
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2, "records survive the close");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn grid_digest_is_order_sensitive() {
        let (a, b) = (full_report(), bare_report());
        assert_ne!(grid_digest([&a, &b]), grid_digest([&b, &a]));
        assert_eq!(grid_digest([&a, &b]), grid_digest([&a, &b.clone()]));
    }
}
