//! The Origin platform's policy backend: a discrete GPU whose DRAM only
//! holds part of the footprint, with overflow staged over the host/SSD
//! path (the baseline the paper's Figure 3 breakdown motivates).

use std::collections::{HashMap, HashSet};

use ohm_mem::MemKind;
use ohm_sim::{Addr, Ps};
use ohm_workloads::{HostStorage, HostStorageConfig, WorkloadSpec};

use crate::config::SystemConfig;
use crate::metrics::HostReport;

use super::backend::MemoryBackend;
use super::memory::MemEnv;

/// Origin's resident-set manager: FIFO replacement at *segment*
/// granularity (applications stage whole buffers with cudaMemcpy-style
/// transfers, not single pages) over the scaled 24 GB GPU memory,
/// backed by the host/SSD path.
#[derive(Debug)]
struct ResidentSet {
    capacity_segments: usize,
    segment_bytes: u64,
    /// segment -> last-touch stamp (LRU replacement).
    resident: HashMap<u64, u64>,
    dirty: HashSet<u64>,
    clock: u64,
}

impl ResidentSet {
    /// Creates a resident set pre-warmed with the first `capacity`
    /// segments: the initial input staging happens before the kernel
    /// launches (a cudaMemcpy ahead of the timed region), so the kernel
    /// only pays for capacity misses — the thrashing the paper's
    /// breakdown attributes to the too-small GPU memory.
    fn new(capacity_segments: usize, segment_bytes: u64) -> Self {
        let capacity = capacity_segments.max(1);
        ResidentSet {
            capacity_segments: capacity,
            segment_bytes,
            resident: (0..capacity as u64).map(|s| (s, 0)).collect(),
            dirty: HashSet::new(),
            clock: 0,
        }
    }

    /// Returns whether the access faulted, plus the evicted segment (and
    /// whether it was dirty) when an eviction was needed.
    fn touch(&mut self, addr: Addr, is_write: bool) -> (bool, Option<(u64, bool)>) {
        let seg = addr.block_index(self.segment_bytes);
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&seg) {
            *stamp = self.clock;
            if is_write {
                self.dirty.insert(seg);
            }
            return (false, None);
        }
        let evicted = if self.resident.len() >= self.capacity_segments {
            let victim = self
                .resident
                .iter()
                .min_by_key(|&(_, &stamp)| stamp)
                .map(|(&s, _)| s)
                .expect("resident set non-empty at capacity");
            self.resident.remove(&victim);
            let was_dirty = self.dirty.remove(&victim);
            Some((victim, was_dirty))
        } else {
            None
        };
        self.resident.insert(seg, self.clock);
        if is_write {
            self.dirty.insert(seg);
        }
        (true, evicted)
    }
}

/// Origin: check global residency (staging over the host path on a
/// fault), then serve from GPU DRAM.
pub(crate) struct OriginBackend {
    residents: ResidentSet,
    host: HostStorage,
    seg_bytes: u64,
}

impl OriginBackend {
    /// Sizes the resident set and the (scaled) host path around `spec`.
    pub(crate) fn build(cfg: &SystemConfig, spec: &WorkloadSpec) -> Self {
        let base = HostStorageConfig::default();
        let k = cfg.memory.host_scale.max(1.0);
        let host = HostStorage::new(HostStorageConfig {
            ssd_read_latency: base.ssd_read_latency.scale(1.0 / k),
            ssd_write_latency: base.ssd_write_latency.scale(1.0 / k),
            ssd_bandwidth_bps: (base.ssd_bandwidth_bps as f64 * k) as u64,
            dma_bandwidth_bps: (base.dma_bandwidth_bps as f64 * k) as u64,
            dma_setup: base.dma_setup.scale(1.0 / k),
        });
        let seg = cfg.memory.origin_segment_bytes;
        let capacity_bytes =
            (spec.footprint_bytes as f64 * cfg.memory.origin_resident_fraction) as u64;
        OriginBackend {
            residents: ResidentSet::new(((capacity_bytes / seg) as usize).max(2), seg),
            host,
            seg_bytes: seg,
        }
    }
}

impl MemoryBackend for OriginBackend {
    fn service(
        &mut self,
        env: &mut MemEnv<'_>,
        now: Ps,
        mc: usize,
        ga: Addr,
        la: Addr,
        kind: MemKind,
    ) -> Ps {
        let (fault, evicted) = self.residents.touch(ga, matches!(kind, MemKind::Write));
        let mut ready = now;
        if fault {
            if let Some((_victim, true)) = evicted {
                self.host.stage_out(now, self.seg_bytes);
            }
            ready = self.host.stage_in(now, self.seg_bytes).transfer_done;
        }
        env.stats.record_service(mc, !fault);
        env.dram_line_rt(ready, mc, la, kind)
    }

    fn host_report(&self) -> Option<HostReport> {
        Some(HostReport {
            storage_busy: self.host.storage_busy(),
            dma_busy: self.host.dma_busy(),
            staged_in: self.host.staged_in(),
            staged_out: self.host.staged_out(),
            bytes_moved: self.host.bytes_moved(),
        })
    }
}
