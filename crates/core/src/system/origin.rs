//! The Origin platform's policy backend: a discrete GPU whose DRAM only
//! holds part of the footprint, with overflow staged over the host/SSD
//! path (the baseline the paper's Figure 3 breakdown motivates).

use std::collections::HashSet;

use ohm_mem::MemKind;
use ohm_sim::{Addr, FastBuildHasher, FastMap, Ps};
use ohm_workloads::{HostStorage, HostStorageConfig, WorkloadSpec};

use crate::config::SystemConfig;
use crate::metrics::HostReport;

use super::backend::MemoryBackend;
use super::memory::MemEnv;

/// Origin's resident-set manager: FIFO replacement at *segment*
/// granularity (applications stage whole buffers with cudaMemcpy-style
/// transfers, not single pages) over the scaled 24 GB GPU memory,
/// backed by the host/SSD path.
#[derive(Debug)]
struct ResidentSet {
    capacity_segments: usize,
    segment_bytes: u64,
    /// segment -> last-touch stamp (LRU replacement). Only segments
    /// touched since launch are materialized; the pre-warmed remainder
    /// is represented analytically by `virgin_count`, so the set costs
    /// O(touched segments), not O(footprint).
    resident: FastMap<u64, u64>,
    /// Pre-warmed segments (ids below capacity) not yet touched or
    /// evicted: conceptually resident with stamp 0 (older than any
    /// touched segment) and clean.
    virgin_count: u64,
    /// Former pre-warmed ids that were touched or evicted — the holes in
    /// the virgin range.
    virgin_gone: HashSet<u64, FastBuildHasher>,
    /// Low-water cursor for finding the smallest remaining virgin id;
    /// only ever advances, so victim scans are amortized O(1).
    virgin_scan: u64,
    dirty: HashSet<u64, FastBuildHasher>,
    clock: u64,
}

impl ResidentSet {
    /// Creates a resident set pre-warmed with the first `capacity`
    /// segments: the initial input staging happens before the kernel
    /// launches (a cudaMemcpy ahead of the timed region), so the kernel
    /// only pays for capacity misses — the thrashing the paper's
    /// breakdown attributes to the too-small GPU memory. The pre-warm is
    /// lazy: nothing is allocated until segments are touched.
    fn new(capacity_segments: usize, segment_bytes: u64) -> Self {
        let capacity = capacity_segments.max(1);
        ResidentSet {
            capacity_segments: capacity,
            segment_bytes,
            resident: FastMap::default(),
            virgin_count: capacity as u64,
            virgin_gone: HashSet::default(),
            virgin_scan: 0,
            dirty: HashSet::default(),
            clock: 0,
        }
    }

    /// Removes `seg` from the virgin range.
    fn depart_virgin(&mut self, seg: u64) {
        self.virgin_gone.insert(seg);
        self.virgin_count -= 1;
    }

    /// Picks the LRU victim deterministically: virgin segments (stamp 0)
    /// are always older than touched ones and are evicted lowest-id
    /// first; among touched segments, stamps are unique (one per clock
    /// tick) with the segment id as a formal tie-break, so the choice
    /// never depends on map iteration order.
    fn pop_victim(&mut self) -> u64 {
        if self.virgin_count > 0 {
            while self.virgin_gone.contains(&self.virgin_scan) {
                self.virgin_scan += 1;
            }
            let victim = self.virgin_scan;
            self.depart_virgin(victim);
            self.virgin_scan += 1;
            return victim;
        }
        let victim = self
            .resident
            .iter()
            .map(|(&s, &stamp)| (stamp, s))
            .min()
            .expect("resident set non-empty at capacity")
            .1;
        self.resident.remove(&victim);
        victim
    }

    /// Returns whether the access faulted, plus the evicted segment (and
    /// whether it was dirty) when an eviction was needed.
    fn touch(&mut self, addr: Addr, is_write: bool) -> (bool, Option<(u64, bool)>) {
        let seg = addr.block_index(self.segment_bytes);
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&seg) {
            *stamp = self.clock;
            if is_write {
                self.dirty.insert(seg);
            }
            return (false, None);
        }
        if seg < self.capacity_segments as u64 && !self.virgin_gone.contains(&seg) {
            // Pre-warmed and untouched: promote into the materialized
            // set without a fault.
            self.depart_virgin(seg);
            self.resident.insert(seg, self.clock);
            if is_write {
                self.dirty.insert(seg);
            }
            return (false, None);
        }
        let occupied = self.resident.len() as u64 + self.virgin_count;
        let evicted = if occupied >= self.capacity_segments as u64 {
            let victim = self.pop_victim();
            let was_dirty = self.dirty.remove(&victim);
            Some((victim, was_dirty))
        } else {
            None
        };
        self.resident.insert(seg, self.clock);
        if is_write {
            self.dirty.insert(seg);
        }
        (true, evicted)
    }
}

/// Origin: check global residency (staging over the host path on a
/// fault), then serve from GPU DRAM.
pub(crate) struct OriginBackend {
    residents: ResidentSet,
    host: HostStorage,
    seg_bytes: u64,
}

impl OriginBackend {
    /// Sizes the resident set and the (scaled) host path around `spec`.
    pub(crate) fn build(cfg: &SystemConfig, spec: &WorkloadSpec) -> Self {
        let base = HostStorageConfig::default();
        let k = cfg.memory.host_scale.max(1.0);
        let host = HostStorage::new(HostStorageConfig {
            ssd_read_latency: base.ssd_read_latency.scale(1.0 / k),
            ssd_write_latency: base.ssd_write_latency.scale(1.0 / k),
            ssd_bandwidth_bps: (base.ssd_bandwidth_bps as f64 * k) as u64,
            dma_bandwidth_bps: (base.dma_bandwidth_bps as f64 * k) as u64,
            dma_setup: base.dma_setup.scale(1.0 / k),
        });
        let seg = cfg.memory.origin_segment_bytes;
        let capacity_bytes =
            (spec.footprint_bytes as f64 * cfg.memory.origin_resident_fraction) as u64;
        OriginBackend {
            residents: ResidentSet::new(((capacity_bytes / seg) as usize).max(2), seg),
            host,
            seg_bytes: seg,
        }
    }
}

impl MemoryBackend for OriginBackend {
    fn service(
        &mut self,
        env: &mut MemEnv<'_>,
        now: Ps,
        mc: usize,
        ga: Addr,
        la: Addr,
        kind: MemKind,
    ) -> Ps {
        let (fault, evicted) = self.residents.touch(ga, matches!(kind, MemKind::Write));
        let mut ready = now;
        if fault {
            if let Some((_victim, true)) = evicted {
                self.host.stage_out(now, self.seg_bytes);
            }
            ready = self.host.stage_in(now, self.seg_bytes).transfer_done;
        }
        env.stats.record_service(mc, !fault);
        env.dram_line_rt(ready, mc, la, kind)
    }

    fn host_report(&self) -> Option<HostReport> {
        Some(HostReport {
            storage_busy: self.host.storage_busy(),
            dma_busy: self.host.dma_busy(),
            staged_in: self.host.staged_in(),
            staged_out: self.host.staged_out(),
            bytes_moved: self.host.bytes_moved(),
        })
    }
}
