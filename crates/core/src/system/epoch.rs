//! The epoch scheduler: deterministic intra-cell parallelism.
//!
//! One simulated cell normally runs on one core: the event loop pops one
//! event at a time and resolves its whole memory round-trip synchronously.
//! This module shards that work by *memory-controller cluster* — each
//! worker owns a contiguous range of controllers together with their
//! devices, fabric channels, crossbar ports and backend policy state —
//! and commits events in epochs bounded by the minimum latency any
//! SM-side event needs before it can reach a controller (L1 lookup +
//! crossbar command traversal + L2 lookup). Inside that lookahead window
//! events are popped and their cache-content decisions made serially on
//! the coordinator (phase A), the per-controller work executes in
//! parallel on the shard workers (phase B), and the results — statistics
//! and queue pushes — are committed in pop order (phase C).
//!
//! # Strict mode
//!
//! In strict mode (the default) the result is *bit-identical* to the
//! serial loop at every thread count:
//!
//! - Phase A mirrors the serial loop's pop order exactly: the
//!   `(time, entry, slot)` keys of [`EpochQueue`] reproduce the serial
//!   queue's FIFO tie-breaking, and every push that can land inside the
//!   current epoch (compute resumes, L1 hits, store acks) is made
//!   immediately at its serial position.
//! - Every deferred effect of an event popped at `t` lands at or after
//!   `t + floor` (the window floor is a lower bound on the L1, crossbar
//!   and L2 leg every memory op crosses first), so deferring it past
//!   the epoch barrier cannot change which events pop inside the epoch.
//!   The epoch closes strictly before `t_first + floor`, where
//!   `t_first` is the first event in the epoch with deferred work.
//! - Per-controller resources are only ever touched by their owning
//!   shard, in pop order, so every calendar booking sees the same queue
//!   state as in the serial run. The one cross-shard interaction — a
//!   dirty L2 victim writing back to a controller on another shard —
//!   synchronises on the producing access's L2-completion time through
//!   an atomic slot, preserving both orders.
//! - Statistics are not recorded by the workers: each op logs its stat
//!   calls and phase C replays them in pop order, so order-sensitive
//!   accumulators (running means, time series) see the exact serial
//!   sequence of `f64` operations.
//!
//! # Relaxed mode
//!
//! [`System::set_relaxed_window`](super::System::set_relaxed_window)
//! stretches the lookahead window by a multiplier. Epochs get longer and
//! barriers fewer, but a deferred push may now land before events that
//! already popped; it is clamped to the queue's current time, which
//! perturbs timing slightly. Results remain deterministic (the epoch
//! structure does not depend on the worker count), just no longer equal
//! to the serial schedule. EXPERIMENTS.md records the accuracy/speed
//! trade-off.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use ohm_sim::{Addr, EntryId, FastDiv, Ps, SpinBarrier};
use ohm_sm::{Cache, PortShard, WarpId};

use crate::config::SystemConfig;

use super::memory::{mc_of_addr, parts_read, parts_write, McShard, PendingRelease, CMD_BITS};
use super::stats::{RunStats, StatsSink};
use super::warp::{Event, SliceOutcome, WarpEngine};

/// Hard cap on events popped per epoch. Purely a scheduling knob: in
/// strict mode results are order-exact wherever the epoch boundary
/// falls, and the boundary itself never depends on the worker count, so
/// relaxed-mode results are also reproducible across thread counts.
const BATCH_CAP: usize = 1024;

/// Splits `total` controllers into `parts` contiguous, near-equal
/// cluster sizes.
pub(crate) fn balanced_counts(total: usize, parts: usize) -> Vec<usize> {
    let base = total / parts;
    let extra = total % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

/// One recorded stats-sink call, replayed in pop order by phase C so the
/// collector sees the exact serial sequence (its running means and time
/// series are order-sensitive in floating point).
#[derive(Debug, Clone, Copy)]
enum StatCall {
    MemRequest(Ps, u64),
    MemLatency(Ps),
    SliceLatency(Ps),
    MshrStall(usize),
    Migration(usize),
    Service(usize, bool),
    DramReadLat(Ps),
    XpReadLat(Ps),
    ConflictStall(Ps),
    XpStages(Ps, Ps, Ps),
    SwapWindow(Ps),
}

/// A recording [`StatsSink`] handed to the request path on a worker.
/// Stage recording stays at the no-op default, matching the serial
/// collector with observability off (sharded runs never enable it).
#[derive(Debug, Default)]
struct StatLog(Vec<StatCall>);

impl StatsSink for StatLog {
    fn record_mem_request(&mut self, now: Ps, bytes: u64) {
        self.0.push(StatCall::MemRequest(now, bytes));
    }
    fn record_mem_latency(&mut self, latency: Ps) {
        self.0.push(StatCall::MemLatency(latency));
    }
    fn record_slice_latency(&mut self, latency: Ps) {
        self.0.push(StatCall::SliceLatency(latency));
    }
    fn record_mshr_stall(&mut self, mc: usize) {
        self.0.push(StatCall::MshrStall(mc));
    }
    fn record_migration(&mut self, mc: usize) {
        self.0.push(StatCall::Migration(mc));
    }
    fn record_service(&mut self, mc: usize, dram: bool) {
        self.0.push(StatCall::Service(mc, dram));
    }
    fn record_dram_read_latency(&mut self, latency: Ps) {
        self.0.push(StatCall::DramReadLat(latency));
    }
    fn record_xpoint_read_latency(&mut self, latency: Ps) {
        self.0.push(StatCall::XpReadLat(latency));
    }
    fn record_conflict_stall(&mut self, stall: Ps) {
        self.0.push(StatCall::ConflictStall(stall));
    }
    fn record_xpoint_stages(&mut self, cmd: Ps, dev: Ps, resp: Ps) {
        self.0.push(StatCall::XpStages(cmd, dev, resp));
    }
    fn record_swap_window(&mut self, window: Ps) {
        self.0.push(StatCall::SwapWindow(window));
    }
}

/// Replays a worker's stat log into the real collector.
fn replay(calls: &[StatCall], stats: &mut RunStats) {
    for &c in calls {
        match c {
            StatCall::MemRequest(now, bytes) => stats.record_mem_request(now, bytes),
            StatCall::MemLatency(l) => stats.record_mem_latency(l),
            StatCall::SliceLatency(l) => stats.record_slice_latency(l),
            StatCall::MshrStall(mc) => stats.record_mshr_stall(mc),
            StatCall::Migration(mc) => stats.record_migration(mc),
            StatCall::Service(mc, dram) => stats.record_service(mc, dram),
            StatCall::DramReadLat(l) => stats.record_dram_read_latency(l),
            StatCall::XpReadLat(l) => stats.record_xpoint_read_latency(l),
            StatCall::ConflictStall(s) => stats.record_conflict_stall(s),
            StatCall::XpStages(c0, d, r) => stats.record_xpoint_stages(c0, d, r),
            StatCall::SwapWindow(w) => stats.record_swap_window(w),
        }
    }
}

/// One deferred unit of per-controller work, staged by phase A.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// The controller-side remainder of one warp memory access: the
    /// crossbar command leg, an optional same-shard victim writeback,
    /// and the L2-hit data leg or the memory round-trip.
    Main {
        /// The access's issue time (compute drained).
        now: Ps,
        mc: usize,
        line: Addr,
        load: bool,
        l2_hit: bool,
        /// Dirty L2 victim whose home controller lives on *this* shard:
        /// written back inline between the command leg and the main
        /// access, exactly as the serial loop orders it.
        inline_victim: Option<(usize, Addr)>,
        /// Publication slot for this access's L2-completion time, when a
        /// victim on another shard is waiting for it.
        publish: Option<u32>,
    },
    /// A dirty L2 victim writing back to a controller on a different
    /// shard than its producing access: waits on the producer's
    /// published L2-completion time, then books the write.
    Victim { vmc: usize, victim: Addr, wait: u32 },
    /// A migration released its pages (popped `MigrationDone`).
    MigComplete { mc: usize, id: u64 },
}

/// Per-op outputs, pooled across epochs.
#[derive(Debug, Default)]
struct OpOut {
    log: StatLog,
    pendings: Vec<PendingRelease>,
    resume_at: Ps,
}

impl OpOut {
    fn clear(&mut self) {
        self.log.0.clear();
        self.pendings.clear();
        self.resume_at = Ps::ZERO;
    }
}

/// One worker's slice of the system plus its op staging area.
struct ShardCell<'a> {
    mem: McShard<'a>,
    xbar: PortShard<'a>,
    ops: Vec<Op>,
    outs: Vec<OpOut>,
}

/// Stages `op` on `cell`, returning its index.
fn push_op(cell: &mut ShardCell<'_>, op: Op) -> u32 {
    let j = cell.ops.len();
    if cell.outs.len() <= j {
        cell.outs.push(OpOut::default());
    }
    cell.outs[j].clear();
    cell.ops.push(op);
    j as u32
}

/// One pop's phase-C obligations, in pop order.
enum EntryRec {
    /// An L1-hit load: only its slice latency is deferred (the resume
    /// was pushed immediately).
    L1Hit { slice: Ps },
    /// A staged memory access: replay the victim's and the main op's
    /// stat logs, push migration notices and the warp resume under the
    /// entry's deferred-slot keys.
    Mem {
        entry: EntryId,
        t_pop: Ps,
        warp: WarpId,
        main: (u32, u32),
        victim: Option<(u32, u32)>,
        /// Stores acknowledge immediately; the resume was already pushed
        /// in phase A and only the slice latency remains.
        store: bool,
    },
}

/// Spins until `slot` publishes a time (stored as `ps + 1`; 0 = empty).
fn spin_slot(slot: &AtomicU64) -> Ps {
    let budget = ohm_sim::spins_before_yield();
    let mut spins = 0usize;
    loop {
        let v = slot.load(Ordering::Acquire);
        if v != 0 {
            return Ps::from_ps(v - 1);
        }
        if spins < budget {
            std::hint::spin_loop();
            spins += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

/// Executes every staged op on one shard, in staged (= pop) order.
fn exec_shard(cell: &mut ShardCell<'_>, cfg: &SystemConfig, slots: &[AtomicU64]) {
    let line_bytes = cfg.line_bytes;
    let l1_lat = cfg.gpu.l1_hit_latency;
    let l2_lat = cfg.gpu.l2_hit_latency;
    let one_cycle = cfg.gpu.sm.freq.period();
    for i in 0..cell.ops.len() {
        let op = cell.ops[i];
        let out = &mut cell.outs[i];
        match op {
            Op::MigComplete { mc, id } => {
                let base = cell.mem.mc_base;
                cell.mem.mcs[mc - base].conflicts.complete(id);
            }
            Op::Victim { vmc, victim, wait } => {
                let l2_done = spin_slot(&slots[wait as usize]);
                let mut parts = cell.mem.parts(cfg);
                parts_write(
                    &mut parts,
                    &mut out.log,
                    &mut out.pendings,
                    l2_done,
                    vmc,
                    victim,
                );
            }
            Op::Main {
                now,
                mc,
                line,
                load,
                l2_hit,
                inline_victim,
                publish,
            } => {
                // The command leg to L2 over the crossbar, then the L2
                // lookup latency — identical to the serial cache glue.
                let at_l2 = cell.xbar.traverse(now + l1_lat, mc, CMD_BITS / 8);
                let l2_done = at_l2 + l2_lat;
                if let Some(s) = publish {
                    // Publish before any device work so a waiting victim
                    // shard never spins longer than the command leg.
                    slots[s as usize].store(l2_done.as_ps() + 1, Ordering::Release);
                }
                let mut parts = cell.mem.parts(cfg);
                if let Some((vmc, victim)) = inline_victim {
                    parts_write(
                        &mut parts,
                        &mut out.log,
                        &mut out.pendings,
                        l2_done,
                        vmc,
                        victim,
                    );
                }
                out.resume_at = if l2_hit {
                    if load {
                        cell.xbar.traverse(l2_done, mc, line_bytes)
                    } else {
                        now + one_cycle
                    }
                } else if load {
                    let data = parts_read(
                        &mut parts,
                        &mut out.log,
                        &mut out.pendings,
                        l2_done,
                        mc,
                        line,
                    );
                    cell.xbar.traverse(data, mc, line_bytes)
                } else {
                    parts_write(
                        &mut parts,
                        &mut out.log,
                        &mut out.pendings,
                        l2_done,
                        mc,
                        line,
                    );
                    now + one_cycle
                };
            }
        }
    }
}

/// Runs the event loop to completion across `shards`, returning the
/// accumulated fabric bit tallies and crossbar message count to fold
/// back into the whole structures.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded(
    cfg: &SystemConfig,
    engine: &mut WarpEngine,
    l1s: &mut [Cache],
    l2: &mut Cache,
    stats: &mut RunStats,
    ctrl_div: FastDiv,
    shards: Vec<McShard<'_>>,
    ports: Vec<PortShard<'_>>,
    floor: Ps,
    strict: bool,
) -> ([u64; 2], u64) {
    let nsh = shards.len();
    debug_assert_eq!(nsh, ports.len());
    // Controller -> shard lookup (contiguous clusters).
    let mut shard_of = vec![0u32; cfg.memory.controllers];
    for (s, shard) in shards.iter().enumerate() {
        for owner in &mut shard_of[shard.mc_base..shard.mc_base + shard.mcs.len()] {
            *owner = s as u32;
        }
    }
    let cells: Vec<Mutex<ShardCell<'_>>> = shards
        .into_iter()
        .zip(ports)
        .map(|(mem, xbar)| {
            Mutex::new(ShardCell {
                mem,
                xbar,
                ops: Vec::new(),
                outs: Vec::new(),
            })
        })
        .collect();
    let slots: Vec<AtomicU64> = (0..BATCH_CAP).map(|_| AtomicU64::new(0)).collect();
    let barrier_a = SpinBarrier::new(nsh);
    let barrier_b = SpinBarrier::new(nsh);
    let quit = AtomicBool::new(false);

    let l1_lat = cfg.gpu.l1_hit_latency;
    let one_cycle = cfg.gpu.sm.freq.period();
    let line_bytes = cfg.line_bytes;

    let mut records: Vec<EntryRec> = Vec::new();
    let mut used_slots = 0usize;

    std::thread::scope(|scope| {
        for i in 1..nsh {
            let cells = &cells;
            let slots = &slots[..];
            let barrier_a = &barrier_a;
            let barrier_b = &barrier_b;
            let quit = &quit;
            scope.spawn(move || loop {
                barrier_a.wait();
                if quit.load(Ordering::Acquire) {
                    break;
                }
                {
                    let mut cell = cells[i].lock().unwrap();
                    exec_shard(&mut cell, cfg, slots);
                }
                barrier_b.wait();
            });
        }

        loop {
            if engine.queue.is_empty() {
                quit.store(true, Ordering::Release);
                barrier_a.wait();
                break;
            }
            // Reset the publication slots the previous epoch used (the
            // barriers order these stores before any worker reads).
            for s in &slots[..used_slots] {
                s.store(0, Ordering::Relaxed);
            }
            used_slots = 0;
            records.clear();
            let mut any_ops = false;
            let mut needs_workers = false;

            // ---- Phase A: pop inside the window, stage per-shard ops.
            {
                let mut guards: Vec<_> = cells.iter().map(|c| c.lock().unwrap()).collect();
                for g in guards.iter_mut() {
                    g.ops.clear();
                }
                let mut bound: Option<Ps> = None;
                let mut popped = 0usize;
                while popped < BATCH_CAP {
                    let Some(next) = engine.queue.peek_time() else {
                        break;
                    };
                    if bound.is_some_and(|b| next >= b) {
                        break;
                    }
                    let (t, ev) = engine.queue.pop().expect("peeked");
                    popped += 1;
                    match ev {
                        Event::MigrationDone { mc, id } => {
                            let s = shard_of[mc] as usize;
                            push_op(&mut guards[s], Op::MigComplete { mc, id });
                            any_ops = true;
                        }
                        Event::Resume(w) => match engine.step(t, w) {
                            SliceOutcome::Finished => {}
                            SliceOutcome::Compute { resume_at } => {
                                engine.resume(resume_at, w);
                            }
                            SliceOutcome::Memory {
                                after_compute,
                                addr,
                                kind,
                            } => {
                                let line_addr = addr.align_down(line_bytes);
                                let load = kind.is_load();
                                if load && l1s[w.sm].access(line_addr, false).hit {
                                    let done = after_compute + l1_lat;
                                    records.push(EntryRec::L1Hit { slice: done - t });
                                    engine.resume(done, w);
                                    continue;
                                }
                                let entry = engine.queue.current_entry();
                                let mc = mc_of_addr(ctrl_div, cfg, line_addr);
                                let ms = shard_of[mc];
                                let lookup = l2.access(line_addr, !load);
                                let mut inline_victim = None;
                                let mut publish = None;
                                let mut victim_ref = None;
                                if let Some(victim) = lookup.writeback {
                                    let vmc = mc_of_addr(ctrl_div, cfg, victim);
                                    if shard_of[vmc] == ms {
                                        inline_victim = Some((vmc, victim));
                                    } else {
                                        let slot = used_slots as u32;
                                        used_slots += 1;
                                        publish = Some(slot);
                                        let vs = shard_of[vmc];
                                        let j = push_op(
                                            &mut guards[vs as usize],
                                            Op::Victim {
                                                vmc,
                                                victim,
                                                wait: slot,
                                            },
                                        );
                                        victim_ref = Some((vs, j));
                                    }
                                }
                                let store = !load;
                                if store {
                                    // Stores acknowledge after one cycle
                                    // regardless of the memory path; push
                                    // now so the warp can pop inside this
                                    // epoch, as it would serially.
                                    engine.resume(after_compute + one_cycle, w);
                                }
                                let j = push_op(
                                    &mut guards[ms as usize],
                                    Op::Main {
                                        now: after_compute,
                                        mc,
                                        line: line_addr,
                                        load,
                                        l2_hit: lookup.hit,
                                        inline_victim,
                                        publish,
                                    },
                                );
                                records.push(EntryRec::Mem {
                                    entry,
                                    t_pop: t,
                                    warp: w,
                                    main: (ms, j),
                                    victim: victim_ref,
                                    store,
                                });
                                any_ops = true;
                                if bound.is_none() {
                                    bound = Some(t + floor);
                                }
                            }
                        },
                    }
                }
                if any_ops {
                    // A sparse epoch whose ops all live on one shard
                    // needs no fan-out: execute inline (identical order,
                    // and a cross-shard victim implies two active shards,
                    // so no publication waits) and skip the barriers.
                    let mut active = (0..nsh).filter(|&s| !guards[s].ops.is_empty());
                    let first = active.next().expect("ops were staged");
                    needs_workers = active.next().is_some();
                    if !needs_workers {
                        exec_shard(&mut guards[first], cfg, &slots);
                    }
                }
            }

            // ---- Phase B: workers drain their op lists in parallel.
            if needs_workers {
                barrier_a.wait();
                {
                    let mut c0 = cells[0].lock().unwrap();
                    exec_shard(&mut c0, cfg, &slots);
                }
                barrier_b.wait();
            }

            // ---- Phase C: commit stats and deferred pushes in pop order.
            {
                let guards: Vec<_> = cells.iter().map(|c| c.lock().unwrap()).collect();
                for rec in &records {
                    match rec {
                        EntryRec::L1Hit { slice } => stats.record_slice_latency(*slice),
                        EntryRec::Mem {
                            entry,
                            t_pop,
                            warp,
                            main,
                            victim,
                            store,
                        } => {
                            let mut slot = 0u32;
                            if let Some((s, j)) = victim {
                                let vo = &guards[*s as usize].outs[*j as usize];
                                replay(&vo.log.0, stats);
                            }
                            let mo = &guards[main.0 as usize].outs[main.1 as usize];
                            replay(&mo.log.0, stats);
                            if let Some((s, j)) = victim {
                                let vo = &guards[*s as usize].outs[*j as usize];
                                for &(at, mc, id) in &vo.pendings {
                                    debug_assert!(!strict || at >= engine.queue.now());
                                    engine.queue.push_deferred(
                                        *entry,
                                        slot,
                                        at,
                                        Event::MigrationDone { mc, id },
                                    );
                                    slot += 1;
                                }
                            }
                            for &(at, mc, id) in &mo.pendings {
                                debug_assert!(!strict || at >= engine.queue.now());
                                engine.queue.push_deferred(
                                    *entry,
                                    slot,
                                    at,
                                    Event::MigrationDone { mc, id },
                                );
                                slot += 1;
                            }
                            stats.record_slice_latency(mo.resume_at - *t_pop);
                            if !*store {
                                debug_assert!(!strict || mo.resume_at >= engine.queue.now());
                                engine.queue.push_deferred_final(
                                    *entry,
                                    mo.resume_at,
                                    Event::Resume(*warp),
                                );
                            }
                        }
                    }
                }
            }
        }
    });

    // Fold the shard-local counters back for the report.
    let mut bits = [0u64; 2];
    let mut msgs = 0u64;
    for cell in cells {
        let cell = cell.into_inner().unwrap();
        let d = cell.mem.fabric.bits_delta();
        bits[0] += d[0];
        bits[1] += d[1];
        msgs += cell.xbar.messages;
    }
    (bits, msgs)
}
