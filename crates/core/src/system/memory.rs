//! The memory subsystem: controllers, their devices, and the shared
//! round-trip plumbing every backend services requests through.
//!
//! A [`MemoryController`] owns the hardware blocks behind one channel:
//! the controller pipeline calendar, the DRAM module, the optional XPoint
//! controller, the conflict detector tracking in-flight migrations, and
//! the DDR sequence generator / DDR monitor engines of the delegated
//! migration machinery. Capacity-management *policy* lives one layer up,
//! in a [`MemoryBackend`]; the wiring between the two is a [`MemEnv`],
//! which also carries the [`Fabric`] and the [`StatsSink`].
//!
//! The request paths (`parts_read` / `parts_write` / `parts_service`)
//! operate on a `MemParts` view rather than the subsystem directly, so
//! the same code serves two callers: the serial loop borrowing the whole
//! subsystem, and the epoch scheduler's per-cluster `McShard`s, each
//! borrowing a contiguous slice of controllers plus the matching fabric
//! and backend shards (DESIGN.md §3.8).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ohm_hetero::{ConflictDetector, Platform};
use ohm_mem::{
    DdrMonitor, DdrSequenceGenerator, DramModule, MemKind, XPointController, XpLifecycleEventKind,
};
use ohm_optic::{OperationalMode, TrafficClass};
use ohm_sim::{Addr, FastDiv, FastMap, Ps, SplitMix64};
use ohm_workloads::WorkloadSpec;

use crate::config::SystemConfig;
use crate::metrics::HostReport;

use crate::fault::RecoveryEvent;

use super::backend::{build_backend, BackendShard};
use super::fabric::{build_fabric, Fabric, FabricShard};
use super::stats::{Stage, StageEvent};
use super::{MemoryBackend, StatsSink};

/// Command/address bits preceding each data burst on the channel.
pub(crate) const CMD_BITS: u64 = 64;
/// Device indices on a virtual channel, for demux-arbitration tracking.
pub(crate) const DEV_DRAM: usize = 0;
pub(crate) const DEV_XPOINT: usize = 1;

/// One memory controller and the hardware blocks behind it.
#[derive(Debug)]
pub struct MemoryController {
    /// Controller pipeline occupancy.
    pub(crate) ctrl: ohm_sim::Calendar,
    /// The DRAM module on this channel.
    pub(crate) dram: DramModule,
    /// The XPoint controller (heterogeneous platforms only).
    pub(crate) xpoint: Option<XPointController>,
    /// In-flight migration tracking (stale-copy redirects).
    pub(crate) conflicts: ConflictDetector,
    /// DDR sequence generator (swap function, in the XPoint controller).
    pub(crate) ddr_seq: DdrSequenceGenerator,
    /// DDR monitor (reverse write, in the memory controller).
    pub(crate) ddr_monitor: DdrMonitor,
    /// Completion times of in-flight misses (MSHR occupancy).
    pub(crate) outstanding: BinaryHeap<Reverse<u64>>,
}

/// A deferred migration-completion notice `(when, controller, id)`;
/// the warp engine turns these into events on the global queue.
pub(crate) type PendingRelease = (Ps, usize, u64);

/// Everything a backend needs to service one request: the controllers,
/// the fabric, the stats sink, and a buffer for migration releases.
pub struct MemEnv<'a> {
    /// The system configuration.
    pub cfg: &'a SystemConfig,
    /// The memory controllers this view owns (global index `mc_base..`);
    /// index through [`MemEnv::mc`], which rebases.
    pub mcs: &'a mut [MemoryController],
    /// Global index of `mcs[0]` (0 for the whole subsystem; the cluster
    /// start for an epoch-scheduler shard).
    pub mc_base: usize,
    /// The channel fabric requests travel over.
    pub fabric: &'a mut dyn Fabric,
    /// The uniform stats hook.
    pub stats: &'a mut dyn StatsSink,
    /// Migration releases to schedule on the event queue.
    pub(crate) pending: &'a mut Vec<PendingRelease>,
    /// Whether the sink's per-stage collector is on (sampled once per
    /// request, so the hot path skips batching entirely when it is off).
    pub(crate) stages_on: bool,
    /// Stage intervals batched during one request and drained into the
    /// sink once `service` returns; the buffer's capacity is reused.
    pub(crate) stage_batch: &'a mut Vec<StageEvent>,
}

impl MemEnv<'_> {
    /// The controller at *global* index `mc`, rebased into this view.
    #[inline]
    pub fn mc(&mut self, mc: usize) -> &mut MemoryController {
        &mut self.mcs[mc - self.mc_base]
    }

    /// Batches one request-path stage interval (drained to the sink after
    /// the backend returns, preserving per-request recording order).
    #[inline]
    pub(crate) fn stage(&mut self, stage: Stage, res: usize, start: Ps, end: Ps) {
        if self.stages_on {
            self.stage_batch.push(StageEvent {
                stage,
                res: res as u32,
                start,
                end,
            });
        }
    }
    /// Round-trip of one line to the DRAM device: command, bank access,
    /// and (for reads) the data burst back.
    pub(crate) fn dram_line_rt(&mut self, now: Ps, mc: usize, la: Addr, kind: MemKind) -> Ps {
        let line_bits = self.cfg.line_bytes * 8;
        match kind {
            MemKind::Read => {
                let (_, cmd_done) =
                    self.fabric
                        .xfer(now, mc, CMD_BITS, TrafficClass::Demand, DEV_DRAM);
                let acc = self.mc(mc).dram.access(cmd_done, la, kind);
                self.stage(Stage::DeviceDram, mc, acc.start, acc.data_at);
                let (_, data_done) =
                    self.fabric
                        .xfer(acc.data_at, mc, line_bits, TrafficClass::Demand, DEV_DRAM);
                data_done
            }
            MemKind::Write => {
                let (_, xfer_done) = self.fabric.xfer(
                    now,
                    mc,
                    CMD_BITS + line_bits,
                    TrafficClass::Demand,
                    DEV_DRAM,
                );
                let acc = self.mc(mc).dram.access(xfer_done, la, kind);
                self.stage(Stage::DeviceDram, mc, acc.start, acc.data_at);
                acc.data_at
            }
        }
    }

    /// Round-trip of one line to the XPoint device.
    pub(crate) fn xpoint_line_rt(&mut self, now: Ps, mc: usize, la: Addr, kind: MemKind) -> Ps {
        let line_bits = self.cfg.line_bytes * 8;
        match kind {
            MemKind::Read => {
                let (_, cmd_done) =
                    self.fabric
                        .xfer(now, mc, CMD_BITS, TrafficClass::Demand, DEV_XPOINT);
                let c = {
                    let xp = self.mc(mc).xpoint.as_mut().expect("heterogeneous platform");
                    xp.read(cmd_done, la)
                };
                self.stage(Stage::DeviceXPoint, mc, c.accepted_at, c.media_done);
                if c.retries > 0 {
                    self.stage(Stage::MediaRetry, mc, c.accepted_at, c.media_done);
                }
                let ready = c.ready_at;
                let (_, data_done) =
                    self.fabric
                        .xfer(ready, mc, line_bits, TrafficClass::Demand, DEV_XPOINT);
                self.stats.record_xpoint_stages(
                    cmd_done - now,
                    ready - cmd_done,
                    data_done - ready,
                );
                data_done
            }
            MemKind::Write => {
                let (_, xfer_done) = self.fabric.xfer(
                    now,
                    mc,
                    CMD_BITS + line_bits,
                    TrafficClass::Demand,
                    DEV_XPOINT,
                );
                let c = {
                    let xp = self.mc(mc).xpoint.as_mut().expect("heterogeneous platform");
                    xp.write(xfer_done, la)
                };
                self.stage(Stage::DeviceXPoint, mc, c.accepted_at, c.media_done);
                if c.retries > 0 {
                    self.stage(Stage::MediaRetry, mc, c.accepted_at, c.media_done);
                }
                c.ready_at
            }
        }
    }

    /// Books the DRAM side of a page copy: `lines` consecutive line
    /// accesses (mostly row hits), returning the last completion.
    pub(crate) fn dram_page_op(&mut self, start: Ps, mc: usize, base: Addr, kind: MemKind) -> Ps {
        let lines = self.cfg.memory.page_bytes / self.cfg.line_bytes;
        let line_bytes = self.cfg.line_bytes;
        let stages_on = self.stages_on;
        let mut done = start;
        for i in 0..lines {
            let acc = self
                .mc(mc)
                .dram
                .access(start, base.offset(i * line_bytes), kind);
            if stages_on {
                self.stage(Stage::DeviceDram, mc, acc.start, acc.data_at);
            }
            done = done.max(acc.data_at);
        }
        done
    }

    /// Registers the two pages of a swap with *independent* release
    /// times: the promoted page is DRAM-served once the promote leg's
    /// DRAM write completes, regardless of how long the (cold) demoted
    /// page's XPoint write stays buffered.
    pub(crate) fn register_swap_pages(
        &mut self,
        mc: usize,
        dram_addr: Addr,
        xpoint_addr: Addr,
        promote_done: Ps,
        demote_done: Ps,
    ) {
        let id1 = self
            .mc(mc)
            .conflicts
            .register_dram_page(dram_addr, xpoint_addr, promote_done);
        self.pending.push((promote_done, mc, id1));
        let id2 = self
            .mc(mc)
            .conflicts
            .register_xpoint_page(xpoint_addr, dram_addr, demote_done);
        self.pending.push((demote_done, mc, id2));
    }
}

/// A borrowed view of the request-path state for a contiguous range of
/// controllers: the whole subsystem (serial runs, `mc_base == 0`) or one
/// memory-controller cluster (epoch-scheduler shards). All controller
/// indices passed to the `parts_*` functions are *global*.
pub(crate) struct MemParts<'a> {
    pub(crate) cfg: &'a SystemConfig,
    pub(crate) mcs: &'a mut [MemoryController],
    pub(crate) mc_base: usize,
    /// Per-controller in-flight line fills (MSHR merging). Lines map to
    /// exactly one controller under the interleaving, so per-controller
    /// maps partition the old global map exactly.
    pub(crate) in_flight: &'a mut [FastMap<u64, Ps>],
    pub(crate) fabric: &'a mut dyn Fabric,
    pub(crate) backend: &'a mut dyn MemoryBackend,
    pub(crate) ctrl_div: FastDiv,
    pub(crate) stage_batch: &'a mut Vec<StageEvent>,
    pub(crate) recovery_scratch: &'a mut Vec<RecoveryEvent>,
}

/// Translates a global address to the controller-local address space.
#[inline]
pub(crate) fn local_addr(ctrl_div: FastDiv, cfg: &SystemConfig, addr: Addr) -> Addr {
    let il = cfg.memory.interleave_bytes;
    let chunk = ctrl_div.div(addr.block_index(il));
    Addr::from_block(chunk, il).offset(addr.offset_in(il))
}

/// The controller owning a global address under the interleaving.
#[inline]
pub(crate) fn mc_of_addr(ctrl_div: FastDiv, cfg: &SystemConfig, addr: Addr) -> usize {
    ctrl_div.rem(addr.block_index(cfg.memory.interleave_bytes)) as usize
}

/// A demand read reaching memory controller `mc`; returns when data is
/// back at the controller.
pub(crate) fn parts_read(
    p: &mut MemParts<'_>,
    stats: &mut dyn StatsSink,
    pending: &mut Vec<PendingRelease>,
    now: Ps,
    mc: usize,
    addr: Addr,
) -> Ps {
    let cfg = p.cfg;
    let mi = mc - p.mc_base;
    let line = addr.block_index(cfg.line_bytes);
    if let Some(&done) = p.in_flight[mi].get(&line) {
        if done > now {
            return done; // MSHR merge with the outstanding fill
        }
        p.in_flight[mi].remove(&line);
    }
    stats.record_mem_request(now, cfg.line_bytes);
    // MSHR file: a full set of outstanding misses delays this one
    // until the earliest in-flight miss completes.
    let now = {
        let m = &mut p.mcs[mi];
        while m
            .outstanding
            .peek()
            .is_some_and(|&Reverse(t)| t <= now.as_ps())
        {
            m.outstanding.pop();
        }
        if m.outstanding.len() >= cfg.memory.mshr_per_mc {
            stats.record_mshr_stall(mc);
            match m.outstanding.pop() {
                Some(Reverse(t)) => now.max(Ps::from_ps(t)),
                None => now,
            }
        } else {
            now
        }
    };
    let (_, t0) = p.mcs[mi].ctrl.book(now, cfg.memory.mc_overhead);
    stats.record_stage(Stage::CtrlQueue, mc, now, t0);
    let done = parts_service(p, stats, pending, t0, mc, addr, MemKind::Read);
    p.mcs[mi].outstanding.push(Reverse(done.as_ps()));
    stats.record_mem_latency(done - now);
    p.in_flight[mi].insert(line, done);
    done
}

/// A write reaching memory controller `mc` (stores, L2 writebacks).
pub(crate) fn parts_write(
    p: &mut MemParts<'_>,
    stats: &mut dyn StatsSink,
    pending: &mut Vec<PendingRelease>,
    now: Ps,
    mc: usize,
    addr: Addr,
) {
    let (_, t0) = p.mcs[mc - p.mc_base]
        .ctrl
        .book(now, p.cfg.memory.mc_overhead);
    stats.record_stage(Stage::CtrlQueue, mc, now, t0);
    let _ = parts_service(p, stats, pending, t0, mc, addr, MemKind::Write);
}

/// Platform/mode-dependent service of one line request at one MC,
/// delegated to the backend. `ga` is the global line address.
fn parts_service(
    p: &mut MemParts<'_>,
    stats: &mut dyn StatsSink,
    pending: &mut Vec<PendingRelease>,
    now: Ps,
    mc: usize,
    ga: Addr,
    kind: MemKind,
) -> Ps {
    let la = local_addr(p.ctrl_div, p.cfg, ga);
    let stages_on = stats.stages_enabled();
    let done = {
        let mut env = MemEnv {
            cfg: p.cfg,
            mcs: p.mcs,
            mc_base: p.mc_base,
            fabric: &mut *p.fabric,
            stats,
            pending,
            stages_on,
            stage_batch: p.stage_batch,
        };
        p.backend.service(&mut env, now, mc, ga, la, kind)
    };
    // Drain the stage intervals the request batched, in recording
    // order, before the recovery and lifecycle stages below — the
    // same per-request order as recording each hop inline.
    for ev in p.stage_batch.drain(..) {
        stats.record_stage(ev.stage, ev.res as usize, ev.start, ev.end);
    }
    // Surface the fabric's recovery actions (retransmissions,
    // re-arbitrations, electrical fallbacks) as first-class stages.
    p.fabric.drain_recovery_into(p.recovery_scratch);
    for ev in p.recovery_scratch.drain(..) {
        stats.record_stage(ev.stage, ev.vc, ev.start, ev.end);
    }
    // Surface the XPoint controller's lifecycle actions the same way,
    // and feed permanently lost lines back into the capacity planner
    // (detect → correct → retire → re-plan). An unarmed or quiescent
    // lifecycle produces no events, so nothing is recorded.
    let mut dead_lines = Vec::new();
    if let Some(xp) = p.mcs[mc - p.mc_base].xpoint.as_mut() {
        if xp.lifecycle_armed() {
            for ev in xp.drain_lifecycle_events() {
                let stage = match ev.kind {
                    XpLifecycleEventKind::EccCorrect => Stage::EccCorrect,
                    XpLifecycleEventKind::LineRetire => Stage::LineRetire,
                    XpLifecycleEventKind::RemapSpare => Stage::RemapSpare,
                };
                stats.record_stage(stage, mc, ev.start, ev.end);
            }
            dead_lines = xp.drain_dead_notices();
        }
    }
    for line in dead_lines {
        p.backend
            .retire_xpoint_line(mc, Addr::from_block(line, p.cfg.line_bytes));
    }
    done
}

/// The assembled memory side of a platform: controllers, fabric, and the
/// platform/mode-specific [`MemoryBackend`].
pub(crate) struct MemorySubsystem {
    pub(crate) mcs: Vec<MemoryController>,
    pub(crate) fabric: Box<dyn Fabric + Send>,
    pub(crate) backend: Box<dyn MemoryBackend + Send>,
    /// Per-controller completion times of in-flight line fills (MSHR
    /// merging). Keyed by line index, so the seedless [`FastMap`] hasher
    /// is safe and shaves SipHash off the per-read path.
    in_flight: Vec<FastMap<u64, Ps>>,
    /// Migration releases awaiting transfer onto the event queue.
    pending: Vec<PendingRelease>,
    /// Reusable buffer for stage intervals batched during one request.
    stage_batch: Vec<StageEvent>,
    /// Reusable buffer for fabric recovery events drained per request.
    recovery_scratch: Vec<RecoveryEvent>,
    /// Total DRAM capacity across controllers.
    pub(crate) dram_capacity: u64,
    /// Total XPoint capacity across controllers.
    pub(crate) xpoint_capacity: u64,
    /// Reciprocal of the controller count for per-access interleave decode.
    ctrl_div: FastDiv,
}

/// One memory-controller cluster carved out of a [`MemorySubsystem`] for
/// an epoch-scheduler worker: a contiguous controller range plus the
/// matching fabric channels and backend state. Calendars and device
/// state are mutated in place through the borrows, so nothing needs
/// copying back; only the fabric's bit tallies accumulate shard-locally
/// (fold with [`FabricShard::bits_delta`] after the shards drop).
pub(crate) struct McShard<'a> {
    pub(crate) mcs: &'a mut [MemoryController],
    pub(crate) in_flight: &'a mut [FastMap<u64, Ps>],
    pub(crate) backend: BackendShard<'a>,
    pub(crate) fabric: FabricShard<'a>,
    pub(crate) mc_base: usize,
    pub(crate) ctrl_div: FastDiv,
    /// Shard-local scratch (stages are always off in sharded runs, but
    /// the request path's signature needs the buffers).
    pub(crate) stage_batch: Vec<StageEvent>,
    pub(crate) recovery_scratch: Vec<RecoveryEvent>,
}

impl McShard<'_> {
    /// The request-path view over this cluster.
    pub(crate) fn parts<'b>(&'b mut self, cfg: &'b SystemConfig) -> MemParts<'b> {
        MemParts {
            cfg,
            mcs: self.mcs,
            mc_base: self.mc_base,
            in_flight: self.in_flight,
            fabric: &mut self.fabric,
            backend: &mut self.backend,
            ctrl_div: self.ctrl_div,
            stage_batch: &mut self.stage_batch,
            recovery_scratch: &mut self.recovery_scratch,
        }
    }
}

impl MemorySubsystem {
    /// Sizes and assembles the memory side of `platform` around `spec`.
    pub(crate) fn build(
        cfg: &SystemConfig,
        platform: Platform,
        mode: OperationalMode,
        spec: &WorkloadSpec,
    ) -> Self {
        let controllers = cfg.memory.controllers;
        let page = cfg.memory.page_bytes;
        let footprint_pages = (spec.footprint_bytes / page).max(1);
        let pages_per_mc = footprint_pages.div_ceil(controllers as u64);

        // Per-MC capacities, preserving the mode's capacity ratios.
        let (dram_local, xp_local) = match (platform.is_heterogeneous(), mode) {
            (true, OperationalMode::Planar) => {
                let group = cfg.memory.planar_ratio as u64 + 1;
                let groups = pages_per_mc.div_ceil(group);
                (
                    groups * page,
                    groups * cfg.memory.planar_ratio as u64 * page,
                )
            }
            (true, OperationalMode::TwoLevel) => {
                let span = pages_per_mc * page;
                let dram = (span / (cfg.memory.two_level_ratio as u64 + 1))
                    .next_power_of_two()
                    .max(cfg.line_bytes);
                (dram, span)
            }
            (false, _) => match platform {
                Platform::Origin => {
                    let span = pages_per_mc * page;
                    let dram =
                        ((span as f64 * cfg.memory.origin_resident_fraction) as u64).max(page);
                    (dram, 0)
                }
                _ => (pages_per_mc * page, 0), // Oracle: all-DRAM
            },
        };

        // Every platform presents the same per-channel DRAM interface
        // (dual-rank modules); capacity differences change how much data
        // fits, not the pin-side bank parallelism.
        let dram_cfg = ohm_mem::DramConfig {
            timing: cfg.memory.dram_timing,
            banks: cfg.memory.dram_banks,
            ranks: cfg.memory.dram_ranks,
            row_bytes: 2048,
            capacity_bytes: dram_local.max(2048),
            refresh_enabled: true,
        };
        let xp_cfg = ohm_mem::xpoint_ctrl::XpCtrlConfig {
            media: ohm_mem::XPointConfig {
                capacity_bytes: xp_local.max(page),
                line_bytes: cfg.line_bytes,
                ..cfg.memory.xpoint.media
            },
            ..cfg.memory.xpoint
        };

        let mcs = (0..controllers)
            .map(|mc| MemoryController {
                ctrl: ohm_sim::Calendar::new(),
                dram: DramModule::new(dram_cfg),
                xpoint: platform.is_heterogeneous().then(|| {
                    let mut xp = XPointController::new(xp_cfg);
                    // Arm media stall injection with a per-MC RNG stream
                    // forked from the plan seed (determinism contract:
                    // DESIGN.md §"Fault & recovery model").
                    if let Some(plan) = cfg.faults.as_ref().filter(|p| p.xpoint.stall_ppm > 0) {
                        let mut root = SplitMix64::new(plan.seed);
                        xp.inject_faults(plan.xpoint, root.fork(mc as u64));
                    }
                    // Arm the wear-out lifecycle the same way: one RNG
                    // stream per MC forked from the plan seed. A quiescent
                    // plan is never armed, so it draws nothing and stays
                    // bit-identical to a plan-free run.
                    if let Some(plan) = cfg.lifecycle.as_ref().filter(|p| !p.is_quiescent()) {
                        let mut root = SplitMix64::new(plan.seed);
                        xp.arm_lifecycle(plan.xpoint, root.fork(mc as u64));
                    }
                    xp
                }),
                conflicts: ConflictDetector::new(page),
                ddr_seq: DdrSequenceGenerator::new(cfg.line_bytes),
                ddr_monitor: DdrMonitor::new(),
                outstanding: BinaryHeap::new(),
            })
            .collect();

        let caps = platform.migration_caps();
        let fabric = build_fabric(cfg, platform, mode, &caps);
        let backend = build_backend(cfg, platform, mode, spec, caps, dram_local, xp_local);

        MemorySubsystem {
            mcs,
            fabric,
            backend,
            in_flight: (0..controllers).map(|_| FastMap::default()).collect(),
            pending: Vec::new(),
            stage_batch: Vec::new(),
            recovery_scratch: Vec::new(),
            dram_capacity: dram_local * controllers as u64,
            xpoint_capacity: xp_local * controllers as u64,
            ctrl_div: FastDiv::new(controllers as u64),
        }
    }

    /// The interleave-decode reciprocal (shared with the epoch scheduler,
    /// which routes addresses to shards without borrowing the subsystem).
    pub(crate) fn ctrl_div(&self) -> FastDiv {
        self.ctrl_div
    }

    /// The controller owning a global address under the interleaving.
    pub(crate) fn mc_of(&self, cfg: &SystemConfig, addr: Addr) -> usize {
        mc_of_addr(self.ctrl_div, cfg, addr)
    }

    /// The whole-subsystem request-path view (serial runs).
    fn parts<'b>(
        &'b mut self,
        cfg: &'b SystemConfig,
    ) -> (MemParts<'b>, &'b mut Vec<PendingRelease>) {
        (
            MemParts {
                cfg,
                mcs: &mut self.mcs,
                mc_base: 0,
                in_flight: &mut self.in_flight,
                fabric: self.fabric.as_mut(),
                backend: self.backend.as_mut(),
                ctrl_div: self.ctrl_div,
                stage_batch: &mut self.stage_batch,
                recovery_scratch: &mut self.recovery_scratch,
            },
            &mut self.pending,
        )
    }

    /// A demand read reaching memory controller `mc`; returns when data
    /// is back at the controller.
    pub(crate) fn read(
        &mut self,
        cfg: &SystemConfig,
        stats: &mut dyn StatsSink,
        now: Ps,
        mc: usize,
        addr: Addr,
    ) -> Ps {
        let (mut parts, pending) = self.parts(cfg);
        parts_read(&mut parts, stats, pending, now, mc, addr)
    }

    /// A write reaching memory controller `mc` (stores, L2 writebacks).
    pub(crate) fn write(
        &mut self,
        cfg: &SystemConfig,
        stats: &mut dyn StatsSink,
        now: Ps,
        mc: usize,
        addr: Addr,
    ) {
        let (mut parts, pending) = self.parts(cfg);
        parts_write(&mut parts, stats, pending, now, mc, addr);
    }

    /// Splits the subsystem into per-cluster shards, one per entry of
    /// `counts` (controller counts, contiguous, summing to the controller
    /// total). Returns `None` when any layer cannot shard — a backend
    /// with cross-controller state (Origin's host staging), a fabric with
    /// armed stochastic faults or interval logging, or a dynamically
    /// divided optical channel — in which case the caller falls back to
    /// the serial loop.
    pub(crate) fn split_shards(&mut self, counts: &[usize]) -> Option<Vec<McShard<'_>>> {
        debug_assert_eq!(counts.iter().sum::<usize>(), self.mcs.len());
        let ctrl_div = self.ctrl_div;
        let backends = self.backend.split_mc(counts)?;
        let fabrics = self.fabric.split_channels(counts)?;
        let mut shards = Vec::with_capacity(counts.len());
        let mut mcs: &mut [MemoryController] = &mut self.mcs;
        let mut infl: &mut [FastMap<u64, Ps>] = &mut self.in_flight;
        let mut base = 0;
        for ((&n, backend), fabric) in counts.iter().zip(backends).zip(fabrics) {
            let (mh, mt) = mcs.split_at_mut(n);
            mcs = mt;
            let (ih, it) = infl.split_at_mut(n);
            infl = it;
            shards.push(McShard {
                mcs: mh,
                in_flight: ih,
                backend,
                fabric,
                mc_base: base,
                ctrl_div,
                stage_batch: Vec::new(),
                recovery_scratch: Vec::new(),
            });
            base += n;
        }
        Some(shards)
    }

    /// A delegated migration released its pages.
    pub(crate) fn complete_migration(&mut self, mc: usize, id: u64) {
        self.mcs[mc].conflicts.complete(id);
    }

    /// Drains the migration releases produced since the last call into
    /// `out` (cleared first); both buffers keep their capacity, so the
    /// steady state allocates nothing.
    pub(crate) fn take_pending_into(&mut self, out: &mut Vec<PendingRelease>) {
        out.clear();
        std::mem::swap(out, &mut self.pending);
    }

    /// The host-staging breakdown, if this platform stages over a host.
    pub(crate) fn host_report(&self) -> Option<HostReport> {
        self.backend.host_report()
    }

    /// Heap bytes held by footprint-proportional-looking metadata across
    /// the subsystem: the policy backend's planner state plus every
    /// XPoint controller's wear-tracking map. All of it is sparse, so
    /// the result scales with pages/buckets actually touched — the
    /// bounded-memory tier-1 test asserts this stays flat as the
    /// simulated footprint grows.
    pub(crate) fn state_bytes(&self) -> usize {
        let wear: usize = self
            .mcs
            .iter()
            .filter_map(|mc| mc.xpoint.as_ref())
            .map(|xp| xp.wear_map().state_bytes())
            .sum();
        self.backend.state_bytes() + wear
    }
}
