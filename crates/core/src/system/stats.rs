//! The stats layer: one sink collects per-layer counters uniformly.
//!
//! Every layer of the decomposed system (warp engine, cache glue, memory
//! controllers, backends, fabric round-trips) reports through the
//! [`StatsSink`] trait instead of poking ad-hoc fields on the monolith.
//! [`RunStats`] is the concrete collector a [`System`](super::System)
//! owns; reports and resource summaries read it back out.

use ohm_sim::{Ps, RunningStats, TimeSeries};

/// The uniform hook the system's layers record measurements through.
///
/// Methods are fire-and-forget; implementations must not affect timing.
pub trait StatsSink {
    /// A demand read reached a memory controller (`bytes` of line data).
    fn record_mem_request(&mut self, now: Ps, bytes: u64);
    /// End-to-end latency of one demand read (MC arrival to data at MC).
    fn record_mem_latency(&mut self, latency: Ps);
    /// Latency of one warp slice (issue to resume).
    fn record_slice_latency(&mut self, latency: Ps);
    /// A demand read stalled on a full MSHR file at controller `mc`.
    fn record_mshr_stall(&mut self, mc: usize);
    /// Controller `mc` started a page/line migration.
    fn record_migration(&mut self, mc: usize);
    /// Controller `mc` serviced a request; `dram` says whether the DRAM
    /// side satisfied it (residency/cache hit).
    fn record_service(&mut self, mc: usize, dram: bool);
    /// Latency of one DRAM-served demand read.
    fn record_dram_read_latency(&mut self, latency: Ps);
    /// Latency of one XPoint-served demand read.
    fn record_xpoint_read_latency(&mut self, latency: Ps);
    /// A demand access stalled behind an in-flight migration.
    fn record_conflict_stall(&mut self, stall: Ps);
    /// Stage split of one XPoint read round-trip (command, device, response).
    fn record_xpoint_stages(&mut self, cmd: Ps, dev: Ps, resp: Ps);
    /// Blocking window of one planar swap (trigger to DRAM-copy done).
    fn record_swap_window(&mut self, window: Ps);
}

/// The concrete per-run collector behind [`StatsSink`].
#[derive(Debug)]
pub struct RunStats {
    /// Mean memory access latency accumulator.
    pub(crate) mem_latency: RunningStats,
    /// Warp slice latency accumulator.
    pub(crate) slice_latency: RunningStats,
    /// Demand bytes entering the memory controllers, over time.
    pub(crate) demand_timeline: TimeSeries,
    /// DRAM-served demand read latency.
    pub(crate) dram_read_latency: RunningStats,
    /// XPoint-served demand read latency.
    pub(crate) xpoint_read_latency: RunningStats,
    /// Conflict (in-flight migration) stall latency.
    pub(crate) stall_latency: RunningStats,
    /// XPoint read round-trip stage splits.
    pub(crate) xp_cmd_stage: RunningStats,
    pub(crate) xp_dev_stage: RunningStats,
    pub(crate) xp_resp_stage: RunningStats,
    /// Planar swap blocking window.
    pub(crate) swap_window: RunningStats,
    /// Demand memory requests that reached the controllers.
    pub(crate) mem_requests: u64,
    /// Per-controller MSHR-full stalls.
    pub(crate) mshr_stalls: Vec<u64>,
    /// Per-controller migrations started.
    pub(crate) migrations: Vec<u64>,
    /// Per-controller DRAM-side service hits.
    pub(crate) dram_service_hits: Vec<u64>,
    /// Per-controller serviced requests.
    pub(crate) service_total: Vec<u64>,
}

impl RunStats {
    /// Creates an empty collector for `controllers` memory controllers,
    /// bucketing the demand timeline at `timeline_bucket`.
    pub(crate) fn new(controllers: usize, timeline_bucket: Ps) -> Self {
        RunStats {
            mem_latency: RunningStats::new(),
            slice_latency: RunningStats::new(),
            demand_timeline: TimeSeries::new(timeline_bucket),
            dram_read_latency: RunningStats::new(),
            xpoint_read_latency: RunningStats::new(),
            stall_latency: RunningStats::new(),
            xp_cmd_stage: RunningStats::new(),
            xp_dev_stage: RunningStats::new(),
            xp_resp_stage: RunningStats::new(),
            swap_window: RunningStats::new(),
            mem_requests: 0,
            mshr_stalls: vec![0; controllers],
            migrations: vec![0; controllers],
            dram_service_hits: vec![0; controllers],
            service_total: vec![0; controllers],
        }
    }

    /// Total migrations across controllers.
    pub(crate) fn total_migrations(&self) -> u64 {
        self.migrations.iter().sum()
    }

    /// `(dram_service_hits, service_total)` summed over controllers.
    pub(crate) fn service_totals(&self) -> (u64, u64) {
        (
            self.dram_service_hits.iter().sum(),
            self.service_total.iter().sum(),
        )
    }

    /// The demand-bandwidth timeline.
    pub(crate) fn demand_timeline(&self) -> &TimeSeries {
        &self.demand_timeline
    }
}

impl StatsSink for RunStats {
    fn record_mem_request(&mut self, now: Ps, bytes: u64) {
        self.mem_requests += 1;
        self.demand_timeline.record(now, bytes as f64);
    }

    fn record_mem_latency(&mut self, latency: Ps) {
        self.mem_latency.push_ps(latency);
    }

    fn record_slice_latency(&mut self, latency: Ps) {
        self.slice_latency.push_ps(latency);
    }

    fn record_mshr_stall(&mut self, mc: usize) {
        self.mshr_stalls[mc] += 1;
    }

    fn record_migration(&mut self, mc: usize) {
        self.migrations[mc] += 1;
    }

    fn record_service(&mut self, mc: usize, dram: bool) {
        self.service_total[mc] += 1;
        if dram {
            self.dram_service_hits[mc] += 1;
        }
    }

    fn record_dram_read_latency(&mut self, latency: Ps) {
        self.dram_read_latency.push_ps(latency);
    }

    fn record_xpoint_read_latency(&mut self, latency: Ps) {
        self.xpoint_read_latency.push_ps(latency);
    }

    fn record_conflict_stall(&mut self, stall: Ps) {
        self.stall_latency.push_ps(stall);
    }

    fn record_xpoint_stages(&mut self, cmd: Ps, dev: Ps, resp: Ps) {
        self.xp_cmd_stage.push_ps(cmd);
        self.xp_dev_stage.push_ps(dev);
        self.xp_resp_stage.push_ps(resp);
    }

    fn record_swap_window(&mut self, window: Ps) {
        self.swap_window.push_ps(window);
    }
}
