//! The stats layer: one sink collects per-layer counters uniformly.
//!
//! Every layer of the decomposed system (warp engine, cache glue, memory
//! controllers, backends, fabric round-trips) reports through the
//! [`StatsSink`] trait instead of poking ad-hoc fields on the monolith.
//! [`RunStats`] is the concrete collector a [`System`](super::System)
//! owns; reports and resource summaries read it back out.

use ohm_optic::BusyInterval;
use ohm_sim::{Histogram, Ps, RunningStats, TimeSeries};

use crate::metrics::{ResourceUtil, StageRow, StageSummary};

/// A request-path stage the observability layer attributes latency to.
///
/// The taxonomy follows the paper's request path: SM → L1 → L2 →
/// controller → channel → device, plus the migration machinery that runs
/// as a side effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Load served by the SM's L1 data cache.
    L1Hit = 0,
    /// Request resolved at L2 (crossbar traversal + L2 lookup).
    L2Hit = 1,
    /// Memory-controller queue: MC arrival to pipeline-slot grant.
    CtrlQueue = 2,
    /// Wire occupancy of one channel transfer (data or memory route).
    ChannelXfer = 3,
    /// DRAM device access (bank access, row activation included).
    DeviceDram = 4,
    /// XPoint device access (ingress grant to media completion).
    DeviceXPoint = 5,
    /// Migration machinery: swap blocking window / two-level fill.
    Migration = 6,
    /// Recovery: corrupted optical transfer re-sent after CRC detect,
    /// spanning the original transfer's end to the successful resend.
    Retransmit = 7,
    /// Recovery: a transfer moved off a faulty VC onto a healthy one
    /// (fine-granule retune included).
    Rearbitrate = 8,
    /// Recovery: a transfer degraded onto the electrical fallback path
    /// because no healthy optical VC was available (or retransmission
    /// was exhausted).
    FallbackElectrical = 9,
    /// Recovery: an XPoint media op reissued after a DDR-T timeout.
    MediaRetry = 10,
    /// Lifecycle: a correctable ECC error fixed in flight, spanning the
    /// detection to the end of the background scrub write.
    EccCorrect = 11,
    /// Lifecycle: a worn-out or uncorrectable line retired by the XPoint
    /// controller.
    LineRetire = 12,
    /// Lifecycle: a retired line remapped into the spare region, spanning
    /// the retirement to the end of the rebuild write.
    RemapSpare = 13,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 14;

    /// Every stage, in display order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::L1Hit,
        Stage::L2Hit,
        Stage::CtrlQueue,
        Stage::ChannelXfer,
        Stage::DeviceDram,
        Stage::DeviceXPoint,
        Stage::Migration,
        Stage::Retransmit,
        Stage::Rearbitrate,
        Stage::FallbackElectrical,
        Stage::MediaRetry,
        Stage::EccCorrect,
        Stage::LineRetire,
        Stage::RemapSpare,
    ];

    /// Short stable name used in tables and trace tracks.
    pub fn name(self) -> &'static str {
        match self {
            Stage::L1Hit => "l1-hit",
            Stage::L2Hit => "l2-hit",
            Stage::CtrlQueue => "ctrl-queue",
            Stage::ChannelXfer => "channel-xfer",
            Stage::DeviceDram => "dram-access",
            Stage::DeviceXPoint => "xpoint-access",
            Stage::Migration => "migration",
            Stage::Retransmit => "retransmit",
            Stage::Rearbitrate => "rearbitrate",
            Stage::FallbackElectrical => "fallback-electrical",
            Stage::MediaRetry => "media-retry",
            Stage::EccCorrect => "ecc-correct",
            Stage::LineRetire => "line-retire",
            Stage::RemapSpare => "remap-spare",
        }
    }
}

/// One recorded stage interval, kept for trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StageEvent {
    pub(crate) stage: Stage,
    /// Resource index: SM for [`Stage::L1Hit`], controller otherwise.
    pub(crate) res: u32,
    pub(crate) start: Ps,
    pub(crate) end: Ps,
}

/// Trace events kept before the collector starts counting drops instead
/// (bounds memory on long runs; histograms keep recording regardless).
pub(crate) const MAX_TRACE_EVENTS: usize = 1 << 20;

/// The optional per-stage collector behind [`RunStats`].
///
/// Owned as `Option<Box<..>>`: a disabled run pays one branch per hook
/// and allocates nothing, keeping baseline timing numbers bit-identical.
#[derive(Debug)]
pub(crate) struct Observability {
    /// Latency histogram per stage (picoseconds).
    pub(crate) stage_hist: [Histogram; Stage::COUNT],
    /// Raw intervals for trace export, capped at [`MAX_TRACE_EVENTS`].
    pub(crate) events: Vec<StageEvent>,
    /// Intervals dropped after the cap.
    pub(crate) dropped: u64,
    /// Channel busy windows drained from the fabric at report time.
    pub(crate) channel_intervals: Vec<BusyInterval>,
}

impl Observability {
    pub(crate) fn new() -> Self {
        Observability {
            stage_hist: std::array::from_fn(|_| Histogram::new()),
            // Pre-size well below MAX_TRACE_EVENTS: enough to absorb a
            // quick-test run without regrowth, small enough that short
            // runs don't waste memory.
            events: Vec::with_capacity(4096),
            dropped: 0,
            channel_intervals: Vec::new(),
        }
    }

    pub(crate) fn record(&mut self, stage: Stage, res: usize, start: Ps, end: Ps) {
        self.stage_hist[stage as usize].record((end - start).as_ps());
        if self.events.len() < MAX_TRACE_EVENTS {
            self.events.push(StageEvent {
                stage,
                res: res as u32,
                start,
                end,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Folds the fabric's drained busy windows in: they feed the
    /// channel-transfer histogram and the per-VC trace tracks.
    pub(crate) fn absorb_channel_intervals(&mut self, intervals: Vec<BusyInterval>) {
        for iv in &intervals {
            self.stage_hist[Stage::ChannelXfer as usize].record((iv.end - iv.start).as_ps());
        }
        self.channel_intervals.extend(intervals);
    }

    /// Builds the per-stage latency table and per-resource utilization
    /// rows over a run of length `makespan`.
    pub(crate) fn summary(&self, makespan: Ps) -> StageSummary {
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                let h = &self.stage_hist[s as usize];
                StageRow {
                    name: s.name(),
                    count: h.count(),
                    mean_ns: h.mean() / 1000.0,
                    p50_ns: h.quantile_lower_bound(0.50) as f64 / 1000.0,
                    p99_ns: h.quantile_lower_bound(0.99) as f64 / 1000.0,
                }
            })
            .collect();

        // Utilization timelines: 64 windows across the makespan.
        let window = Ps::from_ps((makespan.as_ps() / 64).max(1));
        let mut utils: Vec<ResourceUtil> = Vec::new();
        {
            use std::collections::BTreeMap;
            let mut tracks: BTreeMap<String, ohm_sim::Timeline> = BTreeMap::new();
            for iv in &self.channel_intervals {
                let route = if iv.memory_route { "memory" } else { "data" };
                tracks
                    .entry(format!("vc{} {route}-route", iv.vc))
                    .or_insert_with(|| ohm_sim::Timeline::new(window))
                    .record_busy(iv.start, iv.end);
            }
            for ev in &self.events {
                let name = match ev.stage {
                    Stage::DeviceDram => format!("mc{} dram", ev.res),
                    Stage::DeviceXPoint => format!("mc{} xpoint", ev.res),
                    _ => continue,
                };
                tracks
                    .entry(name)
                    .or_insert_with(|| ohm_sim::Timeline::new(window))
                    .record_busy(ev.start, ev.end);
            }
            for (name, tl) in tracks {
                let n = tl.len().max(1) as f64;
                utils.push(ResourceUtil {
                    name,
                    busy_us: tl.total_busy().as_us_f64(),
                    mean_utilization: tl.utilizations().iter().sum::<f64>() / n,
                    peak_utilization: tl.peak_utilization(),
                });
            }
        }

        StageSummary {
            stages,
            utilization: utils,
            dropped_events: self.dropped,
        }
    }
}

/// Per-phase tallies behind [`RunStats`], armed only for
/// phase-structured runs (see
/// [`System::with_stream`](super::System::with_stream)).
///
/// The sink carries a *current phase* context, set by the system each
/// time a warp issues a slice; every record between two context switches
/// is attributed to that phase. Work a phase *triggers* that completes
/// later (migration completions, background writebacks) is attributed to
/// the phase whose context is live when it is recorded — attribution by
/// trigger, documented in DESIGN.md §3.9.
#[derive(Debug)]
pub(crate) struct PhaseStats {
    /// Phase names, in phase-index order.
    pub(crate) names: Vec<String>,
    /// Phase subsequent records are attributed to.
    cur: usize,
    /// Demand requests reaching the controllers, per phase.
    pub(crate) mem_requests: Vec<u64>,
    /// Controller services satisfied by the DRAM side, per phase.
    pub(crate) dram_hits: Vec<u64>,
    /// Controller services total, per phase.
    pub(crate) service_total: Vec<u64>,
    /// Demand read round-trip latency, per phase.
    pub(crate) mem_latency: Vec<RunningStats>,
    /// Warp slice latency, per phase.
    pub(crate) slice_latency: Vec<RunningStats>,
    /// Stage-interval counts, per phase × stage.
    pub(crate) stage_count: Vec<[u64; Stage::COUNT]>,
    /// Stage-interval latency sums (ps), per phase × stage.
    pub(crate) stage_total_ps: Vec<[u64; Stage::COUNT]>,
}

impl PhaseStats {
    pub(crate) fn new(names: Vec<String>) -> Self {
        let n = names.len();
        PhaseStats {
            names,
            cur: 0,
            mem_requests: vec![0; n],
            dram_hits: vec![0; n],
            service_total: vec![0; n],
            mem_latency: vec![RunningStats::new(); n],
            slice_latency: vec![RunningStats::new(); n],
            stage_count: vec![[0; Stage::COUNT]; n],
            stage_total_ps: vec![[0; Stage::COUNT]; n],
        }
    }
}

/// The uniform hook the system's layers record measurements through.
///
/// Methods are fire-and-forget; implementations must not affect timing.
pub trait StatsSink {
    /// A demand read reached a memory controller (`bytes` of line data).
    fn record_mem_request(&mut self, now: Ps, bytes: u64);
    /// End-to-end latency of one demand read (MC arrival to data at MC).
    fn record_mem_latency(&mut self, latency: Ps);
    /// Latency of one warp slice (issue to resume).
    fn record_slice_latency(&mut self, latency: Ps);
    /// A demand read stalled on a full MSHR file at controller `mc`.
    fn record_mshr_stall(&mut self, mc: usize);
    /// Controller `mc` started a page/line migration.
    fn record_migration(&mut self, mc: usize);
    /// Controller `mc` serviced a request; `dram` says whether the DRAM
    /// side satisfied it (residency/cache hit).
    fn record_service(&mut self, mc: usize, dram: bool);
    /// Latency of one DRAM-served demand read.
    fn record_dram_read_latency(&mut self, latency: Ps);
    /// Latency of one XPoint-served demand read.
    fn record_xpoint_read_latency(&mut self, latency: Ps);
    /// A demand access stalled behind an in-flight migration.
    fn record_conflict_stall(&mut self, stall: Ps);
    /// Stage split of one XPoint read round-trip (command, device, response).
    fn record_xpoint_stages(&mut self, cmd: Ps, dev: Ps, resp: Ps);
    /// Blocking window of one planar swap (trigger to DRAM-copy done).
    fn record_swap_window(&mut self, window: Ps);
    /// One request-path stage interval on resource `res` (the SM index
    /// for [`Stage::L1Hit`], the controller index otherwise). The default
    /// ignores it, so sinks without an observability collector pay
    /// nothing.
    fn record_stage(&mut self, _stage: Stage, _res: usize, _start: Ps, _end: Ps) {}
    /// Whether [`StatsSink::record_stage`] currently records anything.
    /// Layers that batch stage intervals consult this once per request
    /// and skip collection entirely when it is `false`.
    fn stages_enabled(&self) -> bool {
        false
    }
}

/// The concrete per-run collector behind [`StatsSink`].
#[derive(Debug)]
pub struct RunStats {
    /// Mean memory access latency accumulator.
    pub(crate) mem_latency: RunningStats,
    /// Warp slice latency accumulator.
    pub(crate) slice_latency: RunningStats,
    /// Demand bytes entering the memory controllers, over time.
    pub(crate) demand_timeline: TimeSeries,
    /// DRAM-served demand read latency.
    pub(crate) dram_read_latency: RunningStats,
    /// XPoint-served demand read latency.
    pub(crate) xpoint_read_latency: RunningStats,
    /// Conflict (in-flight migration) stall latency.
    pub(crate) stall_latency: RunningStats,
    /// XPoint read round-trip stage splits.
    pub(crate) xp_cmd_stage: RunningStats,
    pub(crate) xp_dev_stage: RunningStats,
    pub(crate) xp_resp_stage: RunningStats,
    /// Planar swap blocking window.
    pub(crate) swap_window: RunningStats,
    /// Demand memory requests that reached the controllers.
    pub(crate) mem_requests: u64,
    /// Per-controller MSHR-full stalls.
    pub(crate) mshr_stalls: Vec<u64>,
    /// Per-controller migrations started.
    pub(crate) migrations: Vec<u64>,
    /// Per-controller DRAM-side service hits.
    pub(crate) dram_service_hits: Vec<u64>,
    /// Per-controller serviced requests.
    pub(crate) service_total: Vec<u64>,
    /// Per-stage collector; `None` (the default) disables recording.
    pub(crate) obs: Option<Box<Observability>>,
    /// Per-phase tallies; `None` (the default) for unphased runs.
    pub(crate) phases: Option<Box<PhaseStats>>,
}

impl RunStats {
    /// Creates an empty collector for `controllers` memory controllers,
    /// bucketing the demand timeline at `timeline_bucket`.
    pub(crate) fn new(controllers: usize, timeline_bucket: Ps) -> Self {
        RunStats {
            mem_latency: RunningStats::new(),
            slice_latency: RunningStats::new(),
            demand_timeline: TimeSeries::new(timeline_bucket),
            dram_read_latency: RunningStats::new(),
            xpoint_read_latency: RunningStats::new(),
            stall_latency: RunningStats::new(),
            xp_cmd_stage: RunningStats::new(),
            xp_dev_stage: RunningStats::new(),
            xp_resp_stage: RunningStats::new(),
            swap_window: RunningStats::new(),
            mem_requests: 0,
            mshr_stalls: vec![0; controllers],
            migrations: vec![0; controllers],
            dram_service_hits: vec![0; controllers],
            service_total: vec![0; controllers],
            obs: None,
            phases: None,
        }
    }

    /// Switches the per-stage collector on.
    pub(crate) fn enable_observability(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(Box::new(Observability::new()));
        }
    }

    /// Arms per-phase accounting with the stream's phase vocabulary.
    pub(crate) fn enable_phases(&mut self, names: Vec<String>) {
        if self.phases.is_none() && !names.is_empty() {
            self.phases = Some(Box::new(PhaseStats::new(names)));
        }
    }

    /// Sets the phase subsequent records are attributed to.
    pub(crate) fn set_phase(&mut self, phase: usize) {
        if let Some(ph) = self.phases.as_mut() {
            ph.cur = phase.min(ph.names.len() - 1);
        }
    }

    /// Total migrations across controllers.
    pub(crate) fn total_migrations(&self) -> u64 {
        self.migrations.iter().sum()
    }

    /// `(dram_service_hits, service_total)` summed over controllers.
    pub(crate) fn service_totals(&self) -> (u64, u64) {
        (
            self.dram_service_hits.iter().sum(),
            self.service_total.iter().sum(),
        )
    }

    /// The demand-bandwidth timeline.
    pub(crate) fn demand_timeline(&self) -> &TimeSeries {
        &self.demand_timeline
    }
}

impl StatsSink for RunStats {
    fn record_mem_request(&mut self, now: Ps, bytes: u64) {
        self.mem_requests += 1;
        self.demand_timeline.record(now, bytes as f64);
        if let Some(ph) = self.phases.as_mut() {
            ph.mem_requests[ph.cur] += 1;
        }
    }

    fn record_mem_latency(&mut self, latency: Ps) {
        self.mem_latency.push_ps(latency);
        if let Some(ph) = self.phases.as_mut() {
            ph.mem_latency[ph.cur].push_ps(latency);
        }
    }

    fn record_slice_latency(&mut self, latency: Ps) {
        self.slice_latency.push_ps(latency);
        if let Some(ph) = self.phases.as_mut() {
            ph.slice_latency[ph.cur].push_ps(latency);
        }
    }

    fn record_mshr_stall(&mut self, mc: usize) {
        self.mshr_stalls[mc] += 1;
    }

    fn record_migration(&mut self, mc: usize) {
        self.migrations[mc] += 1;
    }

    fn record_service(&mut self, mc: usize, dram: bool) {
        self.service_total[mc] += 1;
        if dram {
            self.dram_service_hits[mc] += 1;
        }
        if let Some(ph) = self.phases.as_mut() {
            ph.service_total[ph.cur] += 1;
            ph.dram_hits[ph.cur] += u64::from(dram);
        }
    }

    fn record_dram_read_latency(&mut self, latency: Ps) {
        self.dram_read_latency.push_ps(latency);
    }

    fn record_xpoint_read_latency(&mut self, latency: Ps) {
        self.xpoint_read_latency.push_ps(latency);
    }

    fn record_conflict_stall(&mut self, stall: Ps) {
        self.stall_latency.push_ps(stall);
    }

    fn record_xpoint_stages(&mut self, cmd: Ps, dev: Ps, resp: Ps) {
        self.xp_cmd_stage.push_ps(cmd);
        self.xp_dev_stage.push_ps(dev);
        self.xp_resp_stage.push_ps(resp);
    }

    fn record_swap_window(&mut self, window: Ps) {
        self.swap_window.push_ps(window);
    }

    fn record_stage(&mut self, stage: Stage, res: usize, start: Ps, end: Ps) {
        if let Some(obs) = self.obs.as_mut() {
            obs.record(stage, res, start, end);
        }
        if let Some(ph) = self.phases.as_mut() {
            ph.stage_count[ph.cur][stage as usize] += 1;
            ph.stage_total_ps[ph.cur][stage as usize] += (end - start).as_ps();
        }
    }

    fn stages_enabled(&self) -> bool {
        self.obs.is_some() || self.phases.is_some()
    }
}
