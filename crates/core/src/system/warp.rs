//! The warp layer: event loop, warp scheduling, and SM issue.
//!
//! [`WarpEngine`] owns the event queue, the instruction stream, and the
//! SMs. It decides *which* warp does *what* next; resolving how long a
//! memory access takes is the job of the layers below, so a stepped
//! slice is reported back to the [`System`](super::System) as a
//! [`SliceOutcome`] for the cache/memory glue to finish.

use ohm_sim::{EpochQueue, Ps};
use ohm_sm::{AccessKind, InstructionStream, Sm, SmConfig, WarpId, WarpState};

#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// A warp is ready to fetch its next slice.
    Resume(WarpId),
    /// A delegated migration released its pages.
    MigrationDone { mc: usize, id: u64 },
}

/// What happened when a warp stepped one slice.
pub(crate) enum SliceOutcome {
    /// The warp retired its last instruction.
    Finished,
    /// A pure-compute slice; the warp resumes when the SM's issue
    /// pipeline drains it.
    Compute { resume_at: Ps },
    /// The slice ends in a memory access (the warp is already blocked);
    /// compute drains at `after_compute`.
    Memory {
        after_compute: Ps,
        addr: ohm_sim::Addr,
        kind: AccessKind,
    },
}

/// Per-phase issue accounting, allocated only for phase-structured
/// streams (those whose [`InstructionStream::phase_names`] is
/// non-empty).
#[derive(Debug, Clone)]
pub(crate) struct PhaseTrack {
    /// Phase names, from the stream.
    pub(crate) names: Vec<String>,
    /// Instructions issued per phase (summed over lanes).
    pub(crate) insts: Vec<u64>,
    /// First issue time seen per phase.
    pub(crate) first: Vec<Option<Ps>>,
    /// Last compute-drain time seen per phase.
    pub(crate) last: Vec<Ps>,
}

impl PhaseTrack {
    fn new(names: Vec<String>) -> Self {
        let n = names.len();
        PhaseTrack {
            names,
            insts: vec![0; n],
            first: vec![None; n],
            last: vec![Ps::ZERO; n],
        }
    }
}

/// The event loop and warp scheduler.
///
/// The queue is an [`EpochQueue`]: under the serial loop its
/// `(time, entry, slot)` keys reproduce the old `(time, seq)` FIFO order
/// exactly (each pop's pushes get consecutive slots), and the epoch
/// scheduler uses the same keys to commit deferred cross-shard pushes in
/// serial order (DESIGN.md §3.8).
pub(crate) struct WarpEngine {
    pub(crate) queue: EpochQueue<Event>,
    stream: Box<dyn InstructionStream>,
    pub(crate) sms: Vec<Sm>,
    /// When the last warp retired its final instruction (the kernel's
    /// completion time; bookkeeping events may trail it).
    pub(crate) kernel_end: Ps,
    /// Per-phase issue tallies; `None` for unphased streams.
    pub(crate) phase_track: Option<Box<PhaseTrack>>,
}

impl WarpEngine {
    pub(crate) fn new(sms: usize, sm_cfg: SmConfig, stream: Box<dyn InstructionStream>) -> Self {
        let names = stream.phase_names();
        WarpEngine {
            queue: EpochQueue::with_capacity(sms * sm_cfg.warps),
            stream,
            sms: (0..sms).map(|_| Sm::new(sm_cfg)).collect(),
            kernel_end: Ps::ZERO,
            phase_track: (!names.is_empty()).then(|| Box::new(PhaseTrack::new(names))),
        }
    }

    /// Phase of the slice most recently issued on lane `w` (0 for
    /// unphased streams).
    pub(crate) fn last_phase(&self, w: WarpId) -> usize {
        self.stream.last_phase(w.sm, w.warp)
    }

    /// Seeds the queue with every warp's initial resume at time zero.
    pub(crate) fn seed(&mut self) {
        for sm in 0..self.sms.len() {
            for warp in 0..self.sms[sm].config().warps {
                self.queue
                    .push(Ps::ZERO, Event::Resume(WarpId { sm, warp }));
            }
        }
    }

    /// Steps warp `w` one slice at `now`: unblocks it, fetches the next
    /// slice, and books the compute portion on the SM's issue pipeline.
    pub(crate) fn step(&mut self, now: Ps, w: WarpId) -> SliceOutcome {
        if self.sms[w.sm].warp_state(w.warp) == WarpState::Blocked {
            self.sms[w.sm].unblock(w.warp);
        }
        let Some(slice) = self.stream.next_slice(w.sm, w.warp) else {
            self.sms[w.sm].finish(w.warp);
            self.kernel_end = self.kernel_end.max(now);
            return SliceOutcome::Finished;
        };
        let after_compute = self.sms[w.sm].issue_compute(now, w.warp, slice.compute_insts);
        if let Some(track) = self.phase_track.as_mut() {
            let p = self
                .stream
                .last_phase(w.sm, w.warp)
                .min(track.names.len() - 1);
            track.insts[p] += slice.instructions();
            track.first[p].get_or_insert(now);
            track.last[p] = track.last[p].max(after_compute);
        }
        match slice.access {
            None => SliceOutcome::Compute {
                resume_at: after_compute,
            },
            Some((addr, kind)) => {
                self.sms[w.sm].block_on_memory(w.warp);
                SliceOutcome::Memory {
                    after_compute,
                    addr,
                    kind,
                }
            }
        }
    }

    /// Schedules warp `w` to resume at `at`. A popped event resumes at
    /// most one warp, so the resume takes the entry's *final* slot —
    /// sorting after any migration notices it pushed at the same time,
    /// exactly like the old push-order sequence numbers.
    pub(crate) fn resume(&mut self, at: Ps, w: WarpId) {
        self.queue.push_final(at, Event::Resume(w));
    }

    /// Schedules a migration-completion notice.
    pub(crate) fn push_migration_done(&mut self, at: Ps, mc: usize, id: u64) {
        self.queue.push(at, Event::MigrationDone { mc, id });
    }

    /// Instructions retired across all SMs.
    pub(crate) fn retired(&self) -> u64 {
        self.sms.iter().map(|s| s.retired()).sum()
    }
}
