//! Report generation: folding the layers' counters into a [`SimReport`]
//! and the debugging resource summary.

use ohm_sim::Ps;

use crate::energy::{energy_report, EnergyInputs};
use crate::metrics::{FaultReport, PhaseRow, PhaseStageRow, PhaseSummary, SimReport, WearReport};

use super::stats::Stage;
use super::System;

impl System {
    /// One-line-per-resource busy summary for debugging and examples.
    pub fn resource_summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let horizon = self.engine.queue.now();
        let _ = writeln!(out, "makespan: {horizon}");
        let issue_busy: Ps = self.engine.sms.iter().map(|s| s.busy_time()).sum();
        let _ = writeln!(
            out,
            "sm issue: busy {} over {} SMs ({:.1}% of makespan each)",
            issue_busy,
            self.engine.sms.len(),
            100.0 * issue_busy.as_ps() as f64
                / (self.engine.sms.len() as f64 * horizon.as_ps().max(1) as f64),
        );
        let _ = writeln!(
            out,
            "xbar: {} messages, busy {} ({:.1}% per port)",
            self.xbar.messages(),
            self.xbar.busy_time(),
            100.0 * self.xbar.busy_time().as_ps() as f64
                / (self.cfg.gpu.xbar.ports as f64 * horizon.as_ps().max(1) as f64),
        );
        for (i, mc) in self.mem.mcs.iter().enumerate() {
            let _ = writeln!(
                out,
                "mc{i}: ctrl busy {} ({:.1}%), ctrl free@{}, dram busy {} ({} banks), xp reads {} writes {} stalls {}, conflicts {}/{}",
                mc.ctrl.busy_time(),
                100.0 * mc.ctrl.busy_time().as_ps() as f64 / horizon.as_ps().max(1) as f64,
                mc.ctrl.next_free(),
                mc.dram.busy_time(),
                self.cfg.memory.dram_banks,
                mc.xpoint.as_ref().map_or(0, |x| x.media().reads()),
                mc.xpoint.as_ref().map_or(0, |x| x.media().writes()),
                mc.xpoint.as_ref().map_or(0, |x| x.media().write_stalls()),
                mc.conflicts.stalls(),
                mc.conflicts.checks(),
            );
        }
        let _ = writeln!(out, "slice latency: {} (ns)", self.stats.slice_latency);
        let _ = writeln!(
            out,
            "dram read latency: {} (ns)",
            self.stats.dram_read_latency
        );
        let _ = writeln!(
            out,
            "xpoint read latency: {} (ns)",
            self.stats.xpoint_read_latency
        );
        let _ = writeln!(out, "conflict stall: {} (ns)", self.stats.stall_latency);
        let _ = writeln!(
            out,
            "xp stages cmd: {} dev: {} resp: {}",
            self.stats.xp_cmd_stage, self.stats.xp_dev_stage, self.stats.xp_resp_stage
        );
        let _ = writeln!(out, "swap window: {} (ns)", self.stats.swap_window);
        let (d, m) = self.mem.fabric.bits();
        let _ = writeln!(
            out,
            "channel: demand {d} bits, migration {m} bits, util {:.3}",
            self.mem.fabric.utilization(horizon)
        );
        out
    }

    pub(crate) fn report(&mut self) -> SimReport {
        // Migration-completion bookkeeping may trail the last warp; the
        // kernel's makespan is when the warps finished.
        let makespan = if self.engine.kernel_end > Ps::ZERO {
            self.engine.kernel_end
        } else {
            self.engine.queue.now()
        };
        let instructions = self.engine.retired();
        let cycles = self.cfg.gpu.sm.freq.cycles_in(makespan).max(1);
        let l1_hits: u64 = self.l1s.iter().map(|c| c.hits()).sum();
        let l1_total: u64 = self.l1s.iter().map(|c| c.hits() + c.misses()).sum();

        let (demand_bits, migration_bits) = self.mem.fabric.bits();
        let dram_activations: u64 = self.mem.mcs.iter().map(|m| m.dram.activations()).sum();
        let dram_accesses: u64 = self
            .mem
            .mcs
            .iter()
            .map(|m| m.dram.reads() + m.dram.writes())
            .sum();
        let (xp_reads, xp_writes) = self.mem.mcs.iter().fold((0, 0), |(r, w), m| {
            m.xpoint
                .as_ref()
                .map(|x| (r + x.media().reads(), w + x.media().writes()))
                .unwrap_or((r, w))
        });

        let energy = energy_report(
            self.platform,
            &EnergyInputs {
                makespan,
                channel_bits: demand_bits + migration_bits,
                dram_capacity_bytes: self.mem.dram_capacity,
                dram_activations,
                dram_accesses,
                dram_access_bits: self.cfg.line_bytes * 8,
                xpoint_capacity_bytes: self.mem.xpoint_capacity,
                xpoint_reads: xp_reads,
                xpoint_writes: xp_writes,
                xpoint_line_bits: self.cfg.line_bytes * 8,
                wavelengths: self.cfg.optical.grid.total_wavelengths()
                    * self.cfg.optical.waveguides,
            },
        );

        // Fold the fabric's busy windows into the observability collector
        // (when enabled) and derive the per-stage summary. Reading the
        // collector never affects timing, so everything above this point
        // is bit-identical with observability off.
        let stages = self.stats.obs.as_mut().map(|obs| {
            obs.absorb_channel_intervals(self.mem.fabric.drain_intervals());
            obs.summary(makespan)
        });

        // Fault/recovery tallies: fabric counters plus the per-MC XPoint
        // controllers' media counters. Only reported when a plan was armed.
        let faults = self.cfg.faults.as_ref().map(|_| {
            let fc = self.mem.fabric.fault_counters();
            let (stalls, retries, poisoned) = self.mem.mcs.iter().fold((0, 0, 0), |acc, m| {
                m.xpoint.as_ref().map_or(acc, |x| {
                    (
                        acc.0 + x.media_stalls(),
                        acc.1 + x.media_retries(),
                        acc.2 + x.poisoned_lines(),
                    )
                })
            });
            FaultReport {
                corrupted_transfers: fc.corrupted_transfers,
                retransmissions: fc.retransmissions,
                retx_exhausted: fc.retx_exhausted,
                mrr_faults: fc.mrr_faults,
                rearbitrations: fc.rearbitrations,
                electrical_fallbacks: fc.electrical_fallbacks,
                media_stalls: stalls,
                media_retries: retries,
                poisoned_lines: poisoned,
            }
        });

        // Wear-out lifecycle tallies: controller counters summed across
        // MCs, the merged effective-capacity curve, and the planner-side
        // degradation view. Only reported when a plan was configured.
        let wear_report = self.cfg.lifecycle.as_ref().map(|_| {
            let mut r = WearReport::default();
            let mut total_lines = 0u64;
            let mut escalations: Vec<Ps> = Vec::new();
            for m in &self.mem.mcs {
                let Some(x) = m.xpoint.as_ref() else { continue };
                r.retired_lines += x.retired_lines();
                r.spares_used += x.spares_used();
                r.spares_total += x.spares_total();
                r.ecc_corrected += x.ecc_corrected();
                r.ecc_uncorrectable += x.ecc_uncorrectable();
                r.dead_lines += x.dead_lines();
                total_lines += x.wear_map().lines();
                escalations.extend(x.capacity_log().iter().map(|&(t, _)| t));
            }
            r.usable_capacity = if total_lines == 0 {
                1.0
            } else {
                1.0 - r.dead_lines as f64 / total_lines as f64
            };
            // Merge the per-controller escalation instants into one
            // monotone capacity curve, downsampled to a bounded number of
            // samples (the last — final capacity — always kept).
            escalations.sort_unstable();
            let n = escalations.len();
            let stride = n.div_ceil(64).max(1);
            r.capacity_curve = escalations
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + 1) % stride == 0 || *i == n - 1)
                .map(|(i, &t)| (t, 1.0 - (i as u64 + 1) as f64 / total_lines.max(1) as f64))
                .collect();
            r.planner = self.mem.backend.planner_wear();
            r
        });

        // Per-phase breakdown: join the engine's issue tallies (insts,
        // spans) with the stats sink's attributed memory counters.
        let phases = self.stats.phases.as_ref().map(|ph| {
            let track = self
                .engine
                .phase_track
                .as_ref()
                .expect("phase stats imply an engine phase track");
            let freq = self.cfg.gpu.sm.freq;
            let rows = ph
                .names
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let span = match track.first[i] {
                        Some(first) => (first, track.last[i].max(first)),
                        None => (Ps::ZERO, Ps::ZERO),
                    };
                    let cycles = freq.cycles_in(span.1 - span.0).max(1);
                    let served = ph.service_total[i];
                    let stages = Stage::ALL
                        .iter()
                        .filter(|&&s| ph.stage_count[i][s as usize] > 0)
                        .map(|&s| {
                            let count = ph.stage_count[i][s as usize];
                            PhaseStageRow {
                                name: s.name(),
                                count,
                                mean_ns: ph.stage_total_ps[i][s as usize] as f64
                                    / count as f64
                                    / 1000.0,
                            }
                        })
                        .collect();
                    PhaseRow {
                        name: name.clone(),
                        instructions: track.insts[i],
                        ipc: track.insts[i] as f64 / cycles as f64,
                        span,
                        mem_requests: ph.mem_requests[i],
                        avg_mem_latency_ns: ph.mem_latency[i].mean(),
                        avg_slice_latency_ns: ph.slice_latency[i].mean(),
                        dram_served: ph.dram_hits[i],
                        xpoint_served: served - ph.dram_hits[i],
                        dram_hit_rate: if served == 0 {
                            1.0
                        } else {
                            ph.dram_hits[i] as f64 / served as f64
                        },
                        stages,
                    }
                })
                .collect();
            PhaseSummary { phases: rows }
        });

        let host = self.mem.host_report();
        let (dram_service, service_total) = self.stats.service_totals();
        let wear = {
            let stats: Vec<f64> = self
                .mem
                .mcs
                .iter()
                .filter_map(|m| m.xpoint.as_ref().map(|x| x.wear_stats().imbalance))
                .collect();
            if stats.is_empty() {
                1.0
            } else {
                stats.iter().sum::<f64>() / stats.len() as f64
            }
        };

        SimReport {
            platform: self.platform,
            mode: self.mode,
            workload: self.spec.name.to_string(),
            makespan,
            instructions,
            ipc: instructions as f64 / cycles as f64,
            mem_requests: self.stats.mem_requests,
            avg_mem_latency_ns: self.stats.mem_latency.mean(),
            l1_hit_rate: if l1_total == 0 {
                0.0
            } else {
                l1_hits as f64 / l1_total as f64
            },
            l2_hit_rate: self.l2.hit_rate(),
            hetero_dram_hit_rate: if service_total == 0 {
                1.0
            } else {
                dram_service as f64 / service_total as f64
            },
            migration_channel_fraction: self.mem.fabric.migration_fraction(),
            migrations: self.stats.total_migrations(),
            channel_utilization: self.mem.fabric.utilization(makespan),
            channel_bits: (demand_bits, migration_bits),
            energy,
            host,
            wear_imbalance: wear,
            stages,
            faults,
            wear: wear_report,
            phases,
        }
    }
}
