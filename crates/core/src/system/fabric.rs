//! The fabric layer: a uniform transfer interface over either channel
//! technology.
//!
//! [`Fabric`] absorbs what used to be an ad-hoc `Channel::Optical /
//! Channel::Electrical` enum dispatch inside the system monolith. The
//! memory subsystem talks to one trait object; which physics sits behind
//! it is decided once, at construction, from the platform.

use ohm_hetero::{MigrationCaps, Platform};
use ohm_optic::{
    BusyInterval, DualRouteMode, ElectricalChannel, OperationalMode, OpticalChannel,
    OpticalChannelConfig, TrafficClass,
};
use ohm_sim::Ps;

use crate::config::SystemConfig;

/// A memory channel behind a uniform transfer interface.
///
/// Implementations book wire occupancy on a per-virtual-channel data
/// route; optical fabrics additionally expose the dedicated memory route
/// (dual-route platforms) used by delegated migrations.
pub trait Fabric {
    /// Books `bits` on virtual channel `ch`'s data route toward `device`,
    /// returning the transfer's `(start, end)`.
    fn xfer(
        &mut self,
        now: Ps,
        ch: usize,
        bits: u64,
        class: TrafficClass,
        device: usize,
    ) -> (Ps, Ps);

    /// Books `bits` on the dedicated memory route (device-to-device
    /// copies that bypass the data route).
    ///
    /// # Panics
    ///
    /// Panics on fabrics without a memory route (electrical platforms
    /// never delegate migrations).
    fn memory_route(&mut self, now: Ps, ch: usize, bits: u64) -> (Ps, Ps);

    /// Fraction of data-route busy time carrying migration traffic.
    fn migration_fraction(&self) -> f64;

    /// Mean per-channel utilization over `horizon`.
    fn utilization(&self, horizon: Ps) -> f64;

    /// Total bits moved, split `(demand, migration)`.
    fn bits(&self) -> (u64, u64);

    /// Enables or disables per-transfer busy-interval logging (used by the
    /// observability layer; off by default, zero overhead when off).
    fn set_interval_logging(&mut self, enabled: bool);

    /// Takes the busy intervals logged since the last drain. Empty when
    /// logging is disabled.
    fn drain_intervals(&mut self) -> Vec<BusyInterval>;
}

impl Fabric for OpticalChannel {
    fn xfer(
        &mut self,
        now: Ps,
        ch: usize,
        bits: u64,
        class: TrafficClass,
        device: usize,
    ) -> (Ps, Ps) {
        self.transfer(now, ch, bits, class, device)
    }

    fn memory_route(&mut self, now: Ps, ch: usize, bits: u64) -> (Ps, Ps) {
        self.memory_route_transfer(now, ch, bits)
    }

    fn migration_fraction(&self) -> f64 {
        OpticalChannel::migration_fraction(self)
    }

    fn utilization(&self, horizon: Ps) -> f64 {
        OpticalChannel::utilization(self, horizon)
    }

    fn bits(&self) -> (u64, u64) {
        (
            self.bits_by_class(TrafficClass::Demand),
            self.bits_by_class(TrafficClass::Migration),
        )
    }

    fn set_interval_logging(&mut self, enabled: bool) {
        OpticalChannel::set_interval_logging(self, enabled);
    }

    fn drain_intervals(&mut self) -> Vec<BusyInterval> {
        OpticalChannel::drain_intervals(self)
    }
}

impl Fabric for ElectricalChannel {
    fn xfer(
        &mut self,
        now: Ps,
        ch: usize,
        bits: u64,
        class: TrafficClass,
        _device: usize,
    ) -> (Ps, Ps) {
        self.transfer(now, ch, bits, class)
    }

    fn memory_route(&mut self, _now: Ps, _ch: usize, _bits: u64) -> (Ps, Ps) {
        unreachable!("electrical platforms never use the memory route")
    }

    fn migration_fraction(&self) -> f64 {
        ElectricalChannel::migration_fraction(self)
    }

    fn utilization(&self, horizon: Ps) -> f64 {
        ElectricalChannel::utilization(self, horizon)
    }

    fn bits(&self) -> (u64, u64) {
        (
            self.bits_by_class(TrafficClass::Demand),
            self.bits_by_class(TrafficClass::Migration),
        )
    }

    fn set_interval_logging(&mut self, enabled: bool) {
        ElectricalChannel::set_interval_logging(self, enabled);
    }

    fn drain_intervals(&mut self) -> Vec<BusyInterval> {
        ElectricalChannel::drain_intervals(self)
    }
}

/// Builds the fabric a platform runs on: electrical for `Origin`/`Hetero`,
/// optical (with the platform's dual-route capability) for the rest.
///
/// WOM coding exists to share a light between the memory controller and
/// the swap function (Section V-B) — planar mode only. The two-level
/// mode's auto-read/write + reverse-write use half-coupled MRR
/// *receivers* (Figure 15b) and carry no coding penalty.
pub(crate) fn build_fabric(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    caps: &MigrationCaps,
) -> Box<dyn Fabric + Send> {
    let dual_route = if caps.swap || caps.reverse_write || caps.auto_rw {
        if caps.wom_coding && mode == OperationalMode::Planar {
            DualRouteMode::Wom
        } else {
            DualRouteMode::HalfCoupled
        }
    } else {
        DualRouteMode::Serialized
    };

    match platform {
        Platform::Origin | Platform::Hetero => Box::new(ElectricalChannel::new(cfg.electrical)),
        _ => Box::new(OpticalChannel::new(OpticalChannelConfig {
            dual_route,
            ..cfg.optical
        })),
    }
}
