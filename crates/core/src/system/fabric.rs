//! The fabric layer: a uniform transfer interface over either channel
//! technology.
//!
//! [`Fabric`] absorbs what used to be an ad-hoc `Channel::Optical /
//! Channel::Electrical` enum dispatch inside the system monolith. The
//! memory subsystem talks to one trait object; which physics sits behind
//! it is decided once, at construction, from the platform.
//!
//! When a [`FaultPlan`] is armed, optical platforms get a
//! `ResilientFabric`: the same optical channel wrapped with CRC
//! detection + bounded retransmission, MRR stick/drift injection with
//! re-arbitration onto healthy wavelengths, and degradation onto an
//! electrical fallback path when no healthy wavelength remains.

use ohm_hetero::{MigrationCaps, Platform};
use ohm_optic::mrr::FINE_TUNE;
use ohm_optic::{
    BusyInterval, CouplingState, DualRouteMode, ElectricalChannel, MicroRing, MrrKind,
    OperationalMode, OpticalChannel, OpticalChannelConfig, RingHealth, TrafficClass,
};
use ohm_sim::{Ps, SplitMix64};

use crate::config::SystemConfig;
use crate::fault::{FaultCounters, FaultPlan, RecoveryEvent};
use crate::reliability;
use crate::system::Stage;

/// A memory channel behind a uniform transfer interface.
///
/// Implementations book wire occupancy on a per-virtual-channel data
/// route; optical fabrics additionally expose the dedicated memory route
/// (dual-route platforms) used by delegated migrations.
pub trait Fabric {
    /// Books `bits` on virtual channel `ch`'s data route toward `device`,
    /// returning the transfer's `(start, end)`.
    fn xfer(
        &mut self,
        now: Ps,
        ch: usize,
        bits: u64,
        class: TrafficClass,
        device: usize,
    ) -> (Ps, Ps);

    /// Books `bits` on the dedicated memory route (device-to-device
    /// copies that bypass the data route).
    ///
    /// # Panics
    ///
    /// Panics on fabrics without a memory route (electrical platforms
    /// never delegate migrations).
    fn memory_route(&mut self, now: Ps, ch: usize, bits: u64) -> (Ps, Ps);

    /// Fraction of data-route busy time carrying migration traffic.
    fn migration_fraction(&self) -> f64;

    /// Mean per-channel utilization over `horizon`.
    fn utilization(&self, horizon: Ps) -> f64;

    /// Total bits moved, split `(demand, migration)`.
    fn bits(&self) -> (u64, u64);

    /// Enables or disables per-transfer busy-interval logging (used by the
    /// observability layer; off by default, zero overhead when off).
    fn set_interval_logging(&mut self, enabled: bool);

    /// Takes the busy intervals logged since the last drain. Empty when
    /// logging is disabled.
    fn drain_intervals(&mut self) -> Vec<BusyInterval>;

    /// Appends the recovery events accumulated since the last drain to
    /// `out`, whose capacity the caller reuses across requests.
    /// Fault-free fabrics never produce any.
    fn drain_recovery_into(&mut self, _out: &mut Vec<RecoveryEvent>) {}

    /// Snapshot of the fabric's fault/recovery counters. All-zero on
    /// fault-free fabrics.
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// Splits the fabric's per-channel state into disjoint contiguous
    /// shard views (one per entry in `counts`) for the epoch scheduler's
    /// parallel phase, or `None` when cross-channel state makes a
    /// per-channel view unsound — dynamic wavelength division, interval
    /// logging, or an armed (non-quiescent) fault plan whose single RNG
    /// stream is drawn per transfer.
    ///
    /// Shards mutate channel calendars in place; transferred-bit tallies
    /// are local to each shard and folded back via
    /// [`Fabric::merge_shard_bits`] after the shards are dropped.
    fn split_channels(&mut self, _counts: &[usize]) -> Option<Vec<FabricShard<'_>>> {
        None
    }

    /// Folds per-shard `(demand, migration)` bit tallies back into the
    /// fabric-wide counters. Only meaningful on fabrics that return
    /// shards from [`Fabric::split_channels`].
    fn merge_shard_bits(&mut self, _bits: [u64; 2]) {}
}

/// A per-shard view of a fabric: the transfer entry points restricted to
/// a contiguous channel range, used by one epoch-scheduler worker.
///
/// Only the service-path methods ([`Fabric::xfer`], [`Fabric::memory_route`])
/// are live; report-time queries are answered by the whole fabric after
/// the shards are merged back, so they are unreachable here.
pub enum FabricShard<'a> {
    /// A group of optical virtual channels.
    Optical(ohm_optic::VcShard<'a>),
    /// A group of electrical lanes.
    Electrical(ohm_optic::LaneShard<'a>),
}

impl FabricShard<'_> {
    /// Bits transferred through this shard since the split, as
    /// `[demand, migration]` — fed back via [`Fabric::merge_shard_bits`].
    pub fn bits_delta(&self) -> [u64; 2] {
        match self {
            FabricShard::Optical(s) => s.bits_delta(),
            FabricShard::Electrical(s) => s.bits_delta(),
        }
    }
}

impl Fabric for FabricShard<'_> {
    fn xfer(
        &mut self,
        now: Ps,
        ch: usize,
        bits: u64,
        class: TrafficClass,
        device: usize,
    ) -> (Ps, Ps) {
        match self {
            FabricShard::Optical(s) => s.transfer(now, ch, bits, class, device),
            FabricShard::Electrical(s) => s.transfer(now, ch, bits, class),
        }
    }

    fn memory_route(&mut self, now: Ps, ch: usize, bits: u64) -> (Ps, Ps) {
        match self {
            FabricShard::Optical(s) => s.memory_route_transfer(now, ch, bits),
            FabricShard::Electrical(_) => {
                unreachable!("electrical platforms never use the memory route")
            }
        }
    }

    fn migration_fraction(&self) -> f64 {
        unreachable!("report-time query on a shard fabric")
    }

    fn utilization(&self, _horizon: Ps) -> f64 {
        unreachable!("report-time query on a shard fabric")
    }

    fn bits(&self) -> (u64, u64) {
        unreachable!("report-time query on a shard fabric")
    }

    fn set_interval_logging(&mut self, _enabled: bool) {
        unreachable!("observability is incompatible with sharded execution")
    }

    fn drain_intervals(&mut self) -> Vec<BusyInterval> {
        Vec::new()
    }
}

impl Fabric for OpticalChannel {
    fn xfer(
        &mut self,
        now: Ps,
        ch: usize,
        bits: u64,
        class: TrafficClass,
        device: usize,
    ) -> (Ps, Ps) {
        self.transfer(now, ch, bits, class, device)
    }

    fn memory_route(&mut self, now: Ps, ch: usize, bits: u64) -> (Ps, Ps) {
        self.memory_route_transfer(now, ch, bits)
    }

    fn migration_fraction(&self) -> f64 {
        OpticalChannel::migration_fraction(self)
    }

    fn utilization(&self, horizon: Ps) -> f64 {
        OpticalChannel::utilization(self, horizon)
    }

    fn bits(&self) -> (u64, u64) {
        (
            self.bits_by_class(TrafficClass::Demand),
            self.bits_by_class(TrafficClass::Migration),
        )
    }

    fn set_interval_logging(&mut self, enabled: bool) {
        OpticalChannel::set_interval_logging(self, enabled);
    }

    fn drain_intervals(&mut self) -> Vec<BusyInterval> {
        OpticalChannel::drain_intervals(self)
    }

    fn split_channels(&mut self, counts: &[usize]) -> Option<Vec<FabricShard<'_>>> {
        Some(
            self.split_vcs(counts)?
                .into_iter()
                .map(FabricShard::Optical)
                .collect(),
        )
    }

    fn merge_shard_bits(&mut self, bits: [u64; 2]) {
        OpticalChannel::merge_shard_bits(self, bits);
    }
}

impl Fabric for ElectricalChannel {
    fn xfer(
        &mut self,
        now: Ps,
        ch: usize,
        bits: u64,
        class: TrafficClass,
        _device: usize,
    ) -> (Ps, Ps) {
        self.transfer(now, ch, bits, class)
    }

    fn memory_route(&mut self, _now: Ps, _ch: usize, _bits: u64) -> (Ps, Ps) {
        unreachable!("electrical platforms never use the memory route")
    }

    fn migration_fraction(&self) -> f64 {
        ElectricalChannel::migration_fraction(self)
    }

    fn utilization(&self, horizon: Ps) -> f64 {
        ElectricalChannel::utilization(self, horizon)
    }

    fn bits(&self) -> (u64, u64) {
        (
            self.bits_by_class(TrafficClass::Demand),
            self.bits_by_class(TrafficClass::Migration),
        )
    }

    fn set_interval_logging(&mut self, enabled: bool) {
        ElectricalChannel::set_interval_logging(self, enabled);
    }

    fn drain_intervals(&mut self) -> Vec<BusyInterval> {
        ElectricalChannel::drain_intervals(self)
    }

    fn split_channels(&mut self, counts: &[usize]) -> Option<Vec<FabricShard<'_>>> {
        Some(
            self.split_lanes(counts)?
                .into_iter()
                .map(FabricShard::Electrical)
                .collect(),
        )
    }

    fn merge_shard_bits(&mut self, bits: [u64; 2]) {
        ElectricalChannel::merge_shard_bits(self, bits);
    }
}

/// An optical fabric hardened against injected faults (the tentpole of
/// the fault-injection subsystem; see [`crate::fault`]).
///
/// Wraps the platform's [`OpticalChannel`] with the three recovery
/// mechanisms a degraded link needs:
///
/// * **CRC detect + bounded retransmission.** Each transfer is corrupted
///   with probability `1 - (1 - BER)^bits` at the fault plan's derated
///   operating point ([`reliability::degraded_ber`]). A corrupted
///   transfer is retransmitted after an exponential backoff; when the
///   retransmission budget runs out, the payload is escalated onto the
///   electrical fallback path.
/// * **MRR re-arbitration.** Each transfer can stick or drift the VC's
///   demux ring ([`RingHealth`]); detection is the failed corrective
///   retune. The VC is marked untrusted for the plan's repair window and
///   traffic re-arbitrates (paying a [`FINE_TUNE`] retune) onto the
///   healthiest remaining wavelength.
/// * **Electrical degradation.** When every wavelength is untrusted, the
///   transfer moves to the electrical fallback channel entirely — the
///   system stays alive at electrical bandwidth (the paper's Origin
///   substrate) instead of wedging.
///
/// At `q_derate <= 1.0` the analytical BER (≈7.2e-16/bit, Figure 20b) is
/// below any rate observable in simulated transfer counts, so corruption
/// is treated as exactly zero — together with ppm-gated MRR draws this
/// keeps a quiescent plan on a draw-free path, bit-identical to running
/// with no plan at all.
pub(crate) struct ResilientFabric {
    optical: OpticalChannel,
    fallback: ElectricalChannel,
    /// One demux detector ring per VC — the components stick/drift
    /// faults land on.
    demux_rings: Vec<MicroRing>,
    /// When each faulted ring's thermal recalibration completes.
    ring_repair_at: Vec<Ps>,
    rng: SplitMix64,
    /// Per-bit corruption probability at the derated operating point.
    ber: f64,
    plan: FaultPlan,
    counters: FaultCounters,
    recovery: Vec<RecoveryEvent>,
}

impl ResilientFabric {
    fn new(
        optical: OpticalChannel,
        fallback: ElectricalChannel,
        plan: FaultPlan,
        ber: f64,
    ) -> Self {
        let vcs = optical.vc_count();
        let mut root = SplitMix64::new(plan.seed);
        ResilientFabric {
            optical,
            fallback,
            demux_rings: (0..vcs)
                .map(|_| MicroRing::new(MrrKind::Detector))
                .collect(),
            ring_repair_at: vec![Ps::ZERO; vcs],
            rng: root.fork(0xFAB),
            ber,
            plan,
            counters: FaultCounters::default(),
            recovery: Vec::new(),
        }
    }

    /// Probability that a `bits`-long transfer fails CRC.
    fn corruption_p(&self, bits: u64) -> f64 {
        if self.ber <= 0.0 {
            return 0.0;
        }
        1.0 - (1.0 - self.ber).powf(bits as f64)
    }

    /// Repairs `ch`'s ring if its recalibration window has elapsed, then
    /// rolls for a new stick/drift fault. Returns without drawing when the
    /// plan's MRR rate is zero.
    fn roll_mrr_fault(&mut self, now: Ps, ch: usize) {
        if self.demux_rings[ch].health() != RingHealth::Healthy && now >= self.ring_repair_at[ch] {
            self.demux_rings[ch].repair();
        }
        if self.plan.mrr_fault_ppm == 0 || self.demux_rings[ch].health() != RingHealth::Healthy {
            return;
        }
        if self.rng.next_below(1_000_000) >= self.plan.mrr_fault_ppm as u64 {
            return;
        }
        self.counters.mrr_faults += 1;
        let stick = self.rng.next_below(2) == 0;
        if stick {
            self.demux_rings[ch].inject_stick();
        } else {
            self.demux_rings[ch].inject_drift();
        }
        // Detection: the corrective retune. A stuck ring ignores it and
        // its VC stays untrusted for the full repair window; a drifted
        // ring heals after one fine-granule retune, so only the current
        // transfer sees an untrusted VC.
        let done = self.demux_rings[ch].retune(now, CouplingState::Coupled);
        let until = if self.demux_rings[ch].health() == RingHealth::Stuck {
            self.ring_repair_at[ch] = now + self.plan.mrr_repair;
            now + self.plan.mrr_repair
        } else {
            done.max(now + FINE_TUNE)
        };
        self.optical.mark_vc_faulty(ch, until);
    }

    /// Runs the CRC detect → retransmit → escalate loop for a transfer
    /// that completed at `end` on VC `ch`. Returns the final completion.
    fn crc_and_retransmit(
        &mut self,
        ch: usize,
        bits: u64,
        class: TrafficClass,
        device: Option<usize>,
        end: Ps,
    ) -> Ps {
        let p = self.corruption_p(bits);
        if p <= 0.0 {
            return end;
        }
        let first_end = end;
        let mut end = end;
        let mut attempt = 0u32;
        let mut retx = 0u32;
        while self.rng.chance(p) {
            attempt += 1;
            if attempt == 1 {
                self.counters.corrupted_transfers += 1;
            }
            if attempt > self.plan.max_retransmissions {
                self.counters.retx_exhausted += 1;
                if device.is_some() {
                    // Data-route payloads escalate to the electrical path.
                    let (_, e) = self.fallback.transfer(end, ch, bits, class);
                    self.counters.electrical_fallbacks += 1;
                    self.recovery.push(RecoveryEvent {
                        stage: Stage::FallbackElectrical,
                        vc: ch,
                        start: end,
                        end: e,
                    });
                    end = e;
                }
                // Memory-route copies have no electrical twin; the final
                // (declared-good) replica stands and the wear-leveling
                // scrub owns any residual error.
                break;
            }
            retx += 1;
            self.counters.retransmissions += 1;
            let retry_at = end + self.plan.retx_backoff.delay(attempt);
            let (_, e) = match device {
                Some(dev) => self.optical.transfer(retry_at, ch, bits, class, dev),
                None => self.optical.memory_route_transfer(retry_at, ch, bits),
            };
            end = e;
        }
        if retx > 0 {
            self.recovery.push(RecoveryEvent {
                stage: Stage::Retransmit,
                vc: ch,
                start: first_end,
                end,
            });
        }
        end
    }
}

impl Fabric for ResilientFabric {
    fn xfer(
        &mut self,
        now: Ps,
        ch: usize,
        bits: u64,
        class: TrafficClass,
        device: usize,
    ) -> (Ps, Ps) {
        self.roll_mrr_fault(now, ch);
        if self.optical.vc_faulty(ch, now) {
            match self.optical.healthiest_vc(now) {
                Some(alt) => {
                    // Re-arbitrate onto a healthy wavelength; the borrowed
                    // detector pays a fine-granule retune first.
                    self.counters.rearbitrations += 1;
                    let (start, end) =
                        self.optical
                            .transfer(now + FINE_TUNE, alt, bits, class, device);
                    self.recovery.push(RecoveryEvent {
                        stage: Stage::Rearbitrate,
                        vc: ch,
                        start: now,
                        end,
                    });
                    let end = self.crc_and_retransmit(alt, bits, class, Some(device), end);
                    return (start, end);
                }
                None => {
                    // Whole optical plane untrusted: degrade to electrical.
                    self.counters.electrical_fallbacks += 1;
                    let (start, end) = self.fallback.transfer(now, ch, bits, class);
                    self.recovery.push(RecoveryEvent {
                        stage: Stage::FallbackElectrical,
                        vc: ch,
                        start: now,
                        end,
                    });
                    return (start, end);
                }
            }
        }
        let (start, end) = self.optical.transfer(now, ch, bits, class, device);
        let end = self.crc_and_retransmit(ch, bits, class, Some(device), end);
        (start, end)
    }

    fn memory_route(&mut self, now: Ps, ch: usize, bits: u64) -> (Ps, Ps) {
        let (start, end) = self.optical.memory_route_transfer(now, ch, bits);
        let end = self.crc_and_retransmit(ch, bits, TrafficClass::Migration, None, end);
        (start, end)
    }

    fn migration_fraction(&self) -> f64 {
        // Busy-time-weighted blend of the two substrates. Exact
        // pass-through when one side is idle, so a quiescent plan stays
        // bit-identical to the unwrapped fabric.
        let ob = (self.optical.data_route_busy() + self.optical.memory_route_busy()).as_ps() as f64;
        let eb = self.fallback.busy_time().as_ps() as f64;
        if eb == 0.0 {
            return self.optical.migration_fraction();
        }
        if ob == 0.0 {
            return self.fallback.migration_fraction();
        }
        (self.optical.migration_fraction() * ob + self.fallback.migration_fraction() * eb)
            / (ob + eb)
    }

    fn utilization(&self, horizon: Ps) -> f64 {
        self.optical
            .utilization(horizon)
            .max(self.fallback.utilization(horizon))
    }

    fn bits(&self) -> (u64, u64) {
        (
            self.optical.bits_by_class(TrafficClass::Demand)
                + self.fallback.bits_by_class(TrafficClass::Demand),
            self.optical.bits_by_class(TrafficClass::Migration)
                + self.fallback.bits_by_class(TrafficClass::Migration),
        )
    }

    fn set_interval_logging(&mut self, enabled: bool) {
        self.optical.set_interval_logging(enabled);
        self.fallback.set_interval_logging(enabled);
    }

    fn drain_intervals(&mut self) -> Vec<BusyInterval> {
        let mut v = self.optical.drain_intervals();
        v.extend(self.fallback.drain_intervals());
        v
    }

    fn drain_recovery_into(&mut self, out: &mut Vec<RecoveryEvent>) {
        out.append(&mut self.recovery);
    }

    fn fault_counters(&self) -> FaultCounters {
        self.counters
    }

    fn split_channels(&mut self, counts: &[usize]) -> Option<Vec<FabricShard<'_>>> {
        // A quiescent plan (zero BER, zero MRR rate) is a draw-free exact
        // pass-through to the optical channel: `roll_mrr_fault` returns
        // before touching the RNG, no VC is ever marked faulty, and CRC
        // never rolls. Splitting the inner optical channel is therefore
        // bit-identical. An armed plan draws from one global RNG stream
        // per transfer, which has no deterministic per-shard split —
        // refuse, and the engine falls back to serial execution.
        if self.ber > 0.0 || self.plan.mrr_fault_ppm > 0 {
            return None;
        }
        Some(
            self.optical
                .split_vcs(counts)?
                .into_iter()
                .map(FabricShard::Optical)
                .collect(),
        )
    }

    fn merge_shard_bits(&mut self, bits: [u64; 2]) {
        self.optical.merge_shard_bits(bits);
    }
}

/// Builds the fabric a platform runs on: electrical for `Origin`/`Hetero`,
/// optical (with the platform's dual-route capability) for the rest.
///
/// WOM coding exists to share a light between the memory controller and
/// the swap function (Section V-B) — planar mode only. The two-level
/// mode's auto-read/write + reverse-write use half-coupled MRR
/// *receivers* (Figure 15b) and carry no coding penalty.
pub(crate) fn build_fabric(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    caps: &MigrationCaps,
) -> Box<dyn Fabric + Send> {
    let dual_route = if caps.swap || caps.reverse_write || caps.auto_rw {
        if caps.wom_coding && mode == OperationalMode::Planar {
            DualRouteMode::Wom
        } else {
            DualRouteMode::HalfCoupled
        }
    } else {
        DualRouteMode::Serialized
    };

    match platform {
        Platform::Origin | Platform::Hetero => Box::new(ElectricalChannel::new(cfg.electrical)),
        _ => {
            let optical = OpticalChannel::new(OpticalChannelConfig {
                dual_route,
                ..cfg.optical
            });
            match &cfg.faults {
                Some(plan) => {
                    // At unit derate the analytical BER (~7.2e-16) is
                    // unobservable at simulated transfer counts; treat it
                    // as zero so quiescent plans stay draw-free.
                    let ber = if plan.q_derate > 1.0 {
                        reliability::degraded_ber(platform, plan.q_derate)
                            .expect("optical platform has light paths")
                    } else {
                        0.0
                    };
                    Box::new(ResilientFabric::new(
                        optical,
                        ElectricalChannel::new(cfg.electrical),
                        plan.clone(),
                        ber,
                    ))
                }
                None => Box::new(optical),
            }
        }
    }
}
