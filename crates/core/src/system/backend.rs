//! The backend layer: platform-specific capacity-management policy.
//!
//! A [`MemoryBackend`] decides *where* a line request is served and what
//! migration machinery runs as a side effect; the mechanics of getting
//! bits to devices stay in the [`memory`](super::memory) layer, reached
//! through the [`MemEnv`] handed to every call. One backend exists per
//! system (policy state that is per-controller, like the planar mapping,
//! is a `Vec` indexed by `mc`):
//!
//! - `OracleBackend` — all-DRAM upper bound, no policy at all.
//! - `OriginBackend` — discrete GPU memory with host/SSD staging (in
//!   the private `origin` module).
//! - `PlanarBackend` — hot-page promotion by DRAM/XPoint page swaps.
//! - `TwoLevelBackend` — DRAM as a direct-mapped cache over XPoint.
//!
//! Per-request policy state is strictly per-controller on the Planar and
//! TwoLevel backends, so those backends can lend disjoint controller
//! ranges to the epoch scheduler as [`BackendShard`]s; only *report-time*
//! aggregation (planner wear) crosses controllers, and it stays on the
//! whole backend, preserving its exact floating-point reduction order.

use ohm_hetero::{
    MigrationCaps, PlanarConfig, PlanarLocation, PlanarMapping, Platform, SwapRequest,
    TwoLevelCache, TwoLevelConfig, TwoLevelOutcome,
};
use ohm_mem::protocol::SwapCmd;
use ohm_mem::MemKind;
use ohm_optic::{OperationalMode, TrafficClass};
use ohm_sim::{Addr, Ps};
use ohm_workloads::WorkloadSpec;

use crate::config::SystemConfig;
use crate::metrics::{HostReport, PlannerWear};

use super::memory::{MemEnv, CMD_BITS, DEV_DRAM, DEV_XPOINT};
use super::origin::OriginBackend;
use super::stats::Stage;

/// Platform policy for servicing one line request at one controller.
///
/// `ga` is the global line address, `la` the controller-local one;
/// implementations return when the request's data is back at the MC.
pub trait MemoryBackend {
    /// Services one request, booking all machinery it sets in motion
    /// (migrations, host staging, evictions) through `env`.
    fn service(
        &mut self,
        env: &mut MemEnv<'_>,
        now: Ps,
        mc: usize,
        ga: Addr,
        la: Addr,
        kind: MemKind,
    ) -> Ps;

    /// The host-staging breakdown, for platforms that stage over a host.
    fn host_report(&self) -> Option<HostReport> {
        None
    }

    /// Tells the backend that the XPoint line at `xpoint_addr` on
    /// controller `mc` is permanently lost (wear retirement past the
    /// spare budget, or an injected-fault poison under an armed
    /// lifecycle): the page containing it must vanish from future
    /// swap/migration targets. Default: ignore (platforms without an
    /// XPoint tier, or without capacity planning).
    fn retire_xpoint_line(&mut self, _mc: usize, _xpoint_addr: Addr) {}

    /// Planner-side capacity-degradation view, for backends that track
    /// one (see [`PlannerWear`]).
    fn planner_wear(&self) -> Option<PlannerWear> {
        None
    }

    /// Heap bytes the backend's planner/metadata state occupies right
    /// now. For sparse backends this scales with touched pages, not with
    /// the simulated footprint — bounded-memory tests assert on it.
    /// Default: zero (stateless backends).
    fn state_bytes(&self) -> usize {
        0
    }

    /// Lends the backend's per-controller policy state out as disjoint
    /// contiguous shards, one per entry of `counts`, for the epoch
    /// scheduler's workers. `None` (the default) means the backend holds
    /// cross-controller request-path state and cannot shard — the run
    /// falls back to the serial loop.
    fn split_mc(&mut self, _counts: &[usize]) -> Option<Vec<BackendShard<'_>>> {
        None
    }
}

/// A contiguous slice of one backend's per-controller policy state, lent
/// to one epoch-scheduler worker. Controller indices stay *global* and
/// are rebased internally; request-path behaviour is identical to the
/// whole backend's, byte for byte. Report-time queries (planner wear,
/// host report, state bytes) stay on the whole backend.
pub enum BackendShard<'a> {
    /// A backend with no per-request policy state (Oracle).
    Stateless,
    /// A slice of the planar backend's per-controller page mappings.
    Planar {
        /// Mappings for controllers `base..base + maps.len()`.
        maps: &'a mut [PlanarMapping],
        /// Migration capabilities of the platform (shared, `Copy`).
        caps: MigrationCaps,
        /// Global controller index of `maps[0]`.
        base: usize,
    },
    /// A slice of the two-level backend's per-controller tag state.
    TwoLevel {
        /// Caches for controllers `base..base + caches.len()`.
        caches: &'a mut [TwoLevelCache],
        /// Migration capabilities of the platform (shared, `Copy`).
        caps: MigrationCaps,
        /// Global controller index of `caches[0]`.
        base: usize,
    },
}

impl MemoryBackend for BackendShard<'_> {
    fn service(
        &mut self,
        env: &mut MemEnv<'_>,
        now: Ps,
        mc: usize,
        _ga: Addr,
        la: Addr,
        kind: MemKind,
    ) -> Ps {
        match self {
            BackendShard::Stateless => oracle_service(env, now, mc, la, kind),
            BackendShard::Planar { maps, caps, base } => {
                planar_service(&mut maps[mc - *base], *caps, env, now, mc, la, kind)
            }
            BackendShard::TwoLevel { caches, caps, base } => {
                twolevel_service(&mut caches[mc - *base], *caps, env, now, mc, la, kind)
            }
        }
    }

    fn retire_xpoint_line(&mut self, mc: usize, xpoint_addr: Addr) {
        match self {
            BackendShard::Stateless => {}
            BackendShard::Planar { maps, base, .. } => {
                maps[mc - *base].retire_xpoint_page(xpoint_addr);
            }
            BackendShard::TwoLevel { caches, base, .. } => {
                caches[mc - *base].retire_line(xpoint_addr);
            }
        }
    }
}

/// Splits `items` into contiguous chunks sized by `counts`, tagging each
/// with its starting index.
fn split_counts<'a, T>(items: &'a mut [T], counts: &[usize]) -> Vec<(&'a mut [T], usize)> {
    assert_eq!(
        counts.iter().sum::<usize>(),
        items.len(),
        "shard counts must cover every controller"
    );
    let mut out = Vec::with_capacity(counts.len());
    let mut rest = items;
    let mut base = 0;
    for &n in counts {
        let (head, tail) = rest.split_at_mut(n);
        out.push((head, base));
        rest = tail;
        base += n;
    }
    out
}

/// Builds the policy backend for `platform`, sized like the devices in
/// [`MemorySubsystem::build`](super::memory::MemorySubsystem::build).
pub(crate) fn build_backend(
    cfg: &SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: &WorkloadSpec,
    caps: MigrationCaps,
    dram_local: u64,
    xp_local: u64,
) -> Box<dyn MemoryBackend + Send> {
    let page = cfg.memory.page_bytes;
    let footprint_pages = (spec.footprint_bytes / page).max(1);
    let pages_per_mc = footprint_pages.div_ceil(cfg.memory.controllers as u64);

    match platform {
        Platform::Oracle => Box::new(OracleBackend),
        Platform::Origin => Box::new(OriginBackend::build(cfg, spec)),
        _ => match mode {
            OperationalMode::Planar => Box::new(PlanarBackend {
                maps: (0..cfg.memory.controllers)
                    .map(|_| {
                        PlanarMapping::new(PlanarConfig {
                            page_bytes: page,
                            ratio: cfg.memory.planar_ratio,
                            hot_threshold: cfg.memory.hot_threshold,
                            capacity_bytes: pages_per_mc
                                .div_ceil(cfg.memory.planar_ratio as u64 + 1)
                                * (cfg.memory.planar_ratio as u64 + 1)
                                * page,
                        })
                    })
                    .collect(),
                caps,
            }),
            OperationalMode::TwoLevel => Box::new(TwoLevelBackend {
                caches: (0..cfg.memory.controllers)
                    .map(|_| {
                        TwoLevelCache::new(TwoLevelConfig {
                            dram_bytes: dram_local.max(cfg.line_bytes),
                            xpoint_bytes: xp_local.max(page),
                            line_bytes: cfg.line_bytes,
                        })
                    })
                    .collect(),
                caps,
            }),
        },
    }
}

/// Oracle: every access is a local DRAM hit — the all-DRAM upper bound.
struct OracleBackend;

/// Services one oracle request: a local DRAM hit, no policy at all.
fn oracle_service(env: &mut MemEnv<'_>, now: Ps, mc: usize, la: Addr, kind: MemKind) -> Ps {
    env.stats.record_service(mc, true);
    env.dram_line_rt(now, mc, la, kind)
}

impl MemoryBackend for OracleBackend {
    fn service(
        &mut self,
        env: &mut MemEnv<'_>,
        now: Ps,
        mc: usize,
        _ga: Addr,
        la: Addr,
        kind: MemKind,
    ) -> Ps {
        oracle_service(env, now, mc, la, kind)
    }

    fn split_mc(&mut self, counts: &[usize]) -> Option<Vec<BackendShard<'_>>> {
        Some(counts.iter().map(|_| BackendShard::Stateless).collect())
    }
}

/// Planar mode: DRAM and XPoint side by side in one flat space, with
/// hot XPoint pages promoted by swapping against cold DRAM pages.
struct PlanarBackend {
    /// Per-controller page mapping and hotness tracking.
    maps: Vec<PlanarMapping>,
    caps: MigrationCaps,
}

/// Services one planar request at controller `mc` against that
/// controller's mapping (shared by the whole backend and its shards).
fn planar_service(
    map: &mut PlanarMapping,
    caps: MigrationCaps,
    env: &mut MemEnv<'_>,
    now: Ps,
    mc: usize,
    la: Addr,
    kind: MemKind,
) -> Ps {
    if let Some(req) = map.record_access(la) {
        planar_swap(map, caps, env, now, mc, req);
    }
    match map.lookup(la) {
        PlanarLocation::Dram(pa) => {
            // While the page's swap is still in flight the data lives
            // at its old XPoint location; serve from the stale copy
            // rather than stalling (the remap commits at swap end).
            if let Some(r) = env.mc(mc).conflicts.redirect_dram(pa) {
                let paired = r.paired;
                env.stats.record_service(mc, false);
                let done = env.xpoint_line_rt(now, mc, paired, kind);
                if kind.is_read() {
                    env.stats.record_xpoint_read_latency(done - now);
                }
                return done;
            }
            env.stats.record_service(mc, true);
            let done = env.dram_line_rt(now, mc, pa, kind);
            if kind.is_read() {
                env.stats.record_dram_read_latency(done - now);
            }
            done
        }
        PlanarLocation::XPoint(pa) => {
            if let Some(r) = env.mc(mc).conflicts.redirect_xpoint(pa) {
                let paired = r.paired;
                env.stats.record_service(mc, true);
                let done = env.dram_line_rt(now, mc, paired, kind);
                if kind.is_read() {
                    env.stats.record_dram_read_latency(done - now);
                }
                return done;
            }
            env.stats.record_service(mc, false);
            let done = env.xpoint_line_rt(now, mc, pa, kind);
            if kind.is_read() {
                env.stats.record_xpoint_read_latency(done - now);
            }
            done
        }
    }
}

/// Books one page swap's machinery and commits the remap.
fn planar_swap(
    map: &mut PlanarMapping,
    caps: MigrationCaps,
    env: &mut MemEnv<'_>,
    now: Ps,
    mc: usize,
    req: SwapRequest,
) {
    let page_bits = req.page_bytes * 8;
    let lines = req.page_bytes / env.cfg.line_bytes;
    env.stats.record_migration(mc);

    if caps.swap {
        // SWAP-CMD metadata on the data route; the copy itself rides
        // the memory route under the XPoint controller's DDR sequence
        // generator (Figures 10a and 11).
        let (_, cmd_done) = env.fabric.xfer(
            now,
            mc,
            SwapCmd::METADATA_BITS,
            TrafficClass::Migration,
            DEV_XPOINT,
        );
        let preset = env.mc(mc).dram.preset_row(cmd_done, req.dram_addr);
        let promote_read = {
            let xp = env.mc(mc).xpoint.as_mut().expect("planar");
            xp.read_page(cmd_done, req.xpoint_addr, lines).ready_at
        };
        let (_, to_dram) = env
            .fabric
            .memory_route(promote_read.max(preset), mc, page_bits);
        // The XPoint controller's DDR sequence generator drives the
        // DRAM transactions directly (Figure 11, steps 3-4).
        let dram_written = {
            let m = env.mc(mc);
            m.ddr_seq.execute_page(
                &mut m.dram,
                to_dram,
                req.dram_addr,
                req.page_bytes,
                MemKind::Write,
            )
        };
        let dram_read = {
            let m = env.mc(mc);
            m.ddr_seq.execute_page(
                &mut m.dram,
                preset,
                req.dram_addr,
                req.page_bytes,
                MemKind::Read,
            )
        };
        let (_, to_xp) = env.fabric.memory_route(dram_read, mc, page_bits);
        let xp_written = {
            let xp = env.mc(mc).xpoint.as_mut().expect("planar");
            xp.write_page(to_xp, req.xpoint_addr, lines).ready_at
        };
        env.stats.record_swap_window(dram_written - now);
        env.stage(Stage::Migration, mc, now, dram_written);
        env.register_swap_pages(mc, req.dram_addr, req.xpoint_addr, dram_written, xp_written);
    } else if caps.auto_rw {
        // Reads before writes: the XPoint controller prioritises
        // latency-critical reads over buffered write drains, so the
        // promote leg's page read is booked first.
        //
        // Promote leg runs through the controller: XP -> MC -> DRAM.
        let promote_read = {
            let xp = env.mc(mc).xpoint.as_mut().expect("planar");
            xp.read_page(now, req.xpoint_addr, lines).ready_at
        };
        let (_, up) = env.fabric.xfer(
            promote_read,
            mc,
            page_bits,
            TrafficClass::Migration,
            DEV_XPOINT,
        );
        let (_, down) = env
            .fabric
            .xfer(up, mc, page_bits, TrafficClass::Migration, DEV_DRAM);
        let dram_written = env.dram_page_op(down, mc, req.dram_addr, MemKind::Write);
        // Demote leg: the MC reads the DRAM page over the data route;
        // the XPoint controller snarfs it - no second transfer.
        let dram_read = env.dram_page_op(now, mc, req.dram_addr, MemKind::Read);
        let (_, demote_xfer) =
            env.fabric
                .xfer(dram_read, mc, page_bits, TrafficClass::Migration, DEV_DRAM);
        {
            let line_bytes = env.cfg.line_bytes;
            let xp = env.mc(mc).xpoint.as_mut().expect("planar");
            for i in 0..lines {
                xp.snarf_write(demote_xfer, req.xpoint_addr.offset(i * line_bytes));
            }
        }
        // The MC is not held for the copy: it keeps issuing demand
        // requests to devices that are not busy (Figure 7a, step 1);
        // the migration's cost is the channel and device occupancy.
        env.stats.record_swap_window(dram_written - now);
        env.stage(Stage::Migration, mc, now, dram_written);
        env.register_swap_pages(
            mc,
            req.dram_addr,
            req.xpoint_addr,
            dram_written,
            demote_xfer,
        );
    } else {
        // Via-controller: both legs are two full transfers each, and
        // the MC is occupied for the duration (Hetero / Ohm-base).
        let promote_read = {
            let xp = env.mc(mc).xpoint.as_mut().expect("planar");
            xp.read_page(now, req.xpoint_addr, lines).ready_at
        };
        let (_, up) = env.fabric.xfer(
            promote_read,
            mc,
            page_bits,
            TrafficClass::Migration,
            DEV_XPOINT,
        );
        let (_, down) = env
            .fabric
            .xfer(up, mc, page_bits, TrafficClass::Migration, DEV_DRAM);
        let dram_written = env.dram_page_op(down, mc, req.dram_addr, MemKind::Write);
        let dram_read = env.dram_page_op(now, mc, req.dram_addr, MemKind::Read);
        let (_, up2) = env
            .fabric
            .xfer(dram_read, mc, page_bits, TrafficClass::Migration, DEV_DRAM);
        let (_, down2) = env
            .fabric
            .xfer(up2, mc, page_bits, TrafficClass::Migration, DEV_XPOINT);
        let xp_written = {
            let xp = env.mc(mc).xpoint.as_mut().expect("planar");
            xp.write_page(down2, req.xpoint_addr, lines).ready_at
        };
        env.stats.record_swap_window(dram_written - now);
        env.stage(Stage::Migration, mc, now, dram_written);
        env.register_swap_pages(mc, req.dram_addr, req.xpoint_addr, dram_written, xp_written);
    }
    map.commit_swap(&req);
}

impl MemoryBackend for PlanarBackend {
    fn service(
        &mut self,
        env: &mut MemEnv<'_>,
        now: Ps,
        mc: usize,
        _ga: Addr,
        la: Addr,
        kind: MemKind,
    ) -> Ps {
        planar_service(&mut self.maps[mc], self.caps, env, now, mc, la, kind)
    }

    fn retire_xpoint_line(&mut self, mc: usize, xpoint_addr: Addr) {
        self.maps[mc].retire_xpoint_page(xpoint_addr);
    }

    fn planner_wear(&self) -> Option<PlannerWear> {
        let n = self.maps.len().max(1) as f64;
        Some(PlannerWear {
            pinned: self.maps.iter().map(|m| m.pinned_swaps()).sum(),
            usable_fraction: self
                .maps
                .iter()
                .map(|m| m.usable_xpoint_fraction())
                .sum::<f64>()
                / n,
            effective_ratio: self.maps.iter().map(|m| m.effective_ratio()).sum::<f64>() / n,
        })
    }

    fn state_bytes(&self) -> usize {
        self.maps.iter().map(|m| m.state_bytes()).sum()
    }

    fn split_mc(&mut self, counts: &[usize]) -> Option<Vec<BackendShard<'_>>> {
        let caps = self.caps;
        Some(
            split_counts(&mut self.maps, counts)
                .into_iter()
                .map(|(maps, base)| BackendShard::Planar { maps, caps, base })
                .collect(),
        )
    }
}

/// Two-level mode: the DRAM module is a direct-mapped, line-grained
/// cache in front of the XPoint capacity.
struct TwoLevelBackend {
    /// Per-controller tag/dirty state.
    caches: Vec<TwoLevelCache>,
    caps: MigrationCaps,
}

/// Services one two-level request at controller `mc` against that
/// controller's tag state (shared by the whole backend and its shards).
fn twolevel_service(
    cache: &mut TwoLevelCache,
    caps: MigrationCaps,
    env: &mut MemEnv<'_>,
    now: Ps,
    mc: usize,
    la: Addr,
    kind: MemKind,
) -> Ps {
    let line_bits = env.cfg.line_bytes * 8;
    let is_write = matches!(kind, MemKind::Write);
    let span = cache.config().xpoint_bytes;
    let la = Addr::new(la.get() % span);
    match cache.access(la, is_write) {
        TwoLevelOutcome::Hit { dram_addr } => {
            env.stats.record_service(mc, true);
            let stall = env
                .mc(mc)
                .conflicts
                .stall_until(dram_addr)
                .unwrap_or(Ps::ZERO);
            if stall > now {
                env.stats.record_conflict_stall(stall - now);
            }
            env.dram_line_rt(now.max(stall), mc, dram_addr, kind)
        }
        TwoLevelOutcome::Miss {
            dram_addr,
            xpoint_addr,
            evict_to,
        } => {
            env.stats.record_service(mc, false);
            env.stats.record_migration(mc);
            // 1. Tag-check read: the MC always reads the DRAM line (tag
            //    travels with data in the ECC bits).
            let tag_read = env.dram_line_rt(now, mc, dram_addr, MemKind::Read);
            // 2. Fetch the missing line from XPoint (demand-critical:
            //    the read is booked before the victim's buffered write
            //    so it is not queued behind a 763 ns drain). With
            //    reverse write, the XPoint->DRAM fill transfer itself
            //    delivers the data: the MC's DDR monitor snarfs the
            //    memory-route burst (Figure 12), so nothing but the
            //    command uses the data route.
            let data_at_mc = if caps.reverse_write {
                let (_, cmd_done) =
                    env.fabric
                        .xfer(tag_read, mc, CMD_BITS, TrafficClass::Demand, DEV_XPOINT);
                let ready = {
                    let xp = env.mc(mc).xpoint.as_mut().expect("two-level");
                    xp.read(cmd_done, xpoint_addr).ready_at
                };
                env.mc(mc).ddr_monitor.arm(cmd_done, xpoint_addr);
                let (fill_start, fill_done) = env.fabric.memory_route(ready, mc, line_bits);
                let m = env.mc(mc);
                m.ddr_monitor.begin_snarf(fill_start);
                m.ddr_monitor.complete(fill_done);
                m.dram.access(fill_done, dram_addr, MemKind::Write);
                fill_done
            } else {
                env.xpoint_line_rt(tag_read, mc, xpoint_addr, MemKind::Read)
            };
            // 3. Dirty victim eviction.
            if let Some(victim) = evict_to {
                if caps.auto_rw {
                    // The XPoint controller snarfed the tag-read burst
                    // and takes over the eviction (Figure 9b).
                    let xp = env.mc(mc).xpoint.as_mut().expect("two-level");
                    xp.snarf_write(tag_read, victim);
                } else {
                    let (_, evict_xfer) = env.fabric.xfer(
                        tag_read,
                        mc,
                        CMD_BITS + line_bits,
                        TrafficClass::Migration,
                        DEV_XPOINT,
                    );
                    let xp = env.mc(mc).xpoint.as_mut().expect("two-level");
                    xp.write(evict_xfer, victim);
                }
            }
            // 4. Fill the DRAM cacheline (reverse write already filled
            //    it from the snarfed burst above).
            if !caps.reverse_write {
                let (_, fill_xfer) = env.fabric.xfer(
                    data_at_mc,
                    mc,
                    CMD_BITS + line_bits,
                    TrafficClass::Migration,
                    DEV_DRAM,
                );
                env.mc(mc).dram.access(fill_xfer, dram_addr, MemKind::Write);
            }
            env.stage(Stage::Migration, mc, now, data_at_mc);
            data_at_mc
        }
        TwoLevelOutcome::Bypass { xpoint_addr } => {
            // Retired-backed line (or a slot pinned by one): served
            // straight from the best-effort XPoint path, never filled
            // into DRAM — a fill would strand the only durable copy
            // on dead media at eviction time.
            env.stats.record_service(mc, false);
            env.xpoint_line_rt(now, mc, xpoint_addr, kind)
        }
    }
}

impl MemoryBackend for TwoLevelBackend {
    fn service(
        &mut self,
        env: &mut MemEnv<'_>,
        now: Ps,
        mc: usize,
        _ga: Addr,
        la: Addr,
        kind: MemKind,
    ) -> Ps {
        twolevel_service(&mut self.caches[mc], self.caps, env, now, mc, la, kind)
    }

    fn retire_xpoint_line(&mut self, mc: usize, xpoint_addr: Addr) {
        self.caches[mc].retire_line(xpoint_addr);
    }

    fn planner_wear(&self) -> Option<PlannerWear> {
        let n = self.caches.len().max(1) as f64;
        let usable = self
            .caches
            .iter()
            .map(|c| c.usable_xpoint_fraction())
            .sum::<f64>()
            / n;
        // The two-level "ratio" is XPoint capacity over DRAM cache
        // capacity; retirement shrinks the usable numerator.
        let cfg = self.caches.first().map(|c| *c.config());
        let ratio = cfg.map_or(0.0, |c| c.xpoint_bytes as f64 / c.dram_bytes.max(1) as f64);
        Some(PlannerWear {
            pinned: self.caches.iter().map(|c| c.bypasses()).sum(),
            usable_fraction: usable,
            effective_ratio: ratio * usable,
        })
    }

    fn state_bytes(&self) -> usize {
        self.caches.iter().map(|c| c.state_bytes()).sum()
    }

    fn split_mc(&mut self, counts: &[usize]) -> Option<Vec<BackendShard<'_>>> {
        let caps = self.caps;
        Some(
            split_counts(&mut self.caches, counts)
                .into_iter()
                .map(|(caches, base)| BackendShard::TwoLevel { caches, caps, base })
                .collect(),
        )
    }
}
