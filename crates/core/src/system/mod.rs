//! The event-driven full-system model, decomposed into layers.
//!
//! [`System`] assembles one of the seven evaluated platforms around a
//! Table II workload and runs it to completion. Warps are the units of
//! progress: each warp alternates compute segments (booked on its SM's
//! issue pipeline) and memory accesses (resolved through L1 → L2 → memory
//! controller → channel → device, with platform-specific migration
//! machinery). Timing is resolved synchronously through calendar
//! resources; the event queue only carries warp resumptions and migration
//! completions, which keeps runs fast while preserving FCFS contention at
//! every shared resource.
//!
//! # Layers
//!
//! What used to be a single monolith is now four layers with explicit
//! boundaries, each in its own module:
//!
//! - `warp` — the `WarpEngine`: event loop, warp scheduling, SM issue.
//!   Knows nothing about memory.
//! - this module — the cache glue (`System::memory_access`: L1, the
//!   crossbar, L2, writebacks) connecting warps to memory.
//! - [`memory`] — the `MemorySubsystem`: controllers, MSHR files,
//!   devices, and the shared round-trip plumbing, behind one [`Fabric`].
//! - [`backend`] — a [`MemoryBackend`] per platform: *where* a request
//!   is served and what migration machinery runs as a side effect.
//!
//! Every layer reports through one [`StatsSink`], so counters are
//! collected uniformly instead of scattered over ad-hoc fields.

pub mod backend;
mod epoch;
pub mod fabric;
pub mod memory;
mod origin;
mod report;
pub mod stats;
mod warp;

pub use backend::MemoryBackend;
pub use fabric::Fabric;
pub use stats::{RunStats, Stage, StatsSink};

use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_sim::{Addr, Ps, TimeSeries};
use ohm_sm::{AccessKind, Cache, InstructionStream, Interconnect, WarpId};
use ohm_workloads::{KernelWorkload, PhasedWorkload, WorkloadSpec};

use crate::config::SystemConfig;
use crate::metrics::SimReport;

use memory::{MemorySubsystem, CMD_BITS};
use warp::{Event, SliceOutcome, WarpEngine};

/// The assembled full system.
///
/// # Example
///
/// ```
/// use ohm_core::config::SystemConfig;
/// use ohm_core::system::System;
/// use ohm_hetero::Platform;
/// use ohm_optic::OperationalMode;
/// use ohm_workloads::workload_by_name;
///
/// let cfg = SystemConfig::quick_test();
/// let spec = workload_by_name("lud").unwrap();
/// let mut sys = System::new(&cfg, Platform::OhmBase, OperationalMode::TwoLevel, &spec);
/// let report = sys.run();
/// assert!(report.instructions > 0);
/// ```
pub struct System {
    cfg: SystemConfig,
    platform: Platform,
    mode: OperationalMode,
    spec: WorkloadSpec,
    /// Event loop, warp scheduling, SM issue.
    engine: WarpEngine,
    /// Cache glue between the warps and the memory subsystem.
    l1s: Vec<Cache>,
    l2: Cache,
    xbar: Interconnect,
    /// Controllers, devices, fabric, and the platform's policy backend.
    mem: MemorySubsystem,
    /// Uniform per-layer counters.
    stats: RunStats,
    /// Reusable buffer for migration releases drained per warp step.
    pending_scratch: Vec<memory::PendingRelease>,
    /// Worker threads for this cell's event loop (1 = serial). See
    /// [`System::set_cell_threads`].
    cell_threads: usize,
    /// Lookahead-window multiplier for relaxed-mode sharding; `None`
    /// (strict, the default) keeps results bit-identical to serial.
    relax_window: Option<f64>,
    /// Whether the last [`System::run`] actually engaged the sharded
    /// scheduler (it falls back to serial when the configuration cannot
    /// be partitioned).
    used_parallel: bool,
}

/// The instruction stream a configuration's own run uses: the spec's
/// synthetic kernel, or — when the configuration carries a
/// [`ohm_workloads::PhasePlan`] — a phased workload over the spec's
/// footprint. [`System::new`] and the recording runner both build their
/// stream here so a recorded run captures exactly what an unrecorded
/// run executes.
pub(crate) fn base_stream(cfg: &SystemConfig, spec: &WorkloadSpec) -> Box<dyn InstructionStream> {
    match &cfg.phases {
        Some(plan) => Box::new(PhasedWorkload::new(
            plan.clone(),
            cfg.gpu.sms,
            cfg.gpu.sm.warps,
            cfg.insts_per_warp,
            spec.footprint_bytes,
            cfg.seed,
        )),
        None => Box::new(KernelWorkload::new(
            *spec,
            cfg.gpu.sms,
            cfg.gpu.sm.warps,
            cfg.insts_per_warp,
            cfg.seed,
        )),
    }
}

/// The process-wide default for [`System::set_cell_threads`], read once
/// from `OHM_CELL_THREADS` (a number, or `max` for all cores).
pub(crate) fn default_cell_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("OHM_CELL_THREADS") {
        Ok(v) if v.trim().eq_ignore_ascii_case("max") => crate::par::default_threads(),
        Ok(v) => v.trim().parse().unwrap_or(1).max(1),
        Err(_) => 1,
    })
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("platform", &self.platform)
            .field("mode", &self.mode)
            .field("workload", &self.spec.name)
            .field("sms", &self.engine.sms.len())
            .field("now", &self.engine.queue.now())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a platform around a workload.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero controllers, footprint
    /// smaller than one page per controller, mismatched line sizes).
    pub fn new(
        cfg: &SystemConfig,
        platform: Platform,
        mode: OperationalMode,
        spec: &WorkloadSpec,
    ) -> Self {
        Self::with_stream(cfg, platform, mode, spec, base_stream(cfg, spec))
    }

    /// Builds a platform around an arbitrary instruction stream (e.g. a
    /// replayed [`ohm_workloads::TraceReplay`]); `spec` still provides
    /// the footprint (for capacity sizing) and the report's name.
    ///
    /// Streams with a non-empty
    /// [`phase_names`](InstructionStream::phase_names) vocabulary arm
    /// per-phase accounting: the report gains a
    /// [`crate::metrics::PhaseSummary`] and the run executes on the
    /// serial loop (like observability, phase attribution needs the
    /// serial event order). Note a replayed trace is *unphased* — the v1
    /// format does not carry phase identity — so a replay of a phased
    /// run reproduces its timing bit-identically but reports
    /// `phases: None`.
    pub fn with_stream(
        cfg: &SystemConfig,
        platform: Platform,
        mode: OperationalMode,
        spec: &WorkloadSpec,
        stream: Box<dyn InstructionStream>,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid system configuration: {e}");
        }
        if let Err(e) = cfg.validate_footprint(spec.footprint_bytes) {
            panic!("invalid workload footprint: {e}");
        }
        let mem = MemorySubsystem::build(cfg, platform, mode, spec);
        let engine = WarpEngine::new(cfg.gpu.sms, cfg.gpu.sm, stream);
        let mut stats = RunStats::new(cfg.memory.controllers, Ps::from_us(10));
        if let Some(track) = engine.phase_track.as_ref() {
            stats.enable_phases(track.names.clone());
        }
        System {
            platform,
            mode,
            spec: *spec,
            engine,
            l1s: (0..cfg.gpu.sms).map(|_| Cache::new(cfg.gpu.l1)).collect(),
            l2: Cache::new(cfg.gpu.l2),
            xbar: Interconnect::new(cfg.gpu.xbar),
            mem,
            stats,
            cfg: cfg.clone(),
            pending_scratch: Vec::new(),
            cell_threads: default_cell_threads(),
            relax_window: None,
            used_parallel: false,
        }
    }

    /// Requests `n` worker threads for this cell's event loop
    /// (DESIGN.md §3.8). With `n >= 2` the run shards the memory
    /// controllers across workers and commits events in lookahead
    /// epochs; in strict mode (the default) the report is bit-identical
    /// to the serial loop at every thread count. Configurations the
    /// partitioner cannot split (observability, armed fault injection,
    /// dynamic channel division, the Origin host model) fall back to the
    /// serial loop. Grid drivers should budget with
    /// [`crate::par::budget_cell_threads`] so grid × cell workers never
    /// oversubscribe the machine.
    pub fn set_cell_threads(&mut self, n: usize) {
        self.cell_threads = n.max(1);
    }

    /// Stretches the sharding lookahead window by `multiplier` (>= 1),
    /// trading strict serial equivalence for fewer epoch barriers.
    /// Deferred pushes that land inside the stretched window are clamped
    /// to the queue's current time, so timing is approximate (still
    /// deterministic for a given thread configuration); EXPERIMENTS.md
    /// quantifies the error.
    pub fn set_relaxed_window(&mut self, multiplier: f64) {
        self.relax_window = Some(multiplier.max(1.0));
    }

    /// Whether the last [`System::run`] engaged the sharded scheduler.
    /// Test/diagnostic hook, not a stable API.
    #[doc(hidden)]
    pub fn used_cell_parallelism(&self) -> bool {
        self.used_parallel
    }

    /// Turns on the observability layer for this run: per-stage latency
    /// histograms, busy-interval logging on the fabric, utilization
    /// timelines, and Chrome-trace export via [`System::chrome_trace`].
    ///
    /// Call before [`System::run`]. Recording is passive — it never
    /// affects timing, so the report's numbers are bit-identical to a
    /// run without observability (modulo the extra `stages` field).
    pub fn enable_observability(&mut self) {
        self.stats.enable_observability();
        self.mem.fabric.set_interval_logging(true);
    }

    /// Chrome trace-event JSON (`{"traceEvents": [...]}`) of the
    /// intervals recorded since [`System::enable_observability`];
    /// loadable in `chrome://tracing` or Perfetto. `None` when
    /// observability is disabled. Call after [`System::run`].
    pub fn chrome_trace(&mut self) -> Option<String> {
        let intervals = self.mem.fabric.drain_intervals();
        let obs = self.stats.obs.as_mut()?;
        obs.absorb_channel_intervals(intervals);
        Some(crate::trace::chrome_trace_json(obs))
    }

    /// Heap bytes currently held by the memory subsystem's planner and
    /// wear metadata. The memory stack stores this state sparsely
    /// (DESIGN.md §3.7), so the number scales with pages actually
    /// touched, not with the configured footprint — tier-1's
    /// bounded-memory test asserts a 16 GiB-footprint cell stays flat.
    pub fn memory_state_bytes(&self) -> usize {
        self.mem.state_bytes()
    }

    /// Runs the kernel to completion and reports.
    pub fn run(&mut self) -> SimReport {
        self.engine.seed();
        self.used_parallel = self.try_run_sharded();
        if !self.used_parallel {
            while let Some((t, ev)) = self.engine.queue.pop() {
                match ev {
                    Event::Resume(w) => self.step_warp(t, w),
                    Event::MigrationDone { mc, id } => self.mem.complete_migration(mc, id),
                }
            }
        }
        self.report()
    }

    /// Attempts to drain the (already seeded) event queue with the
    /// sharded epoch scheduler (DESIGN.md §3.8). Returns `false` —
    /// leaving the queue untouched — when the request or configuration
    /// cannot be partitioned, in which case the caller runs serially.
    fn try_run_sharded(&mut self) -> bool {
        let controllers = self.cfg.memory.controllers;
        // One port per controller is what makes a contiguous controller
        // partition also partition the crossbar's destination ports.
        if self.cell_threads < 2
            || controllers < 2
            || self.stats.obs.is_some()
            || self.stats.phases.is_some()
            || self.cfg.gpu.xbar.ports != controllers
        {
            return false;
        }
        let nsh = self.cell_threads.min(controllers);
        let counts = epoch::balanced_counts(controllers, nsh);
        // The lookahead floor: the L1 lookup, crossbar command leg, and
        // L2 lookup every event crosses before its first controller-side
        // effect. Deferred work therefore lands at least this far after
        // its event's pop time.
        let floor = self.cfg.gpu.l1_hit_latency
            + self.xbar.min_latency(CMD_BITS / 8)
            + self.cfg.gpu.l2_hit_latency;
        let floor = match self.relax_window {
            None => floor,
            Some(m) => Ps::from_ps((floor.as_ps() as f64 * m) as u64),
        };
        let ctrl_div = self.mem.ctrl_div();
        let Some(shards) = self.mem.split_shards(&counts) else {
            return false;
        };
        let ports = self.xbar.split_ports(&counts);
        let (bits, msgs) = epoch::run_sharded(
            &self.cfg,
            &mut self.engine,
            &mut self.l1s,
            &mut self.l2,
            &mut self.stats,
            ctrl_div,
            shards,
            ports,
            floor,
            self.relax_window.is_none(),
        );
        self.mem.fabric.merge_shard_bits(bits);
        self.xbar.add_messages(msgs);
        true
    }

    fn step_warp(&mut self, now: Ps, w: WarpId) {
        let outcome = self.engine.step(now, w);
        if self.stats.phases.is_some() && !matches!(outcome, SliceOutcome::Finished) {
            self.stats.set_phase(self.engine.last_phase(w));
        }
        match outcome {
            SliceOutcome::Finished => {}
            SliceOutcome::Compute { resume_at } => {
                self.engine.resume(resume_at, w);
            }
            SliceOutcome::Memory {
                after_compute,
                addr,
                kind,
            } => {
                let resume_at = self.memory_access(after_compute, w, addr, kind);
                // Migrations triggered by this access schedule their
                // completions before the warp's resume — the same queue
                // insertion order as resolving them inline, which FIFO
                // tie-breaking at equal timestamps depends on.
                self.mem.take_pending_into(&mut self.pending_scratch);
                for &(at, mc, id) in &self.pending_scratch {
                    self.engine.push_migration_done(at, mc, id);
                }
                self.stats.record_slice_latency(resume_at - now);
                self.engine.resume(resume_at, w);
            }
        }
    }

    /// Resolves one warp memory access, returning when the warp resumes.
    fn memory_access(&mut self, now: Ps, w: WarpId, addr: Addr, kind: AccessKind) -> Ps {
        let line_addr = addr.align_down(self.cfg.line_bytes);
        let one_cycle = self.cfg.gpu.sm.freq.period();

        if kind.is_load() && self.l1s[w.sm].access(line_addr, false).hit {
            let done = now + self.cfg.gpu.l1_hit_latency;
            self.stats.record_stage(Stage::L1Hit, w.sm, now, done);
            return done;
        }

        // To L2 over the crossbar.
        let mc = self.mem.mc_of(&self.cfg, line_addr);
        let at_l2 = self
            .xbar
            .traverse(now + self.cfg.gpu.l1_hit_latency, mc, CMD_BITS / 8);
        let l2_done = at_l2 + self.cfg.gpu.l2_hit_latency;
        let lookup = self.l2.access(line_addr, !kind.is_load());

        // Dirty L2 victim: background write to memory.
        if let Some(victim) = lookup.writeback {
            let vmc = self.mem.mc_of(&self.cfg, victim);
            self.mem
                .write(&self.cfg, &mut self.stats, l2_done, vmc, victim);
        }

        if lookup.hit {
            self.stats.record_stage(Stage::L2Hit, mc, now, l2_done);
            return if kind.is_load() {
                self.xbar.traverse(l2_done, mc, self.cfg.line_bytes)
            } else {
                now + one_cycle
            };
        }

        // L2 miss: go to memory (loads block; stores write through the fill).
        if kind.is_load() {
            let data_at_mc = self
                .mem
                .read(&self.cfg, &mut self.stats, l2_done, mc, line_addr);
            self.xbar.traverse(data_at_mc, mc, self.cfg.line_bytes)
        } else {
            self.mem
                .write(&self.cfg, &mut self.stats, l2_done, mc, line_addr);
            now + one_cycle
        }
    }

    /// Demand bytes arriving at the memory controllers over time
    /// (10 µs buckets) — a bandwidth timeline for plotting.
    pub fn demand_timeline(&self) -> &TimeSeries {
        self.stats.demand_timeline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohm_workloads::workload_by_name;

    fn run(platform: Platform, mode: OperationalMode, workload: &str) -> SimReport {
        let cfg = SystemConfig::quick_test();
        let spec = workload_by_name(workload).unwrap();
        System::new(&cfg, platform, mode, &spec).run()
    }

    #[test]
    fn oracle_runs_and_retires_everything() {
        let cfg = SystemConfig::quick_test();
        let r = run(Platform::Oracle, OperationalMode::Planar, "lud");
        assert_eq!(
            r.instructions,
            (cfg.gpu.sms * cfg.gpu.sm.warps) as u64 * cfg.insts_per_warp
        );
        assert!(r.ipc > 0.0);
        assert!(r.makespan > Ps::ZERO);
        assert_eq!(r.migrations, 0);
    }

    #[test]
    fn planar_migrates_and_pays_for_it() {
        let base = run(Platform::OhmBase, OperationalMode::Planar, "pagerank");
        assert!(
            base.migrations > 0,
            "skewed workload must trigger promotions"
        );
        assert!(base.migration_channel_fraction > 0.0);
        let oracle = run(Platform::Oracle, OperationalMode::Planar, "pagerank");
        assert!(base.avg_mem_latency_ns > oracle.avg_mem_latency_ns);
    }

    #[test]
    fn two_level_misses_produce_migrations() {
        let r = run(Platform::OhmBase, OperationalMode::TwoLevel, "pagerank");
        assert!(r.migrations > 0);
        assert!(r.hetero_dram_hit_rate < 1.0);
        assert!(r.hetero_dram_hit_rate > 0.0);
    }

    #[test]
    fn swap_function_frees_the_data_route() {
        let base = run(Platform::OhmBase, OperationalMode::Planar, "pagerank");
        let wom = run(Platform::OhmWom, OperationalMode::Planar, "pagerank");
        assert!(
            wom.migration_channel_fraction < base.migration_channel_fraction,
            "wom {} vs base {}",
            wom.migration_channel_fraction,
            base.migration_channel_fraction
        );
    }

    #[test]
    fn reverse_write_eliminates_two_level_migration_traffic() {
        let wom = run(Platform::OhmWom, OperationalMode::TwoLevel, "pagerank");
        assert!(
            wom.migration_channel_fraction < 0.02,
            "got {}",
            wom.migration_channel_fraction
        );
    }

    #[test]
    fn origin_pays_for_host_staging() {
        // At an unscaled host path (host_scale = 1) the staging cost must
        // dominate and push Origin below Hetero, as in the paper's
        // Figure 3 / Figure 16; the scaled default is calibrated against
        // the evaluation configuration instead (see EXPERIMENTS.md).
        let mut cfg = SystemConfig::quick_test();
        cfg.memory.host_scale = 1.0;
        let spec = ohm_workloads::workload_by_name("pagerank").unwrap();
        let origin = System::new(&cfg, Platform::Origin, OperationalMode::Planar, &spec).run();
        let host = origin.host.expect("origin reports host staging");
        assert!(host.staged_in > 0);
        assert!(host.storage_busy > Ps::ZERO && host.dma_busy > Ps::ZERO);
        let hetero = System::new(&cfg, Platform::Hetero, OperationalMode::Planar, &spec).run();
        assert!(
            origin.ipc < hetero.ipc,
            "origin {} vs hetero {}",
            origin.ipc,
            hetero.ipc
        );
    }

    #[test]
    fn platform_ordering_on_a_skewed_workload() {
        // quick_test runs carry per-run noise from reordered swap
        // triggers, so the ordering is asserted with slack; the full
        // evaluation config (fig16 harness) reproduces the paper's chain.
        let base = run(Platform::OhmBase, OperationalMode::Planar, "pagerank");
        let bw = run(Platform::OhmBw, OperationalMode::Planar, "pagerank");
        let oracle = run(Platform::Oracle, OperationalMode::Planar, "pagerank");
        assert!(
            bw.ipc >= base.ipc * 0.95,
            "bw {} vs base {}",
            bw.ipc,
            base.ipc
        );
        assert!(
            oracle.ipc >= bw.ipc,
            "oracle {} vs bw {}",
            oracle.ipc,
            bw.ipc
        );
    }

    #[test]
    fn demand_timeline_accounts_read_traffic() {
        let cfg = SystemConfig::quick_test();
        let spec = ohm_workloads::workload_by_name("bfsdata").unwrap();
        let mut sys = System::new(&cfg, Platform::Oracle, OperationalMode::Planar, &spec);
        let r = sys.run();
        let timeline = sys.demand_timeline();
        assert!(timeline.total() > 0.0);
        assert_eq!(
            timeline.total() as u64,
            r.mem_requests * cfg.line_bytes,
            "timeline must sum to the demand reads"
        );
        assert!(timeline.peak() >= timeline.mean());
    }

    #[test]
    fn deterministic_repeat_runs() {
        let a = run(Platform::AutoRw, OperationalMode::Planar, "FDTD");
        let b = run(Platform::AutoRw, OperationalMode::Planar, "FDTD");
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.mem_requests, b.mem_requests);
    }
}
