//! Deterministic scoped-thread fan-out for embarrassingly parallel jobs.
//!
//! Simulation cells (platform × workload, or sweep points) share no
//! state: each builds its own [`System`](crate::system::System) from a
//! cloned config. Running them on scoped threads therefore produces
//! *bit-identical* results to the serial path — every job computes the
//! same `SimReport` regardless of which worker runs it or when — and
//! [`par_map_indexed`] additionally returns results in input order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `job` over `0..n` on up to `threads` scoped worker threads,
/// returning results in index order.
///
/// Workers pull the next index from a shared counter (dynamic load
/// balancing — simulation cells vary widely in cost) and tag each result
/// with its index; the tags scatter results back into input order, so
/// the output is independent of scheduling. With `threads <= 1` (or a
/// single job) the map runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn par_map_indexed<R, F>(n: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let job = &job;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, job(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("simulation worker panicked"));
        }
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in tagged {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produces exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let out = par_map_indexed(13, threads, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn balances_uneven_jobs() {
        // Jobs of wildly different cost still land in order.
        let out = par_map_indexed(8, 3, |i| {
            let spin = if i % 3 == 0 { 20_000 } else { 10 };
            (0..spin).fold(i as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
        });
        let serial: Vec<u64> = (0..8)
            .map(|i| {
                let spin = if i % 3 == 0 { 20_000 } else { 10 };
                (0..spin).fold(i as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
            })
            .collect();
        assert_eq!(out, serial);
    }
}
