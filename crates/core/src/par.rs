//! Deterministic scoped-thread fan-out for embarrassingly parallel jobs.
//!
//! Simulation cells (platform × workload, or sweep points) share no
//! state: each builds its own [`System`](crate::system::System) from a
//! cloned config. Running them on scoped threads therefore produces
//! *bit-identical* results to the serial path — every job computes the
//! same `SimReport` regardless of which worker runs it or when — and
//! [`par_map_indexed`] additionally returns results in input order.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Clamps a per-cell worker request so grid-level × cell-level workers
/// never oversubscribe [`default_threads`].
///
/// With `grid_threads` cells potentially running at once, each cell may
/// use at most `default_threads() / grid_threads` workers (and always at
/// least 1). A serial grid (`grid_threads <= 1`) leaves the whole budget
/// to the single cell.
pub fn budget_cell_threads(grid_threads: usize, cell_threads: usize) -> usize {
    let budget = default_threads() / grid_threads.max(1);
    cell_threads.clamp(1, budget.max(1))
}

/// Index of the most recently reported panicked cell, offset by one so 0
/// means "none yet". Diagnostic only — read by tests to assert the
/// failing-cell report fires on every path.
static LAST_PANICKED_CELL: AtomicUsize = AtomicUsize::new(0);

/// Reports a panicking cell on stderr before the payload is rethrown.
/// Both the inline and the threaded execution paths funnel through here
/// so the "failing cell index" report is guaranteed regardless of
/// `threads`.
fn report_cell_panic(i: usize) {
    LAST_PANICKED_CELL.store(i + 1, Ordering::Relaxed);
    eprintln!("par_map_indexed: job for cell {i} panicked; rethrowing");
}

#[cfg(test)]
fn last_panicked_cell() -> Option<usize> {
    LAST_PANICKED_CELL.load(Ordering::Relaxed).checked_sub(1)
}

/// Maps `job` over `0..n` on up to `threads` scoped worker threads,
/// returning results in index order.
///
/// Workers pull the next index from a shared counter (dynamic load
/// balancing — simulation cells vary widely in cost) and tag each result
/// with its index; the tags scatter results back into input order, so
/// the output is independent of scheduling. With `threads <= 1` (or a
/// single job) the map runs inline on the caller's thread.
///
/// # Panics
///
/// If a job panics, the failing cell index is reported on stderr and the
/// job's *original* panic payload is rethrown (`resume_unwind`) after
/// the remaining workers wind down, so the caller sees the real failure
/// rather than a generic join error.
pub fn par_map_indexed<R, F>(n: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        // Inline path: same panic protocol as the threaded path below —
        // report the failing cell index, then rethrow the original payload.
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match catch_unwind(AssertUnwindSafe(|| job(i))) {
                Ok(r) => out.push(r),
                Err(payload) => {
                    report_cell_panic(i);
                    resume_unwind(payload);
                }
            }
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    // A panicked cell flips this so the other workers stop pulling new
    // indices instead of burning through the rest of the grid.
    let poisoned = AtomicBool::new(false);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    let mut failure: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let poisoned = &poisoned;
                let job = &job;
                s.spawn(move || {
                    let mut local = Vec::new();
                    let mut caught = None;
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| job(i))) {
                            Ok(r) => local.push((i, r)),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Relaxed);
                                caught = Some((i, payload));
                                break;
                            }
                        }
                    }
                    (local, caught)
                })
            })
            .collect();
        for h in handles {
            let (local, caught) = h.join().expect("worker thread itself panicked");
            tagged.extend(local);
            if failure.is_none() {
                failure = caught;
            }
        }
    });
    if let Some((i, payload)) = failure {
        report_cell_panic(i);
        resume_unwind(payload);
    }

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in tagged {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produces exactly one result"))
        .collect()
}

/// [`par_map_indexed`] that additionally measures the wall-clock time of
/// each job, returning `(result, elapsed)` pairs in index order.
///
/// The timing is harness-side profiling only — it never feeds back into
/// simulated results, which stay deterministic.
pub fn par_map_indexed_profiled<R, F>(n: usize, threads: usize, job: F) -> Vec<(R, Duration)>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed(n, threads, |i| {
        let t0 = std::time::Instant::now();
        let r = job(i);
        (r, t0.elapsed())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the panic-protocol tests: they share the global
    /// LAST_PANICKED_CELL marker and would race under the parallel test
    /// runner.
    static PANIC_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let out = par_map_indexed(13, threads, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn panic_resumes_with_original_payload() {
        let _guard = PANIC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(8, 2, |i| {
                if i == 5 {
                    panic!("cell five exploded");
                }
                i
            })
        })
        .expect_err("panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| caught.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(
            msg.contains("cell five exploded"),
            "original payload lost: {msg:?}"
        );
    }

    #[test]
    fn inline_path_reports_failing_cell_at_one_thread() {
        // The threads=1 path used to skip catch_unwind entirely, so a
        // panicking cell was never identified. The report marker must now
        // fire before the payload is rethrown.
        let _guard = PANIC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        LAST_PANICKED_CELL.store(0, Ordering::Relaxed);
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(4, 1, |i| {
                if i == 2 {
                    panic!("cell two exploded");
                }
                i
            })
        })
        .expect_err("panic must propagate");
        assert_eq!(last_panicked_cell(), Some(2), "report did not fire inline");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| caught.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(
            msg.contains("cell two exploded"),
            "original payload lost: {msg:?}"
        );
    }

    #[test]
    fn budget_caps_cell_threads_by_grid_width() {
        let total = default_threads();
        // A serial grid gets the whole machine.
        assert_eq!(budget_cell_threads(1, total), total);
        // A grid as wide as the machine leaves one worker per cell.
        assert_eq!(budget_cell_threads(total, 8), 1);
        // Requests are floored at one and never exceed the request itself.
        assert_eq!(budget_cell_threads(1, 0), 1);
        assert!(budget_cell_threads(2, 3) <= 3);
        assert!(budget_cell_threads(2, 3) * 2 <= total.max(2));
    }

    #[test]
    fn profiled_map_preserves_results() {
        let out = par_map_indexed_profiled(6, 3, |i| i * 2);
        assert_eq!(
            out.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8, 10]
        );
    }

    #[test]
    fn balances_uneven_jobs() {
        // Jobs of wildly different cost still land in order.
        let out = par_map_indexed(8, 3, |i| {
            let spin = if i % 3 == 0 { 20_000 } else { 10 };
            (0..spin).fold(i as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
        });
        let serial: Vec<u64> = (0..8)
            .map(|i| {
                let spin = if i % 3 == 0 { 20_000 } else { 10 };
                (0..spin).fold(i as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
            })
            .collect();
        assert_eq!(out, serial);
    }
}
