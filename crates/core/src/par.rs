//! Deterministic scoped-thread fan-out for embarrassingly parallel jobs.
//!
//! Simulation cells (platform × workload, or sweep points) share no
//! state: each builds its own [`System`](crate::system::System) from a
//! cloned config. Running them on scoped threads therefore produces
//! *bit-identical* results to the serial path — every job computes the
//! same `SimReport` regardless of which worker runs it or when — and
//! [`par_map_indexed`] additionally returns results in input order.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `job` over `0..n` on up to `threads` scoped worker threads,
/// returning results in index order.
///
/// Workers pull the next index from a shared counter (dynamic load
/// balancing — simulation cells vary widely in cost) and tag each result
/// with its index; the tags scatter results back into input order, so
/// the output is independent of scheduling. With `threads <= 1` (or a
/// single job) the map runs inline on the caller's thread.
///
/// # Panics
///
/// If a job panics, the failing cell index is reported on stderr and the
/// job's *original* panic payload is rethrown (`resume_unwind`) after
/// the remaining workers wind down, so the caller sees the real failure
/// rather than a generic join error.
pub fn par_map_indexed<R, F>(n: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    // A panicked cell flips this so the other workers stop pulling new
    // indices instead of burning through the rest of the grid.
    let poisoned = AtomicBool::new(false);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    let mut failure: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let poisoned = &poisoned;
                let job = &job;
                s.spawn(move || {
                    let mut local = Vec::new();
                    let mut caught = None;
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| job(i))) {
                            Ok(r) => local.push((i, r)),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Relaxed);
                                caught = Some((i, payload));
                                break;
                            }
                        }
                    }
                    (local, caught)
                })
            })
            .collect();
        for h in handles {
            let (local, caught) = h.join().expect("worker thread itself panicked");
            tagged.extend(local);
            if failure.is_none() {
                failure = caught;
            }
        }
    });
    if let Some((i, payload)) = failure {
        eprintln!("par_map_indexed: job for cell {i} panicked; rethrowing");
        resume_unwind(payload);
    }

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in tagged {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produces exactly one result"))
        .collect()
}

/// [`par_map_indexed`] that additionally measures the wall-clock time of
/// each job, returning `(result, elapsed)` pairs in index order.
///
/// The timing is harness-side profiling only — it never feeds back into
/// simulated results, which stay deterministic.
pub fn par_map_indexed_profiled<R, F>(n: usize, threads: usize, job: F) -> Vec<(R, Duration)>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed(n, threads, |i| {
        let t0 = std::time::Instant::now();
        let r = job(i);
        (r, t0.elapsed())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let out = par_map_indexed(13, threads, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn panic_resumes_with_original_payload() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(8, 2, |i| {
                if i == 5 {
                    panic!("cell five exploded");
                }
                i
            })
        })
        .expect_err("panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| caught.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(
            msg.contains("cell five exploded"),
            "original payload lost: {msg:?}"
        );
    }

    #[test]
    fn profiled_map_preserves_results() {
        let out = par_map_indexed_profiled(6, 3, |i| i * 2);
        assert_eq!(
            out.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8, 10]
        );
    }

    #[test]
    fn balances_uneven_jobs() {
        // Jobs of wildly different cost still land in order.
        let out = par_map_indexed(8, 3, |i| {
            let spin = if i % 3 == 0 { 20_000 } else { 10 };
            (0..spin).fold(i as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
        });
        let serial: Vec<u64> = (0..8)
            .map(|i| {
                let spin = if i % 3 == 0 { 20_000 } else { 10 };
                (0..spin).fold(i as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
            })
            .collect();
        assert_eq!(out, serial);
    }
}
