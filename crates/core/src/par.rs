//! Deterministic scoped-thread fan-out for embarrassingly parallel jobs.
//!
//! Simulation cells (platform × workload, or sweep points) share no
//! state: each builds its own [`System`](crate::system::System) from a
//! cloned config. Running them on scoped threads therefore produces
//! *bit-identical* results to the serial path — every job computes the
//! same `SimReport` regardless of which worker runs it or when — and
//! [`par_map_indexed`] additionally returns results in input order.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use ohm_sim::{ExponentialBackoff, Ps};

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Clamps a per-cell worker request so grid-level × cell-level workers
/// never oversubscribe [`default_threads`].
///
/// With `grid_threads` cells potentially running at once, each cell may
/// use at most `default_threads() / grid_threads` workers (and always at
/// least 1). A serial grid (`grid_threads <= 1`) leaves the whole budget
/// to the single cell.
pub fn budget_cell_threads(grid_threads: usize, cell_threads: usize) -> usize {
    let budget = default_threads() / grid_threads.max(1);
    cell_threads.clamp(1, budget.max(1))
}

/// Index of the most recently reported panicked cell, offset by one so 0
/// means "none yet". Diagnostic only — read by tests to assert the
/// failing-cell report fires on every path.
static LAST_PANICKED_CELL: AtomicUsize = AtomicUsize::new(0);

/// Reports a panicking cell on stderr before it is rethrown (strict
/// paths) or converted into a [`CellError`] (the `try` paths). Every
/// execution path funnels through here so the "failing cell index"
/// report is guaranteed regardless of `threads`.
fn report_cell_panic(i: usize, action: &str) {
    LAST_PANICKED_CELL.store(i + 1, Ordering::Relaxed);
    eprintln!("par_map_indexed: job for cell {i} panicked; {action}");
}

/// Renders a caught panic payload as a message: the `&str` / `String`
/// payloads `panic!` produces pass through verbatim, anything else
/// becomes a placeholder.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

#[cfg(test)]
fn last_panicked_cell() -> Option<usize> {
    LAST_PANICKED_CELL.load(Ordering::Relaxed).checked_sub(1)
}

/// Maps `job` over `0..n` on up to `threads` scoped worker threads,
/// returning results in index order.
///
/// Workers pull the next index from a shared counter (dynamic load
/// balancing — simulation cells vary widely in cost) and tag each result
/// with its index; the tags scatter results back into input order, so
/// the output is independent of scheduling. With `threads <= 1` (or a
/// single job) the map runs inline on the caller's thread.
///
/// # Panics
///
/// If a job panics, the failing cell index is reported on stderr and the
/// job's *original* panic payload is rethrown (`resume_unwind`) after
/// the remaining workers wind down, so the caller sees the real failure
/// rather than a generic join error.
pub fn par_map_indexed<R, F>(n: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        // Inline path: same panic protocol as the threaded path below —
        // report the failing cell index, then rethrow the original payload.
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match catch_unwind(AssertUnwindSafe(|| job(i))) {
                Ok(r) => out.push(r),
                Err(payload) => {
                    report_cell_panic(i, "rethrowing");
                    resume_unwind(payload);
                }
            }
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    // A panicked cell flips this so the other workers stop pulling new
    // indices instead of burning through the rest of the grid.
    let poisoned = AtomicBool::new(false);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    let mut failures: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let poisoned = &poisoned;
                let job = &job;
                s.spawn(move || {
                    let mut local = Vec::new();
                    let mut caught = None;
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| job(i))) {
                            Ok(r) => local.push((i, r)),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Relaxed);
                                caught = Some((i, payload));
                                break;
                            }
                        }
                    }
                    (local, caught)
                })
            })
            .collect();
        for h in handles {
            let (local, caught) = h.join().expect("worker thread itself panicked");
            tagged.extend(local);
            failures.extend(caught);
        }
    });
    if !failures.is_empty() {
        // Several workers can panic in the same scheduling window; every
        // failing index must be reported, not just whichever worker was
        // joined first.
        failures.sort_by_key(|(i, _)| *i);
        for (i, _) in &failures {
            report_cell_panic(*i, "rethrowing");
        }
        if failures.len() == 1 {
            // Single failure: rethrow the job's original payload so the
            // caller sees the real panic, not a wrapper.
            resume_unwind(failures.pop().expect("non-empty").1);
        }
        let detail: Vec<String> = failures
            .iter()
            .map(|(i, p)| format!("cell {i}: {}", payload_message(p.as_ref())))
            .collect();
        resume_unwind(Box::new(format!(
            "{} cells panicked — {}",
            failures.len(),
            detail.join("; ")
        )));
    }

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in tagged {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produces exactly one result"))
        .collect()
}

/// [`par_map_indexed`] that additionally measures the wall-clock time of
/// each job, returning `(result, elapsed)` pairs in index order.
///
/// The timing is harness-side profiling only — it never feeds back into
/// simulated results, which stay deterministic.
pub fn par_map_indexed_profiled<R, F>(n: usize, threads: usize, job: F) -> Vec<(R, Duration)>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed(n, threads, |i| {
        let t0 = std::time::Instant::now();
        let r = job(i);
        (r, t0.elapsed())
    })
}

/// A cell that could not produce a result: it panicked on every allowed
/// attempt, or ran past the wall-clock deadline.
///
/// Produced by [`par_try_map_indexed`]; surfaced by the runner as a
/// quarantined or timed-out [`CellOutcome`](crate::runner::CellOutcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// The cell's index in `0..n` (row-major grid order in the runner).
    pub index: usize,
    /// The panic payload rendered as text (or a deadline message).
    pub payload: String,
    /// How many attempts were made before giving up.
    pub attempts: u32,
    /// `true` when the cell was abandoned for exceeding the deadline
    /// rather than panicking. Timed-out cells are never retried.
    pub timed_out: bool,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} failed after {} attempt{}: {}",
            self.index,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.payload
        )
    }
}

impl std::error::Error for CellError {}

/// Fault-isolation policy for [`par_try_map_indexed`]: how often a
/// panicking cell is retried, how retries are spaced, and how long any
/// single attempt may run.
///
/// The backoff schedule is the simulator's own [`ExponentialBackoff`],
/// re-used here for *wall-clock* waits: a [`Ps`] delay is slept as the
/// same span of real time (truncated to the nanosecond, `Duration`'s
/// resolution) — `Ps::from_ms(50)` means 50 ms of wall clock here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 = one attempt only).
    pub max_retries: u32,
    /// Wall-clock spacing between attempts (1-based, attempt 0 free).
    pub backoff: ExponentialBackoff,
    /// Wall-clock budget for a single attempt; `None` disables the
    /// watchdog entirely (no monitor thread is spawned).
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// One attempt, no waiting, no watchdog — pure panic-to-error
    /// conversion.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        backoff: ExponentialBackoff::NONE,
        deadline: None,
    };
}

/// Converts a [`Ps`] backoff delay into the wall-clock sleep it stands
/// for in a [`RetryPolicy`]: the same span of real time, truncated to
/// `Duration`'s nanosecond resolution.
fn wall(d: Ps) -> Duration {
    Duration::from_nanos(d.as_ps() / 1_000)
}

/// What a single watchdogged attempt produced.
enum AttemptError {
    Panicked(String),
    TimedOut(Duration),
}

/// Runs one attempt of `job(i)`, catching panics; with a deadline the
/// job runs on a detached monitor thread and the attempt is abandoned
/// (the thread leaks until the job returns — see [`par_try_map_indexed`])
/// when the deadline passes.
fn run_attempt<R, F>(job: &Arc<F>, i: usize, deadline: Option<Duration>) -> Result<R, AttemptError>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    let Some(limit) = deadline else {
        return catch_unwind(AssertUnwindSafe(|| job(i)))
            .map_err(|p| AttemptError::Panicked(payload_message(p.as_ref())));
    };
    let (tx, rx) = mpsc::channel();
    let job = Arc::clone(job);
    std::thread::Builder::new()
        .name(format!("ohm-cell-{i}"))
        .spawn(move || {
            let r = catch_unwind(AssertUnwindSafe(|| job(i)));
            // The receiver may be gone (deadline already passed) — that
            // is fine, the result is simply dropped.
            let _ = tx.send(r.map_err(|p| payload_message(p.as_ref())));
        })
        .expect("spawn watchdogged cell thread");
    match rx.recv_timeout(limit) {
        Ok(Ok(r)) => Ok(r),
        Ok(Err(msg)) => Err(AttemptError::Panicked(msg)),
        Err(mpsc::RecvTimeoutError::Timeout) => Err(AttemptError::TimedOut(limit)),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Err(AttemptError::Panicked("cell worker vanished".to_string()))
        }
    }
}

/// Runs one cell to completion under `policy`: panics are retried with
/// backoff up to the cap, a deadline overrun gives up immediately.
fn try_cell<R, F>(job: &Arc<F>, i: usize, policy: &RetryPolicy) -> Result<R, CellError>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match run_attempt(job, i, policy.deadline) {
            Ok(r) => return Ok(r),
            Err(AttemptError::TimedOut(limit)) => {
                // A runaway cell is assumed deterministic — re-running it
                // would burn another full deadline for the same outcome.
                eprintln!("par_try_map_indexed: cell {i} exceeded {limit:?} deadline; abandoning");
                return Err(CellError {
                    index: i,
                    payload: format!("exceeded {limit:?} wall-clock deadline"),
                    attempts,
                    timed_out: true,
                });
            }
            Err(AttemptError::Panicked(msg)) => {
                let last = attempts > policy.max_retries;
                report_cell_panic(i, if last { "quarantining" } else { "retrying" });
                if last {
                    return Err(CellError {
                        index: i,
                        payload: msg,
                        attempts,
                        timed_out: false,
                    });
                }
                let delay = policy.backoff.delay(attempts);
                if delay > Ps::ZERO {
                    std::thread::sleep(wall(delay));
                }
            }
        }
    }
}

/// Fault-isolated [`par_map_indexed`]: maps `job` over `0..n` on up to
/// `threads` workers, converting each failing cell into a typed
/// [`CellError`] instead of tearing down the whole map.
///
/// A panicking cell is retried with the policy's backoff until the retry
/// cap, then quarantined; a cell that outlives `policy.deadline` is
/// marked timed out immediately (no retry). Healthy cells are unaffected
/// either way — the map always drains all `n` indices and returns one
/// `Result` per cell in index order.
///
/// The `'static` bounds (absent from the strict variant) pay for the
/// watchdog: with a deadline set, each attempt runs on a detached
/// monitor thread so the caller can give up on it. An abandoned attempt
/// **leaks its thread** until the job eventually returns — acceptable
/// for a simulation cell stuck in a long event loop, but it means a
/// deadline is a reporting mechanism, not a resource cap.
pub fn par_try_map_indexed<R, F>(
    n: usize,
    threads: usize,
    policy: RetryPolicy,
    job: F,
) -> Vec<Result<R, CellError>>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    let job = Arc::new(job);
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(|i| try_cell(&job, i, &policy)).collect();
    }

    // Same dynamic-load-balancing pool as the strict path, but errors
    // are data: nothing poisons the counter, the grid always drains.
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, Result<R, CellError>)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let job = &job;
                let policy = &policy;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, try_cell(job, i, policy)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("worker thread itself panicked"));
        }
    });

    let mut slots: Vec<Option<Result<R, CellError>>> = (0..n).map(|_| None).collect();
    for (i, r) in tagged {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produces exactly one result"))
        .collect()
}

/// [`par_try_map_indexed`] with per-cell wall-clock timing, mirroring
/// [`par_map_indexed_profiled`]. Failed cells carry no duration — their
/// wall time is retry/deadline noise, not a cell cost.
pub fn par_try_map_indexed_profiled<R, F>(
    n: usize,
    threads: usize,
    policy: RetryPolicy,
    job: F,
) -> Vec<Result<(R, Duration), CellError>>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    par_try_map_indexed(n, threads, policy, move |i| {
        let t0 = std::time::Instant::now();
        let r = job(i);
        (r, t0.elapsed())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the panic-protocol tests: they share the global
    /// LAST_PANICKED_CELL marker and would race under the parallel test
    /// runner.
    static PANIC_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let out = par_map_indexed(13, threads, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn panic_resumes_with_original_payload() {
        let _guard = PANIC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(8, 2, |i| {
                if i == 5 {
                    panic!("cell five exploded");
                }
                i
            })
        })
        .expect_err("panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| caught.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(
            msg.contains("cell five exploded"),
            "original payload lost: {msg:?}"
        );
    }

    #[test]
    fn inline_path_reports_failing_cell_at_one_thread() {
        // The threads=1 path used to skip catch_unwind entirely, so a
        // panicking cell was never identified. The report marker must now
        // fire before the payload is rethrown.
        let _guard = PANIC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        LAST_PANICKED_CELL.store(0, Ordering::Relaxed);
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(4, 1, |i| {
                if i == 2 {
                    panic!("cell two exploded");
                }
                i
            })
        })
        .expect_err("panic must propagate");
        assert_eq!(last_panicked_cell(), Some(2), "report did not fire inline");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| caught.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(
            msg.contains("cell two exploded"),
            "original payload lost: {msg:?}"
        );
    }

    #[test]
    fn budget_caps_cell_threads_by_grid_width() {
        let total = default_threads();
        // A serial grid gets the whole machine.
        assert_eq!(budget_cell_threads(1, total), total);
        // A grid as wide as the machine leaves one worker per cell.
        assert_eq!(budget_cell_threads(total, 8), 1);
        // Requests are floored at one and never exceed the request itself.
        assert_eq!(budget_cell_threads(1, 0), 1);
        assert!(budget_cell_threads(2, 3) <= 3);
        assert!(budget_cell_threads(2, 3) * 2 <= total.max(2));
    }

    #[test]
    fn profiled_map_preserves_results() {
        let out = par_map_indexed_profiled(6, 3, |i| i * 2);
        assert_eq!(
            out.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8, 10]
        );
    }

    #[test]
    fn concurrent_panics_all_reported() {
        // Two workers, two cells, both panic in the same window (a
        // barrier guarantees neither worker sees the poison flag before
        // pulling its index). The rethrown payload must name BOTH cells
        // — the old code kept the first and eprintln-dropped the rest.
        let _guard = PANIC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let started = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed(2, 2, |i| {
                started.fetch_add(1, Ordering::SeqCst);
                while started.load(Ordering::SeqCst) < 2 {
                    std::hint::spin_loop();
                }
                panic!("cell {i} exploded");
            })
        }))
        .expect_err("panic must propagate");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("2 cells panicked"), "got: {msg:?}");
        assert!(
            msg.contains("cell 0: cell 0 exploded") && msg.contains("cell 1: cell 1 exploded"),
            "a concurrent panic was dropped: {msg:?}"
        );
    }

    #[test]
    fn profiled_panic_contract_matches_unprofiled() {
        // The profiled wrapper must preserve the strict panic protocol at
        // every thread count: original payload rethrown, failing cell
        // reported.
        let _guard = PANIC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for threads in [1, 2] {
            LAST_PANICKED_CELL.store(0, Ordering::Relaxed);
            let caught = std::panic::catch_unwind(|| {
                par_map_indexed_profiled(4, threads, |i| {
                    if i == 3 {
                        panic!("profiled cell three exploded");
                    }
                    i
                })
            })
            .expect_err("panic must propagate through the profiled path");
            assert_eq!(
                last_panicked_cell(),
                Some(3),
                "report did not fire at threads={threads}"
            );
            let msg = caught
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| caught.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            assert!(
                msg.contains("profiled cell three exploded"),
                "original payload lost at threads={threads}: {msg:?}"
            );
        }
    }

    #[test]
    fn try_map_quarantines_without_killing_the_map() {
        for threads in [1, 3] {
            let out = par_try_map_indexed(8, threads, RetryPolicy::NONE, |i| {
                if i == 5 {
                    panic!("cell five exploded");
                }
                i * 10
            });
            assert_eq!(out.len(), 8);
            for (i, r) in out.iter().enumerate() {
                if i == 5 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 5);
                    assert_eq!(e.attempts, 1);
                    assert!(!e.timed_out);
                    assert!(e.payload.contains("cell five exploded"), "{e}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10, "healthy cell {i} lost");
                }
            }
        }
    }

    #[test]
    fn try_map_retries_until_success() {
        let failures_left = AtomicUsize::new(2);
        let policy = RetryPolicy {
            max_retries: 3,
            backoff: ExponentialBackoff::NONE,
            deadline: None,
        };
        let out = par_try_map_indexed(1, 1, policy, move |i| {
            if failures_left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok()
            {
                panic!("transient failure");
            }
            i + 1
        });
        assert_eq!(out, vec![Ok(1)], "third attempt should have succeeded");
    }

    #[test]
    fn try_map_reports_attempt_count_on_exhaustion() {
        let policy = RetryPolicy {
            max_retries: 2,
            backoff: ExponentialBackoff::NONE,
            deadline: None,
        };
        let out = par_try_map_indexed(1, 1, policy, |_| -> usize { panic!("always") });
        let e = out[0].as_ref().unwrap_err();
        assert_eq!(e.attempts, 3, "1 initial + 2 retries");
        assert!(!e.timed_out);
        assert!(e.payload.contains("always"));
    }

    #[test]
    fn watchdog_times_out_runaway_cells() {
        let policy = RetryPolicy {
            max_retries: 5, // must NOT apply to timeouts
            backoff: ExponentialBackoff::NONE,
            deadline: Some(Duration::from_millis(40)),
        };
        let t0 = std::time::Instant::now();
        let out = par_try_map_indexed(3, 2, policy, |i| {
            if i == 1 {
                // A runaway cell: sleeps far past the deadline. The
                // watchdog abandons it (the thread leaks until the sleep
                // ends; the test binary exits without joining it).
                std::thread::sleep(Duration::from_secs(10));
            }
            i
        });
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "watchdog failed to abandon the runaway cell"
        );
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[2], Ok(2));
        let e = out[1].as_ref().unwrap_err();
        assert!(e.timed_out);
        assert_eq!(e.attempts, 1, "timeouts must not be retried");
        assert!(e.payload.contains("deadline"), "{e}");
    }

    #[test]
    fn try_map_profiled_preserves_results_and_errors() {
        let out = par_try_map_indexed_profiled(4, 2, RetryPolicy::NONE, |i| {
            if i == 2 {
                panic!("profiled quarantine");
            }
            i
        });
        for (i, r) in out.iter().enumerate() {
            if i == 2 {
                assert_eq!(r.as_ref().unwrap_err().index, 2);
            } else {
                assert_eq!(r.as_ref().unwrap().0, i);
            }
        }
    }

    #[test]
    fn backoff_delay_maps_to_wall_clock() {
        assert_eq!(wall(Ps::from_ps(0)), Duration::ZERO);
        assert_eq!(wall(Ps::from_ms(2)), Duration::from_millis(2));
        // Sub-nanosecond remainders truncate.
        assert_eq!(wall(Ps::from_ps(1_999)), Duration::from_nanos(1));
    }

    #[test]
    fn balances_uneven_jobs() {
        // Jobs of wildly different cost still land in order.
        let out = par_map_indexed(8, 3, |i| {
            let spin = if i % 3 == 0 { 20_000 } else { 10 };
            (0..spin).fold(i as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
        });
        let serial: Vec<u64> = (0..8)
            .map(|i| {
                let spin = if i % 3 == 0 { 20_000 } else { 10 };
                (0..spin).fold(i as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
            })
            .collect();
        assert_eq!(out, serial);
    }
}
