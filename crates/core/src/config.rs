//! System configuration (the paper's Table I).
//!
//! All defaults follow Table I; capacities are scaled by a configurable
//! factor for simulation speed, exactly as the paper scales its own
//! footprints 12× (Section VI, citing the common practice of [Alian et
//! al.]). The footprint : DRAM : XPoint ratios are what the experiments
//! depend on, and those are preserved at every scale.

use ohm_mem::dram::{DramConfig, DramTiming};
use ohm_mem::xpoint::XPointConfig;
use ohm_mem::xpoint_ctrl::XpCtrlConfig;
use ohm_optic::{ChannelDivision, ElectricalConfig, OperationalMode, OpticalChannelConfig};
#[cfg(test)]
use ohm_sim::Freq;
use ohm_sim::Ps;
use ohm_sm::{CacheConfig, InterconnectConfig, SmConfig};
use ohm_workloads::PhasePlan;

use crate::fault::{FaultPlan, LifecyclePlan};

/// GPU front-end configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (Table I: 16).
    pub sms: usize,
    /// Per-SM configuration (1.2 GHz, resident warps).
    pub sm: SmConfig,
    /// Private L1D geometry (48 KB, 6-way).
    pub l1: CacheConfig,
    /// Shared L2 geometry (6 MB, 8-way).
    pub l2: CacheConfig,
    /// L1 hit latency.
    pub l1_hit_latency: Ps,
    /// L2 hit latency (on top of interconnect traversal).
    pub l2_hit_latency: Ps,
    /// SM↔L2 interconnect.
    pub xbar: InterconnectConfig,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            sms: 16,
            sm: SmConfig::default(),
            l1: CacheConfig::l1d_table1(),
            l2: CacheConfig::l2_table1(),
            l1_hit_latency: Ps::from_ns(4),
            l2_hit_latency: Ps::from_ns(25),
            xbar: InterconnectConfig::default(),
        }
    }
}

/// Memory-system configuration shared by all platforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Number of memory controllers / channels (Table I: 6).
    pub controllers: usize,
    /// DRAM timing (Table I).
    pub dram_timing: DramTiming,
    /// DRAM banks per module (total across ranks).
    pub dram_banks: usize,
    /// DRAM ranks per module (per-rank tRRD/tFAW domains).
    pub dram_ranks: usize,
    /// XPoint controller configuration (media timing from Table I).
    pub xpoint: XpCtrlConfig,
    /// Per-request memory-controller occupancy.
    pub mc_overhead: Ps,
    /// Outstanding-miss (MSHR) entries per memory controller; a full file
    /// delays further misses until an in-flight one completes.
    pub mshr_per_mc: usize,
    /// Address-interleave granularity across controllers.
    pub interleave_bytes: u64,
    /// Migration page size (planar mode).
    pub page_bytes: u64,
    /// DRAM:XPoint capacity ratio in planar mode (Table I: 1:8).
    pub planar_ratio: usize,
    /// DRAM:XPoint capacity ratio in two-level mode (Table I: 1:64).
    pub two_level_ratio: usize,
    /// Planar hot-page promotion threshold (accesses). Calibrated against
    /// Figures 8/16: 16 puts the migration share of channel bandwidth and
    /// the Ohm-BW : Oracle performance ratio at the paper's operating
    /// point (see `ablation_threshold`).
    pub hot_threshold: u32,
    /// Fraction of the workload footprint resident in Origin's DRAM.
    /// Calibrated so the resident memory sits below the workloads' active
    /// region (frontier window + cold stream span), recreating the
    /// capacity pressure the paper's Origin suffers against working sets
    /// larger than its 24 GB.
    pub origin_resident_fraction: f64,
    /// Granularity of Origin's host<->GPU staging transfers (applications
    /// move whole buffers, not single pages).
    pub origin_segment_bytes: u64,
    /// Host-path speed multiplier for Origin. Our kernels execute ~1000x
    /// fewer instructions over ~16x smaller footprints than the paper's
    /// full runs, so bytes-staged-per-instruction is inflated; scaling the
    /// host path keeps Origin's staging : compute ratio at the level the
    /// paper measures (Figure 3). Documented in DESIGN.md as a
    /// substitution.
    pub host_scale: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            controllers: 6,
            dram_timing: DramTiming::default(),
            dram_banks: 32,
            dram_ranks: 2,
            xpoint: XpCtrlConfig::default(),
            mc_overhead: Ps::from_ns(2),
            mshr_per_mc: 128,
            interleave_bytes: 4096,
            page_bytes: 4096,
            planar_ratio: 8,
            two_level_ratio: 64,
            hot_threshold: 16,
            origin_resident_fraction: 0.25,
            origin_segment_bytes: 4 << 20,
            host_scale: 64.0,
        }
    }
}

/// The full system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// GPU front end.
    pub gpu: GpuConfig,
    /// Memory system.
    pub memory: MemoryConfig,
    /// Optical channel (Ohm platforms).
    pub optical: OpticalChannelConfig,
    /// Electrical channel (Origin / Hetero).
    pub electrical: ElectricalConfig,
    /// Instructions per warp lane per run.
    pub insts_per_warp: u64,
    /// Cache-line / memory access granularity in bytes.
    pub line_bytes: u64,
    /// RNG seed for workload generation.
    pub seed: u64,
    /// Optional fault-injection plan. `None` (the default) runs the
    /// fault-free fast path; see [`crate::fault`] for the model.
    pub faults: Option<FaultPlan>,
    /// Optional wear-out lifecycle plan for the XPoint tier. `None` (the
    /// default) runs the lifecycle-free fast path; see
    /// [`crate::fault::LifecyclePlan`].
    pub lifecycle: Option<LifecyclePlan>,
    /// Optional phase-structured workload plan. When set,
    /// [`crate::System::new`] drives the run with a
    /// [`ohm_workloads::PhasedWorkload`] over the workload's footprint
    /// instead of the spec's synthetic kernel, and the resulting
    /// [`crate::SimReport`] carries a per-phase breakdown. `None` (the
    /// default) runs the spec's kernel unchanged.
    pub phases: Option<PhasePlan>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            gpu: GpuConfig::default(),
            memory: MemoryConfig::default(),
            optical: OpticalChannelConfig::default(),
            electrical: ElectricalConfig::default(),
            insts_per_warp: 4000,
            line_bytes: 128,
            seed: 0x07_4D_67_50,
            faults: None,
            lifecycle: None,
            phases: None,
        }
    }
}

/// A configuration problem detected by [`SystemConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The memory system needs at least one controller.
    NoControllers,
    /// L1 line size must match the system access granularity.
    LineSizeMismatch {
        /// L1 line size configured.
        l1: u64,
        /// System access granularity configured.
        system: u64,
    },
    /// A size parameter that must be a power of two is not.
    NotPowerOfTwo(&'static str),
    /// The GPU needs at least one SM and one warp per SM.
    EmptyGpu,
    /// A capacity ratio must be positive.
    ZeroRatio(&'static str),
    /// The per-warp instruction budget must be positive.
    ZeroBudget,
    /// Origin's resident fraction must be finite and in `(0, 1]`.
    BadResidentFraction(f64),
    /// A fault-plan field is outside its valid range.
    BadFaultPlan(&'static str),
    /// A lifecycle-plan field is outside its valid range.
    BadLifecyclePlan(&'static str),
    /// A phase-plan field is outside its valid range.
    BadPhasePlan(&'static str),
    /// A workload footprint is incompatible with the memory geometry.
    BadFootprint {
        /// The offending footprint in bytes.
        bytes: u64,
        /// The constraint it violates.
        why: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoControllers => write!(f, "need at least one memory controller"),
            ConfigError::LineSizeMismatch { l1, system } => {
                write!(
                    f,
                    "L1 line size {l1} does not match system granularity {system}"
                )
            }
            ConfigError::NotPowerOfTwo(what) => write!(f, "{what} must be a power of two"),
            ConfigError::EmptyGpu => write!(f, "need at least one SM and one warp per SM"),
            ConfigError::ZeroRatio(what) => write!(f, "{what} must be positive"),
            ConfigError::ZeroBudget => write!(f, "instructions per warp must be positive"),
            ConfigError::BadResidentFraction(v) => {
                write!(f, "origin resident fraction {v} must be in (0, 1]")
            }
            ConfigError::BadFaultPlan(what) => write!(f, "fault plan: {what}"),
            ConfigError::BadLifecyclePlan(what) => write!(f, "lifecycle plan: {what}"),
            ConfigError::BadPhasePlan(what) => write!(f, "phase plan: {what}"),
            ConfigError::BadFootprint { bytes, why } => {
                write!(f, "footprint of {bytes} bytes: {why}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl SystemConfig {
    /// Checks the configuration for the problems [`crate::System`] would
    /// otherwise panic on, returning the first one found.
    ///
    /// # Errors
    ///
    /// Returns the specific [`ConfigError`] describing the inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.memory.controllers == 0 {
            return Err(ConfigError::NoControllers);
        }
        if self.gpu.sms == 0 || self.gpu.sm.warps == 0 {
            return Err(ConfigError::EmptyGpu);
        }
        if self.insts_per_warp == 0 {
            return Err(ConfigError::ZeroBudget);
        }
        if self.gpu.l1.line_bytes != self.line_bytes {
            return Err(ConfigError::LineSizeMismatch {
                l1: self.gpu.l1.line_bytes,
                system: self.line_bytes,
            });
        }
        for (what, v) in [
            ("line size", self.line_bytes),
            ("page size", self.memory.page_bytes),
            ("interleave granularity", self.memory.interleave_bytes),
            ("origin segment size", self.memory.origin_segment_bytes),
        ] {
            if !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo(what));
            }
        }
        if self.memory.planar_ratio == 0 {
            return Err(ConfigError::ZeroRatio("planar DRAM:XPoint ratio"));
        }
        if self.memory.two_level_ratio == 0 {
            return Err(ConfigError::ZeroRatio("two-level DRAM:XPoint ratio"));
        }
        let frac = self.memory.origin_resident_fraction;
        if !(frac.is_finite() && frac > 0.0 && frac <= 1.0) {
            return Err(ConfigError::BadResidentFraction(frac));
        }
        if let Some(plan) = &self.faults {
            if !plan.q_derate.is_finite() || plan.q_derate < 1.0 {
                return Err(ConfigError::BadFaultPlan(
                    "q_derate must be finite and >= 1.0",
                ));
            }
            if plan.mrr_fault_ppm > 1_000_000 {
                return Err(ConfigError::BadFaultPlan(
                    "mrr_fault_ppm must be <= 1,000,000",
                ));
            }
            if plan.xpoint.stall_ppm > 1_000_000 {
                return Err(ConfigError::BadFaultPlan(
                    "xpoint stall_ppm must be <= 1,000,000",
                ));
            }
        }
        if let Some(plan) = &self.lifecycle {
            let xp = &plan.xpoint;
            if !xp.ecc_onset.is_finite() || !(0.0..1.0).contains(&xp.ecc_onset) {
                return Err(ConfigError::BadLifecyclePlan(
                    "ecc_onset must be finite and in [0, 1)",
                ));
            }
            if xp.ecc_correctable_ppm > 1_000_000 || xp.ecc_uncorrectable_ppm > 1_000_000 {
                return Err(ConfigError::BadLifecyclePlan(
                    "ECC rates must be <= 1,000,000 ppm",
                ));
            }
            if xp.endurance_jitter_pct >= 100 {
                return Err(ConfigError::BadLifecyclePlan(
                    "endurance_jitter_pct must be < 100",
                ));
            }
        }
        if let Some(plan) = &self.phases {
            plan.validate().map_err(ConfigError::BadPhasePlan)?;
        }
        Ok(())
    }

    /// A small configuration for unit/integration tests: fewer SMs and
    /// warps, short instruction budgets — runs in milliseconds.
    pub fn quick_test() -> Self {
        let mut cfg = SystemConfig::default();
        cfg.gpu.sms = 4;
        cfg.gpu.sm.warps = 8;
        cfg.insts_per_warp = 800;
        cfg.gpu.l2 = CacheConfig {
            size_bytes: 768 * 1024,
            ways: 8,
            line_bytes: 128,
        };
        cfg.memory.hot_threshold = 8;
        cfg.memory.origin_segment_bytes = 1 << 20;
        cfg
    }

    /// The configuration used by the figure harnesses: full Table I GPU
    /// with a moderate instruction budget.
    /// The L2 is scaled with the same factor as the workload footprints
    /// (DESIGN.md: footprints shrink from the paper's 8 GB to 512 MB, so
    /// the 6 MB L2 shrinks to 768 KB to preserve the cache : footprint
    /// ratio the paper's memory system operates under).
    pub fn evaluation() -> Self {
        let mut cfg = SystemConfig {
            insts_per_warp: 3000,
            ..SystemConfig::default()
        };
        cfg.gpu.l2 = CacheConfig {
            size_bytes: 768 * 1024,
            ways: 8,
            line_bytes: 128,
        };
        // K80-class (GK210) SMs hold up to 64 resident warps; the full
        // occupancy is what loads the memory channel to the paper's
        // operating point.
        cfg.gpu.sm.warps = 64;
        cfg
    }

    /// The footprint used by the figure harnesses (512 MB; see
    /// [`SystemConfig::evaluation`]).
    pub const EVALUATION_FOOTPRINT: u64 = 512 << 20;

    /// DRAM capacity (bytes) for a heterogeneous platform covering
    /// `footprint` in the given mode, preserving the Table I ratios.
    pub fn dram_capacity_for(&self, mode: OperationalMode, footprint: u64) -> u64 {
        let ratio = match mode {
            OperationalMode::Planar => self.memory.planar_ratio as u64 + 1,
            OperationalMode::TwoLevel => self.memory.two_level_ratio as u64 + 1,
        };
        (footprint / ratio).max(self.memory.page_bytes)
    }

    /// Per-controller DRAM device configuration for a total capacity.
    pub fn dram_config(&self, total_capacity: u64) -> DramConfig {
        DramConfig {
            timing: self.memory.dram_timing,
            banks: self.memory.dram_banks,
            ranks: 1,
            row_bytes: 2048,
            capacity_bytes: (total_capacity / self.memory.controllers as u64).max(2048),
            refresh_enabled: true,
        }
    }

    /// Per-controller XPoint configuration for a total capacity.
    pub fn xpoint_config(&self, total_capacity: u64) -> XPointConfig {
        XPointConfig {
            capacity_bytes: (total_capacity / self.memory.controllers as u64).max(4096),
            ..self.memory.xpoint.media
        }
    }

    /// Checks that a workload footprint is compatible with this
    /// configuration's memory geometry: at least one line, and a whole
    /// number of migration pages (partial pages would leave planner
    /// groups half-backed by nothing).
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadFootprint`] naming the violated constraint.
    pub fn validate_footprint(&self, bytes: u64) -> Result<(), ConfigError> {
        if bytes < self.line_bytes {
            return Err(ConfigError::BadFootprint {
                bytes,
                why: "smaller than one line",
            });
        }
        if !bytes.is_multiple_of(self.memory.page_bytes) {
            return Err(ConfigError::BadFootprint {
                bytes,
                why: "not a multiple of the page size",
            });
        }
        Ok(())
    }

    /// The canonical content form of this configuration — the string
    /// the checkpoint journal hashes cells by (see
    /// [`crate::checkpoint::cell_key`]).
    ///
    /// This is the complete derived `Debug` rendering: every field of
    /// every nested config appears (none of the config types hold maps
    /// or other order-unstable containers, so the rendering is
    /// deterministic), and any structural change to the configuration —
    /// a new field, a renamed knob — changes the canonical form. That
    /// is the conservative property a result cache needs: a config
    /// whose meaning may have shifted between builds re-simulates
    /// instead of replaying a stale record.
    pub fn canonical(&self) -> String {
        format!("{self:?}")
    }

    /// Starts a [`SystemConfigBuilder`] from the Table I defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfig::default().to_builder()
    }

    /// Starts a [`SystemConfigBuilder`] from this configuration — the
    /// idiom for experiment harnesses that sweep one knob of a named
    /// base configuration (e.g. [`SystemConfig::evaluation`]).
    pub fn to_builder(self) -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: self,
            footprint: None,
        }
    }
}

/// Fluent, validating constructor for [`SystemConfig`].
///
/// Setters cover the knobs the experiment harnesses sweep; [`build`]
/// runs [`SystemConfig::validate`] so an inconsistent configuration is
/// reported as a [`ConfigError`] at construction instead of a panic
/// deep inside [`crate::System`].
///
/// [`build`]: SystemConfigBuilder::build
///
/// # Example
///
/// ```
/// use ohm_core::SystemConfig;
///
/// let cfg = SystemConfig::evaluation()
///     .to_builder()
///     .planar_ratio(16)
///     .hot_threshold(32)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.memory.planar_ratio, 16);
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
    /// Workload footprint the configuration will drive, if declared —
    /// checked against the memory geometry at [`build`] time.
    ///
    /// [`build`]: SystemConfigBuilder::build
    footprint: Option<u64>,
}

impl SystemConfigBuilder {
    /// Number of streaming multiprocessors.
    pub fn sms(mut self, sms: usize) -> Self {
        self.cfg.gpu.sms = sms;
        self
    }

    /// Resident warps per SM.
    pub fn warps_per_sm(mut self, warps: usize) -> Self {
        self.cfg.gpu.sm.warps = warps;
        self
    }

    /// Instruction budget per warp lane.
    pub fn insts_per_warp(mut self, insts: u64) -> Self {
        self.cfg.insts_per_warp = insts;
        self
    }

    /// Number of memory controllers / channels.
    pub fn controllers(mut self, controllers: usize) -> Self {
        self.cfg.memory.controllers = controllers;
        self
    }

    /// Address-interleave granularity across controllers.
    pub fn interleave_bytes(mut self, bytes: u64) -> Self {
        self.cfg.memory.interleave_bytes = bytes;
        self
    }

    /// DRAM:XPoint capacity ratio in planar mode.
    pub fn planar_ratio(mut self, ratio: usize) -> Self {
        self.cfg.memory.planar_ratio = ratio;
        self
    }

    /// DRAM:XPoint capacity ratio in two-level mode.
    pub fn two_level_ratio(mut self, ratio: usize) -> Self {
        self.cfg.memory.two_level_ratio = ratio;
        self
    }

    /// Planar hot-page promotion threshold (accesses).
    pub fn hot_threshold(mut self, threshold: u32) -> Self {
        self.cfg.memory.hot_threshold = threshold;
        self
    }

    /// Fraction of the footprint resident in Origin's DRAM, in `(0, 1]`.
    pub fn origin_resident_fraction(mut self, fraction: f64) -> Self {
        self.cfg.memory.origin_resident_fraction = fraction;
        self
    }

    /// Number of optical waveguides.
    pub fn optical_waveguides(mut self, waveguides: u32) -> Self {
        self.cfg.optical.waveguides = waveguides;
        self
    }

    /// Optical channel-division strategy.
    pub fn optical_division(mut self, division: ChannelDivision) -> Self {
        self.cfg.optical.division = division;
        self
    }

    /// RNG seed for workload generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Fault-injection plan (`None` disables injection).
    pub fn faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// XPoint wear-out lifecycle plan (`None` disables the lifecycle).
    pub fn lifecycle(mut self, plan: Option<LifecyclePlan>) -> Self {
        self.cfg.lifecycle = plan;
        self
    }

    /// Phase-structured workload plan (`None` runs the spec's kernel).
    pub fn phases(mut self, plan: Option<PhasePlan>) -> Self {
        self.cfg.phases = plan;
        self
    }

    /// Escape hatch for fields without a dedicated setter.
    pub fn tweak(mut self, f: impl FnOnce(&mut SystemConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Declares the workload footprint this configuration will drive
    /// (e.g. the value passed to `WorkloadSpec::with_footprint`), so
    /// [`build`](Self::build) rejects footprints the memory geometry
    /// cannot express — smaller than one line, or not a whole number of
    /// migration pages — with a typed [`ConfigError::BadFootprint`]
    /// instead of a panic deep inside workload generation.
    pub fn footprint(mut self, bytes: u64) -> Self {
        self.footprint = Some(bytes);
        self
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by
    /// [`SystemConfig::validate`], or [`ConfigError::BadFootprint`] when
    /// a declared [`footprint`](Self::footprint) does not fit the memory
    /// geometry.
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        self.cfg.validate()?;
        if let Some(bytes) = self.footprint {
            self.cfg.validate_footprint(bytes)?;
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.gpu.sms, 16);
        assert_eq!(cfg.gpu.sm.freq, Freq::from_ghz(1.2));
        assert_eq!(cfg.memory.controllers, 6);
        assert_eq!(cfg.memory.dram_timing.trcd, Ps::from_ns(25));
        assert_eq!(cfg.memory.dram_timing.trp, Ps::from_ns(10));
        assert_eq!(cfg.memory.dram_timing.tcl, Ps::from_ns(11));
        assert_eq!(cfg.memory.dram_timing.trrd, Ps::from_ns(5));
        assert_eq!(cfg.memory.xpoint.media.read_latency, Ps::from_ns(190));
        assert_eq!(cfg.memory.xpoint.media.write_latency, Ps::from_ns(763));
        assert_eq!(cfg.optical.grid.channels(), 6);
        assert_eq!(cfg.optical.grid.bits_per_channel(), 16);
        assert_eq!(cfg.optical.freq, Freq::from_ghz(30.0));
        assert_eq!(cfg.electrical.channels, 6);
        assert_eq!(cfg.electrical.width_bits, 32);
        assert_eq!(cfg.electrical.freq, Freq::from_ghz(15.0));
        assert_eq!(cfg.memory.planar_ratio, 8);
        assert_eq!(cfg.memory.two_level_ratio, 64);
    }

    #[test]
    fn capacity_ratios_preserved() {
        let cfg = SystemConfig::default();
        let fp = 288 << 20;
        let planar = cfg.dram_capacity_for(OperationalMode::Planar, fp);
        assert_eq!(planar, fp / 9);
        let two = cfg.dram_capacity_for(OperationalMode::TwoLevel, fp);
        assert_eq!(two, fp / 65);
    }

    #[test]
    fn per_controller_split() {
        let cfg = SystemConfig::default();
        let d = cfg.dram_config(6 << 20);
        assert_eq!(d.capacity_bytes, 1 << 20);
        let x = cfg.xpoint_config(12 << 20);
        assert_eq!(x.capacity_bytes, 2 << 20);
    }

    #[test]
    fn footprint_validation_rejects_bad_geometry() {
        let cfg = SystemConfig::default();
        // Smaller than one line.
        assert_eq!(
            cfg.validate_footprint(64),
            Err(ConfigError::BadFootprint {
                bytes: 64,
                why: "smaller than one line",
            })
        );
        // Not a whole number of pages.
        assert_eq!(
            cfg.validate_footprint(4096 + 128),
            Err(ConfigError::BadFootprint {
                bytes: 4096 + 128,
                why: "not a multiple of the page size",
            })
        );
        assert!(cfg.validate_footprint(256 << 20).is_ok());
        assert!(cfg.validate_footprint(16 << 30).is_ok());
        // The error names the value and constraint.
        let msg = cfg.validate_footprint(64).unwrap_err().to_string();
        assert!(msg.contains("64") && msg.contains("line"), "{msg}");
    }

    #[test]
    fn builder_validates_declared_footprints() {
        let err = SystemConfig::builder()
            .footprint(4096 + 128)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadFootprint { .. }));
        let cfg = SystemConfig::builder()
            .footprint(256 << 20)
            .build()
            .expect("whole-page footprint is valid");
        assert_eq!(cfg.memory.page_bytes, 4096);
    }

    #[test]
    fn validate_accepts_defaults_and_names_problems() {
        assert_eq!(SystemConfig::default().validate(), Ok(()));
        assert_eq!(SystemConfig::quick_test().validate(), Ok(()));
        assert_eq!(SystemConfig::evaluation().validate(), Ok(()));

        let mut cfg = SystemConfig::default();
        cfg.memory.controllers = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoControllers));

        // L1 still 128
        let cfg = SystemConfig {
            line_bytes: 256,
            ..Default::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::LineSizeMismatch { .. })
        ));

        let mut cfg = SystemConfig::default();
        cfg.memory.page_bytes = 3000;
        assert_eq!(cfg.validate(), Err(ConfigError::NotPowerOfTwo("page size")));

        let cfg = SystemConfig {
            insts_per_warp: 0,
            ..Default::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroBudget));
        assert!(ConfigError::ZeroBudget.to_string().contains("positive"));
    }

    #[test]
    fn validate_checks_fault_plans() {
        let mut cfg = SystemConfig::quick_test();
        cfg.faults = Some(FaultPlan::at_severity(7, 0.5));
        assert_eq!(cfg.validate(), Ok(()));

        let mut bad = cfg.clone();
        bad.faults.as_mut().unwrap().q_derate = 0.5;
        assert!(matches!(bad.validate(), Err(ConfigError::BadFaultPlan(_))));

        let mut bad = cfg.clone();
        bad.faults.as_mut().unwrap().mrr_fault_ppm = 2_000_000;
        assert!(matches!(bad.validate(), Err(ConfigError::BadFaultPlan(_))));

        let mut bad = cfg;
        bad.faults.as_mut().unwrap().xpoint.stall_ppm = 2_000_000;
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("fault plan"), "{err}");
    }

    #[test]
    fn validate_checks_lifecycle_plans() {
        let mut cfg = SystemConfig::quick_test();
        cfg.lifecycle = Some(LifecyclePlan::accelerated(7, 10_000));
        assert_eq!(cfg.validate(), Ok(()));
        cfg.lifecycle = Some(LifecyclePlan::quiescent(7));
        assert_eq!(cfg.validate(), Ok(()));

        let mut bad = cfg.clone();
        bad.lifecycle.as_mut().unwrap().xpoint.ecc_onset = 1.5;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::BadLifecyclePlan(_))
        ));

        let mut bad = cfg.clone();
        bad.lifecycle.as_mut().unwrap().xpoint.ecc_correctable_ppm = 2_000_000;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::BadLifecyclePlan(_))
        ));

        let mut bad = cfg;
        bad.lifecycle.as_mut().unwrap().xpoint.endurance_jitter_pct = 100;
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("lifecycle plan"), "{err}");
    }

    #[test]
    fn validate_checks_phase_plans() {
        let mut cfg = SystemConfig::quick_test();
        cfg.phases = Some(PhasePlan::llm_inference());
        assert_eq!(cfg.validate(), Ok(()));

        let mut bad = cfg.clone();
        bad.phases.as_mut().unwrap().phases.clear();
        assert!(matches!(bad.validate(), Err(ConfigError::BadPhasePlan(_))));

        let mut bad = cfg;
        bad.phases.as_mut().unwrap().phases[0].read_ratio = -0.5;
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("phase plan"), "{err}");

        let built = SystemConfig::quick_test()
            .to_builder()
            .phases(Some(PhasePlan::llm_inference()))
            .build()
            .expect("reference plan is valid");
        assert_eq!(built.phases.unwrap().phases.len(), 5);
    }

    #[test]
    fn builder_sets_and_validates() {
        let cfg = SystemConfig::builder()
            .sms(4)
            .warps_per_sm(8)
            .insts_per_warp(500)
            .planar_ratio(16)
            .two_level_ratio(32)
            .hot_threshold(32)
            .seed(7)
            .build()
            .expect("valid");
        assert_eq!(cfg.gpu.sms, 4);
        assert_eq!(cfg.gpu.sm.warps, 8);
        assert_eq!(cfg.insts_per_warp, 500);
        assert_eq!(cfg.memory.planar_ratio, 16);
        assert_eq!(cfg.memory.two_level_ratio, 32);
        assert_eq!(cfg.memory.hot_threshold, 32);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn builder_rejects_invalid() {
        assert_eq!(
            SystemConfig::builder().controllers(0).build(),
            Err(ConfigError::NoControllers)
        );
        assert_eq!(
            SystemConfig::builder().sms(0).build(),
            Err(ConfigError::EmptyGpu)
        );
        assert_eq!(
            SystemConfig::builder().interleave_bytes(3000).build(),
            Err(ConfigError::NotPowerOfTwo("interleave granularity"))
        );
        assert_eq!(
            SystemConfig::builder().planar_ratio(0).build(),
            Err(ConfigError::ZeroRatio("planar DRAM:XPoint ratio"))
        );
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let err = SystemConfig::builder()
                .origin_resident_fraction(bad)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::BadResidentFraction(_)),
                "{bad}: {err}"
            );
        }
        assert!(ConfigError::BadResidentFraction(1.5)
            .to_string()
            .contains("(0, 1]"));
    }

    #[test]
    fn builder_tweak_reaches_any_field() {
        let cfg = SystemConfig::quick_test()
            .to_builder()
            .tweak(|c| c.memory.mshr_per_mc = 64)
            .build()
            .expect("valid");
        assert_eq!(cfg.memory.mshr_per_mc, 64);
    }

    #[test]
    fn quick_test_is_smaller() {
        let q = SystemConfig::quick_test();
        let d = SystemConfig::default();
        assert!(q.gpu.sms < d.gpu.sms);
        assert!(q.insts_per_warp < d.insts_per_warp);
    }
}
