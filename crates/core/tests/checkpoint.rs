//! Crash-recovery and fault-isolation integration tests for the
//! durable sweep layer (DESIGN.md §3.10).
//!
//! The headline scenario: a checkpointed grid is killed mid-write (a
//! torn tail record, exactly what `SIGKILL` leaves behind), reopened,
//! and resumed — and the resumed `GridResult` must be bit-identical
//! (golden content digest) to an uninterrupted run's, with the
//! journalled cells replayed rather than re-simulated.

use ohm_core::config::SystemConfig;
use ohm_core::runner::{CellOutcome, GridRun};
use ohm_core::Journal;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_sim::ExponentialBackoff;
use ohm_workloads::{workload_by_name, WorkloadSpec};

/// Tier-1-speed grid inputs: two platforms × two workloads at the
/// golden-test footprint.
fn grid_inputs() -> (SystemConfig, Vec<Platform>, Vec<WorkloadSpec>) {
    let cfg = SystemConfig::quick_test();
    let platforms = vec![Platform::OhmBase, Platform::Hetero];
    let specs = ["lud", "pagerank"]
        .into_iter()
        .map(|name| {
            workload_by_name(name)
                .unwrap()
                .with_footprint(SystemConfig::EVALUATION_FOOTPRINT / 8)
        })
        .collect();
    (cfg, platforms, specs)
}

fn scratch_journal(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ohm-checkpoint-it-{}-{name}.ohmj",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn kill_resume_is_bit_identical_to_uninterrupted_run() {
    let (cfg, platforms, specs) = grid_inputs();
    let path = scratch_journal("kill-resume");

    // The golden reference: an uninterrupted, checkpoint-free run.
    let fresh = GridRun::serial().run(&cfg, &platforms, OperationalMode::Planar, &specs);
    let golden = fresh.digest();
    assert!(fresh.outcomes.iter().all(|o| *o == CellOutcome::Completed));

    // First checkpointed run: journals every cell, digest already equal.
    let first =
        GridRun::serial()
            .checkpoint(&path)
            .run(&cfg, &platforms, OperationalMode::Planar, &specs);
    assert_eq!(first.digest(), golden, "checkpointing perturbed results");

    // "SIGKILL mid-write": tear the journal inside its final record.
    let bytes = std::fs::read(&path).expect("journal exists");
    std::fs::write(&path, &bytes[..bytes.len() - 37]).unwrap();

    // Resume. The torn cell must be re-simulated, the intact ones
    // replayed, and the result bit-identical to the golden run.
    let resumed =
        GridRun::serial()
            .checkpoint(&path)
            .run(&cfg, &platforms, OperationalMode::Planar, &specs);
    assert_eq!(
        resumed.digest(),
        golden,
        "resumed run diverged from the uninterrupted reference"
    );
    let cached = resumed
        .outcomes
        .iter()
        .filter(|o| **o == CellOutcome::Cached)
        .count();
    let completed = resumed
        .outcomes
        .iter()
        .filter(|o| **o == CellOutcome::Completed)
        .count();
    assert!(cached >= 1, "no cell was replayed from the journal");
    assert!(completed >= 1, "the torn cell was not re-simulated");
    assert_eq!(cached + completed, resumed.outcomes.len());

    // After the resume the journal is whole again: a third run replays
    // everything.
    let third =
        GridRun::serial()
            .checkpoint(&path)
            .run(&cfg, &platforms, OperationalMode::Planar, &specs);
    assert_eq!(third.digest(), golden);
    assert!(third.outcomes.iter().all(|o| *o == CellOutcome::Cached));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_ignores_harness_knobs_but_not_config() {
    let (cfg, platforms, specs) = grid_inputs();
    let path = scratch_journal("knobs");

    let first =
        GridRun::serial()
            .checkpoint(&path)
            .run(&cfg, &platforms, OperationalMode::Planar, &specs);

    // Worker counts and profiling are harness knobs — strict-mode
    // results are bit-identical across them, so they are deliberately
    // outside the cell key and the journal still hits.
    let resumed = GridRun::new()
        .threads(2)
        .cell_threads(2)
        .profile(true)
        .checkpoint(&path)
        .run(&cfg, &platforms, OperationalMode::Planar, &specs);
    assert_eq!(resumed.digest(), first.digest());
    assert!(resumed.outcomes.iter().all(|o| *o == CellOutcome::Cached));

    // A config change invalidates every cell.
    let mut other = cfg.clone();
    other.seed ^= 1;
    let other_run = GridRun::serial().checkpoint(&path).run(
        &other,
        &platforms,
        OperationalMode::Planar,
        &specs,
    );
    assert!(
        other_run
            .outcomes
            .iter()
            .all(|o| *o == CellOutcome::Completed),
        "a changed config must not hit the cache"
    );

    let _ = std::fs::remove_file(&path);
}

/// A workload whose footprint is not a whole number of pages —
/// `System::new` rejects it with a deterministic panic, the test
/// vehicle for quarantine.
fn poison_spec() -> WorkloadSpec {
    workload_by_name("lud").unwrap().with_footprint(4096 + 128)
}

#[test]
fn quarantined_cell_does_not_abort_isolated_grid() {
    let (cfg, _, mut specs) = grid_inputs();
    specs.insert(1, poison_spec()); // [good, poison, good]
    let platforms = [Platform::OhmBase];

    let result =
        GridRun::serial()
            .isolate(true)
            .run(&cfg, &platforms, OperationalMode::Planar, &specs);

    assert_eq!(result.rows.len(), 3, "grid shape must survive quarantine");
    assert_eq!(result.outcomes.len(), 3);
    assert_eq!(result.outcomes[0], CellOutcome::Completed);
    assert_eq!(result.outcomes[2], CellOutcome::Completed);
    let e = match &result.outcomes[1] {
        CellOutcome::Quarantined(e) => e,
        other => panic!("expected quarantine, got {other:?}"),
    };
    assert_eq!(e.index, 1);
    assert_eq!(e.attempts, 1);
    assert!(e.payload.contains("footprint"), "{e}");
    assert_eq!(result.failures().count(), 1);

    // The quarantined slot is a zeroed placeholder, not a report.
    assert_eq!(result.rows[1][0].ipc, 0.0);
    assert_eq!(result.rows[1][0].instructions, 0);
    // Healthy neighbours are bit-identical to a strict run of theirs.
    let healthy: Vec<WorkloadSpec> = vec![specs[0], specs[2]];
    let reference = GridRun::serial().run(&cfg, &platforms, OperationalMode::Planar, &healthy);
    assert_eq!(result.rows[0][0], reference.rows[0][0]);
    assert_eq!(result.rows[2][0], reference.rows[1][0]);
}

#[test]
fn strict_mode_still_rethrows() {
    let (cfg, _, mut specs) = grid_inputs();
    specs[0] = poison_spec();
    let platforms = [Platform::OhmBase];
    let panicked = std::panic::catch_unwind(|| {
        GridRun::serial().run(&cfg, &platforms, OperationalMode::Planar, &specs)
    });
    assert!(
        panicked.is_err(),
        "strict mode must preserve the rethrow contract"
    );
}

#[test]
fn retries_are_counted_and_bounded() {
    let (cfg, _, _) = grid_inputs();
    let specs = [poison_spec()];
    let platforms = [Platform::OhmBase];
    let result = GridRun::serial()
        .max_retries(2)
        .retry_backoff(ExponentialBackoff::NONE)
        .run(&cfg, &platforms, OperationalMode::Planar, &specs);
    let e = result.failures().next().expect("poison cell quarantined");
    assert_eq!(e.attempts, 3, "1 initial + 2 retries");
    assert!(!e.timed_out);
}

#[test]
fn isolated_checkpoint_journals_only_completed_cells() {
    let (cfg, _, mut specs) = grid_inputs();
    specs.push(poison_spec());
    let platforms = [Platform::OhmBase];
    let path = scratch_journal("quarantine");

    let result = GridRun::serial().isolate(true).checkpoint(&path).run(
        &cfg,
        &platforms,
        OperationalMode::Planar,
        &specs,
    );
    assert_eq!(result.failures().count(), 1);

    // Quarantined cells must never be journalled as results.
    let journal = Journal::open(&path).unwrap();
    assert_eq!(journal.len(), specs.len() - 1);

    // A resume replays the healthy cells and re-attempts the poison one
    // (it is not silently dropped).
    let resumed = GridRun::serial().isolate(true).checkpoint(&path).run(
        &cfg,
        &platforms,
        OperationalMode::Planar,
        &specs,
    );
    assert_eq!(
        resumed
            .outcomes
            .iter()
            .filter(|o| **o == CellOutcome::Cached)
            .count(),
        specs.len() - 1
    );
    assert_eq!(resumed.failures().count(), 1);
    assert_eq!(resumed.digest(), result.digest());

    let _ = std::fs::remove_file(&path);
}
