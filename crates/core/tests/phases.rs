//! Per-phase reporting: a phase-structured run must produce a
//! `PhaseSummary` whose rows line up with the configured `PhasePlan`,
//! attribute real work to every phase, and be deterministic.

use ohm_core::config::SystemConfig;
use ohm_core::runner::Run;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::{workload_by_name, PhasePlan};

fn phased_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::quick_test();
    cfg.insts_per_warp = 600;
    cfg.phases = Some(PhasePlan::llm_inference());
    cfg
}

#[test]
fn phase_summary_matches_the_plan_shape() {
    let cfg = phased_cfg();
    let plan = cfg.phases.clone().unwrap();
    let spec = workload_by_name("gctopo").unwrap();
    let report = Run::new(&cfg)
        .platform(Platform::Hetero)
        .mode(OperationalMode::TwoLevel)
        .workload(&spec)
        .execute();

    let summary = report.phases.expect("phased config produces a summary");
    assert_eq!(summary.phases.len(), plan.phases.len());
    for (row, spec) in summary.phases.iter().zip(&plan.phases) {
        assert_eq!(row.name, spec.name, "rows come out in plan order");
        assert!(
            row.instructions > 0,
            "{}: no instructions attributed",
            row.name
        );
        assert!(row.ipc > 0.0, "{}: zero IPC", row.name);
        assert!(row.span.1 >= row.span.0, "{}: inverted span", row.name);
        assert!(row.mem_requests > 0, "{}: no memory requests", row.name);
        assert!(
            (0.0..=1.0).contains(&row.dram_hit_rate),
            "{}: hit rate out of range",
            row.name
        );
    }

    // Phase instruction totals account for every retired instruction.
    let phase_insts: u64 = summary.phases.iter().map(|r| r.instructions).sum();
    assert_eq!(phase_insts, report.instructions);
}

#[test]
fn kv_phases_hit_the_xpoint_tier() {
    // On a heterogeneous platform the KV-cache phases live in the upper
    // slice of the footprint, far beyond planar DRAM — the scan phase
    // must be served (at least partly) from XPoint.
    let cfg = phased_cfg();
    let spec = workload_by_name("gctopo").unwrap();
    let report = Run::new(&cfg)
        .platform(Platform::Hetero)
        .mode(OperationalMode::TwoLevel)
        .workload(&spec)
        .execute();
    let summary = report.phases.unwrap();
    let scan = summary
        .phases
        .iter()
        .find(|r| r.name == "kv-scan")
        .expect("reference plan has a kv-scan phase");
    assert!(
        scan.xpoint_served > 0,
        "kv-scan should reach beyond planar DRAM (dram {} / xpoint {})",
        scan.dram_served,
        scan.xpoint_served
    );
    // The format helper renders one headline line per phase.
    let table = summary.format_table();
    for row in &summary.phases {
        assert!(table.contains(&row.name), "table missing {}", row.name);
    }
}

#[test]
fn phased_runs_are_deterministic() {
    let cfg = phased_cfg();
    let spec = workload_by_name("pagerank").unwrap();
    let a = Run::new(&cfg)
        .platform(Platform::OhmWom)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    let b = Run::new(&cfg)
        .platform(Platform::OhmWom)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    assert_eq!(a, b);
}

#[test]
fn unphased_runs_report_no_phase_summary() {
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name("gctopo").unwrap();
    let report = Run::new(&cfg)
        .platform(Platform::OhmBase)
        .mode(OperationalMode::Planar)
        .workload(&spec)
        .execute();
    assert!(report.phases.is_none());
}
