//! Observability guarantees: enabling the stage/trace sinks must never
//! change simulated results, and the Chrome-trace export must be valid
//! trace-event JSON.

use ohm_core::config::SystemConfig;
use ohm_core::system::System;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

fn cell(platform: Platform, mode: OperationalMode, workload: &str, observe: bool) -> System {
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name(workload).unwrap();
    let mut sys = System::new(&cfg, platform, mode, &spec);
    if observe {
        sys.enable_observability();
    }
    sys
}

/// Turning the sinks on must not perturb a single simulated number:
/// the reports differ only in the `stages` summary itself.
#[test]
fn enabling_observability_is_timing_neutral() {
    for (platform, mode) in [
        (Platform::OhmBase, OperationalMode::Planar),
        (Platform::OhmWom, OperationalMode::Planar),
        (Platform::Hetero, OperationalMode::TwoLevel),
        (Platform::Origin, OperationalMode::Planar),
    ] {
        let baseline = cell(platform, mode, "pagerank", false).run();
        let mut observed = cell(platform, mode, "pagerank", true).run();
        assert!(baseline.stages.is_none());
        assert!(
            observed.stages.is_some(),
            "{platform:?}: observability enabled but no stage summary"
        );
        observed.stages = None;
        assert_eq!(
            baseline, observed,
            "{platform:?}/{mode:?}: observability changed simulated results"
        );
    }
}

#[test]
fn stage_summary_covers_the_request_path() {
    let mut sys = cell(Platform::OhmBase, OperationalMode::Planar, "bfsdata", true);
    let report = sys.run();
    let summary = report.stages.expect("enabled");
    let by_name = |name: &str| {
        summary
            .stages
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing stage row {name}"))
    };
    // A heterogeneous planar run exercises every stage.
    for name in [
        "l1-hit",
        "l2-hit",
        "ctrl-queue",
        "channel-xfer",
        "dram-access",
        "xpoint-access",
        "migration",
    ] {
        let row = by_name(name);
        assert!(row.count > 0, "{name}: no samples recorded");
        assert!(row.mean_ns.is_finite() && row.mean_ns >= 0.0);
        assert!(row.p50_ns <= row.p99_ns, "{name}: p50 > p99");
    }
    assert!(!summary.utilization.is_empty());
    for util in &summary.utilization {
        assert!(
            (0.0..=1.0).contains(&util.mean_utilization),
            "{}: mean utilization {} out of range",
            util.name,
            util.mean_utilization
        );
        assert!((0.0..=1.0).contains(&util.peak_utilization));
    }
    let table = summary.format_table();
    assert!(table.contains("xpoint-access"));
    assert!(table.contains("peak_util"));
}

/// The export is Chrome trace-event JSON: an object with a
/// `traceEvents` array of "X" (complete) spans carrying `ts`/`dur`/
/// `pid`/`tid`, plus "M" metadata naming the tracks.
#[test]
fn chrome_trace_has_trace_event_shape() {
    let mut sys = cell(Platform::OhmBase, OperationalMode::Planar, "pagerank", true);
    sys.run();
    let json = sys.chrome_trace().expect("enabled");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("}\n") || json.ends_with('}'));
    for needle in [
        "\"ph\":\"X\"",
        "\"ts\":",
        "\"dur\":",
        "\"pid\":",
        "\"tid\":",
        "\"ph\":\"M\"",
        "\"name\":\"thread_name\"",
        "\"name\":\"process_name\"",
        "\"displayTimeUnit\":\"ns\"",
    ] {
        assert!(json.contains(needle), "trace JSON missing {needle}");
    }
    // Stage spans and channel spans both land in the trace.
    assert!(json.contains("\"name\":\"l1-hit\""));
    assert!(json.contains("\"name\":\"dram-access\""));
    assert!(json.contains("data-route"));
    // Balanced brackets — cheap structural check without a JSON parser.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces in trace JSON");
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

/// Without `enable_observability` the trace hook reports nothing and
/// the report omits the stage summary — the zero-overhead default.
#[test]
fn disabled_sinks_produce_no_trace() {
    let mut sys = cell(
        Platform::OhmBase,
        OperationalMode::Planar,
        "pagerank",
        false,
    );
    let report = sys.run();
    assert!(report.stages.is_none());
    assert!(sys.chrome_trace().is_none());
}

/// `report()` and `chrome_trace()` both drain the fabric's interval log;
/// calling them in either order must not double-count or lose spans.
#[test]
fn trace_after_report_still_contains_channel_spans() {
    let mut sys = cell(Platform::OhmBase, OperationalMode::Planar, "pagerank", true);
    let report = sys.run(); // report() drains intervals into the collector
    let json = sys.chrome_trace().expect("enabled");
    assert!(json.contains("data-route"));
    let summary = report.stages.expect("enabled");
    let xfer = summary
        .stages
        .iter()
        .find(|s| s.name == "channel-xfer")
        .unwrap();
    assert!(xfer.count > 0);
}
