//! Golden `SimReport` snapshots — the bit-identity gate for hot-path
//! optimisations.
//!
//! Every cell here runs with a fixed seed and digests its report down
//! to a text form in which every `f64` carries its exact bit pattern,
//! then compares against `tests/golden/simreports.txt`. Any
//! "optimisation" that changes a single bit of any field — timing,
//! energy, fault tallies, wear curves, stage histograms — fails the
//! diff. The cells cover both memory modes, quiescent *and* armed
//! fault/lifecycle plans, and one observability-enabled run so the
//! stage-recording path is pinned too.
//!
//! To rebless after an intentional behaviour change:
//!
//! ```text
//! OHM_BLESS=1 cargo test -p ohm-core --test golden
//! ```
//!
//! and commit the rewritten snapshot with an explanation of why the
//! behaviour moved.

use std::fmt::Write as _;

use ohm_core::config::SystemConfig;
use ohm_core::fault::{FaultPlan, LifecyclePlan};
use ohm_core::metrics::SimReport;
use ohm_core::system::System;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

/// Seed for the armed plans (distinct from the config seed so the
/// streams visibly fork).
const PLAN_SEED: u64 = 0xA5;

/// Exact textual form of an `f64`: human-readable value plus the bit
/// pattern the comparison actually rides on.
fn f(v: f64) -> String {
    format!("{v:.6e}#{:016x}", v.to_bits())
}

fn digest_report(label: &str, r: &SimReport) -> String {
    let mut d = String::new();
    let _ = writeln!(d, "[{label}]");
    let _ = writeln!(d, "platform={}", r.platform.name());
    let _ = writeln!(d, "mode={:?}", r.mode);
    let _ = writeln!(d, "workload={}", r.workload);
    let _ = writeln!(d, "makespan_ps={:?}", r.makespan);
    let _ = writeln!(d, "instructions={}", r.instructions);
    let _ = writeln!(d, "ipc={}", f(r.ipc));
    let _ = writeln!(d, "mem_requests={}", r.mem_requests);
    let _ = writeln!(d, "avg_mem_latency_ns={}", f(r.avg_mem_latency_ns));
    let _ = writeln!(d, "l1_hit_rate={}", f(r.l1_hit_rate));
    let _ = writeln!(d, "l2_hit_rate={}", f(r.l2_hit_rate));
    let _ = writeln!(d, "hetero_dram_hit_rate={}", f(r.hetero_dram_hit_rate));
    let _ = writeln!(
        d,
        "migration_channel_fraction={}",
        f(r.migration_channel_fraction)
    );
    let _ = writeln!(d, "migrations={}", r.migrations);
    let _ = writeln!(d, "channel_utilization={}", f(r.channel_utilization));
    let _ = writeln!(d, "channel_bits={},{}", r.channel_bits.0, r.channel_bits.1);
    let _ = writeln!(d, "energy.dma_j={}", f(r.energy.dma_j));
    let _ = writeln!(d, "energy.dram_static_j={}", f(r.energy.dram_static_j));
    let _ = writeln!(d, "energy.dram_dynamic_j={}", f(r.energy.dram_dynamic_j));
    let _ = writeln!(d, "energy.xpoint_j={}", f(r.energy.xpoint_j));
    let _ = writeln!(d, "wear_imbalance={}", f(r.wear_imbalance));
    match &r.host {
        None => {
            let _ = writeln!(d, "host=none");
        }
        Some(h) => {
            let _ = writeln!(
                d,
                "host=storage_busy:{:?},dma_busy:{:?},in:{},out:{},bytes:{}",
                h.storage_busy, h.dma_busy, h.staged_in, h.staged_out, h.bytes_moved
            );
        }
    }
    match &r.faults {
        None => {
            let _ = writeln!(d, "faults=none");
        }
        Some(ft) => {
            let _ = writeln!(
                d,
                "faults=corrupted:{},retx:{},exhausted:{},mrr:{},rearb:{},fallback:{},\
                 stalls:{},retries:{},poisoned:{}",
                ft.corrupted_transfers,
                ft.retransmissions,
                ft.retx_exhausted,
                ft.mrr_faults,
                ft.rearbitrations,
                ft.electrical_fallbacks,
                ft.media_stalls,
                ft.media_retries,
                ft.poisoned_lines
            );
        }
    }
    match &r.wear {
        None => {
            let _ = writeln!(d, "wear=none");
        }
        Some(w) => {
            let _ = writeln!(
                d,
                "wear=retired:{},spares:{}/{},ecc_c:{},ecc_u:{},dead:{},usable:{}",
                w.retired_lines,
                w.spares_used,
                w.spares_total,
                w.ecc_corrected,
                w.ecc_uncorrectable,
                w.dead_lines,
                f(w.usable_capacity)
            );
            for (when, frac) in &w.capacity_curve {
                let _ = writeln!(d, "wear.curve={when:?},{}", f(*frac));
            }
            match &w.planner {
                None => {
                    let _ = writeln!(d, "wear.planner=none");
                }
                Some(p) => {
                    let _ = writeln!(
                        d,
                        "wear.planner=pinned:{},usable:{},ratio:{}",
                        p.pinned,
                        f(p.usable_fraction),
                        f(p.effective_ratio)
                    );
                }
            }
        }
    }
    match &r.stages {
        None => {
            let _ = writeln!(d, "stages=none");
        }
        Some(s) => {
            for row in &s.stages {
                let _ = writeln!(
                    d,
                    "stage.{}=count:{},mean:{},p50:{},p99:{}",
                    row.name,
                    row.count,
                    f(row.mean_ns),
                    f(row.p50_ns),
                    f(row.p99_ns)
                );
            }
            for u in &s.utilization {
                let _ = writeln!(
                    d,
                    "util.{}=busy:{},mean:{},peak:{}",
                    u.name,
                    f(u.busy_us),
                    f(u.mean_utilization),
                    f(u.peak_utilization)
                );
            }
            let _ = writeln!(d, "stages.dropped={}", s.dropped_events);
        }
    }
    d
}

struct GoldenCell {
    label: &'static str,
    platform: Platform,
    mode: OperationalMode,
    workload: &'static str,
    faults: Option<FaultPlan>,
    lifecycle: Option<LifecyclePlan>,
    observability: bool,
}

fn cells() -> Vec<GoldenCell> {
    vec![
        GoldenCell {
            label: "planar-plain",
            platform: Platform::OhmWom,
            mode: OperationalMode::Planar,
            workload: "pagerank",
            faults: None,
            lifecycle: None,
            observability: false,
        },
        GoldenCell {
            label: "twolevel-plain",
            platform: Platform::OhmBase,
            mode: OperationalMode::TwoLevel,
            workload: "bfsdata",
            faults: None,
            lifecycle: None,
            observability: false,
        },
        // Quiescent plans must stay bit-identical to plan-free runs in
        // every headline field; pinning them separately catches a fast
        // path that forgets the is-quiescent check.
        GoldenCell {
            label: "planar-quiescent-plans",
            platform: Platform::OhmWom,
            mode: OperationalMode::Planar,
            workload: "pagerank",
            faults: Some(FaultPlan::quiescent(PLAN_SEED)),
            lifecycle: Some(LifecyclePlan::quiescent(PLAN_SEED)),
            observability: false,
        },
        GoldenCell {
            label: "planar-armed",
            platform: Platform::OhmBw,
            mode: OperationalMode::Planar,
            workload: "lud",
            faults: Some(FaultPlan::at_severity(PLAN_SEED, 0.7)),
            lifecycle: Some(LifecyclePlan::accelerated(PLAN_SEED, 2)),
            observability: false,
        },
        GoldenCell {
            label: "twolevel-armed",
            platform: Platform::OhmBase,
            mode: OperationalMode::TwoLevel,
            workload: "gctopo",
            faults: Some(FaultPlan::at_severity(PLAN_SEED, 0.7)),
            lifecycle: Some(LifecyclePlan::accelerated(PLAN_SEED, 2)),
            observability: false,
        },
        // Observability on: pins the stage-recording path (batched
        // drains must not change a histogram bucket).
        GoldenCell {
            label: "planar-observed",
            platform: Platform::OhmBase,
            mode: OperationalMode::Planar,
            workload: "FDTD",
            faults: None,
            lifecycle: None,
            observability: true,
        },
    ]
}

fn run_cell(cell: &GoldenCell) -> String {
    let mut cfg = SystemConfig::quick_test();
    cfg.faults = cell.faults.clone();
    cfg.lifecycle = cell.lifecycle.clone();
    let spec = workload_by_name(cell.workload)
        .unwrap()
        .with_footprint(SystemConfig::EVALUATION_FOOTPRINT / 8);
    let mut sys = System::new(&cfg, cell.platform, cell.mode, &spec);
    if cell.observability {
        sys.enable_observability();
    }
    let report = sys.run();
    digest_report(cell.label, &report)
}

#[test]
fn reports_match_golden_snapshots() {
    let mut digest = String::new();
    for cell in cells() {
        digest.push_str(&run_cell(&cell));
        digest.push('\n');
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/simreports.txt");
    if std::env::var("OHM_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &digest).unwrap();
        eprintln!("blessed {path}");
        return;
    }

    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {path} ({e}); run with OHM_BLESS=1"));
    if digest != golden {
        let mismatch = digest
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (got, want))) => panic!(
                "SimReport drifted from golden snapshot at line {}:\n  golden: {want}\n  \
                 got:    {got}\nIf the change is intentional, rebless with OHM_BLESS=1 \
                 and explain the behaviour change in the commit.",
                i + 1
            ),
            None => panic!(
                "SimReport digest length changed ({} vs {} golden lines); rebless with \
                 OHM_BLESS=1 if intentional",
                digest.lines().count(),
                golden.lines().count()
            ),
        }
    }
}

#[test]
fn armed_cells_actually_exercise_the_plans() {
    // The golden file only gates what the runs *produce*; this guards
    // what they *cover* — if a future change makes the armed plans
    // no-ops, the snapshots would still match while the bit-identity
    // gate silently stopped covering the fault/lifecycle paths.
    let armed = cells()
        .into_iter()
        .find(|c| c.label == "planar-armed")
        .unwrap();
    let mut cfg = SystemConfig::quick_test();
    cfg.faults = armed.faults.clone();
    cfg.lifecycle = armed.lifecycle.clone();
    let spec = workload_by_name(armed.workload)
        .unwrap()
        .with_footprint(SystemConfig::EVALUATION_FOOTPRINT / 8);
    let report = System::new(&cfg, armed.platform, armed.mode, &spec).run();
    let faults = report.faults.expect("fault plan armed");
    let wear = report.wear.expect("lifecycle plan armed");
    assert!(
        faults.total_recoveries() > 0,
        "armed fault plan injected nothing: {faults:?}"
    );
    assert!(
        wear.ecc_corrected + wear.retired_lines > 0,
        "armed lifecycle plan aged nothing: {wear:?}"
    );
}
