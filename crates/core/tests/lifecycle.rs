//! Wear-out lifecycle guarantees: a disabled (or quiescent, or
//! never-triggering) lifecycle is bit-identical to the plan-free
//! simulator, armed plans reproduce retirement sequences exactly,
//! accelerated aging degrades IPC and effective capacity monotonically
//! while surviving total spare exhaustion, and retired media drops out
//! of both planners' migration targets.

use ohm_core::config::SystemConfig;
use ohm_core::fault::LifecyclePlan;
use ohm_core::system::System;
use ohm_core::SimReport;
use ohm_hetero::{
    PlanarConfig, PlanarMapping, Platform, TwoLevelCache, TwoLevelConfig, TwoLevelOutcome,
};
use ohm_optic::OperationalMode;
use ohm_sim::Addr;
use ohm_workloads::workload_by_name;

const SEED: u64 = 0x11FE;

fn run_with(plan: Option<LifecyclePlan>) -> SimReport {
    let mut cfg = SystemConfig::quick_test();
    cfg.lifecycle = plan;
    let spec = workload_by_name("pagerank").unwrap();
    let mut sys = System::new(&cfg, Platform::OhmWom, OperationalMode::Planar, &spec);
    sys.run()
}

/// Strips the wear tally so a lifecycle-bearing report can be compared
/// bit-for-bit against the plan-free baseline on every other field.
fn without_wear(mut r: SimReport) -> SimReport {
    r.wear = None;
    r
}

/// The determinism contract's baseline: a quiescent plan arms nothing
/// and must not perturb a single bit of the simulation.
#[test]
fn quiescent_plan_is_bit_identical_to_no_plan() {
    let baseline = run_with(None);
    let quiescent = run_with(Some(LifecyclePlan::quiescent(SEED)));
    assert!(baseline.wear.is_none());
    let wear = quiescent.wear.clone().expect("plan configured");
    assert_eq!(wear.retired_lines, 0);
    assert_eq!(wear.dead_lines, 0);
    assert_eq!(wear.usable_capacity, 1.0);
    assert_eq!(
        baseline,
        without_wear(quiescent),
        "a quiescent lifecycle plan changed simulated results"
    );
}

/// The armed-but-untriggered case (the CI tier-1 gate): a real plan with
/// an endurance budget the kernel can never exhaust stays below the ECC
/// onset, draws no random numbers, and is bit-identical to running with
/// the lifecycle disabled.
#[test]
fn zero_wear_run_is_bit_identical_to_disabled_lifecycle() {
    let baseline = run_with(None);
    let armed = run_with(Some(LifecyclePlan::accelerated(SEED, 1 << 40)));
    let wear = armed.wear.clone().expect("plan configured");
    assert_eq!(wear.ecc_corrected + wear.ecc_uncorrectable, 0);
    assert_eq!(wear.retired_lines, 0);
    assert!(wear.spares_total > 0, "lifecycle was not armed");
    assert_eq!(
        baseline,
        without_wear(armed),
        "an armed but untriggered lifecycle changed simulated results"
    );
}

/// Same seed + same config ⇒ the identical retirement sequence: the full
/// report, including every wear tally and the timestamped capacity
/// curve, matches bit-for-bit across reruns.
#[test]
fn same_seed_reproduces_identical_retirement_sequence() {
    let a = run_with(Some(LifecyclePlan::accelerated(SEED, 1)));
    let b = run_with(Some(LifecyclePlan::accelerated(SEED, 1)));
    assert_eq!(a, b, "identical lifecycle reruns diverged");
    let wear = a.wear.unwrap();
    assert!(wear.retired_lines > 0, "accelerated plan retired nothing");
    assert!(
        !wear.capacity_curve.is_empty(),
        "escalations left no capacity curve"
    );
}

/// The `fig_lifetime` acceptance sweep: as the endurance budget shrinks,
/// IPC and effective XPoint capacity are monotone non-increasing, and
/// the harshest point exhausts 100% of the spare region yet completes on
/// the best-effort dead-line path.
#[test]
fn aging_degrades_monotonically_and_survives_spare_exhaustion() {
    let reports: Vec<SimReport> = [0u64, 2, 1]
        .iter()
        .map(|&e| run_with((e > 0).then(|| LifecyclePlan::accelerated(SEED, e))))
        .collect();
    for pair in reports.windows(2) {
        assert!(
            pair[1].ipc <= pair[0].ipc,
            "aging raised IPC: {} -> {}",
            pair[0].ipc,
            pair[1].ipc
        );
        let usable = |r: &SimReport| r.wear.as_ref().map_or(1.0, |w| w.usable_capacity);
        assert!(
            usable(&pair[1]) <= usable(&pair[0]),
            "aging grew usable capacity"
        );
    }
    let oldest = reports.last().unwrap().wear.clone().unwrap();
    assert!(oldest.spares_total > 0);
    assert_eq!(
        oldest.spares_used, oldest.spares_total,
        "harshest endurance left spares unused"
    );
    assert!(
        oldest.dead_lines > 0,
        "spare exhaustion produced no dead lines"
    );
    assert!(oldest.usable_capacity < 1.0);
    // Planner-side evidence that dead media left the migration schedule:
    // promotions were pinned and the effective ratio shrank.
    let planner = oldest.planner.expect("planar backend reports wear");
    assert!(planner.pinned > 0, "no promotions were pinned");
    assert!(planner.usable_fraction < 1.0);
    assert!(planner.effective_ratio < 8.0);
}

/// Planar planner: once a demotion target is retired, the hot page stays
/// pinned in DRAM — no swap is ever offered onto the dead page — while
/// other sub-slots in the same group remain eligible.
#[test]
fn retired_pages_leave_planar_migration_targets() {
    let cfg = PlanarConfig {
        page_bytes: 4096,
        ratio: 8,
        hot_threshold: 4,
        capacity_bytes: 4096 * 9 * 4, // four groups
    };
    let mut map = PlanarMapping::new(cfg);
    // Pages are laid out column-major (group = page % groups), so slot 1
    // of group 0 is logical page `groups`. Hammer it until it trips.
    let hot = Addr::new(4 * 4096);
    let req = loop {
        if let Some(req) = map.record_access(hot) {
            break req;
        }
    };
    // Retire the demotion target instead of committing the swap.
    assert!(map.retire_xpoint_page(req.xpoint_addr));
    assert!(map.is_xpoint_page_retired(req.xpoint_addr));
    // The same page re-heats but is never again offered a swap.
    for _ in 0..3 * cfg.hot_threshold {
        assert_eq!(
            map.record_access(hot),
            None,
            "planner offered a retired page as a swap target"
        );
    }
    assert!(map.pinned_swaps() >= 1);
    assert_eq!(map.swaps(), 0);
    // A different slot maps to a different sub-slot and still migrates.
    let other = Addr::new(2 * 4 * 4096);
    let req = loop {
        if let Some(req) = map.record_access(other) {
            break req;
        }
    };
    assert!(!map.is_xpoint_page_retired(req.xpoint_addr));
    assert!(map.usable_xpoint_fraction() < 1.0);
    assert!(map.effective_ratio() < cfg.ratio as f64);
}

/// Two-level cache: retired-backed lines bypass the fill path entirely,
/// and a cached retired-backed resident pins its slot against healthy
/// rivals.
#[test]
fn retired_lines_leave_two_level_fill_targets() {
    let cfg = TwoLevelConfig {
        dram_bytes: 4096,
        xpoint_bytes: 64 * 4096,
        line_bytes: 256,
    };
    let span = cfg.dram_bytes; // one cache generation
    let mut cache = TwoLevelCache::new(cfg);
    // An uncached line whose backing store is retired must never fill.
    let dead = Addr::new(span);
    assert!(cache.retire_line(dead));
    match cache.access(dead, false) {
        TwoLevelOutcome::Bypass { xpoint_addr } => assert_eq!(xpoint_addr, dead),
        other => panic!("retired line was offered a fill: {other:?}"),
    }
    assert!(!cache.contains(dead), "retired line was cached");
    // A healthy resident that is retired afterwards pins its slot: the
    // rival mapping to the same index bypasses instead of evicting it.
    let resident = Addr::new(2 * span);
    assert!(!cache.access(resident, true).is_hit());
    assert!(cache.retire_line(resident));
    let rival = Addr::new(3 * span);
    assert!(matches!(
        cache.access(rival, false),
        TwoLevelOutcome::Bypass { .. }
    ));
    assert!(cache.contains(resident), "pinned resident was evicted");
    assert_eq!(cache.pinned_lines(), 1);
    assert_eq!(cache.bypasses(), 2);
    assert!(cache.usable_xpoint_fraction() < 1.0);
}
