//! Property-based tests over the full system: random small configurations
//! must simulate without panics and satisfy the accounting identities.

use ohm_core::config::SystemConfig;
use ohm_core::runner::run_platform;
use ohm_core::Platform;
use ohm_optic::OperationalMode;
use ohm_sim::Ps;
use ohm_workloads::all_workloads;
use proptest::prelude::*;

fn tiny_cfg(sms: usize, warps: usize, insts: u64, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::quick_test();
    cfg.gpu.sms = sms;
    cfg.gpu.sm.warps = warps;
    cfg.insts_per_warp = insts;
    cfg.seed = seed;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any platform/mode/workload on a random tiny machine completes and
    /// retires the exact instruction budget.
    #[test]
    fn random_configs_complete(
        sms in 1usize..4,
        warps in 1usize..6,
        insts in 100u64..600,
        seed in any::<u64>(),
        platform_idx in 0usize..7,
        workload_idx in 0usize..10,
        two_level in any::<bool>(),
    ) {
        let cfg = tiny_cfg(sms, warps, insts, seed);
        let platform = Platform::ALL[platform_idx];
        let mode = if two_level { OperationalMode::TwoLevel } else { OperationalMode::Planar };
        let spec = all_workloads()[workload_idx];
        let r = run_platform(&cfg, platform, mode, &spec);
        prop_assert_eq!(r.instructions, (sms * warps) as u64 * insts);
        prop_assert!(r.makespan > Ps::ZERO);
        prop_assert!(r.ipc > 0.0);
        prop_assert!((0.0..=1.0).contains(&r.migration_channel_fraction));
        prop_assert!(r.avg_mem_latency_ns >= 0.0);
    }

    /// Doubling the instruction budget at least doubles retired work and
    /// never shrinks the makespan.
    #[test]
    fn longer_kernels_take_longer(seed in any::<u64>(), insts in 200u64..500) {
        let spec = all_workloads()[4]; // betw
        let short = run_platform(
            &tiny_cfg(2, 4, insts, seed),
            Platform::OhmBase,
            OperationalMode::Planar,
            &spec,
        );
        let long = run_platform(
            &tiny_cfg(2, 4, insts * 2, seed),
            Platform::OhmBase,
            OperationalMode::Planar,
            &spec,
        );
        prop_assert_eq!(long.instructions, short.instructions * 2);
        prop_assert!(long.makespan >= short.makespan);
    }
}
