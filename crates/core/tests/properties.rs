//! Randomized-property tests over the full system: random small
//! configurations must simulate without panics and satisfy the accounting
//! identities. Cases are drawn from the workspace's own deterministic
//! [`SplitMix64`] generator; set `OHM_SOAK_ITERS` to raise the case
//! count for a long soak run.

use ohm_core::config::SystemConfig;
use ohm_core::runner::Run;
use ohm_core::Platform;
use ohm_optic::OperationalMode;
use ohm_sim::{Ps, SplitMix64};
use ohm_workloads::all_workloads;

fn tiny_cfg(sms: usize, warps: usize, insts: u64, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::quick_test();
    cfg.gpu.sms = sms;
    cfg.gpu.sm.warps = warps;
    cfg.insts_per_warp = insts;
    cfg.seed = seed;
    cfg
}

/// Any platform/mode/workload on a random tiny machine completes and
/// retires the exact instruction budget.
#[test]
fn random_configs_complete() {
    let mut rng = SplitMix64::new(0x5F5);
    for _case in 0..ohm_sim::soak_iters(12) {
        let sms = 1 + rng.next_below(3) as usize;
        let warps = 1 + rng.next_below(5) as usize;
        let insts = 100 + rng.next_below(500);
        let seed = rng.next_u64();
        let platform = Platform::ALL[rng.next_below(7) as usize];
        let mode = if rng.chance(0.5) {
            OperationalMode::TwoLevel
        } else {
            OperationalMode::Planar
        };
        let spec = all_workloads()[rng.next_below(10) as usize];
        let cfg = tiny_cfg(sms, warps, insts, seed);
        let r = Run::new(&cfg)
            .platform(platform)
            .mode(mode)
            .workload(&spec)
            .execute();
        assert_eq!(r.instructions, (sms * warps) as u64 * insts);
        assert!(r.makespan > Ps::ZERO);
        assert!(r.ipc > 0.0);
        assert!((0.0..=1.0).contains(&r.migration_channel_fraction));
        assert!(r.avg_mem_latency_ns >= 0.0);
    }
}

/// Doubling the instruction budget at least doubles retired work and
/// never shrinks the makespan.
#[test]
fn longer_kernels_take_longer() {
    let mut rng = SplitMix64::new(0x10E);
    for _case in 0..ohm_sim::soak_iters(6) {
        let seed = rng.next_u64();
        let insts = 200 + rng.next_below(300);
        let spec = all_workloads()[4]; // betw
        let short_cfg = tiny_cfg(2, 4, insts, seed);
        let short = Run::new(&short_cfg).workload(&spec).execute();
        let long_cfg = tiny_cfg(2, 4, insts * 2, seed);
        let long = Run::new(&long_cfg).workload(&spec).execute();
        assert_eq!(long.instructions, short.instructions * 2);
        assert!(long.makespan >= short.makespan);
    }
}
