//! Fault-injection guarantees: a quiescent plan is indistinguishable
//! from no plan at all, armed plans are deterministic, severity degrades
//! performance monotonically, and every recovery path surfaces in both
//! the fault counters and the observability stage taxonomy.

use ohm_core::config::SystemConfig;
use ohm_core::fault::FaultPlan;
use ohm_core::system::System;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

fn run_with(plan: Option<FaultPlan>, observe: bool) -> ohm_core::SimReport {
    let mut cfg = SystemConfig::quick_test();
    cfg.faults = plan;
    let spec = workload_by_name("pagerank").unwrap();
    let mut sys = System::new(&cfg, Platform::OhmWom, OperationalMode::Planar, &spec);
    if observe {
        sys.enable_observability();
    }
    sys.run()
}

/// The determinism contract's baseline: a plan whose rates are all zero
/// draws no random numbers, so the report is bit-identical to a plan-free
/// run — the only difference is the (all-zero) fault tally itself.
#[test]
fn quiescent_plan_is_bit_identical_to_no_plan() {
    let baseline = run_with(None, false);
    let mut quiescent = run_with(Some(FaultPlan::quiescent(0xFA17)), false);
    assert!(baseline.faults.is_none());
    let tally = quiescent.faults.take().expect("plan armed");
    assert_eq!(tally, Default::default(), "quiescent plan injected faults");
    assert_eq!(
        baseline, quiescent,
        "a zero-rate fault plan changed simulated results"
    );
}

/// Same seed + same plan ⇒ bit-identical report, even at high severity.
#[test]
fn armed_plans_are_deterministic() {
    let a = run_with(Some(FaultPlan::at_severity(7, 0.75)), false);
    let b = run_with(Some(FaultPlan::at_severity(7, 0.75)), false);
    assert_eq!(a, b, "identical plan reruns diverged");
    assert!(a.faults.unwrap().total_recoveries() > 0);
}

/// More injected faults can only cost performance: IPC degrades and the
/// recovery tallies grow monotonically with severity.
#[test]
fn severity_degrades_ipc_monotonically() {
    let reports: Vec<_> = [0.0, 0.5, 1.0]
        .iter()
        .map(|&s| run_with(Some(FaultPlan::at_severity(0xFA17, s)), false))
        .collect();
    for pair in reports.windows(2) {
        assert!(
            pair[1].ipc < pair[0].ipc,
            "IPC did not degrade: {} !< {}",
            pair[1].ipc,
            pair[0].ipc
        );
        assert!(
            pair[1].faults.unwrap().total_recoveries() > pair[0].faults.unwrap().total_recoveries(),
            "recovery count did not grow with severity"
        );
    }
}

/// At full severity every recovery mechanism fires, and each one is
/// visible both as a counter and as a first-class stage row.
#[test]
fn every_recovery_path_is_observable() {
    let report = run_with(Some(FaultPlan::at_severity(0xFA17, 1.0)), true);
    let f = report.faults.expect("plan armed");
    assert!(f.corrupted_transfers > 0, "no CRC corruption: {f:?}");
    assert!(f.retransmissions > 0, "no retransmissions: {f:?}");
    assert!(f.mrr_faults > 0, "no MRR faults: {f:?}");
    assert!(f.rearbitrations > 0, "no re-arbitrations: {f:?}");
    assert!(f.electrical_fallbacks > 0, "no electrical fallbacks: {f:?}");
    assert!(f.media_stalls > 0, "no media stalls: {f:?}");
    assert!(f.media_retries > 0, "no media retries: {f:?}");

    let summary = report.stages.expect("observability enabled");
    for name in [
        "retransmit",
        "rearbitrate",
        "fallback-electrical",
        "media-retry",
    ] {
        let row = summary
            .stages
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing recovery stage row {name}"));
        assert!(row.count > 0, "{name}: recovery path never recorded");
        assert!(row.mean_ns.is_finite() && row.mean_ns >= 0.0);
    }
}

/// Recovery spans ride the existing trace plumbing: a degraded run's
/// Chrome trace names the recovery tracks with no extra wiring.
#[test]
fn degraded_runs_trace_recovery_stages() {
    let mut cfg = SystemConfig::quick_test();
    cfg.faults = Some(FaultPlan::at_severity(0xFA17, 1.0));
    let spec = workload_by_name("pagerank").unwrap();
    let mut sys = System::new(&cfg, Platform::OhmWom, OperationalMode::Planar, &spec);
    sys.enable_observability();
    sys.run();
    let json = sys.chrome_trace().expect("enabled");
    for name in ["retransmit", "rearbitrate", "media-retry"] {
        assert!(
            json.contains(&format!("\"name\":\"{name}\"")),
            "trace missing {name} spans"
        );
    }
}
