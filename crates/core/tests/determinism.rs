//! Regression tests for the parallel harness: fanning simulation cells
//! out over worker threads must not change a single bit of any report.
//!
//! Every cell builds its own `System` from a cloned config, so the only
//! way parallelism could leak into results is shared state introduced by
//! accident — which is exactly what these tests guard against. They run
//! an explicit 4-thread pool (the host may expose fewer cores) against
//! the single-thread reference.

use ohm_core::config::SystemConfig;
use ohm_core::fault::{FaultPlan, LifecyclePlan};
use ohm_core::runner::GridRun;
use ohm_core::sweep::{sweep_serial, sweep_threaded};
use ohm_core::system::System;
use ohm_core::SimReport;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

const PLATFORMS: [Platform; 4] = [
    Platform::Hetero,
    Platform::OhmBase,
    Platform::AutoRw,
    Platform::OhmWom,
];
const WORKLOADS: [&str; 4] = ["lud", "pagerank", "bfsdata", "FDTD"];

#[test]
fn parallel_grid_matches_serial_bit_for_bit() {
    let cfg = SystemConfig::quick_test();
    let specs: Vec<_> = WORKLOADS
        .iter()
        .map(|w| workload_by_name(w).unwrap())
        .collect();
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        let serial = GridRun::serial().run(&cfg, &PLATFORMS, mode, &specs).rows;
        let threaded = GridRun::new()
            .threads(4)
            .run(&cfg, &PLATFORMS, mode, &specs)
            .rows;
        assert_eq!(
            serial, threaded,
            "thread count changed {mode:?} grid results"
        );
        // Shape sanity: results[workload][platform] in input order.
        assert_eq!(threaded.len(), WORKLOADS.len());
        for (row, spec) in threaded.iter().zip(&specs) {
            assert_eq!(row.len(), PLATFORMS.len());
            for (report, &platform) in row.iter().zip(&PLATFORMS) {
                assert_eq!(report.workload, spec.name);
                assert_eq!(report.platform, platform);
            }
        }
    }
}

#[test]
fn parallel_grid_is_stable_across_thread_counts() {
    // An odd worker count that does not divide the cell count exercises
    // the index-scatter path; the results must still be identical.
    let cfg = SystemConfig::quick_test();
    let specs: Vec<_> = WORKLOADS
        .iter()
        .map(|w| workload_by_name(w).unwrap())
        .collect();
    let reference = GridRun::serial()
        .run(&cfg, &PLATFORMS, OperationalMode::Planar, &specs)
        .rows;
    for threads in [2, 3, 5] {
        let got = GridRun::new()
            .threads(threads)
            .run(&cfg, &PLATFORMS, OperationalMode::Planar, &specs)
            .rows;
        assert_eq!(reference, got, "{threads} threads diverged from serial");
    }
}

fn report_at(
    cfg: &SystemConfig,
    platform: Platform,
    workload: &str,
    threads: usize,
) -> (SimReport, bool) {
    let spec = workload_by_name(workload).unwrap();
    let mut sys = System::new(cfg, platform, OperationalMode::Planar, &spec);
    sys.set_cell_threads(threads);
    let report = sys.run();
    let engaged = sys.used_cell_parallelism();
    (report, engaged)
}

/// The intra-cell sharding contract (DESIGN.md §3.8): strict mode is
/// bit-identical to the serial event loop at every thread count — for a
/// plain cell, for an armed wear-out lifecycle that actively retires
/// lines mid-run (per-controller RNG state rides along with the shard),
/// and for an armed optical fault plan, which cannot be partitioned and
/// must fall back to the serial loop rather than approximate.
#[test]
fn cell_threads_strict_mode_is_bit_identical() {
    let plain = SystemConfig::quick_test();
    let mut lifecycle = SystemConfig::quick_test();
    lifecycle.lifecycle = Some(LifecyclePlan::accelerated(0x11FE, 4));
    let mut faulty = SystemConfig::quick_test();
    faulty.faults = Some(FaultPlan::at_severity(0xFA17, 0.75));
    for (name, cfg, platform, must_shard) in [
        ("plain", &plain, Platform::OhmBase, true),
        ("lifecycle", &lifecycle, Platform::OhmWom, true),
        ("faulty", &faulty, Platform::OhmBase, false),
    ] {
        let (reference, engaged) = report_at(cfg, platform, "pagerank", 1);
        assert!(!engaged, "{name}: one thread must run serially");
        for threads in [2, 8] {
            let (got, engaged) = report_at(cfg, platform, "pagerank", threads);
            assert_eq!(
                engaged, must_shard,
                "{name}@{threads}: unexpected scheduler choice"
            );
            assert_eq!(
                reference, got,
                "{name}@{threads}: strict mode diverged from serial"
            );
        }
    }
}

/// The Origin host model owns cross-controller staging state, so its
/// backend refuses to split and the run must fall back to serial (and
/// still match, trivially).
#[test]
fn origin_falls_back_to_serial() {
    let cfg = SystemConfig::quick_test();
    let (reference, _) = report_at(&cfg, Platform::Origin, "lud", 1);
    let (got, engaged) = report_at(&cfg, Platform::Origin, "lud", 4);
    assert!(!engaged, "origin must not shard");
    assert_eq!(reference, got);
}

/// Relaxed mode trades serial equivalence for longer epochs: it must
/// still complete, stay deterministic for a fixed thread count, and land
/// near the strict timing (EXPERIMENTS.md quantifies the error; this
/// only guards against gross breakage).
#[test]
fn relaxed_window_is_deterministic_and_close() {
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name("pagerank").unwrap();
    let strict = report_at(&cfg, Platform::OhmBase, "pagerank", 1).0;
    let run_relaxed = || {
        let mut sys = System::new(&cfg, Platform::OhmBase, OperationalMode::Planar, &spec);
        sys.set_cell_threads(4);
        sys.set_relaxed_window(2.0);
        let r = sys.run();
        assert!(sys.used_cell_parallelism());
        r
    };
    let a = run_relaxed();
    let b = run_relaxed();
    assert_eq!(a, b, "relaxed mode must stay deterministic");
    let drift = (a.ipc - strict.ipc).abs() / strict.ipc;
    assert!(
        drift < 0.05,
        "relaxed ipc {} drifted {:.2}% from strict {}",
        a.ipc,
        drift * 100.0,
        strict.ipc
    );
}

#[test]
fn parallel_sweep_matches_serial_bit_for_bit() {
    let base = SystemConfig::quick_test();
    let spec = workload_by_name("pagerank").unwrap();
    let knobs = [1u32, 2, 4, 8];
    let configure = |cfg: &mut SystemConfig, &w: &u32| cfg.optical.waveguides = w;
    let serial = sweep_serial(
        &base,
        Platform::OhmBw,
        OperationalMode::Planar,
        &spec,
        knobs,
        configure,
    );
    let threaded = sweep_threaded(
        &base,
        Platform::OhmBw,
        OperationalMode::Planar,
        &spec,
        knobs,
        configure,
        4,
    );
    assert_eq!(serial.len(), threaded.len());
    for (s, t) in serial.iter().zip(&threaded) {
        assert_eq!(s.value, t.value, "sweep points out of order");
        assert_eq!(
            s.report, t.report,
            "thread count changed sweep point {}",
            s.value
        );
    }
}
