//! Regression tests for the parallel harness: fanning simulation cells
//! out over worker threads must not change a single bit of any report.
//!
//! Every cell builds its own `System` from a cloned config, so the only
//! way parallelism could leak into results is shared state introduced by
//! accident — which is exactly what these tests guard against. They run
//! an explicit 4-thread pool (the host may expose fewer cores) against
//! the single-thread reference.

use ohm_core::config::SystemConfig;
use ohm_core::runner::GridRun;
use ohm_core::sweep::{sweep_serial, sweep_threaded};
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

const PLATFORMS: [Platform; 4] = [
    Platform::Hetero,
    Platform::OhmBase,
    Platform::AutoRw,
    Platform::OhmWom,
];
const WORKLOADS: [&str; 4] = ["lud", "pagerank", "bfsdata", "FDTD"];

#[test]
fn parallel_grid_matches_serial_bit_for_bit() {
    let cfg = SystemConfig::quick_test();
    let specs: Vec<_> = WORKLOADS
        .iter()
        .map(|w| workload_by_name(w).unwrap())
        .collect();
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        let serial = GridRun::serial().run(&cfg, &PLATFORMS, mode, &specs).rows;
        let threaded = GridRun::new()
            .threads(4)
            .run(&cfg, &PLATFORMS, mode, &specs)
            .rows;
        assert_eq!(
            serial, threaded,
            "thread count changed {mode:?} grid results"
        );
        // Shape sanity: results[workload][platform] in input order.
        assert_eq!(threaded.len(), WORKLOADS.len());
        for (row, spec) in threaded.iter().zip(&specs) {
            assert_eq!(row.len(), PLATFORMS.len());
            for (report, &platform) in row.iter().zip(&PLATFORMS) {
                assert_eq!(report.workload, spec.name);
                assert_eq!(report.platform, platform);
            }
        }
    }
}

#[test]
fn parallel_grid_is_stable_across_thread_counts() {
    // An odd worker count that does not divide the cell count exercises
    // the index-scatter path; the results must still be identical.
    let cfg = SystemConfig::quick_test();
    let specs: Vec<_> = WORKLOADS
        .iter()
        .map(|w| workload_by_name(w).unwrap())
        .collect();
    let reference = GridRun::serial()
        .run(&cfg, &PLATFORMS, OperationalMode::Planar, &specs)
        .rows;
    for threads in [2, 3, 5] {
        let got = GridRun::new()
            .threads(threads)
            .run(&cfg, &PLATFORMS, OperationalMode::Planar, &specs)
            .rows;
        assert_eq!(reference, got, "{threads} threads diverged from serial");
    }
}

#[test]
fn parallel_sweep_matches_serial_bit_for_bit() {
    let base = SystemConfig::quick_test();
    let spec = workload_by_name("pagerank").unwrap();
    let knobs = [1u32, 2, 4, 8];
    let configure = |cfg: &mut SystemConfig, &w: &u32| cfg.optical.waveguides = w;
    let serial = sweep_serial(
        &base,
        Platform::OhmBw,
        OperationalMode::Planar,
        &spec,
        knobs,
        configure,
    );
    let threaded = sweep_threaded(
        &base,
        Platform::OhmBw,
        OperationalMode::Planar,
        &spec,
        knobs,
        configure,
        4,
    );
    assert_eq!(serial.len(), threaded.len());
    for (s, t) in serial.iter().zip(&threaded) {
        assert_eq!(s.value, t.value, "sweep points out of order");
        assert_eq!(
            s.report, t.report,
            "thread count changed sweep point {}",
            s.value
        );
    }
}
