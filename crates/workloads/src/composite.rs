//! Multi-tenant workload composition.
//!
//! The paper motivates Ohm-GPU with large-scale multi-application GPUs;
//! [`CompositeWorkload`] models that scenario by partitioning the SMs
//! among several kernels (spatial multi-tenancy, as in NVIDIA MPS or
//! MIG): each partition runs its own [`KernelWorkload`] over its own
//! footprint slice, and the partitions contend for the shared memory
//! system.

use ohm_sim::Addr;
use ohm_sm::{InstructionStream, WarpSlice};

use crate::generator::KernelWorkload;
use crate::spec::WorkloadSpec;

/// One tenant: a kernel pinned to a contiguous range of SMs, with its
/// footprint placed at an offset in the physical space.
#[derive(Debug, Clone)]
struct Tenant {
    first_sm: usize,
    sms: usize,
    base: Addr,
    kernel: KernelWorkload,
}

/// Several kernels sharing one GPU, each on its own SM partition.
///
/// # Example
///
/// ```
/// use ohm_workloads::{workload_by_name, CompositeWorkload};
/// use ohm_sm::InstructionStream;
///
/// let a = workload_by_name("pagerank").unwrap();
/// let b = workload_by_name("GRAMS").unwrap();
/// // 4 SMs: pagerank on SMs 0-1, GRAMS on SMs 2-3.
/// let mut multi = CompositeWorkload::new(&[(a, 2), (b, 2)], 8, 1000, 7);
/// assert!(multi.next_slice(0, 0).is_some()); // pagerank lane
/// assert!(multi.next_slice(2, 0).is_some()); // GRAMS lane
/// ```
#[derive(Debug, Clone)]
pub struct CompositeWorkload {
    tenants: Vec<Tenant>,
    /// Total bytes across all tenant footprints.
    total_footprint: u64,
}

impl CompositeWorkload {
    /// Builds a partitioned GPU: `parts` lists each tenant's spec and SM
    /// count (partitions are laid out contiguously from SM 0); every lane
    /// runs `warps_per_sm` warps of `insts_per_warp` instructions.
    ///
    /// Tenant footprints are placed back-to-back in the physical space so
    /// tenants never alias each other's pages.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or any SM count is zero.
    pub fn new(
        parts: &[(WorkloadSpec, usize)],
        warps_per_sm: usize,
        insts_per_warp: u64,
        seed: u64,
    ) -> Self {
        assert!(!parts.is_empty(), "need at least one tenant");
        let mut tenants = Vec::new();
        let mut first_sm = 0usize;
        let mut base = 0u64;
        for (i, &(spec, sms)) in parts.iter().enumerate() {
            assert!(sms > 0, "tenant {i} has zero SMs");
            tenants.push(Tenant {
                first_sm,
                sms,
                base: Addr::new(base),
                kernel: KernelWorkload::new(
                    spec,
                    sms,
                    warps_per_sm,
                    insts_per_warp,
                    seed.wrapping_add(i as u64),
                ),
            });
            first_sm += sms;
            base += spec.footprint_bytes;
        }
        CompositeWorkload {
            tenants,
            total_footprint: base,
        }
    }

    /// Total SMs across all partitions.
    pub fn total_sms(&self) -> usize {
        self.tenants.iter().map(|t| t.sms).sum()
    }

    /// Combined footprint of all tenants in bytes.
    pub fn total_footprint_bytes(&self) -> u64 {
        self.total_footprint
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    fn tenant_of(&mut self, sm: usize) -> Option<&mut Tenant> {
        self.tenants
            .iter_mut()
            .find(|t| sm >= t.first_sm && sm < t.first_sm + t.sms)
    }
}

impl InstructionStream for CompositeWorkload {
    fn next_slice(&mut self, sm: usize, warp: usize) -> Option<WarpSlice> {
        let tenant = self.tenant_of(sm)?;
        let local_sm = sm - tenant.first_sm;
        let base = tenant.base;
        let slice = tenant.kernel.next_slice(local_sm, warp)?;
        Some(WarpSlice {
            compute_insts: slice.compute_insts,
            access: slice.access.map(|(a, k)| (base.offset(a.get()), k)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::workload_by_name;

    fn two_tenants() -> CompositeWorkload {
        let a = workload_by_name("pagerank")
            .unwrap()
            .with_footprint(1 << 20);
        let b = workload_by_name("GRAMS").unwrap().with_footprint(1 << 20);
        CompositeWorkload::new(&[(a, 2), (b, 2)], 4, 500, 11)
    }

    #[test]
    fn partitions_cover_their_sms() {
        let mut multi = two_tenants();
        assert_eq!(multi.total_sms(), 4);
        assert_eq!(multi.tenants(), 2);
        for sm in 0..4 {
            assert!(multi.next_slice(sm, 0).is_some(), "sm {sm} must have work");
        }
        assert!(multi.next_slice(4, 0).is_none(), "beyond the partitions");
    }

    #[test]
    fn tenant_footprints_do_not_alias() {
        let mut multi = two_tenants();
        let boundary = 1u64 << 20;
        // Drain both partitions; tenant 0 addresses stay below the
        // boundary, tenant 1 addresses at or above it.
        for sm in 0..4usize {
            for w in 0..4 {
                while let Some(s) = multi.next_slice(sm, w) {
                    if let Some((addr, _)) = s.access {
                        if sm < 2 {
                            assert!(addr.get() < boundary, "tenant 0 leaked: {addr}");
                        } else {
                            assert!(addr.get() >= boundary, "tenant 1 leaked: {addr}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn budgets_are_per_lane() {
        let mut multi = two_tenants();
        let mut total = 0u64;
        for sm in 0..4usize {
            for w in 0..4 {
                while let Some(s) = multi.next_slice(sm, w) {
                    total += s.instructions();
                }
            }
        }
        assert_eq!(total, 4 * 4 * 500);
    }

    #[test]
    #[should_panic(expected = "zero SMs")]
    fn zero_sm_tenant_rejected() {
        let a = workload_by_name("lud").unwrap();
        let _ = CompositeWorkload::new(&[(a, 0)], 1, 100, 0);
    }
}
