//! Workload descriptors.

/// The memory access-pattern class of a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Sequential streaming through the footprint (stencils, BLAS-like
    /// kernels: FDTD, GRAMS).
    Streaming,
    /// Tiled/blocked locality: dwell inside a block, then jump
    /// (backprop, LU decomposition).
    Blocked {
        /// Tile size in bytes.
        block_bytes: u64,
        /// Mean accesses spent inside one tile before jumping.
        dwell: u32,
    },
    /// Power-law skewed accesses concentrated in a slowly drifting
    /// *frontier window* (graph analytics: BFS, betweenness, pagerank,
    /// SSSP/"SSSD", graph colouring). The window models the frontier /
    /// hot-vertex set that iterative graph kernels revisit; its drift
    /// generates the steady hot-page churn that drives data migration.
    Graph {
        /// Skew exponent within the window: offset ∝ u^gamma.
        gamma: f64,
        /// Window size as a fraction of the footprint.
        window_frac: f64,
        /// Fraction of accesses that range ahead of the window (cold
        /// edges being pulled in).
        cold_frac: f64,
    },
    /// Uniform random (worst-case locality).
    Uniform,
}

/// A Table II application descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Application name as in Table II.
    pub name: &'static str,
    /// Memory accesses per kilo-instruction (Table II).
    pub apki: u32,
    /// Fraction of memory accesses that are reads (Table II).
    pub read_ratio: f64,
    /// Benchmark suite of origin, for documentation.
    pub suite: &'static str,
    /// Access-pattern class.
    pub pattern: AccessPattern,
    /// Working-set footprint in bytes (paper: 8 GB, scaled 12×; see
    /// DESIGN.md — defaults here are further scaled for simulation speed
    /// and can be overridden).
    pub footprint_bytes: u64,
}

impl WorkloadSpec {
    /// Mean arithmetic instructions between two memory accesses implied by
    /// the APKI (at least zero).
    pub fn mean_compute_gap(&self) -> f64 {
        (1000.0 / self.apki as f64 - 1.0).max(0.0)
    }

    /// Returns a copy with a different footprint.
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint_bytes = bytes;
        self
    }

    /// Whether Table II would classify this workload as read-intensive
    /// (read ratio above 0.9).
    pub fn is_read_intensive(&self) -> bool {
        self.read_ratio > 0.9
    }

    /// Whether Table II would classify this workload as memory-intensive
    /// (APKI of 80 or more).
    pub fn is_memory_intensive(&self) -> bool {
        self.apki >= 80
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(apki: u32, rr: f64) -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            apki,
            read_ratio: rr,
            suite: "synthetic",
            pattern: AccessPattern::Uniform,
            footprint_bytes: 1 << 20,
        }
    }

    #[test]
    fn compute_gap_from_apki() {
        // APKI 100 -> one access every 10 instructions -> 9 compute insts.
        assert!((spec(100, 0.5).mean_compute_gap() - 9.0).abs() < 1e-12);
        // Very high APKI clamps at zero gap.
        assert_eq!(spec(2000, 0.5).mean_compute_gap(), 0.0);
    }

    #[test]
    fn intensity_classification() {
        assert!(spec(599, 0.99).is_memory_intensive());
        assert!(!spec(20, 0.52).is_memory_intensive());
        assert!(spec(100, 0.95).is_read_intensive());
        assert!(!spec(100, 0.53).is_read_intensive());
    }

    #[test]
    fn with_footprint_overrides() {
        let s = spec(100, 0.5).with_footprint(42);
        assert_eq!(s.footprint_bytes, 42);
    }
}
