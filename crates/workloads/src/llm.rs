//! Phase-structured LLM inference workloads.
//!
//! Transformer inference is not one kernel but a *sequence of phases*
//! with sharply different memory behaviour (Sim-FA, arXiv 2605.00555):
//! prefill GEMMs are tiled and compute-rich, softmax streams small
//! score matrices, decode GEMVs are read-heavy and bandwidth-bound, and
//! the KV cache grows monotonically and is re-scanned on every emitted
//! token. A [`PhasePlan`] describes such a sequence — each
//! [`PhaseSpec`] carries its own APKI, read ratio, footprint *slice*
//! and locality model — and [`PhasedWorkload`] executes it as a
//! deterministic [`InstructionStream`], reporting phase identity
//! through [`InstructionStream::phase_names`] /
//! [`InstructionStream::last_phase`] so the simulator can attribute
//! IPC, stage latencies and the DRAM/XPoint hit split per phase.
//!
//! # Example
//!
//! ```
//! use ohm_workloads::llm::{PhasePlan, PhasedWorkload};
//! use ohm_sm::InstructionStream;
//!
//! let plan = PhasePlan::llm_inference();
//! assert_eq!(plan.phases.len(), 5);
//! let mut w = PhasedWorkload::new(plan, 1, 2, 10_000, 64 << 20, 42);
//! let names = w.phase_names();
//! let slice = w.next_slice(0, 0).unwrap();
//! assert!(slice.instructions() > 0);
//! assert_eq!(names[w.last_phase(0, 0)], "prefill-gemm");
//! ```

use ohm_sim::{Addr, SplitMix64};
use ohm_sm::{AccessKind, InstructionStream, WarpSlice};

use crate::generator::{next_line, LaneState, LINE_BYTES};
use crate::spec::AccessPattern;

/// One named phase of a phase-structured workload.
///
/// The phase's footprint slice is expressed as fractions of the overall
/// workload footprint, so the same plan scales from quick-test to
/// evaluation footprints; overlapping slices model shared tensors
/// (e.g. prefill and decode both touching the weight region).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name, reported in the per-phase breakdown.
    pub name: String,
    /// Memory accesses per kilo-instruction within the phase.
    pub apki: u32,
    /// Fraction of the phase's accesses that are reads.
    pub read_ratio: f64,
    /// Start of the phase's footprint slice, as a fraction of the
    /// workload footprint in `[0, 1)`.
    pub slice_start: f64,
    /// Length of the slice, as a fraction in `(0, 1]`;
    /// `slice_start + slice_len` must not exceed 1.
    pub slice_len: f64,
    /// Locality model the phase walks its slice with.
    pub pattern: AccessPattern,
    /// Share of each lane's instruction budget spent in this phase
    /// (weights are normalised over the plan).
    pub weight: f64,
}

/// An ordered sequence of [`PhaseSpec`]s every lane executes in turn.
///
/// Lanes progress through phases by *instruction budget* (each phase
/// gets its weight's share of `insts_per_warp`), so phase boundaries
/// fall at the same per-lane instruction counts regardless of how the
/// simulator interleaves lanes — the property that keeps phased runs
/// deterministic and replayable.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePlan {
    /// The phases, in execution order.
    pub phases: Vec<PhaseSpec>,
}

impl PhasePlan {
    /// The reference LLM-inference plan: prefill GEMM → softmax →
    /// decode GEMV → KV-cache append → KV-cache scan.
    ///
    /// The footprint is split into a weight region (first half), an
    /// activation/score scratch (next eighth) and a KV-cache region
    /// (final three eighths). The KV region is several times larger
    /// than planar DRAM (one ninth of the footprint at the paper's 1:8
    /// ratio), so the read-heavy `kv-scan` phase is the natural stress
    /// test for the DRAM/XPoint split.
    pub fn llm_inference() -> Self {
        let phase = |name: &str,
                     apki: u32,
                     read_ratio: f64,
                     slice_start: f64,
                     slice_len: f64,
                     pattern: AccessPattern,
                     weight: f64| PhaseSpec {
            name: name.to_string(),
            apki,
            read_ratio,
            slice_start,
            slice_len,
            pattern,
            weight,
        };
        PhasePlan {
            phases: vec![
                // Tiled weight-matrix GEMM over the prompt: compute-rich,
                // balanced reads (weights) and writes (activations).
                phase(
                    "prefill-gemm",
                    40,
                    0.67,
                    0.0,
                    0.5,
                    AccessPattern::Blocked {
                        block_bytes: 64 * 1024,
                        dwell: 32,
                    },
                    0.35,
                ),
                // Row-wise normalisation of the score matrix: small
                // footprint, read-modify-write streaming.
                phase(
                    "softmax",
                    150,
                    0.5,
                    0.5,
                    0.125,
                    AccessPattern::Streaming,
                    0.1,
                ),
                // Token-at-a-time GEMV over the weights: read-dominated,
                // low arithmetic intensity.
                phase(
                    "decode-gemv",
                    200,
                    0.95,
                    0.0,
                    0.5,
                    AccessPattern::Streaming,
                    0.2,
                ),
                // Appending each new token's K/V vectors: write-heavy
                // streaming into the KV region.
                phase(
                    "kv-append",
                    120,
                    0.1,
                    0.625,
                    0.375,
                    AccessPattern::Streaming,
                    0.1,
                ),
                // Attention over the whole cache for every token:
                // read-heavy streaming across a region far larger than
                // DRAM — the capacity stress test.
                phase(
                    "kv-scan",
                    250,
                    0.98,
                    0.625,
                    0.375,
                    AccessPattern::Streaming,
                    0.25,
                ),
            ],
        }
    }

    /// Phase names in phase-index order.
    pub fn phase_names(&self) -> Vec<String> {
        self.phases.iter().map(|p| p.name.clone()).collect()
    }

    /// Checks the plan is executable; the message names the first
    /// violated constraint.
    ///
    /// # Errors
    ///
    /// A static description of the violation (empty plan, empty name,
    /// zero APKI, non-positive/non-finite weight, read ratio outside
    /// `[0, 1]`, or a footprint slice outside `[0, 1]`).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.phases.is_empty() {
            return Err("phase plan has no phases");
        }
        for p in &self.phases {
            if p.name.is_empty() {
                return Err("phase name is empty");
            }
            if p.apki == 0 {
                return Err("phase APKI must be positive");
            }
            if !(p.weight.is_finite() && p.weight > 0.0) {
                return Err("phase weight must be positive and finite");
            }
            if !(0.0..=1.0).contains(&p.read_ratio) {
                return Err("phase read ratio must be within [0, 1]");
            }
            let slice_ok = p.slice_start.is_finite()
                && p.slice_len.is_finite()
                && p.slice_start >= 0.0
                && p.slice_len > 0.0
                && p.slice_start + p.slice_len <= 1.0 + 1e-12;
            if !slice_ok {
                return Err("phase footprint slice must fit within [0, 1]");
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct PhasedLane {
    state: LaneState,
    /// Current phase index; `plan.phases.len()` once the lane is done.
    phase: usize,
    /// Index of the phase that produced the lane's most recent slice.
    last_phase: usize,
}

/// Per-phase geometry precomputed from the plan and footprint.
#[derive(Debug, Clone, Copy)]
struct PhaseGeometry {
    /// First line of the phase's slice within the footprint.
    start_line: u64,
    /// Lines in the slice (at least one).
    lines: u64,
    /// Per-lane instruction budget for the phase.
    budget: u64,
}

/// Executes a [`PhasePlan`] as a deterministic [`InstructionStream`].
///
/// Every lane runs the same phase sequence over the same footprint
/// slices; per-lane [`SplitMix64`] forks keep lanes decorrelated while
/// the instruction-budget phase boundaries keep the stream independent
/// of lane interleaving. Construction mirrors
/// [`crate::KernelWorkload::new`].
#[derive(Debug, Clone)]
pub struct PhasedWorkload {
    plan: PhasePlan,
    sms: usize,
    warps_per_sm: usize,
    lanes: Vec<PhasedLane>,
    geometry: Vec<PhaseGeometry>,
    /// Kernel-wide access counters, one per phase (frontier progress).
    phase_accesses: Vec<u64>,
    /// Kernel-wide cold-walker cursors, one per phase.
    phase_cold: Vec<u64>,
}

impl PhasedWorkload {
    /// Creates a phased workload over `sms × warps_per_sm` lanes, each
    /// executing `insts_per_warp` instructions split across the plan's
    /// phases by weight.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`PhasePlan::validate`], any dimension
    /// is zero, or a phase's footprint slice is smaller than one line.
    pub fn new(
        plan: PhasePlan,
        sms: usize,
        warps_per_sm: usize,
        insts_per_warp: u64,
        footprint_bytes: u64,
        seed: u64,
    ) -> Self {
        plan.validate().expect("invalid phase plan");
        assert!(
            sms > 0 && warps_per_sm > 0,
            "kernel needs at least one lane"
        );
        assert!(
            insts_per_warp > 0,
            "warps need a positive instruction budget"
        );
        let footprint_lines = footprint_bytes / LINE_BYTES;
        assert!(footprint_lines > 0, "footprint smaller than one line");

        let total_weight: f64 = plan.phases.iter().map(|p| p.weight).sum();
        let mut assigned = 0u64;
        let geometry: Vec<PhaseGeometry> = plan
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // slice_start < 1 (validated: slice_len > 0, sum ≤ 1), so
                // start_line < footprint_lines and the clamp is non-zero.
                let start_line = (p.slice_start * footprint_lines as f64) as u64;
                let lines = ((p.slice_len * footprint_lines as f64) as u64)
                    .max(1)
                    .min(footprint_lines - start_line);
                assert!(lines > 0, "phase footprint slice smaller than one line");
                // The last phase absorbs rounding so budgets sum exactly
                // to insts_per_warp (lanes retire identical totals).
                let budget = if i + 1 == plan.phases.len() {
                    insts_per_warp - assigned
                } else {
                    let share = (p.weight / total_weight * insts_per_warp as f64).round() as u64;
                    share.min(insts_per_warp - assigned)
                };
                assigned += budget;
                PhaseGeometry {
                    start_line,
                    lines,
                    budget,
                }
            })
            .collect();

        let mut root = SplitMix64::new(seed ^ 0x11_a7_70_ca);
        let lanes = (0..sms * warps_per_sm)
            .map(|i| {
                let mut rng = root.fork(i as u64);
                let first = geometry[0];
                let cursor = rng.next_below((first.lines / 8).max(1));
                PhasedLane {
                    state: LaneState {
                        rng,
                        remaining_insts: first.budget,
                        cursor,
                        dwell_left: 0,
                        tile_base: cursor,
                    },
                    phase: 0,
                    last_phase: 0,
                }
            })
            .collect();

        let n = plan.phases.len();
        PhasedWorkload {
            plan,
            sms,
            warps_per_sm,
            lanes,
            geometry,
            phase_accesses: vec![0; n],
            phase_cold: vec![0; n],
        }
    }

    /// The executing plan.
    pub fn plan(&self) -> &PhasePlan {
        &self.plan
    }

    fn lane_index(&self, sm: usize, warp: usize) -> usize {
        assert!(
            sm < self.sms && warp < self.warps_per_sm,
            "lane out of range"
        );
        sm * self.warps_per_sm + warp
    }

    /// Advances `lane` past drained (or zero-budget) phases, resetting
    /// walker state on entry to each new phase. Returns false when the
    /// lane has finished the plan.
    fn enter_live_phase(lane: &mut PhasedLane, geometry: &[PhaseGeometry]) -> bool {
        while lane.state.remaining_insts == 0 {
            lane.phase += 1;
            let Some(g) = geometry.get(lane.phase) else {
                return false;
            };
            lane.state.remaining_insts = g.budget;
            // Fresh deterministic walker position inside the new slice
            // (a new kernel launch does not inherit the old one's tile).
            let cursor = lane.state.rng.next_below((g.lines / 8).max(1));
            lane.state.cursor = cursor;
            lane.state.tile_base = cursor;
            lane.state.dwell_left = 0;
        }
        true
    }
}

impl InstructionStream for PhasedWorkload {
    fn next_slice(&mut self, sm: usize, warp: usize) -> Option<WarpSlice> {
        let idx = self.lane_index(sm, warp);
        let lane = &mut self.lanes[idx];
        if !Self::enter_live_phase(lane, &self.geometry) {
            return None;
        }
        let phase = lane.phase;
        lane.last_phase = phase;
        let spec = &self.plan.phases[phase];
        let g = self.geometry[phase];
        let gap = (1000.0 / spec.apki as f64 - 1.0).max(0.0);

        // Exponentially distributed compute gap with mean `gap`, as in
        // `KernelWorkload` — zero keeps high APKIs reachable.
        let compute = if gap <= 0.0 {
            0
        } else {
            (-lane.state.rng.next_f64().max(1e-18).ln() * gap).round() as u64
        };
        let compute = compute.min(lane.state.remaining_insts.saturating_sub(1));

        if lane.state.remaining_insts <= compute + 1 {
            // Phase budget exhausted by compute alone: drain the phase.
            let insts = lane.state.remaining_insts;
            lane.state.remaining_insts = 0;
            return Some(WarpSlice::compute(insts));
        }

        lane.state.remaining_insts -= compute + 1;
        let line = next_line(
            &mut lane.state,
            spec.pattern,
            g.lines,
            self.phase_accesses[phase],
            &mut self.phase_cold[phase],
        );
        let lane = &mut self.lanes[idx];
        let kind = if lane.state.rng.chance(spec.read_ratio) {
            AccessKind::Load
        } else {
            AccessKind::Store
        };
        self.phase_accesses[phase] += 1;
        let addr = Addr::from_block(g.start_line + line, LINE_BYTES);
        Some(WarpSlice::memory(compute, addr, kind))
    }

    fn phase_names(&self) -> Vec<String> {
        self.plan.phase_names()
    }

    fn last_phase(&self, sm: usize, warp: usize) -> usize {
        self.lanes[self.lane_index(sm, warp)].last_phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PhasePlan {
        PhasePlan::llm_inference()
    }

    #[test]
    fn reference_plan_validates() {
        assert_eq!(plan().validate(), Ok(()));
        assert_eq!(
            plan().phase_names(),
            [
                "prefill-gemm",
                "softmax",
                "decode-gemv",
                "kv-append",
                "kv-scan"
            ]
        );
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let mut empty = plan();
        empty.phases.clear();
        assert!(empty.validate().is_err());

        let break_one = |f: fn(&mut PhaseSpec)| {
            let mut p = plan();
            f(&mut p.phases[0]);
            p.validate().unwrap_err()
        };
        assert!(break_one(|p| p.name.clear()).contains("name"));
        assert!(break_one(|p| p.apki = 0).contains("APKI"));
        assert!(break_one(|p| p.weight = 0.0).contains("weight"));
        assert!(break_one(|p| p.weight = f64::NAN).contains("weight"));
        assert!(break_one(|p| p.read_ratio = 1.5).contains("read ratio"));
        assert!(break_one(|p| p.slice_len = 0.0).contains("slice"));
        assert!(break_one(|p| p.slice_start = 0.9).contains("slice"));
    }

    #[test]
    fn lanes_retire_exactly_their_budget_across_all_phases() {
        let mut w = PhasedWorkload::new(plan(), 1, 2, 12_345, 32 << 20, 9);
        for warp in 0..2 {
            let mut total = 0;
            while let Some(s) = w.next_slice(0, warp) {
                total += s.instructions();
            }
            assert_eq!(total, 12_345);
            assert!(w.next_slice(0, warp).is_none());
        }
    }

    #[test]
    fn phases_progress_in_order_and_stay_in_slice() {
        let footprint: u64 = 64 << 20;
        let mut w = PhasedWorkload::new(plan(), 1, 1, 50_000, footprint, 4);
        let p = plan();
        let mut seen = vec![0u64; p.phases.len()];
        let mut last = 0;
        while let Some(s) = w.next_slice(0, 0) {
            let phase = w.last_phase(0, 0);
            assert!(phase >= last, "phases must not regress");
            last = phase;
            if let Some((addr, _)) = s.access {
                seen[phase] += 1;
                let spec = &p.phases[phase];
                let lo = (spec.slice_start * footprint as f64) as u64;
                let hi = ((spec.slice_start + spec.slice_len) * footprint as f64) as u64;
                assert!(
                    addr.get() >= lo && addr.get() < hi,
                    "phase {phase} access {:#x} outside slice [{lo:#x}, {hi:#x})",
                    addr.get()
                );
            }
        }
        assert!(
            seen.iter().all(|&c| c > 0),
            "every phase issued accesses: {seen:?}"
        );
    }

    #[test]
    fn per_phase_intensity_tracks_the_spec() {
        let mut w = PhasedWorkload::new(plan(), 1, 4, 100_000, 64 << 20, 11);
        let p = plan();
        let n = p.phases.len();
        let (mut insts, mut accesses, mut reads) = (vec![0u64; n], vec![0u64; n], vec![0u64; n]);
        for warp in 0..4 {
            while let Some(s) = w.next_slice(0, warp) {
                let phase = w.last_phase(0, warp);
                insts[phase] += s.instructions();
                if let Some((_, kind)) = s.access {
                    accesses[phase] += 1;
                    reads[phase] += u64::from(kind.is_load());
                }
            }
        }
        for (i, spec) in p.phases.iter().enumerate() {
            let apki = accesses[i] as f64 * 1000.0 / insts[i] as f64;
            let rel = (apki - spec.apki as f64).abs() / spec.apki as f64;
            assert!(
                rel < 0.15,
                "{}: APKI target {}, got {apki:.1}",
                spec.name,
                spec.apki
            );
            let rr = reads[i] as f64 / accesses[i] as f64;
            assert!(
                (rr - spec.read_ratio).abs() < 0.06,
                "{}: read ratio target {}, got {rr:.2}",
                spec.name,
                spec.read_ratio
            );
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = PhasedWorkload::new(plan(), 1, 2, 5_000, 16 << 20, 77);
        let mut b = PhasedWorkload::new(plan(), 1, 2, 5_000, 16 << 20, 77);
        for _ in 0..500 {
            assert_eq!(a.next_slice(0, 1), b.next_slice(0, 1));
            assert_eq!(a.last_phase(0, 1), b.last_phase(0, 1));
        }
    }
}
