//! The ten Table II applications.
//!
//! APKI and read ratios are taken verbatim from the paper's Table II; the
//! pattern class is assigned from each application's domain. Default
//! footprints are 64 MB — the paper's 8 GB footprint scaled for simulation
//! speed; every experiment harness scales memory capacities by the same
//! factor, preserving the footprint : DRAM : XPoint ratios (the paper
//! itself applies a 12× scaling for the same reason).

use crate::spec::{AccessPattern, WorkloadSpec};

/// Default synthetic footprint (see module docs).
pub const DEFAULT_FOOTPRINT: u64 = 64 << 20;

const BLOCKED: AccessPattern = AccessPattern::Blocked {
    block_bytes: 64 * 1024,
    dwell: 48,
};
const GRAPH: AccessPattern = AccessPattern::Graph {
    gamma: 3.0,
    window_frac: 0.015,
    cold_frac: 0.15,
};

/// All ten Table II workloads, in the paper's order.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "backp",
            apki: 30,
            read_ratio: 0.53,
            suite: "rodinia",
            pattern: BLOCKED,
            footprint_bytes: DEFAULT_FOOTPRINT,
        },
        WorkloadSpec {
            name: "lud",
            apki: 20,
            read_ratio: 0.52,
            suite: "rodinia",
            pattern: BLOCKED,
            footprint_bytes: DEFAULT_FOOTPRINT,
        },
        WorkloadSpec {
            name: "GRAMS",
            apki: 266,
            read_ratio: 0.7,
            suite: "polybench",
            pattern: AccessPattern::Streaming,
            footprint_bytes: DEFAULT_FOOTPRINT,
        },
        WorkloadSpec {
            name: "FDTD",
            apki: 86,
            read_ratio: 0.7,
            suite: "polybench",
            pattern: AccessPattern::Streaming,
            footprint_bytes: DEFAULT_FOOTPRINT,
        },
        WorkloadSpec {
            name: "betw",
            apki: 193,
            read_ratio: 0.99,
            suite: "graphbig",
            pattern: GRAPH,
            footprint_bytes: DEFAULT_FOOTPRINT,
        },
        WorkloadSpec {
            name: "bfsdata",
            apki: 84,
            read_ratio: 0.95,
            suite: "graphbig",
            pattern: GRAPH,
            footprint_bytes: DEFAULT_FOOTPRINT,
        },
        WorkloadSpec {
            name: "bfstopo",
            apki: 25,
            read_ratio: 0.97,
            suite: "graphbig",
            pattern: GRAPH,
            footprint_bytes: DEFAULT_FOOTPRINT,
        },
        WorkloadSpec {
            name: "gctopo",
            apki: 93,
            read_ratio: 0.99,
            suite: "graphbig",
            pattern: GRAPH,
            footprint_bytes: DEFAULT_FOOTPRINT,
        },
        WorkloadSpec {
            name: "pagerank",
            apki: 599,
            read_ratio: 0.99,
            suite: "graphbig",
            pattern: GRAPH,
            footprint_bytes: DEFAULT_FOOTPRINT,
        },
        WorkloadSpec {
            name: "SSSD",
            apki: 103,
            read_ratio: 0.98,
            suite: "graphbig",
            pattern: GRAPH,
            footprint_bytes: DEFAULT_FOOTPRINT,
        },
    ]
}

/// Looks up a Table II workload by its paper name (case-sensitive).
pub fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_workloads_with_paper_values() {
        let all = all_workloads();
        assert_eq!(all.len(), 10);
        let pr = workload_by_name("pagerank").unwrap();
        assert_eq!(pr.apki, 599);
        assert!((pr.read_ratio - 0.99).abs() < 1e-12);
        let lud = workload_by_name("lud").unwrap();
        assert_eq!(lud.apki, 20);
        assert!((lud.read_ratio - 0.52).abs() < 1e-12);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn names_are_unique() {
        let all = all_workloads();
        let names: std::collections::BTreeSet<_> = all.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn suites_match_paper() {
        for w in all_workloads() {
            assert!(matches!(w.suite, "rodinia" | "polybench" | "graphbig"));
        }
    }
}
