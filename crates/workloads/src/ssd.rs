//! Host storage substrate: SSD + PCIe DMA.
//!
//! The paper motivates Ohm-GPU with a breakdown of a GPU + SSD system
//! (Figure 3): when the working set exceeds GPU memory, data must be
//! staged from an SSD over the host interconnect, and those two steps
//! dominate execution time (21% storage access + 45% transfer on
//! average). We model a Z-NAND-class SSD (Samsung Z-SSD, the paper's
//! reference device) and a PCIe 3.0 x16 DMA path. The `Origin` platform
//! uses this model whenever its footprint misses GPU memory.

use ohm_sim::{Calendar, Counter, Ps};

/// Host storage configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostStorageConfig {
    /// SSD read access latency (Z-NAND class: ~20 us).
    pub ssd_read_latency: Ps,
    /// SSD write access latency.
    pub ssd_write_latency: Ps,
    /// SSD streaming bandwidth, bytes per second.
    pub ssd_bandwidth_bps: u64,
    /// Host↔GPU DMA bandwidth (PCIe 3.0 x16 ≈ 12 GB/s effective).
    pub dma_bandwidth_bps: u64,
    /// DMA setup latency per transfer.
    pub dma_setup: Ps,
}

impl Default for HostStorageConfig {
    fn default() -> Self {
        HostStorageConfig {
            ssd_read_latency: Ps::from_us(20),
            ssd_write_latency: Ps::from_us(30),
            ssd_bandwidth_bps: 3_000_000_000,
            dma_bandwidth_bps: 12_000_000_000,
            dma_setup: Ps::from_us(5),
        }
    }
}

/// Completion report for one staging operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagingTimes {
    /// When the SSD finished its part.
    pub storage_done: Ps,
    /// When the DMA into GPU memory finished (data usable).
    pub transfer_done: Ps,
}

/// SSD + DMA path between host storage and GPU memory.
///
/// # Example
///
/// ```
/// use ohm_workloads::{HostStorage, HostStorageConfig};
/// use ohm_sim::Ps;
///
/// let mut host = HostStorage::new(HostStorageConfig::default());
/// let t = host.stage_in(Ps::ZERO, 2 << 20); // page in 2 MiB
/// assert!(t.transfer_done > t.storage_done);
/// ```
#[derive(Debug, Clone)]
pub struct HostStorage {
    cfg: HostStorageConfig,
    ssd: Calendar,
    dma: Calendar,
    staged_in: Counter,
    staged_out: Counter,
    bytes_moved: u64,
}

impl HostStorage {
    /// Creates an idle host-storage path.
    pub fn new(cfg: HostStorageConfig) -> Self {
        HostStorage {
            cfg,
            ssd: Calendar::new(),
            dma: Calendar::new(),
            staged_in: Counter::new(),
            staged_out: Counter::new(),
            bytes_moved: 0,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &HostStorageConfig {
        &self.cfg
    }

    fn stream_time(bytes: u64, bps: u64) -> Ps {
        Ps::from_ps(((bytes as u128 * 1_000_000_000_000u128) / bps as u128) as u64)
    }

    /// Stages `bytes` from the SSD into GPU memory (page-in).
    pub fn stage_in(&mut self, now: Ps, bytes: u64) -> StagingTimes {
        let ssd_time =
            self.cfg.ssd_read_latency + Self::stream_time(bytes, self.cfg.ssd_bandwidth_bps);
        let (_, storage_done) = self.ssd.book(now, ssd_time);
        let dma_time = self.cfg.dma_setup + Self::stream_time(bytes, self.cfg.dma_bandwidth_bps);
        let (_, transfer_done) = self.dma.book(storage_done, dma_time);
        self.staged_in.incr();
        self.bytes_moved += bytes;
        StagingTimes {
            storage_done,
            transfer_done,
        }
    }

    /// Stages `bytes` from GPU memory out to the SSD (page-out / spill).
    pub fn stage_out(&mut self, now: Ps, bytes: u64) -> StagingTimes {
        let dma_time = self.cfg.dma_setup + Self::stream_time(bytes, self.cfg.dma_bandwidth_bps);
        let (_, transfer_done) = self.dma.book(now, dma_time);
        let ssd_time =
            self.cfg.ssd_write_latency + Self::stream_time(bytes, self.cfg.ssd_bandwidth_bps);
        let (_, storage_done) = self.ssd.book(transfer_done, ssd_time);
        self.staged_out.incr();
        self.bytes_moved += bytes;
        StagingTimes {
            storage_done,
            transfer_done,
        }
    }

    /// Total SSD busy time (the Figure 3a "storage access" component).
    pub fn storage_busy(&self) -> Ps {
        self.ssd.busy_time()
    }

    /// Total DMA busy time (the Figure 3a "data transfer" component).
    pub fn dma_busy(&self) -> Ps {
        self.dma.busy_time()
    }

    /// Number of page-in operations.
    pub fn staged_in(&self) -> u64 {
        self.staged_in.get()
    }

    /// Number of page-out operations.
    pub fn staged_out(&self) -> u64 {
        self.staged_out.get()
    }

    /// Total bytes moved in either direction.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_in_latency_composition() {
        let mut h = HostStorage::new(HostStorageConfig::default());
        let t = h.stage_in(Ps::ZERO, 3_000_000_000 / 1000); // 3 MB => 1 ms at 3 GB/s
        assert_eq!(t.storage_done, Ps::from_us(20) + Ps::from_ms(1));
        // DMA: 5 us setup + 0.25 ms at 12 GB/s.
        assert_eq!(
            t.transfer_done,
            t.storage_done + Ps::from_us(5) + Ps::from_us(250)
        );
    }

    #[test]
    fn staging_serialises_on_the_ssd() {
        let mut h = HostStorage::new(HostStorageConfig::default());
        let a = h.stage_in(Ps::ZERO, 1 << 20);
        let b = h.stage_in(Ps::ZERO, 1 << 20);
        assert!(b.storage_done > a.storage_done);
        assert_eq!(h.staged_in(), 2);
    }

    #[test]
    fn stage_out_moves_dma_first() {
        let mut h = HostStorage::new(HostStorageConfig::default());
        let t = h.stage_out(Ps::ZERO, 1 << 20);
        assert!(t.storage_done > t.transfer_done);
        assert_eq!(h.staged_out(), 1);
        assert_eq!(h.bytes_moved(), 1 << 20);
    }

    #[test]
    fn busy_accounting_splits_components() {
        let mut h = HostStorage::new(HostStorageConfig::default());
        h.stage_in(Ps::ZERO, 1 << 20);
        assert!(h.storage_busy() > Ps::ZERO);
        assert!(h.dma_busy() > Ps::ZERO);
        assert!(h.storage_busy() > h.dma_busy()); // SSD is the slower leg
    }
}
