//! Versioned memory-access trace format: recording, streaming parse,
//! and replay.
//!
//! The synthetic Table II kernels and the [`crate::llm`] phase plans are
//! generated workloads, but the simulator can also be driven by a
//! recorded access stream: any [`InstructionStream`] can be captured
//! with [`TraceRecorder`] and played back with [`TraceReplay`] — the
//! round trip is bit-identical (the replayed run's `SimReport` equals
//! the recorded run's; `docs/TRACE_FORMAT.md` specifies the contract).
//!
//! # The `ohm-trace v1` format
//!
//! A trace is line-oriented UTF-8 text. The **first line** is the
//! version header; every following line is a record, a `#` comment, or
//! blank:
//!
//! ```text
//! ohm-trace v1
//! # sm warp gap [R|W addr bytes]
//! 0 3 12 R 0x1f80 128
//! 0 3 7
//! 1 0 0 W 0x44c0 128
//! ```
//!
//! Each record is one warp slice: `gap` arithmetic instructions on lane
//! (`sm`, `warp`), optionally closed by one memory access (`R`ead or
//! `W`rite of `bytes` bytes at the hex address). The gap field is an
//! instruction-count gap, not a wall-clock timestamp: replay timing is
//! resolved by the simulator, so traces stay platform-independent.
//! `docs/TRACE_FORMAT.md` holds the full grammar, the ordering and
//! determinism guarantees, and the forward-compatibility rules.
//!
//! Parsing is **streaming**: [`TraceReader`] yields one record at a
//! time from any [`io::BufRead`] and never materialises the trace, so
//! multi-gigabyte traces replay in bounded memory. Malformed input
//! surfaces as a typed [`TraceError`], never a panic.
//!
//! # Example: record, then replay
//!
//! ```
//! use ohm_workloads::trace::{TraceRecorder, TraceReplay};
//! use ohm_workloads::{workload_by_name, KernelWorkload};
//! use ohm_sm::InstructionStream;
//!
//! // Record a small synthetic kernel into an in-memory trace.
//! let spec = workload_by_name("lud").unwrap();
//! let kernel = KernelWorkload::new(spec, 1, 2, 300, 7);
//! let (mut rec, handle) = TraceRecorder::new(kernel, Vec::new(), 128).unwrap();
//! let mut slices = Vec::new();
//! for w in [0usize, 1] {
//!     while let Some(s) = rec.next_slice(0, w) {
//!         slices.push((w, s));
//!     }
//! }
//! drop(rec);
//! let bytes = handle.finish().unwrap();
//!
//! // Replay reproduces the exact per-lane slice streams.
//! let mut replay = TraceReplay::new(&bytes[..]).unwrap();
//! for (w, s) in &slices {
//!     assert_eq!(replay.next_slice(0, *w), Some(*s));
//! }
//! assert_eq!(replay.next_slice(0, 0), None);
//! ```

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;
use std::str::FromStr;
use std::sync::{Arc, Mutex};

use ohm_sim::Addr;
use ohm_sm::{AccessKind, InstructionStream, WarpSlice};

/// The trace-format major version this crate reads and writes.
pub const TRACE_VERSION: u32 = 1;

/// The header line starting every trace of the current version.
pub const TRACE_HEADER: &str = "ohm-trace v1";

/// The memory access closing a [`TraceRecord`], if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceAccess {
    /// Byte address of the access.
    pub addr: u64,
    /// Whether the access loads or stores.
    pub kind: AccessKind,
    /// Access size in bytes (the recording system's line granularity).
    pub bytes: u32,
}

/// One recorded warp slice: a compute gap on a lane, optionally closed
/// by a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// SM index of the issuing lane.
    pub sm: usize,
    /// Warp slot of the issuing lane.
    pub warp: usize,
    /// Arithmetic instructions issued before the access (the
    /// *timestamp-or-gap* field: an instruction-count gap, see the
    /// module docs).
    pub gap: u64,
    /// The access closing the slice, if any.
    pub access: Option<TraceAccess>,
}

impl TraceRecord {
    /// Captures a [`WarpSlice`] issued on lane (`sm`, `warp`);
    /// `line_bytes` records the access granularity.
    pub fn from_slice(sm: usize, warp: usize, slice: WarpSlice, line_bytes: u32) -> Self {
        TraceRecord {
            sm,
            warp,
            gap: slice.compute_insts,
            access: slice.access.map(|(addr, kind)| TraceAccess {
                addr: addr.get(),
                kind,
                bytes: line_bytes,
            }),
        }
    }

    /// The slice this record replays to. The access size is metadata
    /// (v1 replay issues one line-granular request per record; see
    /// `docs/TRACE_FORMAT.md`).
    pub fn slice(&self) -> WarpSlice {
        WarpSlice {
            compute_insts: self.gap,
            access: self.access.map(|a| (Addr::new(a.addr), a.kind)),
        }
    }

    /// Total instructions in the record (the access counts as one).
    pub fn instructions(&self) -> u64 {
        self.gap + u64::from(self.access.is_some())
    }

    fn write_line(&self, out: &mut impl io::Write) -> io::Result<()> {
        match &self.access {
            None => writeln!(out, "{} {} {}", self.sm, self.warp, self.gap),
            Some(a) => {
                let k = if a.kind.is_load() { 'R' } else { 'W' };
                writeln!(
                    out,
                    "{} {} {} {k} {:#x} {}",
                    self.sm, self.warp, self.gap, a.addr, a.bytes
                )
            }
        }
    }
}

/// A problem reading a trace: I/O, a bad or missing header, or a
/// malformed record. Truncated or garbage input always surfaces here —
/// the parser never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The underlying reader or writer failed.
    Io(String),
    /// The input does not start with an `ohm-trace` header line.
    MissingHeader,
    /// The header names a major version this parser does not read.
    UnsupportedVersion {
        /// The version token found in the header.
        found: String,
    },
    /// A record line failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::MissingHeader => {
                write!(f, "missing trace header (expected `{TRACE_HEADER}`)")
            }
            TraceError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported trace version `{found}` (this parser reads v{TRACE_VERSION})"
                )
            }
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e.to_string())
    }
}

/// Streaming trace writer: emits the version header on construction,
/// then one line per record.
#[derive(Debug)]
pub struct TraceWriter<W: io::Write> {
    out: W,
}

impl<W: io::Write> TraceWriter<W> {
    /// Wraps `out`, writing the `ohm-trace v1` header immediately.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O error.
    pub fn new(mut out: W) -> io::Result<Self> {
        writeln!(out, "{TRACE_HEADER}")?;
        Ok(TraceWriter { out })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O error.
    pub fn record(&mut self, r: &TraceRecord) -> io::Result<()> {
        r.write_line(&mut self.out)
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming trace parser: an iterator of records over any buffered
/// reader. Validates the version header eagerly; yields records one at
/// a time without ever materialising the trace. After the first error
/// (or end of input) the iterator is fused.
///
/// # Example
///
/// ```
/// use ohm_workloads::trace::TraceReader;
///
/// let text = "ohm-trace v1\n# a comment\n0 0 5 R 0x100 128\n0 0 3\n";
/// let mut reader = TraceReader::new(text.as_bytes()).unwrap();
/// let first = reader.next().unwrap().unwrap();
/// assert_eq!(first.gap, 5);
/// assert_eq!(first.access.unwrap().bytes, 128);
/// assert_eq!(reader.next().unwrap().unwrap().access, None);
/// assert!(reader.next().is_none());
/// ```
#[derive(Debug)]
pub struct TraceReader<R: io::BufRead> {
    input: R,
    /// 1-based number of the last line read.
    line: usize,
    /// Set once EOF or an error was yielded; the iterator is fused.
    done: bool,
    buf: String,
}

impl<R: io::BufRead> TraceReader<R> {
    /// Wraps `input` and validates the version header (the first line).
    ///
    /// # Errors
    ///
    /// [`TraceError::MissingHeader`] when the first line is not an
    /// `ohm-trace` header (or the input is empty), and
    /// [`TraceError::UnsupportedVersion`] when it names a major version
    /// other than `v1`. Trailing tokens on the header line are reserved
    /// for future minor revisions and ignored.
    pub fn new(input: R) -> Result<Self, TraceError> {
        let mut reader = TraceReader {
            input,
            line: 0,
            done: false,
            buf: String::new(),
        };
        let Some(header) = reader.next_line()? else {
            return Err(TraceError::MissingHeader);
        };
        let mut tokens = header.split_whitespace();
        if tokens.next() != Some("ohm-trace") {
            return Err(TraceError::MissingHeader);
        }
        match tokens.next() {
            Some(v) if v == format!("v{TRACE_VERSION}") => {}
            Some(v) => {
                return Err(TraceError::UnsupportedVersion {
                    found: v.to_string(),
                })
            }
            None => {
                return Err(TraceError::UnsupportedVersion {
                    found: "(none)".to_string(),
                })
            }
        }
        // Remaining header tokens: reserved, ignored (forward compat).
        Ok(reader)
    }

    /// Reads the next raw line, returning `None` at EOF.
    fn next_line(&mut self) -> Result<Option<&str>, TraceError> {
        self.buf.clear();
        let n = self.input.read_line(&mut self.buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.line += 1;
        Ok(Some(self.buf.trim_end_matches(['\n', '\r'])))
    }

    fn parse_record(line_no: usize, content: &str) -> Result<TraceRecord, TraceError> {
        let err = |message: String| TraceError::Parse {
            line: line_no,
            message,
        };
        let mut parts = content.split_whitespace();
        let sm: usize = parts
            .next()
            .ok_or_else(|| err("missing sm".into()))?
            .parse()
            .map_err(|e| err(format!("bad sm: {e}")))?;
        let warp: usize = parts
            .next()
            .ok_or_else(|| err("missing warp".into()))?
            .parse()
            .map_err(|e| err(format!("bad warp: {e}")))?;
        let gap: u64 = parts
            .next()
            .ok_or_else(|| err("missing gap".into()))?
            .parse()
            .map_err(|e| err(format!("bad gap: {e}")))?;
        let access = match parts.next() {
            None => None,
            Some(k) => {
                let kind = match k {
                    "R" | "r" => AccessKind::Load,
                    "W" | "w" => AccessKind::Store,
                    other => return Err(err(format!("bad access kind: {other}"))),
                };
                let addr_str = parts.next().ok_or_else(|| err("missing address".into()))?;
                let digits = addr_str
                    .strip_prefix("0x")
                    .or_else(|| addr_str.strip_prefix("0X"))
                    .unwrap_or(addr_str);
                let addr = u64::from_str_radix(digits, 16)
                    .map_err(|e| err(format!("bad address: {e}")))?;
                let bytes: u32 = parts
                    .next()
                    .ok_or_else(|| err("missing access size".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad access size: {e}")))?;
                if bytes == 0 {
                    return Err(err("access size must be positive".into()));
                }
                Some(TraceAccess { addr, kind, bytes })
            }
        };
        if parts.next().is_some() {
            return Err(err("trailing tokens".into()));
        }
        Ok(TraceRecord {
            sm,
            warp,
            gap,
            access,
        })
    }
}

impl<R: io::BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let line_no = self.line + 1;
            match self.next_line() {
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Ok(None) => {
                    self.done = true;
                    return None;
                }
                Ok(Some(raw)) => {
                    let content = raw.split('#').next().unwrap_or("").trim();
                    if content.is_empty() {
                        continue;
                    }
                    let parsed = Self::parse_record(line_no, content);
                    if parsed.is_err() {
                        self.done = true;
                    }
                    return Some(parsed);
                }
            }
        }
    }
}

/// An in-memory trace: an ordered list of [`TraceRecord`]s. Convenient
/// for tests and small captures; large traces should stream through
/// [`TraceReader`] / [`TraceWriter`] instead.
///
/// # Example
///
/// ```
/// use ohm_workloads::trace::Trace;
///
/// let text = "ohm-trace v1\n0 0 5 R 0x100 128\n0 0 3\n";
/// let trace: Trace = text.parse()?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.to_text(), text);
/// # Ok::<(), ohm_workloads::trace::TraceError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace from records.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Trace { records }
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in issue order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Serialises to the versioned text format (header included).
    pub fn to_text(&self) -> String {
        let mut writer = TraceWriter::new(Vec::new()).expect("Vec<u8> writes are infallible");
        for r in &self.records {
            writer.record(r).expect("Vec<u8> writes are infallible");
        }
        String::from_utf8(writer.finish().expect("Vec<u8> flush is infallible"))
            .expect("trace text is ASCII")
    }

    /// Total instructions in the trace.
    pub fn instructions(&self) -> u64 {
        self.records.iter().map(|r| r.instructions()).sum()
    }

    /// Total memory accesses in the trace.
    pub fn accesses(&self) -> u64 {
        self.records.iter().filter(|r| r.access.is_some()).count() as u64
    }
}

impl FromStr for Trace {
    type Err = TraceError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let reader = TraceReader::new(text.as_bytes())?;
        let records: Result<Vec<_>, _> = reader.collect();
        Ok(Trace { records: records? })
    }
}

/// Shared state between a [`TraceRecorder`] and its [`RecorderHandle`].
#[derive(Debug)]
struct RecorderSink<W: io::Write> {
    writer: TraceWriter<W>,
    /// First write error, if any — surfaced by [`RecorderHandle::finish`].
    error: Option<String>,
}

/// Wraps an [`InstructionStream`], streaming every slice it produces to
/// a [`TraceWriter`] as it is issued. The wrapped stream's slices are
/// passed through untouched, so a recorded run is bit-identical to an
/// unrecorded one.
///
/// The writer lives behind a shared [`RecorderHandle`] because the
/// recorder itself is typically consumed by the simulator (as a
/// `Box<dyn InstructionStream>`); once the run is over and the recorder
/// dropped, [`RecorderHandle::finish`] returns the writer and surfaces
/// any I/O error that occurred mid-run.
#[derive(Debug)]
pub struct TraceRecorder<S, W: io::Write> {
    inner: S,
    sink: Arc<Mutex<RecorderSink<W>>>,
    line_bytes: u32,
}

impl<S: InstructionStream, W: io::Write> TraceRecorder<S, W> {
    /// Wraps `inner`, writing the trace header to `out` immediately;
    /// `line_bytes` is recorded as each access's size.
    ///
    /// # Errors
    ///
    /// Propagates the header write's I/O error.
    pub fn new(inner: S, out: W, line_bytes: u32) -> io::Result<(Self, RecorderHandle<W>)> {
        let sink = Arc::new(Mutex::new(RecorderSink {
            writer: TraceWriter::new(out)?,
            error: None,
        }));
        let handle = RecorderHandle(Arc::clone(&sink));
        Ok((
            TraceRecorder {
                inner,
                sink,
                line_bytes,
            },
            handle,
        ))
    }
}

impl<S: InstructionStream, W: io::Write> InstructionStream for TraceRecorder<S, W> {
    fn next_slice(&mut self, sm: usize, warp: usize) -> Option<WarpSlice> {
        let slice = self.inner.next_slice(sm, warp)?;
        let mut sink = self.sink.lock().expect("recorder sink poisoned");
        if sink.error.is_none() {
            let rec = TraceRecord::from_slice(sm, warp, slice, self.line_bytes);
            if let Err(e) = sink.writer.record(&rec) {
                sink.error = Some(e.to_string());
            }
        }
        Some(slice)
    }

    fn phase_names(&self) -> Vec<String> {
        self.inner.phase_names()
    }

    fn last_phase(&self, sm: usize, warp: usize) -> usize {
        self.inner.last_phase(sm, warp)
    }
}

/// The capture side of a [`TraceRecorder`]: finishes the trace after
/// the recorder (and the system that consumed it) has been dropped.
#[derive(Debug)]
pub struct RecorderHandle<W: io::Write>(Arc<Mutex<RecorderSink<W>>>);

impl<W: io::Write> RecorderHandle<W> {
    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when a record failed to write mid-run, when
    /// the final flush fails, or when the recorder is still alive.
    pub fn finish(self) -> Result<W, TraceError> {
        let sink = Arc::try_unwrap(self.0)
            .map_err(|_| TraceError::Io("trace recorder still in use".into()))?
            .into_inner()
            .expect("recorder sink poisoned");
        if let Some(e) = sink.error {
            return Err(TraceError::Io(e));
        }
        Ok(sink.writer.finish()?)
    }
}

/// Shared error slot between a [`TraceReplay`] and its
/// [`ReplayErrorHandle`].
type ErrorSlot = Arc<Mutex<Option<TraceError>>>;

/// The error side of a [`TraceReplay`]: a malformed record encountered
/// *mid-replay* cannot surface through [`InstructionStream::next_slice`]
/// (the lane just drains), so it is parked here for the driver to check
/// after the run. [`crate::trace::TraceReplay::new`] still reports
/// header problems eagerly.
#[derive(Debug, Clone)]
pub struct ReplayErrorHandle(ErrorSlot);

impl ReplayErrorHandle {
    /// Returns the parked error, if the replay hit one.
    pub fn take(&self) -> Option<TraceError> {
        self.0.lock().expect("replay error slot poisoned").take()
    }
}

/// Replays a trace as an [`InstructionStream`], streaming records from
/// the reader on demand: each lane consumes its own records in recorded
/// order, and records for other lanes are buffered only until their
/// lane catches up — the whole trace is never materialised.
///
/// # Example
///
/// ```
/// use ohm_workloads::trace::TraceReplay;
/// use ohm_sm::InstructionStream;
///
/// let text = "ohm-trace v1\n0 0 5 R 0x100 128\n0 1 3\n";
/// let mut replay = TraceReplay::new(text.as_bytes()).unwrap();
/// assert_eq!(replay.next_slice(0, 1).unwrap().compute_insts, 3);
/// assert_eq!(replay.next_slice(0, 0).unwrap().compute_insts, 5);
/// assert_eq!(replay.next_slice(0, 0), None);
/// ```
#[derive(Debug)]
pub struct TraceReplay<R: io::BufRead> {
    reader: Option<TraceReader<R>>,
    lanes: HashMap<(usize, usize), VecDeque<WarpSlice>>,
    error: ErrorSlot,
}

impl<R: io::BufRead> TraceReplay<R> {
    /// Builds a replayer over a buffered reader, validating the trace
    /// header eagerly.
    ///
    /// # Errors
    ///
    /// The header errors of [`TraceReader::new`].
    pub fn new(reader: R) -> Result<Self, TraceError> {
        Ok(TraceReplay {
            reader: Some(TraceReader::new(reader)?),
            lanes: HashMap::new(),
            error: Arc::new(Mutex::new(None)),
        })
    }

    /// A handle that surfaces any parse error hit mid-replay.
    pub fn error_handle(&self) -> ReplayErrorHandle {
        ReplayErrorHandle(Arc::clone(&self.error))
    }

    /// Slices currently buffered for lanes that have not consumed them
    /// yet (a bounded working set, not the trace length).
    pub fn buffered(&self) -> usize {
        self.lanes.values().map(|q| q.len()).sum()
    }
}

impl Trace {
    /// A replayer over this in-memory trace.
    pub fn replay(&self) -> TraceReplay<&[u8]> {
        let mut lanes: HashMap<(usize, usize), VecDeque<WarpSlice>> = HashMap::new();
        for r in &self.records {
            lanes
                .entry((r.sm, r.warp))
                .or_default()
                .push_back(r.slice());
        }
        TraceReplay {
            reader: None,
            lanes,
            error: Arc::new(Mutex::new(None)),
        }
    }
}

impl<R: io::BufRead> InstructionStream for TraceReplay<R> {
    fn next_slice(&mut self, sm: usize, warp: usize) -> Option<WarpSlice> {
        loop {
            if let Some(s) = self
                .lanes
                .get_mut(&(sm, warp))
                .and_then(VecDeque::pop_front)
            {
                return Some(s);
            }
            match self.reader.as_mut()?.next() {
                Some(Ok(rec)) => {
                    self.lanes
                        .entry((rec.sm, rec.warp))
                        .or_default()
                        .push_back(rec.slice());
                }
                Some(Err(e)) => {
                    *self.error.lock().expect("replay error slot poisoned") = Some(e);
                    self.reader = None;
                    return None;
                }
                None => {
                    self.reader = None;
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::workload_by_name;
    use crate::KernelWorkload;

    #[test]
    fn text_roundtrip() {
        let text = "ohm-trace v1\n# header comment\n0 0 5 R 0x100 128\n0 0 3\n1 2 0 W 0x44c0 64\n";
        let trace: Trace = text.parse().unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.instructions(), 5 + 1 + 3 + 1);
        assert_eq!(trace.accesses(), 2);
        assert_eq!(trace.records()[2].access.unwrap().bytes, 64);
        let reparsed: Trace = trace.to_text().parse().unwrap();
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn header_is_required_and_versioned() {
        // No header at all.
        assert_eq!(
            "0 0 5 R 0x100 128\n".parse::<Trace>().unwrap_err(),
            TraceError::MissingHeader
        );
        assert_eq!("".parse::<Trace>().unwrap_err(), TraceError::MissingHeader);
        // A future major version is rejected, not misparsed.
        let e = "ohm-trace v2\n0 0 5\n".parse::<Trace>().unwrap_err();
        assert_eq!(e, TraceError::UnsupportedVersion { found: "v2".into() });
        // A version-less header is rejected.
        assert!(matches!(
            "ohm-trace\n".parse::<Trace>().unwrap_err(),
            TraceError::UnsupportedVersion { .. }
        ));
        // Trailing header tokens are reserved and ignored.
        let t: Trace = "ohm-trace v1 future=field\n0 0 5\n".parse().unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let parse = |s: &str| format!("{TRACE_HEADER}\n{s}").parse::<Trace>();
        let e = parse("0 0 5 R 0x100 128\n0 bad 3\n").unwrap_err();
        assert_eq!(
            e,
            TraceError::Parse {
                line: 3,
                message: "bad warp: invalid digit found in string".into()
            }
        );
        for (input, needle) in [
            ("0 0 5 X 0x100 128\n", "access kind"),
            ("0 0 5 R\n", "address"),
            ("0 0 5 R 0xzz 128\n", "bad address"),
            ("0 0 5 R 0x100\n", "access size"),
            ("0 0 5 R 0x100 0\n", "positive"),
            ("0 0 5 R 0x100 128 junk\n", "trailing"),
            ("0 0\n", "missing gap"),
            ("0\n", "missing warp"),
        ] {
            let e = parse(input).unwrap_err();
            let TraceError::Parse { message, .. } = &e else {
                panic!("{input:?}: expected parse error, got {e:?}");
            };
            assert!(message.contains(needle), "{input:?}: {message}");
        }
    }

    #[test]
    fn reader_streams_and_fuses_after_error() {
        let text = format!("{TRACE_HEADER}\n0 0 1\n0 0 garbage\n0 0 2\n");
        let mut reader = TraceReader::new(text.as_bytes()).unwrap();
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        // Fused: the valid record after the error is not yielded.
        assert!(reader.next().is_none());
        assert!(reader.next().is_none());
    }

    #[test]
    fn record_then_replay_is_identical() {
        let spec = workload_by_name("bfsdata").unwrap();
        let (mut rec, handle) =
            TraceRecorder::new(KernelWorkload::new(spec, 2, 2, 500, 3), Vec::new(), 128).unwrap();
        // Interleave lanes the way the simulator would.
        let mut live = Vec::new();
        loop {
            let mut all_done = true;
            for sm in 0..2 {
                for w in 0..2 {
                    if let Some(s) = rec.next_slice(sm, w) {
                        live.push((sm, w, s));
                        all_done = false;
                    }
                }
            }
            if all_done {
                break;
            }
        }
        drop(rec);
        let bytes = handle.finish().unwrap();
        let mut replay = TraceReplay::new(&bytes[..]).unwrap();
        for &(sm, w, s) in &live {
            assert_eq!(replay.next_slice(sm, w), Some(s));
        }
        assert_eq!(replay.buffered(), 0);
        assert_eq!(replay.next_slice(0, 0), None);
        assert!(replay.error_handle().take().is_none());
    }

    #[test]
    fn replay_buffers_only_until_lanes_catch_up() {
        // Records alternate lanes; draining lane 1 first buffers lane
        // 0's records, which are then consumed without re-reading.
        let text = format!("{TRACE_HEADER}\n0 0 1\n0 1 2\n0 0 3\n0 1 4\n");
        let mut replay = TraceReplay::new(text.as_bytes()).unwrap();
        assert_eq!(replay.next_slice(0, 1).unwrap().compute_insts, 2);
        assert_eq!(replay.buffered(), 1);
        assert_eq!(replay.next_slice(0, 1).unwrap().compute_insts, 4);
        assert_eq!(replay.buffered(), 2);
        assert_eq!(replay.next_slice(0, 0).unwrap().compute_insts, 1);
        assert_eq!(replay.next_slice(0, 0).unwrap().compute_insts, 3);
        assert_eq!(replay.buffered(), 0);
    }

    #[test]
    fn replay_surfaces_midstream_errors_through_the_handle() {
        let text = format!("{TRACE_HEADER}\n0 0 1\ntruncated garbage\n");
        let mut replay = TraceReplay::new(text.as_bytes()).unwrap();
        let errs = replay.error_handle();
        assert_eq!(replay.next_slice(0, 0).unwrap().compute_insts, 1);
        assert!(errs.take().is_none(), "no error before the bad line");
        assert_eq!(replay.next_slice(0, 0), None);
        assert!(matches!(errs.take(), Some(TraceError::Parse { .. })));
        // The error is taken once; afterwards the slot is empty.
        assert!(errs.take().is_none());
    }

    #[test]
    fn in_memory_replay_matches_streamed_replay() {
        let spec = workload_by_name("lud").unwrap();
        let (mut rec, handle) =
            TraceRecorder::new(KernelWorkload::new(spec, 1, 1, 300, 9), Vec::new(), 128).unwrap();
        while rec.next_slice(0, 0).is_some() {}
        drop(rec);
        let bytes = handle.finish().unwrap();
        let trace: Trace = std::str::from_utf8(&bytes).unwrap().parse().unwrap();
        let mut from_memory = trace.replay();
        let mut from_stream = TraceReplay::new(&bytes[..]).unwrap();
        loop {
            let (a, b) = (from_memory.next_slice(0, 0), from_stream.next_slice(0, 0));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn unknown_lane_is_exhausted() {
        let text = format!("{TRACE_HEADER}\n0 0 1\n");
        let mut replay = TraceReplay::new(text.as_bytes()).unwrap();
        assert_eq!(replay.next_slice(5, 5), None);
    }
}
