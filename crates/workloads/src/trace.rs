//! Memory-trace recording and replay.
//!
//! The synthetic Table II kernels are the default workload source, but a
//! downstream user with real GPU traces (e.g. from a binary-instrumented
//! run) can feed them straight into the simulator: [`TraceWorkload`]
//! replays a recorded slice stream, and [`TraceRecorder`] captures any
//! [`InstructionStream`] into one. Traces serialise to a simple
//! line-oriented text format:
//!
//! ```text
//! # sm warp compute [R|W addr]
//! 0 3 12 R 0x1f80
//! 0 3 7
//! 1 0 0 W 0x44c0
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::str::FromStr;

use ohm_sim::Addr;
use ohm_sm::{AccessKind, InstructionStream, WarpSlice};

/// One recorded warp slice, tagged with its lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// SM index of the issuing lane.
    pub sm: usize,
    /// Warp slot of the issuing lane.
    pub warp: usize,
    /// The slice that was issued.
    pub slice: WarpSlice,
}

impl TraceRecord {
    fn to_line(self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{} {} {}", self.sm, self.warp, self.slice.compute_insts);
        if let Some((addr, kind)) = self.slice.access {
            let k = if kind.is_load() { 'R' } else { 'W' };
            let _ = write!(s, " {k} {:#x}", addr.get());
        }
        s
    }
}

/// Parse error for the text trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// An in-memory trace: an ordered list of [`TraceRecord`]s.
///
/// # Example
///
/// ```
/// use ohm_workloads::trace::Trace;
///
/// let text = "0 0 5 R 0x100\n0 0 3\n";
/// let trace: Trace = text.parse()?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.to_text().lines().count(), 2);
/// # Ok::<(), ohm_workloads::trace::ParseTraceError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace from records.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Trace { records }
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in issue order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Serialises to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_line());
            out.push('\n');
        }
        out
    }

    /// Total instructions in the trace.
    pub fn instructions(&self) -> u64 {
        self.records.iter().map(|r| r.slice.instructions()).sum()
    }

    /// Total memory accesses in the trace.
    pub fn accesses(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.slice.access.is_some())
            .count() as u64
    }
}

impl FromStr for Trace {
    type Err = ParseTraceError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut records = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut parts = content.split_whitespace();
            let err = |message: String| ParseTraceError { line, message };
            let sm: usize = parts
                .next()
                .ok_or_else(|| err("missing sm".into()))?
                .parse()
                .map_err(|e| err(format!("bad sm: {e}")))?;
            let warp: usize = parts
                .next()
                .ok_or_else(|| err("missing warp".into()))?
                .parse()
                .map_err(|e| err(format!("bad warp: {e}")))?;
            let compute: u64 = parts
                .next()
                .ok_or_else(|| err("missing compute count".into()))?
                .parse()
                .map_err(|e| err(format!("bad compute count: {e}")))?;
            let access = match parts.next() {
                None => None,
                Some(k) => {
                    let kind = match k {
                        "R" | "r" => AccessKind::Load,
                        "W" | "w" => AccessKind::Store,
                        other => return Err(err(format!("bad access kind: {other}"))),
                    };
                    let addr_str = parts.next().ok_or_else(|| err("missing address".into()))?;
                    let digits = addr_str.trim_start_matches("0x").trim_start_matches("0X");
                    let addr = u64::from_str_radix(digits, 16)
                        .map_err(|e| err(format!("bad address: {e}")))?;
                    Some((Addr::new(addr), kind))
                }
            };
            if parts.next().is_some() {
                return Err(err("trailing tokens".into()));
            }
            records.push(TraceRecord {
                sm,
                warp,
                slice: WarpSlice {
                    compute_insts: compute,
                    access,
                },
            });
        }
        Ok(Trace { records })
    }
}

/// Wraps an [`InstructionStream`], recording every slice it produces.
///
/// # Example
///
/// ```
/// use ohm_workloads::trace::TraceRecorder;
/// use ohm_workloads::{workload_by_name, KernelWorkload};
/// use ohm_sm::InstructionStream;
///
/// let spec = workload_by_name("lud").unwrap();
/// let mut rec = TraceRecorder::new(KernelWorkload::new(spec, 1, 1, 200, 1));
/// while rec.next_slice(0, 0).is_some() {}
/// assert!(rec.trace().len() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRecorder<S> {
    inner: S,
    trace: Trace,
}

impl<S: InstructionStream> TraceRecorder<S> {
    /// Wraps `inner`, starting with an empty trace.
    pub fn new(inner: S) -> Self {
        TraceRecorder {
            inner,
            trace: Trace::new(),
        }
    }

    /// The trace captured so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the recorder, returning the captured trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl<S: InstructionStream> InstructionStream for TraceRecorder<S> {
    fn next_slice(&mut self, sm: usize, warp: usize) -> Option<WarpSlice> {
        let slice = self.inner.next_slice(sm, warp)?;
        self.trace.push(TraceRecord { sm, warp, slice });
        Some(slice)
    }
}

/// Replays a [`Trace`] as an [`InstructionStream`]: each lane consumes its
/// own records in recorded order.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    lanes: std::collections::HashMap<(usize, usize), VecDeque<WarpSlice>>,
}

impl TraceWorkload {
    /// Builds a replayer from a trace.
    pub fn new(trace: &Trace) -> Self {
        let mut lanes: std::collections::HashMap<(usize, usize), VecDeque<WarpSlice>> =
            std::collections::HashMap::new();
        for r in trace.records() {
            lanes.entry((r.sm, r.warp)).or_default().push_back(r.slice);
        }
        TraceWorkload { lanes }
    }

    /// Slices remaining across all lanes.
    pub fn remaining(&self) -> usize {
        self.lanes.values().map(|q| q.len()).sum()
    }
}

impl InstructionStream for TraceWorkload {
    fn next_slice(&mut self, sm: usize, warp: usize) -> Option<WarpSlice> {
        self.lanes.get_mut(&(sm, warp))?.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::workload_by_name;
    use crate::KernelWorkload;

    #[test]
    fn text_roundtrip() {
        let text = "# header comment\n0 0 5 R 0x100\n0 0 3\n1 2 0 W 0x44c0\n";
        let trace: Trace = text.parse().unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.instructions(), 5 + 1 + 3 + 1);
        assert_eq!(trace.accesses(), 2);
        let reparsed: Trace = trace.to_text().parse().unwrap();
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = "0 0 5 R 0x100\n0 bad 3\n".parse::<Trace>().unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("warp"));
        let e = "0 0 5 X 0x100\n".parse::<Trace>().unwrap_err();
        assert!(e.message.contains("access kind"));
        let e = "0 0 5 R\n".parse::<Trace>().unwrap_err();
        assert!(e.message.contains("address"));
        let e = "0 0 5 R 0x100 junk\n".parse::<Trace>().unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn record_then_replay_is_identical() {
        let spec = workload_by_name("bfsdata").unwrap();
        let mut rec = TraceRecorder::new(KernelWorkload::new(spec, 2, 2, 500, 3));
        // Interleave lanes the way the simulator would.
        let mut live = Vec::new();
        'outer: loop {
            let mut all_done = true;
            for sm in 0..2 {
                for w in 0..2 {
                    if let Some(s) = rec.next_slice(sm, w) {
                        live.push((sm, w, s));
                        all_done = false;
                    }
                }
            }
            if all_done {
                break 'outer;
            }
        }
        let trace = rec.into_trace();
        let mut replay = TraceWorkload::new(&trace);
        for &(sm, w, s) in &live {
            assert_eq!(replay.next_slice(sm, w), Some(s));
        }
        assert_eq!(replay.remaining(), 0);
        assert_eq!(replay.next_slice(0, 0), None);
    }

    #[test]
    fn replay_through_serialisation() {
        let spec = workload_by_name("lud").unwrap();
        let mut rec = TraceRecorder::new(KernelWorkload::new(spec, 1, 1, 300, 9));
        use ohm_sm::InstructionStream as _;
        while rec.next_slice(0, 0).is_some() {}
        let trace = rec.into_trace();
        let roundtripped: Trace = trace.to_text().parse().unwrap();
        assert_eq!(roundtripped, trace);
        let mut replay = TraceWorkload::new(&roundtripped);
        assert_eq!(replay.remaining(), trace.len());
        let first = replay.next_slice(0, 0).unwrap();
        assert_eq!(first, trace.records()[0].slice);
    }

    #[test]
    fn unknown_lane_is_exhausted() {
        let trace: Trace = "0 0 1\n".parse().unwrap();
        let mut replay = TraceWorkload::new(&trace);
        assert_eq!(replay.next_slice(5, 5), None);
    }
}
