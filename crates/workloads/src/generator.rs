//! Synthetic kernel generator.
//!
//! [`KernelWorkload`] turns a [`WorkloadSpec`] into a deterministic
//! [`InstructionStream`]: each (SM, warp) lane receives its own RNG stream
//! and walks the footprint according to the spec's pattern class, emitting
//! memory accesses at the spec's APKI with the spec's read ratio.

use ohm_sim::{Addr, SplitMix64};
use ohm_sm::{AccessKind, InstructionStream, WarpSlice};

use crate::spec::{AccessPattern, WorkloadSpec};

/// Access granularity: one GPU cache line.
pub(crate) const LINE_BYTES: u64 = 128;

#[derive(Debug, Clone)]
pub(crate) struct LaneState {
    pub(crate) rng: SplitMix64,
    pub(crate) remaining_insts: u64,
    /// Streaming/blocked cursor (line index within the footprint).
    pub(crate) cursor: u64,
    /// Remaining accesses within the current tile (blocked pattern).
    pub(crate) dwell_left: u32,
    /// Current tile base (line index).
    pub(crate) tile_base: u64,
}

/// Advances `lane`'s walker one access through a `footprint_lines`-line
/// region under `pattern`, returning the touched line index. Shared by
/// [`KernelWorkload`] (whole-footprint walks) and the phase-structured
/// [`crate::llm::PhasedWorkload`] (per-phase footprint slices).
pub(crate) fn next_line(
    lane: &mut LaneState,
    pattern: AccessPattern,
    footprint_lines: u64,
    global_accesses: u64,
    cold_cursor: &mut u64,
) -> u64 {
    match pattern {
        AccessPattern::Streaming => {
            // Streaming kernels double-buffer: at any instant the live
            // tiles cover a bounded, forward-moving region (an eighth
            // of the footprint), inside which each lane walks
            // sequentially. The region advances with global progress,
            // covering the array like the real kernel's pass.
            let window = (footprint_lines / 8).max(1);
            let frontier = global_accesses * (window / 8 + 1) / 32_768 % footprint_lines;
            lane.cursor = (lane.cursor + 1) % window;
            (frontier + lane.cursor) % footprint_lines
        }
        AccessPattern::Blocked { block_bytes, dwell } => {
            // Tiled kernels (LU panels, backprop layers) dwell inside a
            // tile drawn from the same bounded moving region.
            let window = (footprint_lines / 8).max(1);
            let frontier = global_accesses * (window / 8 + 1) / 32_768 % footprint_lines;
            let block_lines = (block_bytes / LINE_BYTES).max(1);
            if lane.dwell_left == 0 {
                let blocks = (window / block_lines).max(1);
                lane.tile_base = lane.rng.next_below(blocks) * block_lines;
                lane.dwell_left = dwell;
            }
            lane.dwell_left -= 1;
            (frontier + lane.tile_base + lane.rng.next_below(block_lines)) % footprint_lines
        }
        AccessPattern::Graph {
            gamma,
            window_frac,
            cold_frac,
        } => {
            let window = ((footprint_lines as f64 * window_frac) as u64).max(1);
            // The frontier window drifts *continuously* at a rate of
            // one eighth of its size per 32 K kernel-wide accesses:
            // slow enough that hot vertices are revisited many times
            // while resident (the temporal locality graph kernels
            // exhibit), fast enough that a full run turns over the hot
            // set a few times (the churn that drives data migration).
            // Continuous motion avoids artificial whole-window jumps
            // that would synchronise misses into bursts.
            // The frontier starts a third of the way into the graph
            // (kernels rarely start at address zero), which also means
            // the initial hot set starts on XPoint-resident pages in
            // the heterogeneous platforms.
            let frontier = (footprint_lines / 3 + global_accesses * (window / 8 + 1) / 32_768)
                % footprint_lines;
            if lane.rng.chance(cold_frac) {
                // Cold edges stream sequentially through the rest of
                // the footprint ahead of the frontier (edge lists are
                // read as streams); each touch samples one line per
                // page of the stream, so the cold walker ranges across
                // the whole graph within a run. Sequentiality keeps
                // host staging segmental.
                const COLD_STRIDE_LINES: u64 = 32; // one 4 KB page
                let span = (footprint_lines - window).max(1);
                let off = window + (*cold_cursor * COLD_STRIDE_LINES) % span;
                *cold_cursor += 1;
                (frontier + off) % footprint_lines
            } else {
                let u = lane.rng.next_f64();
                let off = (u.powf(gamma) * window as f64) as u64;
                (frontier + off.min(window - 1)) % footprint_lines
            }
        }
        AccessPattern::Uniform => lane.rng.next_below(footprint_lines),
    }
}

/// A deterministic synthetic GPU kernel.
///
/// # Example
///
/// ```
/// use ohm_workloads::{workload_by_name, KernelWorkload};
/// use ohm_sm::InstructionStream;
///
/// let spec = workload_by_name("pagerank").unwrap();
/// let mut k = KernelWorkload::new(spec, 16, 24, 10_000, 42);
/// let slice = k.next_slice(0, 0).unwrap();
/// assert!(slice.instructions() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct KernelWorkload {
    spec: WorkloadSpec,
    sms: usize,
    warps_per_sm: usize,
    lanes: Vec<LaneState>,
    footprint_lines: u64,
    cold_cursor: u64,
    issued_accesses: u64,
    issued_reads: u64,
    issued_insts: u64,
}

impl KernelWorkload {
    /// Creates a kernel over `sms × warps_per_sm` lanes, each executing
    /// `insts_per_warp` instructions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the footprint is smaller than
    /// one line.
    pub fn new(
        spec: WorkloadSpec,
        sms: usize,
        warps_per_sm: usize,
        insts_per_warp: u64,
        seed: u64,
    ) -> Self {
        assert!(
            sms > 0 && warps_per_sm > 0,
            "kernel needs at least one lane"
        );
        assert!(
            insts_per_warp > 0,
            "warps need a positive instruction budget"
        );
        let footprint_lines = spec.footprint_bytes / LINE_BYTES;
        assert!(footprint_lines > 0, "footprint smaller than one line");
        let mut root = SplitMix64::new(seed ^ 0x04_6D_47_5A);
        let total_lanes = sms * warps_per_sm;
        let lanes = (0..total_lanes)
            .map(|i| {
                let mut rng = root.fork(i as u64);
                // Spread streaming cursors across the active window so
                // lanes behave like different thread blocks.
                let cursor = rng.next_below((footprint_lines / 8).max(1));
                LaneState {
                    rng,
                    remaining_insts: insts_per_warp,
                    cursor,
                    dwell_left: 0,
                    // Tiled lanes start their sweeps spread across the
                    // footprint, like different thread blocks.
                    tile_base: cursor,
                }
            })
            .collect();
        KernelWorkload {
            spec,
            sms,
            warps_per_sm,
            lanes,
            footprint_lines,
            cold_cursor: 0,
            issued_accesses: 0,
            issued_reads: 0,
            issued_insts: 0,
        }
    }

    /// The generating spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn lane_index(&self, sm: usize, warp: usize) -> usize {
        assert!(
            sm < self.sms && warp < self.warps_per_sm,
            "lane out of range"
        );
        sm * self.warps_per_sm + warp
    }

    /// Memory accesses issued so far across all lanes.
    pub fn issued_accesses(&self) -> u64 {
        self.issued_accesses
    }

    /// Read accesses issued so far.
    pub fn issued_reads(&self) -> u64 {
        self.issued_reads
    }

    /// Instructions issued so far (compute + memory).
    pub fn issued_insts(&self) -> u64 {
        self.issued_insts
    }

    /// Measured APKI of the emitted stream so far.
    pub fn measured_apki(&self) -> f64 {
        if self.issued_insts == 0 {
            0.0
        } else {
            self.issued_accesses as f64 * 1000.0 / self.issued_insts as f64
        }
    }

    /// Measured read ratio of the emitted stream so far.
    pub fn measured_read_ratio(&self) -> f64 {
        if self.issued_accesses == 0 {
            0.0
        } else {
            self.issued_reads as f64 / self.issued_accesses as f64
        }
    }
}

impl InstructionStream for KernelWorkload {
    fn next_slice(&mut self, sm: usize, warp: usize) -> Option<WarpSlice> {
        let idx = self.lane_index(sm, warp);
        let pattern = self.spec.pattern;
        let footprint_lines = self.footprint_lines;
        let gap = self.spec.mean_compute_gap();
        let read_ratio = self.spec.read_ratio;

        let lane = &mut self.lanes[idx];
        if lane.remaining_insts == 0 {
            return None;
        }

        // Exponentially distributed compute gap with mean `gap`; zero is
        // allowed so APKIs above 500 (pagerank: 599) remain reachable.
        let compute = if gap <= 0.0 {
            0
        } else {
            (-lane.rng.next_f64().max(1e-18).ln() * gap).round() as u64
        };
        let compute = compute.min(lane.remaining_insts.saturating_sub(1));

        if lane.remaining_insts <= compute + 1 {
            // Budget exhausted by compute alone: drain without an access.
            let insts = lane.remaining_insts;
            lane.remaining_insts = 0;
            self.issued_insts += insts;
            return Some(WarpSlice::compute(insts));
        }

        lane.remaining_insts -= compute + 1;
        let mut cold = self.cold_cursor;
        let line = next_line(
            lane,
            pattern,
            footprint_lines,
            self.issued_accesses,
            &mut cold,
        );
        self.cold_cursor = cold;
        let lane = &mut self.lanes[idx];
        let kind = if lane.rng.chance(read_ratio) {
            AccessKind::Load
        } else {
            AccessKind::Store
        };
        let addr = Addr::from_block(line, LINE_BYTES);
        self.issued_accesses += 1;
        self.issued_insts += compute + 1;
        if kind.is_load() {
            self.issued_reads += 1;
        }
        Some(WarpSlice::memory(compute, addr, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::workload_by_name;

    fn drain(spec_name: &str, insts: u64) -> KernelWorkload {
        let spec = workload_by_name(spec_name).unwrap();
        let mut k = KernelWorkload::new(spec, 2, 4, insts, 7);
        for sm in 0..2 {
            for w in 0..4 {
                while k.next_slice(sm, w).is_some() {}
            }
        }
        k
    }

    #[test]
    fn apki_matches_spec_within_tolerance() {
        for name in ["pagerank", "lud", "FDTD", "betw"] {
            let k = drain(name, 50_000);
            let target = k.spec().apki as f64;
            let measured = k.measured_apki();
            let rel = (measured - target).abs() / target;
            assert!(
                rel < 0.15,
                "{name}: APKI target {target}, measured {measured:.1}"
            );
        }
    }

    #[test]
    fn read_ratio_matches_spec() {
        let k = drain("bfsdata", 50_000);
        assert!((k.measured_read_ratio() - 0.95).abs() < 0.02);
    }

    #[test]
    fn deterministic_across_instances() {
        let spec = workload_by_name("GRAMS").unwrap();
        let mut a = KernelWorkload::new(spec, 1, 2, 1000, 99);
        let mut b = KernelWorkload::new(spec, 1, 2, 1000, 99);
        for _ in 0..200 {
            assert_eq!(a.next_slice(0, 1), b.next_slice(0, 1));
        }
    }

    #[test]
    fn lanes_exhaust_exactly_their_budget() {
        let spec = workload_by_name("backp").unwrap().with_footprint(1 << 20);
        let mut k = KernelWorkload::new(spec, 1, 1, 5000, 1);
        let mut total = 0;
        while let Some(s) = k.next_slice(0, 0) {
            total += s.instructions();
        }
        assert_eq!(total, 5000);
        assert!(k.next_slice(0, 0).is_none());
    }

    #[test]
    fn graph_pattern_is_skewed() {
        // The hottest tenth of the footprint (by measured frequency) must
        // absorb most accesses - the power-law concentration that makes
        // hot-page migration worthwhile.
        let spec = workload_by_name("pagerank")
            .unwrap()
            .with_footprint(1 << 24);
        let mut k = KernelWorkload::new(spec, 1, 1, 200_000, 3);
        const BUCKETS: usize = 1024;
        let mut counts = [0u64; BUCKETS];
        let mut total = 0u64;
        let footprint_lines = (1u64 << 24) / 128;
        while let Some(s) = k.next_slice(0, 0) {
            if let Some((addr, _)) = s.access {
                total += 1;
                let b = (addr.block_index(128) * BUCKETS as u64 / footprint_lines) as usize;
                counts[b.min(BUCKETS - 1)] += 1;
            }
        }
        assert!(total > 1000);
        let mut sorted = counts;
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let hot: u64 = sorted[..BUCKETS / 10].iter().sum();
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.5, "hot-decile concentration {frac}");
    }

    #[test]
    fn streaming_pattern_is_sequential() {
        let spec = workload_by_name("GRAMS").unwrap().with_footprint(1 << 22);
        let mut k = KernelWorkload::new(spec, 1, 1, 100_000, 5);
        let mut last: Option<u64> = None;
        let mut seq = 0u64;
        let mut total = 0u64;
        while let Some(s) = k.next_slice(0, 0) {
            if let Some((addr, _)) = s.access {
                let line = addr.block_index(128);
                if let Some(prev) = last {
                    total += 1;
                    if line == prev + 1 {
                        seq += 1;
                    }
                }
                last = Some(line);
            }
        }
        assert!(seq as f64 / total as f64 > 0.95);
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn out_of_range_lane_panics() {
        let spec = workload_by_name("lud").unwrap();
        let mut k = KernelWorkload::new(spec, 1, 1, 100, 0);
        let _ = k.next_slice(1, 0);
    }
}
