//! Synthetic GPU workloads matching the paper's Table II, plus the
//! host/SSD substrate used by the breakdown study (Figure 3) and the
//! `Origin` platform.
//!
//! The paper evaluates ten applications from Rodinia, GraphBIG and
//! Polybench, characterised by their **APKI** (memory accesses per kilo
//! instruction) and **read ratio**. We do not have the authors' GPU
//! traces; instead each application is reproduced as a deterministic
//! synthetic kernel with the same APKI, read ratio and an access-pattern
//! class matching its domain (tiled/blocked for the Rodinia kernels,
//! streaming for the Polybench stencils, power-law graph for the GraphBIG
//! workloads). DESIGN.md documents why this substitution preserves the
//! paper's comparisons.
//!
//! Three workload *sources* implement the same
//! [`InstructionStream`](ohm_sm::InstructionStream) interface and are
//! interchangeable from the simulator's point of view:
//!
//! * **Synthetic kernels** ([`generator`], [`table2`], [`spec`]) — the
//!   ten Table II applications as deterministic generators.
//! * **Trace replay** ([`trace`]) — the versioned `ohm-trace v1` format
//!   with streaming record ([`TraceRecorder`]) and replay
//!   ([`TraceReplay`]); any run can be captured and replayed
//!   bit-identically (see `docs/TRACE_FORMAT.md`).
//! * **Phase plans** ([`llm`]) — phase-structured LLM inference
//!   (prefill-GEMM / softmax / decode / KV-cache phases), each phase
//!   with its own APKI, read ratio, footprint slice and locality model.
//!
//! Supporting modules:
//!
//! * [`ssd`] — SSD + PCIe DMA model for GPU↔host data movement.
//! * [`composite`] — spatial multi-tenancy: several kernels partitioned
//!   across the SMs, sharing the memory system.

#![warn(missing_docs)]

pub mod composite;
pub mod generator;
pub mod llm;
pub mod spec;
pub mod ssd;
pub mod table2;
pub mod trace;

pub use composite::CompositeWorkload;
pub use generator::KernelWorkload;
pub use llm::{PhasePlan, PhaseSpec, PhasedWorkload};
pub use spec::{AccessPattern, WorkloadSpec};
pub use ssd::{HostStorage, HostStorageConfig};
pub use table2::{all_workloads, workload_by_name};
pub use trace::{
    RecorderHandle, ReplayErrorHandle, Trace, TraceError, TraceReader, TraceRecord, TraceRecorder,
    TraceReplay, TraceWriter,
};
