//! Synthetic GPU workloads matching the paper's Table II, plus the
//! host/SSD substrate used by the breakdown study (Figure 3) and the
//! `Origin` platform.
//!
//! The paper evaluates ten applications from Rodinia, GraphBIG and
//! Polybench, characterised by their **APKI** (memory accesses per kilo
//! instruction) and **read ratio**. We do not have the authors' GPU
//! traces; instead each application is reproduced as a deterministic
//! synthetic kernel with the same APKI, read ratio and an access-pattern
//! class matching its domain (tiled/blocked for the Rodinia kernels,
//! streaming for the Polybench stencils, power-law graph for the GraphBIG
//! workloads). DESIGN.md documents why this substitution preserves the
//! paper's comparisons.
//!
//! * [`spec`] — workload descriptors and pattern classes.
//! * [`table2`] — the ten Table II applications as constants.
//! * [`generator`] — [`KernelWorkload`], an
//!   [`InstructionStream`](ohm_sm::InstructionStream) implementation.
//! * [`ssd`] — SSD + PCIe DMA model for GPU↔host data movement.
//! * [`trace`] — record/replay of memory traces, for users with real
//!   GPU traces.
//! * [`composite`] — spatial multi-tenancy: several kernels partitioned
//!   across the SMs, sharing the memory system.

#![warn(missing_docs)]

pub mod composite;
pub mod generator;
pub mod spec;
pub mod ssd;
pub mod table2;
pub mod trace;

pub use composite::CompositeWorkload;
pub use generator::KernelWorkload;
pub use spec::{AccessPattern, WorkloadSpec};
pub use ssd::{HostStorage, HostStorageConfig};
pub use table2::{all_workloads, workload_by_name};
pub use trace::{Trace, TraceRecord, TraceRecorder, TraceWorkload};
