//! Randomized-property tests for memory-device invariants, driven by the
//! workspace's own deterministic [`SplitMix64`] generator.

use ohm_mem::{DramConfig, DramModule, MemKind, StartGap, XPointConfig, XPointMedia};
use ohm_sim::{Addr, Ps, SplitMix64};

/// Start-Gap stays a bijection from logical lines onto a subset of
/// physical slots for any write sequence and rotation period.
#[test]
fn start_gap_always_injective() {
    let mut rng = SplitMix64::new(0x5A9);
    for _case in 0..48 {
        let lines = 2 + rng.next_below(62);
        let psi = 1 + rng.next_below(15) as u32;
        let writes: Vec<u64> = (0..rng.next_below(300))
            .map(|_| rng.next_below(64))
            .collect();
        let mut sg = StartGap::new(lines, psi);
        for &w in &writes {
            sg.record_write(w % lines);
            let mut seen = std::collections::HashSet::new();
            for l in 0..lines {
                let p = sg.translate(l);
                assert!(p <= lines, "physical slot out of range");
                assert!(seen.insert(p), "collision at logical {l}");
            }
        }
    }
}

/// A full gap rotation — the gap walks every physical slot and the start
/// register advances — upholds every translation invariant at every step:
/// bijectivity onto `[0, lines]`, exactly one unmapped slot (the gap),
/// byte-offset preservation through `translate_addr`, and the gap-move
/// cadence of one rotation per `psi` writes.
#[test]
fn start_gap_full_rotation_invariants() {
    let mut rng = SplitMix64::new(0x60A);
    for _case in 0..8 {
        let lines = 4 + rng.next_below(28);
        let psi = 1 + rng.next_below(7) as u32;
        let mut sg = StartGap::new(lines, psi);
        // (lines + 1) gap moves bring the gap back to the spare slot with
        // `start` advanced — one full rotation.
        let total_writes = (lines + 1) * psi as u64;
        for k in 1..=total_writes {
            let logical = rng.next_below(lines);
            sg.record_write(logical);
            // Cadence: exactly one rotation per psi writes, no drift.
            assert_eq!(sg.gap_moves(), k / psi as u64, "cadence at write {k}");
            // Bijectivity: no two logical lines share a physical slot.
            let mapped: std::collections::BTreeSet<u64> =
                (0..lines).map(|l| sg.translate(l)).collect();
            assert_eq!(mapped.len() as u64, lines, "collision at write {k}");
            assert!(mapped.iter().all(|&p| p <= lines), "slot out of range");
            // Exactly one physical slot — the gap — stays unmapped.
            let unmapped: Vec<u64> = (0..=lines).filter(|p| !mapped.contains(p)).collect();
            assert_eq!(unmapped.len(), 1, "exactly one gap at write {k}");
            // Offset preservation composes with rotation.
            let a = Addr::new(logical * 256 + 17);
            let t = sg.translate_addr(a, 256);
            assert_eq!(t.offset_in(256), 17);
            assert_eq!(t.block_index(256), sg.translate(logical));
        }
        assert_eq!(sg.gap_moves(), lines + 1, "full rotation completed");
    }
}

/// Start-Gap translation preserves the byte offset within a line.
#[test]
fn start_gap_preserves_offsets() {
    let mut rng = SplitMix64::new(0x0FF);
    for _case in 0..256 {
        let lines = 2 + rng.next_below(62);
        let block = rng.next_below(64);
        let off = rng.next_below(256);
        let sg = StartGap::new(lines, 8);
        let a = Addr::new((block % lines) * 256 + off);
        let t = sg.translate_addr(a, 256);
        assert_eq!(t.offset_in(256), a.offset_in(256));
    }
}

/// DRAM accesses never travel back in time (causality: the bank slot
/// starts no earlier than the request), never overlap within a bank,
/// and the data time always follows the start by at least tCL.
#[test]
fn dram_bank_slots_are_exclusive_and_causal() {
    let mut rng = SplitMix64::new(0xD7A);
    for _case in 0..32 {
        let n = 1 + rng.next_below(200) as usize;
        let addrs: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.next_below(1 << 20), rng.chance(0.5)))
            .collect();
        let cfg = DramConfig {
            refresh_enabled: false,
            ..DramConfig::default()
        };
        let mut d = DramModule::new(cfg);
        let mut now = Ps::ZERO;
        let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); cfg.banks];
        for &(a, is_read) in &addrs {
            let kind = if is_read {
                MemKind::Read
            } else {
                MemKind::Write
            };
            let acc = d.access(now, Addr::new(a & !63), kind);
            assert!(acc.start >= now, "access started before it was issued");
            assert!(acc.data_at >= acc.start + cfg.timing.tcl);
            for &(s, e) in &intervals[acc.bank] {
                let (ns, ne) = (acc.start.as_ps(), acc.data_at.as_ps());
                assert!(ne <= s || ns >= e, "bank slot overlap");
            }
            intervals[acc.bank].push((acc.start.as_ps(), acc.data_at.as_ps()));
            now += Ps::from_ns(1);
        }
        // Hit + miss + conflict classification covers every access.
        assert_eq!(
            d.row_hits() + d.row_misses() + d.row_conflicts(),
            addrs.len() as u64
        );
    }
}

/// The XPoint persistent write buffer never acknowledges a write
/// before its arrival, and never holds more than its capacity.
#[test]
fn xpoint_write_buffer_bounded() {
    let mut rng = SplitMix64::new(0xB0F);
    for _case in 0..48 {
        let depth = 1 + rng.next_below(15) as usize;
        let n = 1 + rng.next_below(200) as usize;
        let cfg = XPointConfig {
            write_buffer_lines: depth,
            capacity_bytes: 1 << 20,
            ..XPointConfig::default()
        };
        let mut xp = XPointMedia::new(cfg);
        let mut now = Ps::ZERO;
        for _ in 0..n {
            let a = rng.next_below(1 << 16);
            let ack = xp.write(now, Addr::new(a & !255));
            assert!(ack >= now);
            assert!(xp.buffered_writes() <= depth);
            now += Ps::from_ns(10);
        }
    }
}

/// Reads always complete at least one media latency after issue.
#[test]
fn xpoint_read_latency_floor() {
    let mut rng = SplitMix64::new(0xF10);
    for _case in 0..32 {
        let cfg = XPointConfig {
            capacity_bytes: 1 << 20,
            ..XPointConfig::default()
        };
        let mut xp = XPointMedia::new(cfg);
        for _ in 0..100 {
            let a = rng.next_below(1 << 16);
            let t0 = Ps::from_ns(a % 1000);
            let done = xp.read(t0, Addr::new(a & !255));
            assert!(done >= t0 + cfg.read_latency);
        }
    }
}

/// The sparse per-bucket wear counts match a dense mirror maintained
/// alongside: every write is counted in exactly the bucket the dense
/// `Vec` layout would have counted it in (gap-move copies included).
#[test]
fn sparse_wear_counts_match_dense_mirror() {
    let mut rng = SplitMix64::new(0xDE5E);
    for _case in 0..24 {
        let lines = 2 + rng.next_below(500);
        let psi = 1 + rng.next_below(15) as u32;
        let mut sg = StartGap::new(lines, psi);
        let mut dense = vec![0u64; sg.bucket_count()];
        let n = rng.next_below(600);
        for _ in 0..n {
            let logical = rng.next_below(lines);
            // Mirror the counting the mapper does internally: the write
            // lands on the *current* physical slot, and a gap rotation
            // additionally writes the copy destination.
            dense[sg.bucket_of(sg.translate(logical))] += 1;
            if let Some(mv) = sg.record_write(logical) {
                dense[sg.bucket_of(mv.to)] += 1;
            }
        }
        for (b, &want) in dense.iter().enumerate() {
            assert_eq!(sg.bucket_writes(b), want, "bucket {b}");
        }
        let stats = sg.wear_stats();
        assert_eq!(
            stats.max_bucket_writes,
            dense.iter().copied().max().unwrap()
        );
        let total: u64 = dense.iter().sum();
        let mean = total as f64 / dense.len() as f64;
        assert!((stats.mean_bucket_writes - mean).abs() < 1e-9);
    }
}

/// Wear tracking costs nothing until written, and only O(touched
/// buckets) after — independent of the module's line count.
#[test]
fn wear_state_is_touch_proportional() {
    // 16 GiB worth of 128-byte lines.
    let mut sg = StartGap::new((16u64 << 30) / 128, 128);
    assert_eq!(sg.state_bytes(), 0);
    for logical in 0..50u64 {
        sg.record_write(logical * 7919);
    }
    // 50 writes touch at most 50 buckets (plus gap-copy targets), far
    // under the full 4096-bucket table.
    assert!(sg.state_bytes() < 64 * 1024, "{} bytes", sg.state_bytes());
}

/// Lazily recomputed lifecycle budgets are bit-identical to the eager
/// arm-time pass they replaced: drawing `buckets` jittered budgets up
/// front from the same forked stream yields the same values, and the
/// per-operation stream continues exactly where the eager pass left off.
#[test]
fn lazy_lifecycle_budgets_match_eager_pass() {
    use ohm_mem::{LineLifecycle, XpLifecycleConfig};
    let mut seeds = SplitMix64::new(0x1A2B);
    for _case in 0..16 {
        let seed = seeds.next_u64();
        let buckets = 1 + seeds.next_below(300) as usize;
        let jitter_pct = seeds.next_below(50) as u32;
        let cfg = XpLifecycleConfig {
            endurance_writes: 1 + seeds.next_below(1 << 20),
            endurance_jitter_pct: jitter_pct,
            ..XpLifecycleConfig::NONE
        };
        let lc = LineLifecycle::new(cfg, SplitMix64::new(seed), buckets);
        // The historical eager pass: one next_f64 per bucket, in order.
        let mut eager_rng = SplitMix64::new(seed);
        let jitter = (jitter_pct as f64 / 100.0).min(0.99);
        for b in 0..buckets {
            let f = 1.0 + jitter * (2.0 * eager_rng.next_f64() - 1.0);
            let want = ((cfg.endurance_writes as f64 * f) as u64).max(1);
            assert_eq!(lc.bucket_budget(b), want, "bucket {b}");
        }
    }
}
