//! Property-based tests for memory-device invariants.

use ohm_mem::{DramConfig, DramModule, MemKind, StartGap, XPointConfig, XPointMedia};
use ohm_sim::{Addr, Ps};
use proptest::prelude::*;

proptest! {
    /// Start-Gap stays a bijection from logical lines onto a subset of
    /// physical slots for any write sequence and rotation period.
    #[test]
    fn start_gap_always_injective(
        lines in 2u64..64,
        psi in 1u32..16,
        writes in prop::collection::vec(0u64..64, 0..300),
    ) {
        let mut sg = StartGap::new(lines, psi);
        for &w in &writes {
            sg.record_write(w % lines);
            let mut seen = std::collections::HashSet::new();
            for l in 0..lines {
                let p = sg.translate(l);
                prop_assert!(p <= lines, "physical slot out of range");
                prop_assert!(seen.insert(p), "collision at logical {l}");
            }
        }
    }

    /// Start-Gap translation preserves the byte offset within a line.
    #[test]
    fn start_gap_preserves_offsets(
        lines in 2u64..64,
        block in 0u64..64,
        off in 0u64..256,
    ) {
        let sg = StartGap::new(lines, 8);
        let a = Addr::new((block % lines) * 256 + off % 256);
        let t = sg.translate_addr(a, 256);
        prop_assert_eq!(t.offset_in(256), a.offset_in(256));
    }

    /// DRAM accesses never travel back in time (causality: the bank slot
    /// starts no earlier than the request), never overlap within a bank,
    /// and the data time always follows the start by at least tCL.
    #[test]
    fn dram_bank_slots_are_exclusive_and_causal(
        addrs in prop::collection::vec((0u64..1u64 << 20, any::<bool>()), 1..200)
    ) {
        let cfg = DramConfig { refresh_enabled: false, ..DramConfig::default() };
        let mut d = DramModule::new(cfg);
        let mut now = Ps::ZERO;
        let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); cfg.banks];
        for &(a, is_read) in &addrs {
            let kind = if is_read { MemKind::Read } else { MemKind::Write };
            let acc = d.access(now, Addr::new(a & !63), kind);
            prop_assert!(acc.start >= now, "access started before it was issued");
            prop_assert!(acc.data_at >= acc.start + cfg.timing.tcl);
            for &(s, e) in &intervals[acc.bank] {
                let (ns, ne) = (acc.start.as_ps(), acc.data_at.as_ps());
                prop_assert!(ne <= s || ns >= e, "bank slot overlap");
            }
            intervals[acc.bank].push((acc.start.as_ps(), acc.data_at.as_ps()));
            now += Ps::from_ns(1);
        }
        // Hit + miss + conflict classification covers every access.
        prop_assert_eq!(
            d.row_hits() + d.row_misses() + d.row_conflicts(),
            addrs.len() as u64
        );
    }

    /// The XPoint persistent write buffer never acknowledges a write
    /// before its arrival, and never holds more than its capacity.
    #[test]
    fn xpoint_write_buffer_bounded(
        writes in prop::collection::vec(0u64..1u64 << 16, 1..200),
        depth in 1usize..16,
    ) {
        let cfg = XPointConfig {
            write_buffer_lines: depth,
            capacity_bytes: 1 << 20,
            ..XPointConfig::default()
        };
        let mut xp = XPointMedia::new(cfg);
        let mut now = Ps::ZERO;
        for &a in &writes {
            let ack = xp.write(now, Addr::new(a & !255));
            prop_assert!(ack >= now);
            prop_assert!(xp.buffered_writes() <= depth);
            now += Ps::from_ns(10);
        }
    }

    /// Reads always complete at least one media latency after issue.
    #[test]
    fn xpoint_read_latency_floor(addrs in prop::collection::vec(0u64..1u64 << 16, 1..100)) {
        let cfg = XPointConfig { capacity_bytes: 1 << 20, ..XPointConfig::default() };
        let mut xp = XPointMedia::new(cfg);
        for &a in &addrs {
            let t0 = Ps::from_ns(a % 1000);
            let done = xp.read(t0, Addr::new(a & !255));
            prop_assert!(done >= t0 + cfg.read_latency);
        }
    }
}
