//! DDR sequence generator and DDR monitor.
//!
//! Two small hardware blocks make the dual-route functions possible
//! (Section V-A; the paper reports the generator at 2.8 K LUTs + 4.7 K
//! flip-flops):
//!
//! * the **DDR sequence generator** lives in the XPoint controller and
//!   converts a delegated migration into the precharge/activate/CAS
//!   command sequence that drives DRAM directly over the memory route
//!   (the swap function, Figure 11);
//! * the **DDR monitor** lives in the memory controller and snoops the
//!   channel during a reverse write, capturing the data XPoint streams to
//!   DRAM so the MC can serve the demand miss from the same transfer
//!   (Figure 12).

use ohm_sim::{Addr, Counter, Ps};

use crate::dram::{DramConfig, DramModule};
use crate::protocol::{DdrCommand, MemKind};

/// The DDR sequence generator: expands page-granularity copies into DRAM
/// command sequences and executes them against a [`DramModule`].
///
/// # Example
///
/// ```
/// use ohm_mem::ddr_seq::DdrSequenceGenerator;
/// use ohm_mem::{DramConfig, DramModule, MemKind};
/// use ohm_sim::{Addr, Ps};
///
/// let cfg = DramConfig { refresh_enabled: false, ..DramConfig::default() };
/// let mut dram = DramModule::new(cfg);
/// let mut generator = DdrSequenceGenerator::new(128);
/// let seq = generator.plan_page(&dram, Addr::new(0), 4096, MemKind::Read);
/// assert!(matches!(seq[0], ohm_mem::DdrCommand::Activate { .. }));
/// let done = generator.execute_page(&mut dram, Ps::ZERO, Addr::new(0), 4096, MemKind::Read);
/// assert!(done > Ps::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DdrSequenceGenerator {
    line_bytes: u64,
    commands_issued: Counter,
    pages_processed: Counter,
}

impl DdrSequenceGenerator {
    /// Creates a generator operating at `line_bytes` burst granularity.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        DdrSequenceGenerator {
            line_bytes,
            commands_issued: Counter::new(),
            pages_processed: Counter::new(),
        }
    }

    /// Plans the DDR command sequence for copying `page_bytes` starting at
    /// `base`, without executing it: one activate per touched row, then
    /// one CAS per line (the sequence a state machine would emit).
    pub fn plan_page(
        &mut self,
        dram: &DramModule,
        base: Addr,
        page_bytes: u64,
        kind: MemKind,
    ) -> Vec<DdrCommand> {
        let cfg: &DramConfig = dram.config();
        let mut seq = Vec::new();
        let lines = (page_bytes / self.line_bytes).max(1);
        let mut open_row: Option<(usize, u64)> = None;
        for i in 0..lines {
            let addr = base.offset(i * self.line_bytes);
            let row_index = addr.block_index(cfg.row_bytes);
            let bank = (row_index % cfg.banks as u64) as usize;
            let row = row_index / cfg.banks as u64;
            if open_row != Some((bank, row)) {
                if open_row.map(|(b, _)| b) == Some(bank) {
                    seq.push(DdrCommand::Precharge { bank });
                }
                seq.push(DdrCommand::Activate { bank, row });
                open_row = Some((bank, row));
            }
            let col = addr.offset_in(cfg.row_bytes) / self.line_bytes;
            seq.push(match kind {
                MemKind::Read => DdrCommand::Read { bank, col },
                MemKind::Write => DdrCommand::Write { bank, col },
            });
        }
        self.commands_issued.add(seq.len() as u64);
        seq
    }

    /// Executes a page copy against the DRAM module, returning when the
    /// last burst completes. The module's bank state machines apply the
    /// activate/precharge costs the plan implies.
    pub fn execute_page(
        &mut self,
        dram: &mut DramModule,
        start: Ps,
        base: Addr,
        page_bytes: u64,
        kind: MemKind,
    ) -> Ps {
        let lines = (page_bytes / self.line_bytes).max(1);
        let mut done = start;
        for i in 0..lines {
            let acc = dram.access(start, base.offset(i * self.line_bytes), kind);
            done = done.max(acc.data_at);
        }
        self.pages_processed.incr();
        done
    }

    /// Total DDR commands planned.
    pub fn commands_issued(&self) -> u64 {
        self.commands_issued.get()
    }

    /// Pages executed.
    pub fn pages_processed(&self) -> u64 {
        self.pages_processed.get()
    }
}

/// State of the memory controller's DDR monitor during a reverse write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorState {
    /// Not snooping; normal request issue.
    #[default]
    Idle,
    /// Armed by the XPoint controller's ready signal; new request issue is
    /// paused (Figure 12, step 2).
    Armed,
    /// Actively capturing the XPoint→DRAM burst.
    Snarfing,
}

/// The DDR monitor: a small state machine that pauses request issue and
/// captures channel data during a reverse write.
///
/// # Example
///
/// ```
/// use ohm_mem::ddr_seq::{DdrMonitor, MonitorState};
/// use ohm_sim::{Addr, Ps};
///
/// let mut monitor = DdrMonitor::new();
/// monitor.arm(Ps::ZERO, Addr::new(0x100));
/// assert_eq!(monitor.state(), MonitorState::Armed);
/// monitor.begin_snarf(Ps::from_ns(1));
/// let captured = monitor.complete(Ps::from_ns(2));
/// assert_eq!(captured, Some(Addr::new(0x100)));
/// assert_eq!(monitor.state(), MonitorState::Idle);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DdrMonitor {
    state: MonitorState,
    target: Option<Addr>,
    armed_at: Ps,
    snarfs: Counter,
    paused_time: Ps,
}

impl DdrMonitor {
    /// Creates an idle monitor.
    pub fn new() -> Self {
        DdrMonitor::default()
    }

    /// Current state.
    pub fn state(&self) -> MonitorState {
        self.state
    }

    /// The XPoint controller's ready signal arrives: pause issue and arm.
    ///
    /// # Panics
    ///
    /// Panics if the monitor is not idle (reverse writes serialise).
    pub fn arm(&mut self, now: Ps, target: Addr) {
        assert_eq!(self.state, MonitorState::Idle, "monitor already engaged");
        self.state = MonitorState::Armed;
        self.target = Some(target);
        self.armed_at = now;
    }

    /// The XPoint→DRAM burst begins; the monitor couples to the channel.
    ///
    /// # Panics
    ///
    /// Panics if the monitor was not armed.
    pub fn begin_snarf(&mut self, _now: Ps) {
        assert_eq!(self.state, MonitorState::Armed, "snarf without arming");
        self.state = MonitorState::Snarfing;
    }

    /// The burst completes: returns the captured line address and goes
    /// idle, accounting the pause window.
    ///
    /// # Panics
    ///
    /// Panics if the monitor was not snarfing.
    pub fn complete(&mut self, now: Ps) -> Option<Addr> {
        assert_eq!(self.state, MonitorState::Snarfing, "complete without snarf");
        self.state = MonitorState::Idle;
        self.snarfs.incr();
        self.paused_time += now - self.armed_at;
        self.target.take()
    }

    /// Reverse writes captured.
    pub fn snarfs(&self) -> u64 {
        self.snarfs.get()
    }

    /// Total time request issue was paused by the monitor.
    pub fn paused_time(&self) -> Ps {
        self.paused_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_dram() -> DramModule {
        DramModule::new(DramConfig {
            refresh_enabled: false,
            ..DramConfig::default()
        })
    }

    #[test]
    fn plan_has_one_cas_per_line_and_activates_per_row() {
        let dram = quiet_dram();
        let mut generator = DdrSequenceGenerator::new(128);
        // 4 KB page over 2 KB rows: 2 rows -> 2 activates, 32 CAS.
        let seq = generator.plan_page(&dram, Addr::new(0), 4096, MemKind::Read);
        let activates = seq
            .iter()
            .filter(|c| matches!(c, DdrCommand::Activate { .. }))
            .count();
        let reads = seq
            .iter()
            .filter(|c| matches!(c, DdrCommand::Read { .. }))
            .count();
        assert_eq!(activates, 2);
        assert_eq!(reads, 32);
        assert_eq!(generator.commands_issued(), 34);
    }

    #[test]
    fn plan_precharges_only_on_same_bank_row_change() {
        let dram = quiet_dram();
        let mut generator = DdrSequenceGenerator::new(128);
        // Consecutive 2 KB rows land in different banks, so no precharge.
        let seq = generator.plan_page(&dram, Addr::new(0), 4096, MemKind::Write);
        assert!(!seq
            .iter()
            .any(|c| matches!(c, DdrCommand::Precharge { .. })));
        let writes = seq
            .iter()
            .filter(|c| matches!(c, DdrCommand::Write { .. }))
            .count();
        assert_eq!(writes, 32);
    }

    #[test]
    fn execute_page_times_match_module_accounting() {
        let mut dram = quiet_dram();
        let mut generator = DdrSequenceGenerator::new(128);
        let done = generator.execute_page(&mut dram, Ps::ZERO, Addr::new(0), 4096, MemKind::Write);
        assert!(done >= Ps::from_ns(36), "at least one activate + CAS");
        assert_eq!(dram.writes(), 32);
        assert_eq!(generator.pages_processed(), 1);
    }

    #[test]
    fn monitor_full_cycle() {
        let mut monitor = DdrMonitor::new();
        monitor.arm(Ps::from_ns(10), Addr::new(0x80));
        monitor.begin_snarf(Ps::from_ns(12));
        let got = monitor.complete(Ps::from_ns(20));
        assert_eq!(got, Some(Addr::new(0x80)));
        assert_eq!(monitor.snarfs(), 1);
        assert_eq!(monitor.paused_time(), Ps::from_ns(10));
        // Reusable after completion.
        monitor.arm(Ps::from_ns(30), Addr::new(0x100));
        assert_eq!(monitor.state(), MonitorState::Armed);
    }

    #[test]
    #[should_panic(expected = "already engaged")]
    fn monitor_rejects_double_arm() {
        let mut monitor = DdrMonitor::new();
        monitor.arm(Ps::ZERO, Addr::new(0));
        monitor.arm(Ps::ZERO, Addr::new(64));
    }

    #[test]
    #[should_panic(expected = "snarf without arming")]
    fn monitor_rejects_unarmed_snarf() {
        let mut monitor = DdrMonitor::new();
        monitor.begin_snarf(Ps::ZERO);
    }
}
