//! Start-Gap wear leveling.
//!
//! The paper's XPoint controller adopts a Start-Gap scheme inspired by
//! [Qureshi et al., MICRO'09]: instead of a DRAM-resident mapping table, two
//! registers (`start`, `gap`) define an algebraic logical→physical mapping
//! over `N` lines plus one spare (the *gap*). Every `psi` writes the gap
//! walks one position, slowly rotating the whole address space so that hot
//! lines spread their wear across the media. This lets Ohm-GPU's
//! logic-layer XPoint controller "fully eliminate the usage of the DRAM
//! buffer" for translation metadata (Section III-A).

use ohm_sim::{Addr, Counter, FastDiv, SparseState};

/// Number of coarse wear-tracking buckets (physical lines are folded into
/// these so endurance accounting stays O(1) in memory for huge modules).
const WEAR_BUCKETS: usize = 4096;

/// Why a lifetime projection could not be made.
///
/// Mirrors the explicit-error convention of the reliability layer: a
/// projection over an idle or instantaneous window is a caller mistake
/// worth naming, not a silent `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WearError {
    /// No line writes were observed, so there is no write rate to project.
    NoWrites,
    /// The observation window is zero or negative.
    NoElapsedTime,
}

impl std::fmt::Display for WearError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WearError::NoWrites => {
                write!(f, "no writes observed: nothing to project a lifetime from")
            }
            WearError::NoElapsedTime => {
                write!(f, "elapsed time must be positive to derive a write rate")
            }
        }
    }
}

impl std::error::Error for WearError {}

/// A physical data movement required by a gap rotation: the line at
/// `from` must be copied to `to` (one media read + one media write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapMove {
    /// Physical source slot.
    pub from: u64,
    /// Physical destination slot (the old gap position).
    pub to: u64,
}

/// Endurance summary derived from per-bucket write counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearStats {
    /// Total line writes observed (including gap-move copies).
    pub total_writes: u64,
    /// Mean writes per bucket.
    pub mean_bucket_writes: f64,
    /// Maximum writes in any bucket.
    pub max_bucket_writes: u64,
    /// Max/mean ratio — 1.0 is perfectly even wear. Always finite and
    /// `>= 1.0`: with zero observed writes (mean 0) it is defined as 1.0
    /// rather than NaN.
    pub imbalance: f64,
    /// Gap rotations performed so far.
    pub gap_moves: u64,
}

/// Start-Gap address translation over `lines` logical lines backed by
/// `lines + 1` physical slots.
///
/// # Example
///
/// ```
/// use ohm_mem::StartGap;
///
/// let mut sg = StartGap::new(8, 4); // 8 lines, rotate every 4 writes
/// let before = sg.translate(3);
/// for _ in 0..4 { sg.record_write(3); }
/// // After one rotation some line has moved; the mapping stays injective.
/// let mapped: std::collections::BTreeSet<u64> = (0..8).map(|l| sg.translate(l)).collect();
/// assert_eq!(mapped.len(), 8);
/// let _ = before;
/// ```
#[derive(Debug, Clone)]
pub struct StartGap {
    lines: u64,
    start: u64,
    gap: u64,
    psi: u32,
    writes_since_move: u32,
    gap_moves: Counter,
    total_writes: Counter,
    /// Per-bucket write counts, materialized only for buckets actually
    /// written — untouched buckets read as zero analytically, so wear
    /// summaries never visit (or allocate) the full bucket range.
    bucket_writes: SparseState<u64>,
    /// Reciprocal of `lines` for the per-access address fold.
    lines_div: FastDiv,
    /// Reciprocal of the bucket count for the per-write wear fold.
    buckets_div: FastDiv,
}

impl StartGap {
    /// Creates a mapper over `lines` logical lines that rotates the gap
    /// every `psi` writes.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or `psi` is zero.
    pub fn new(lines: u64, psi: u32) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(psi > 0, "psi must be positive");
        let buckets = WEAR_BUCKETS.min(lines as usize + 1);
        StartGap {
            lines,
            start: 0,
            gap: lines, // gap begins at the spare (last) slot
            psi,
            writes_since_move: 0,
            gap_moves: Counter::new(),
            total_writes: Counter::new(),
            bucket_writes: SparseState::new(buckets as u64),
            lines_div: FastDiv::new(lines),
            buckets_div: FastDiv::new(buckets as u64),
        }
    }

    /// Number of logical lines.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Translates a logical line index to a physical slot in
    /// `[0, lines]`; the slot equal to the current gap is never returned.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= lines`.
    pub fn translate(&self, logical: u64) -> u64 {
        assert!(logical < self.lines, "logical line out of range");
        // Both terms are below `lines`, so the fold is one conditional
        // subtract rather than a hardware modulo.
        let sum = logical + self.start;
        let rotated = if sum >= self.lines {
            sum - self.lines
        } else {
            sum
        };
        if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        }
    }

    /// Translates a logical byte address given the line size.
    pub fn translate_addr(&self, addr: Addr, line_bytes: u64) -> Addr {
        let logical = self.logical_of(addr, line_bytes);
        let phys = self.translate(logical);
        Addr::from_block(phys, line_bytes).offset(addr.offset_in(line_bytes))
    }

    /// Folds a byte address onto this mapper's logical line space.
    pub fn logical_of(&self, addr: Addr, line_bytes: u64) -> u64 {
        self.lines_div.rem(addr.block_index(line_bytes))
    }

    /// Records a line write to `logical`. Every `psi` writes this triggers
    /// a gap rotation; the returned [`GapMove`] tells the caller which
    /// physical copy (one read + one write on the media) must be performed.
    pub fn record_write(&mut self, logical: u64) -> Option<GapMove> {
        let phys = self.translate(logical);
        self.count_bucket(phys);
        self.total_writes.incr();
        self.writes_since_move += 1;
        if self.writes_since_move < self.psi {
            return None;
        }
        self.writes_since_move = 0;
        Some(self.move_gap())
    }

    fn move_gap(&mut self) -> GapMove {
        self.gap_moves.incr();
        let mv = if self.gap == 0 {
            // Wrap: the spare returns to the top and the rotation advances.
            let mv = GapMove {
                from: self.lines,
                to: 0,
            };
            self.gap = self.lines;
            self.start += 1;
            if self.start >= self.lines {
                self.start = 0;
            }
            mv
        } else {
            let mv = GapMove {
                from: self.gap - 1,
                to: self.gap,
            };
            self.gap -= 1;
            mv
        };
        // The copy itself writes the destination slot.
        self.count_bucket(mv.to);
        self.total_writes.incr();
        mv
    }

    fn count_bucket(&mut self, phys: u64) {
        let b = self.buckets_div.rem(phys);
        *self.bucket_writes.get_mut(b) += 1;
    }

    /// Gap rotations performed so far.
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves.get()
    }

    /// Number of coarse wear buckets physical slots are folded into.
    pub fn bucket_count(&self) -> usize {
        self.bucket_writes.len() as usize
    }

    /// The wear bucket a physical slot folds into.
    pub fn bucket_of(&self, phys: u64) -> usize {
        self.buckets_div.rem(phys) as usize
    }

    /// Writes absorbed by one wear bucket so far (gap-move copies included).
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= bucket_count()`.
    pub fn bucket_writes(&self, bucket: usize) -> u64 {
        *self.bucket_writes.get(bucket as u64)
    }

    /// Heap bytes held by the materialized wear-tracking state. Scales
    /// with buckets actually written, not with the module's line count.
    pub fn state_bytes(&self) -> usize {
        self.bucket_writes.heap_bytes()
    }

    /// Physical slots folded into each wear bucket (at least 1.0).
    pub fn lines_per_bucket(&self) -> f64 {
        ((self.lines + 1) as f64 / self.bucket_writes.len() as f64).max(1.0)
    }

    /// Estimated media lifetime in seconds: with the observed write rate
    /// and imbalance, how long until the hottest line exhausts
    /// `endurance_writes` program cycles.
    ///
    /// This is the single home of the projection; the XPoint controller
    /// exposes its mapper via
    /// [`wear_map`](crate::xpoint_ctrl::XPointController::wear_map) rather
    /// than duplicating a passthrough.
    ///
    /// # Errors
    ///
    /// [`WearError::NoElapsedTime`] when `elapsed_secs` is not positive,
    /// [`WearError::NoWrites`] when no line writes were observed.
    pub fn lifetime_secs(
        &self,
        elapsed_secs: f64,
        endurance_writes: u64,
    ) -> Result<f64, WearError> {
        if elapsed_secs <= 0.0 {
            return Err(WearError::NoElapsedTime);
        }
        let stats = self.wear_stats();
        if stats.total_writes == 0 || stats.max_bucket_writes == 0 {
            return Err(WearError::NoWrites);
        }
        // Hottest-bucket write rate, spread over the lines in a bucket.
        let hottest_line_rate =
            stats.max_bucket_writes as f64 / self.lines_per_bucket() / elapsed_secs;
        Ok(endurance_writes as f64 / hottest_line_rate)
    }

    /// Endurance summary. Untouched buckets contribute analytically
    /// (they hold zero writes and can never be the maximum), so this
    /// only visits materialized buckets.
    pub fn wear_stats(&self) -> WearStats {
        let total = self.total_writes.get();
        let max = self
            .bucket_writes
            .iter_touched()
            .map(|(_, &w)| w)
            .max()
            .unwrap_or(0);
        let mean = total as f64 / self.bucket_writes.len() as f64;
        WearStats {
            total_writes: total,
            mean_bucket_writes: mean,
            max_bucket_writes: max,
            imbalance: if mean > 0.0 { max as f64 / mean } else { 1.0 },
            gap_moves: self.gap_moves.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn initial_mapping_is_identity() {
        let sg = StartGap::new(16, 100);
        for l in 0..16 {
            assert_eq!(sg.translate(l), l);
        }
    }

    #[test]
    fn mapping_is_injective_after_many_moves() {
        let mut sg = StartGap::new(8, 1); // rotate on every write
        for step in 0..100 {
            sg.record_write(step % 8);
            let mapped: BTreeSet<u64> = (0..8).map(|l| sg.translate(l)).collect();
            assert_eq!(mapped.len(), 8, "collision after step {step}");
            for &p in &mapped {
                assert!(p <= 8);
            }
        }
    }

    #[test]
    fn gap_is_never_mapped() {
        let mut sg = StartGap::new(8, 1);
        for step in 0..50 {
            sg.record_write(step % 8);
            let gap = (0..=8u64).find(|p| !(0..8).any(|l| sg.translate(l) == *p));
            assert!(gap.is_some(), "some slot must be the unmapped gap");
        }
    }

    #[test]
    fn gap_move_happens_every_psi_writes() {
        let mut sg = StartGap::new(8, 4);
        assert!(sg.record_write(0).is_none());
        assert!(sg.record_write(0).is_none());
        assert!(sg.record_write(0).is_none());
        let mv = sg.record_write(0);
        assert_eq!(mv, Some(GapMove { from: 7, to: 8 }));
        assert_eq!(sg.gap_moves(), 1);
    }

    #[test]
    fn gap_wraps_and_rotation_advances() {
        let lines = 4u64;
        let mut sg = StartGap::new(lines, 1);
        // Drive lines+1 moves: gap walks 3,2,1,0 then wraps.
        let mut last = None;
        for i in 0..(lines + 1) {
            last = sg.record_write(i % lines);
        }
        assert_eq!(last, Some(GapMove { from: lines, to: 0 }));
        // After the wrap, start has advanced: logical 0 no longer maps to 0.
        assert_ne!(sg.translate(0), 0);
    }

    #[test]
    fn translate_addr_preserves_offset() {
        let sg = StartGap::new(64, 100);
        let a = Addr::new(3 * 256 + 17);
        let t = sg.translate_addr(a, 256);
        assert_eq!(t.offset_in(256), 17);
        assert_eq!(t.block_index(256), 3); // identity before any rotation
    }

    #[test]
    fn hot_line_wear_spreads_over_time() {
        // Hammer a single logical line; with rotation its physical position
        // keeps changing, so no single bucket absorbs all writes.
        let mut sg = StartGap::new(64, 8);
        for _ in 0..64 * 64 {
            sg.record_write(7);
        }
        let stats = sg.wear_stats();
        // Without leveling, imbalance would be ~bucket_count; with start-gap
        // the hot line visits many physical slots.
        assert!(stats.imbalance < 40.0, "imbalance {}", stats.imbalance);
        assert!(stats.gap_moves > 0);
        assert_eq!(stats.total_writes, 64 * 64 + stats.gap_moves);
    }

    #[test]
    fn lifetime_estimate_behaves() {
        let mut sg = StartGap::new(1024, 16);
        assert_eq!(
            sg.lifetime_secs(1.0, 1_000_000),
            Err(WearError::NoWrites),
            "no writes yet"
        );
        for i in 0..10_000u64 {
            sg.record_write(i % 1024);
        }
        let uniform = sg.lifetime_secs(1.0, 1_000_000).expect("writes observed");
        assert!(uniform > 0.0);
        // A hammered workload wears out faster than a uniform one.
        let mut hot = StartGap::new(1024, 16);
        for _ in 0..10_000u64 {
            hot.record_write(7);
        }
        let hammered = hot.lifetime_secs(1.0, 1_000_000).expect("writes observed");
        assert!(
            hammered < uniform,
            "hammered {hammered} vs uniform {uniform}"
        );
        assert_eq!(
            hot.lifetime_secs(0.0, 1_000_000),
            Err(WearError::NoElapsedTime)
        );
        assert!(WearError::NoWrites.to_string().contains("no writes"));
        assert!(WearError::NoElapsedTime.to_string().contains("positive"));
    }

    #[test]
    fn bucket_accessors_are_consistent() {
        let mut sg = StartGap::new(64, 8);
        assert_eq!(sg.bucket_count(), 65); // lines + 1 spare, under the cap
        assert!(sg.lines_per_bucket() >= 1.0);
        for _ in 0..10 {
            sg.record_write(3);
        }
        let total: u64 = (0..sg.bucket_count()).map(|b| sg.bucket_writes(b)).sum();
        assert_eq!(total, sg.wear_stats().total_writes);
        assert_eq!(sg.bucket_of(3), 3);
        assert_eq!(sg.bucket_of(65 + 3), 3); // folds modulo bucket count
    }

    #[test]
    fn fresh_mapper_wear_stats_are_finite() {
        // Zero-denominator case: no writes at all.
        let stats = StartGap::new(64, 8).wear_stats();
        assert_eq!(stats.total_writes, 0);
        assert_eq!(stats.max_bucket_writes, 0);
        assert!(stats.imbalance.is_finite());
        assert_eq!(stats.imbalance, 1.0);
    }

    #[test]
    fn imbalance_is_at_least_one_once_writing() {
        let mut sg = StartGap::new(64, 8);
        sg.record_write(0);
        let stats = sg.wear_stats();
        assert!(stats.imbalance.is_finite());
        assert!(stats.imbalance >= 1.0);
    }

    #[test]
    #[should_panic(expected = "logical line out of range")]
    fn out_of_range_translate_panics() {
        let sg = StartGap::new(4, 1);
        let _ = sg.translate(4);
    }
}
