//! End-of-life lifecycle for XPoint media: endurance-driven wear-out and
//! the ECC model in front of it.
//!
//! Start-Gap ([`crate::wear`]) spreads writes but cannot stop cells from
//! exhausting their program-cycle budget. This module derives *permanent*
//! per-line failure deterministically from the existing wear map: every
//! wear bucket (a cohort of physical lines) carries an endurance budget
//! with per-bucket process variation, and once the cohort exceeds it the
//! cells begin to fail — first as correctable single-symbol ECC errors
//! (fixed transparently, followed by a scrub write), then as
//! uncorrectable errors or hard wear-out, both of which retire the line
//! into the controller's spare region (see
//! [`crate::xpoint_ctrl::XPointController`]).
//!
//! # Accelerated aging
//!
//! Real Optane-class media endures ~10⁶–10⁷ program cycles per line —
//! unreachable in a microsecond-scale simulation. The endurance knob is
//! therefore expressed at *bucket* granularity: [`XpLifecycleConfig::
//! endurance_writes`] is the number of writes one wear bucket absorbs
//! before its weakest cells start dying. Sweeping it downward compresses
//! years of device aging into one simulated kernel (`fig_lifetime`).
//!
//! # Determinism contract
//!
//! The same contract as fault injection (DESIGN.md §3.4): all randomness
//! comes from one forked [`SplitMix64`] stream handed to
//! [`LineLifecycle::new`]. Per-bucket endurance variation occupies the
//! first `buckets` draws of that stream — one per bucket, in bucket
//! order — but is evaluated *lazily*: budgets are recomputed on demand
//! by jumping the stream O(1) to the bucket's reserved draw
//! ([`SplitMix64::advance`]), so arming costs no per-bucket memory or
//! time while producing bit-identical budgets to the historical eager
//! pass. Per-operation ECC classification continues after those
//! reserved draws and draws exactly one number, and only once a
//! bucket's wear fraction has reached [`XpLifecycleConfig::ecc_onset`]
//! *and* an ECC rate is non-zero. A disabled config
//! ([`XpLifecycleConfig::NONE`]) is never armed and a zero-wear run
//! draws nothing per-op, so both are bit-identical to a lifecycle-free
//! run.

use ohm_sim::{Ps, SplitMix64};

/// Wear-out lifecycle knobs for one XPoint controller.
///
/// All-zero ([`XpLifecycleConfig::NONE`], the default) disables the
/// lifecycle model entirely: the controller never arms it and stays on
/// the lifecycle-free fast path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XpLifecycleConfig {
    /// Writes one wear bucket absorbs before its cells begin to fail
    /// (accelerated-aging budget, see the module docs). `0` disables the
    /// lifecycle model.
    pub endurance_writes: u64,
    /// Per-bucket endurance variation, ± percent of the budget (process
    /// variation across the die). Drawn once per bucket at arm time.
    pub endurance_jitter_pct: u32,
    /// Wear fraction (bucket writes / bucket budget) at which ECC errors
    /// begin to appear. Below it no per-op RNG draw happens at all.
    pub ecc_onset: f64,
    /// Correctable single-symbol error rate at 100% wear, in
    /// parts-per-million per media operation. Ramps linearly from zero at
    /// [`ecc_onset`](Self::ecc_onset).
    pub ecc_correctable_ppm: u32,
    /// Uncorrectable error rate at 100% wear, ppm per media operation.
    pub ecc_uncorrectable_ppm: u32,
    /// Spare lines available for retirement remaps before retired lines
    /// escalate to the dead (best-effort) path.
    pub spare_lines: u64,
}

impl XpLifecycleConfig {
    /// Lifecycle model disabled.
    pub const NONE: XpLifecycleConfig = XpLifecycleConfig {
        endurance_writes: 0,
        endurance_jitter_pct: 0,
        ecc_onset: 0.0,
        ecc_correctable_ppm: 0,
        ecc_uncorrectable_ppm: 0,
        spare_lines: 0,
    };

    /// Whether the config can ever detect or retire anything.
    pub fn is_disabled(&self) -> bool {
        self.endurance_writes == 0
    }
}

impl Default for XpLifecycleConfig {
    fn default() -> Self {
        XpLifecycleConfig::NONE
    }
}

/// Classification of one media operation against the wear state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleOutcome {
    /// Nothing detected.
    Healthy,
    /// A correctable single-symbol error: fixed in flight, the line is
    /// scrubbed (re-written) in the background.
    Corrected,
    /// An uncorrectable error: the data is lost and the line must retire.
    Uncorrectable,
    /// The bucket exhausted its endurance budget on a write: the written
    /// line wears out and must retire.
    WornOut,
}

/// What kind of lifecycle action an [`XpLifecycleEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XpLifecycleEventKind {
    /// A correctable ECC error was fixed and the line scrubbed.
    EccCorrect,
    /// A line was retired (worn out or uncorrectable).
    LineRetire,
    /// A retired line was remapped into the spare region.
    RemapSpare,
}

/// One lifecycle action taken by the XPoint controller, drained by the
/// memory subsystem into the observability stage taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XpLifecycleEvent {
    /// What happened.
    pub kind: XpLifecycleEventKind,
    /// The controller-local logical line involved.
    pub line: u64,
    /// `true` on a [`LineRetire`](XpLifecycleEventKind::LineRetire) whose
    /// spare budget was exhausted: the line is dead and capacity planners
    /// must exclude its page.
    pub escalated: bool,
    /// When the action began (the triggering media op's completion).
    pub start: Ps,
    /// When the action's background work (scrub / rebuild write) finished.
    pub end: Ps,
}

/// The armed lifecycle state: per-bucket endurance budgets (lazily
/// derived from the arm-time RNG state) and the ECC classification RNG.
#[derive(Debug, Clone)]
pub struct LineLifecycle {
    cfg: XpLifecycleConfig,
    /// Number of wear buckets the lifecycle was armed over; draws
    /// `0..buckets` of [`base`](Self::base) are reserved for budgets.
    buckets: u64,
    /// Jitter half-width as a fraction (precomputed from the config).
    jitter: f64,
    /// The RNG state captured at arm time. Bucket `b`'s budget is a pure
    /// function of this state: jump `b` draws forward and take one
    /// `next_f64`. No per-bucket storage exists.
    base: SplitMix64,
    /// Per-operation ECC draw stream (continues after the reserved
    /// budget draws on the same forked stream).
    rng: SplitMix64,
}

impl LineLifecycle {
    /// Arms the lifecycle over `buckets` wear buckets. Each bucket's
    /// effective budget occupies one reserved draw at the head of `rng`'s
    /// stream (so thresholds do not depend on operation order), but no
    /// budget is materialized — they are recomputed on demand in O(1).
    ///
    /// # Panics
    ///
    /// Panics if the config is disabled (`endurance_writes == 0`) — the
    /// controller must not arm a disabled config.
    pub fn new(cfg: XpLifecycleConfig, rng: SplitMix64, buckets: usize) -> Self {
        assert!(
            !cfg.is_disabled(),
            "a disabled lifecycle config must not be armed"
        );
        let base = rng;
        let mut rng = base.clone();
        rng.advance(buckets as u64); // skip the reserved budget draws
        LineLifecycle {
            cfg,
            buckets: buckets as u64,
            jitter: (cfg.endurance_jitter_pct as f64 / 100.0).min(0.99),
            base,
            rng,
        }
    }

    /// The armed configuration.
    pub fn config(&self) -> &XpLifecycleConfig {
        &self.cfg
    }

    /// The effective (jittered) endurance budget of one bucket,
    /// recomputed in O(1) from the arm-time RNG state.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is outside the armed bucket range.
    pub fn bucket_budget(&self, bucket: usize) -> u64 {
        assert!(
            (bucket as u64) < self.buckets,
            "bucket {bucket} out of range (armed over {})",
            self.buckets
        );
        let mut draw = self.base.clone();
        draw.advance(bucket as u64);
        let f = 1.0 + self.jitter * (2.0 * draw.next_f64() - 1.0);
        ((self.cfg.endurance_writes as f64 * f) as u64).max(1)
    }

    /// Classifies one media operation on a line in `bucket` whose wear
    /// count stands at `writes`. Draws at most one random number, and
    /// none below the ECC onset.
    pub fn classify(&mut self, bucket: usize, writes: u64, is_write: bool) -> LifecycleOutcome {
        let budget = self.bucket_budget(bucket);
        if is_write && writes >= budget {
            return LifecycleOutcome::WornOut;
        }
        let total_ppm = self.cfg.ecc_correctable_ppm as u64 + self.cfg.ecc_uncorrectable_ppm as u64;
        if total_ppm == 0 {
            return LifecycleOutcome::Healthy;
        }
        let wear = (writes as f64 / budget as f64).min(1.0);
        if wear < self.cfg.ecc_onset {
            return LifecycleOutcome::Healthy;
        }
        // Error rates ramp linearly from the onset to 100% wear.
        let span = (1.0 - self.cfg.ecc_onset).max(f64::EPSILON);
        let ramp = ((wear - self.cfg.ecc_onset) / span).clamp(0.0, 1.0);
        let p_unc = (self.cfg.ecc_uncorrectable_ppm as f64 * ramp) as u64;
        let p_corr = (self.cfg.ecc_correctable_ppm as f64 * ramp) as u64;
        let r = self.rng.next_below(1_000_000);
        if r < p_unc {
            LifecycleOutcome::Uncorrectable
        } else if r < p_unc + p_corr {
            LifecycleOutcome::Corrected
        } else {
            LifecycleOutcome::Healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed(endurance: u64) -> LineLifecycle {
        LineLifecycle::new(
            XpLifecycleConfig {
                endurance_writes: endurance,
                endurance_jitter_pct: 10,
                ecc_onset: 0.5,
                ecc_correctable_ppm: 400_000,
                ecc_uncorrectable_ppm: 50_000,
                spare_lines: 4,
            },
            SplitMix64::new(0x11FE),
            8,
        )
    }

    #[test]
    fn budgets_are_jittered_around_the_knob() {
        let lc = armed(1000);
        for b in 0..8 {
            let budget = lc.bucket_budget(b);
            assert!((900..=1100).contains(&budget), "bucket {b}: {budget}");
        }
        // Jitter actually varies across buckets.
        let all: std::collections::BTreeSet<u64> = (0..8).map(|b| lc.bucket_budget(b)).collect();
        assert!(all.len() > 1, "all budgets identical");
    }

    #[test]
    fn fresh_media_is_healthy_without_draws() {
        let mut a = armed(1000);
        let mut b = armed(1000);
        for _ in 0..100 {
            assert_eq!(a.classify(0, 0, true), LifecycleOutcome::Healthy);
        }
        // `a` drew nothing below the onset: classification at the onset
        // matches a virgin twin bit-for-bit.
        for bucket in 0..8 {
            assert_eq!(
                a.classify(bucket, 900, false),
                b.classify(bucket, 900, false)
            );
        }
    }

    #[test]
    fn exhausted_bucket_wears_out_on_writes_only() {
        let mut lc = armed(100);
        let budget = lc.bucket_budget(2);
        assert_eq!(lc.classify(2, budget, true), LifecycleOutcome::WornOut);
        // Reads at the same wear level never report hard wear-out.
        assert_ne!(lc.classify(2, budget, false), LifecycleOutcome::WornOut);
    }

    #[test]
    fn worn_media_reports_ecc_errors() {
        let mut lc = armed(100);
        let budget = lc.bucket_budget(0);
        let mut corrected = 0;
        let mut uncorrectable = 0;
        for _ in 0..2000 {
            match lc.classify(0, budget - 1, false) {
                LifecycleOutcome::Corrected => corrected += 1,
                LifecycleOutcome::Uncorrectable => uncorrectable += 1,
                _ => {}
            }
        }
        assert!(corrected > 100, "~40% correctable rate: {corrected}");
        assert!(
            uncorrectable > 10,
            "~5% uncorrectable rate: {uncorrectable}"
        );
        assert!(corrected > uncorrectable);
    }

    #[test]
    fn same_seed_reproduces_classification() {
        let mut a = armed(100);
        let mut b = armed(100);
        for i in 0..500u64 {
            let bucket = (i % 8) as usize;
            let writes = 60 + i % 50;
            assert_eq!(
                a.classify(bucket, writes, i % 3 == 0),
                b.classify(bucket, writes, i % 3 == 0),
                "diverged at op {i}"
            );
        }
    }

    #[test]
    fn lazy_budgets_match_eager_draws_bit_for_bit() {
        // The historical implementation drew every bucket budget eagerly
        // at arm time. The lazy form must reproduce that sequence
        // exactly, including the per-op stream continuing after the
        // reserved draws.
        let endurance = 1000u64;
        let lc = armed(endurance);
        let mut eager = SplitMix64::new(0x11FE);
        let j = 10.0 / 100.0;
        for b in 0..8 {
            let f = 1.0 + j * (2.0 * eager.next_f64() - 1.0);
            let want = ((endurance as f64 * f) as u64).max(1);
            assert_eq!(lc.bucket_budget(b), want, "bucket {b}");
        }
        // Budgets are pure: re-reading never perturbs anything.
        assert_eq!(lc.bucket_budget(3), lc.bucket_budget(3));
        // The first per-op draw is the 9th draw of the forked stream.
        let mut live = lc.clone();
        let budget = live.bucket_budget(0);
        let outcome = live.classify(0, budget - 1, false);
        let r = eager.next_below(1_000_000);
        // armed(): onset 0.5, corr 400_000 ppm, unc 50_000 ppm; at
        // wear ~= 1.0 the ramp is ~1.0, so classify thresholds r the
        // same way the eager stream would.
        let wear = ((budget - 1) as f64 / budget as f64).min(1.0);
        let ramp = ((wear - 0.5) / 0.5).clamp(0.0, 1.0);
        let p_unc = (50_000.0 * ramp) as u64;
        let p_corr = (400_000.0 * ramp) as u64;
        let want = if r < p_unc {
            LifecycleOutcome::Uncorrectable
        } else if r < p_unc + p_corr {
            LifecycleOutcome::Corrected
        } else {
            LifecycleOutcome::Healthy
        };
        assert_eq!(outcome, want);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_budget_out_of_range_panics() {
        let lc = armed(1000);
        let _ = lc.bucket_budget(8);
    }

    #[test]
    #[should_panic(expected = "disabled lifecycle")]
    fn arming_disabled_config_panics() {
        let _ = LineLifecycle::new(XpLifecycleConfig::NONE, SplitMix64::new(1), 4);
    }
}
