//! SerDes and register front-end for optical attachment.
//!
//! Memory devices access command, address and data in parallel, while the
//! optical channel serialises everything onto wavelengths (paper, Section
//! III-A). Each device therefore carries a SerDes circuit and a small
//! (16 KB) register file that buffers bursts arriving from / departing to
//! the optical channel. This module models the serialisation latency and
//! the buffer occupancy limit.

use ohm_sim::{Calendar, Counter, Ps};

/// SerDes + register buffer configuration and state at one memory device.
///
/// # Example
///
/// ```
/// use ohm_mem::SerdesFrontend;
/// use ohm_sim::Ps;
///
/// let mut fe = SerdesFrontend::new(Ps::from_ps(200), 16 * 1024);
/// // A 32-byte burst arriving at t=0 is available to the device core
/// // after the SerDes conversion delay.
/// let ready = fe.ingress(Ps::ZERO, 32);
/// assert_eq!(ready, Ps::from_ps(200));
/// ```
#[derive(Debug, Clone)]
pub struct SerdesFrontend {
    conversion_delay: Ps,
    buffer_bytes: u64,
    /// In-flight bytes with their release times (approximated FIFO).
    inflight: std::collections::VecDeque<(Ps, u64)>,
    occupied: u64,
    stalls: Counter,
    pipe: Calendar,
}

impl SerdesFrontend {
    /// Creates a front-end with the given serial↔parallel conversion delay
    /// and register-buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_bytes` is zero.
    pub fn new(conversion_delay: Ps, buffer_bytes: u64) -> Self {
        assert!(buffer_bytes > 0, "register buffer must be non-empty");
        SerdesFrontend {
            conversion_delay,
            buffer_bytes,
            inflight: std::collections::VecDeque::new(),
            occupied: 0,
            stalls: Counter::new(),
            pipe: Calendar::new(),
        }
    }

    /// Creates the paper's default front-end: 16 KB of registers and a
    /// 200 ps conversion delay.
    pub fn paper_default() -> Self {
        SerdesFrontend::new(Ps::from_ps(200), 16 * 1024)
    }

    fn reclaim(&mut self, now: Ps) {
        while let Some(&(t, bytes)) = self.inflight.front() {
            if t <= now {
                self.occupied -= bytes;
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }

    /// A burst of `bytes` arrives from the channel at `now`; returns when
    /// it is deserialised and available to the device core. Stalls if the
    /// register buffer is full.
    pub fn ingress(&mut self, now: Ps, bytes: u64) -> Ps {
        self.reclaim(now);
        let mut start = now;
        while self.occupied + bytes > self.buffer_bytes {
            match self.inflight.pop_front() {
                Some((t, b)) => {
                    self.occupied -= b;
                    start = start.max(t);
                    self.stalls.incr();
                }
                None => break, // burst larger than the buffer: pass through
            }
        }
        let (_, done) = self.pipe.book(start, self.conversion_delay);
        self.occupied += bytes;
        // Data leaves the buffer once the device core has consumed it;
        // model consumption as completing at deserialisation time.
        self.inflight.push_back((done, bytes));
        done
    }

    /// A burst of `bytes` departs to the channel at `now`; returns when the
    /// first bit can be modulated (serialisation pipeline delay).
    pub fn egress(&mut self, now: Ps, _bytes: u64) -> Ps {
        let (_, done) = self.pipe.book(now, self.conversion_delay);
        done
    }

    /// Bytes currently buffered (as of the last operation's timestamp).
    pub fn occupied_bytes(&self) -> u64 {
        self.occupied
    }

    /// Number of ingress stalls caused by a full register buffer.
    pub fn stalls(&self) -> u64 {
        self.stalls.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingress_adds_conversion_delay() {
        let mut fe = SerdesFrontend::new(Ps::from_ps(500), 1024);
        assert_eq!(fe.ingress(Ps::ZERO, 64), Ps::from_ps(500));
    }

    #[test]
    fn pipeline_serialises_back_to_back_bursts() {
        let mut fe = SerdesFrontend::new(Ps::from_ps(100), 4096);
        let a = fe.ingress(Ps::ZERO, 64);
        let b = fe.ingress(Ps::ZERO, 64);
        assert_eq!(a, Ps::from_ps(100));
        assert_eq!(b, Ps::from_ps(200));
    }

    #[test]
    fn full_buffer_stalls() {
        let mut fe = SerdesFrontend::new(Ps::from_ps(100), 128);
        fe.ingress(Ps::ZERO, 128);
        assert_eq!(fe.occupied_bytes(), 128);
        let t = fe.ingress(Ps::ZERO, 64);
        assert!(t >= Ps::from_ps(100));
        assert_eq!(fe.stalls(), 1);
    }

    #[test]
    fn buffer_reclaims_over_time() {
        let mut fe = SerdesFrontend::new(Ps::from_ps(100), 128);
        fe.ingress(Ps::ZERO, 128);
        let t = fe.ingress(Ps::from_us(1), 128);
        assert_eq!(t, Ps::from_us(1) + Ps::from_ps(100));
        assert_eq!(fe.stalls(), 0);
    }

    #[test]
    fn egress_books_pipeline() {
        let mut fe = SerdesFrontend::paper_default();
        let a = fe.egress(Ps::ZERO, 64);
        let b = fe.egress(Ps::ZERO, 64);
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "register buffer")]
    fn zero_buffer_rejected() {
        let _ = SerdesFrontend::new(Ps::ZERO, 0);
    }
}
