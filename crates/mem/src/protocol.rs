//! Memory communication protocol vocabulary.
//!
//! The heterogeneous memory controller speaks two protocols (paper,
//! Section II-C): deterministic **DDR** to DRAM, and the asynchronous
//! **DDR-T** handshake to the XPoint controller, whose access latencies are
//! non-deterministic. Ohm-GPU additionally introduces the `SWAP-CMD`
//! message (Section IV-B) that delegates a whole migration to the XPoint
//! controller's DDR sequence generator.

use ohm_sim::Addr;

/// Whether a memory request reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// A load: latency-critical, the warp blocks on the response.
    Read,
    /// A store: acknowledged once buffered.
    Write,
}

impl MemKind {
    /// True for [`MemKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, MemKind::Read)
    }
}

/// Deterministic DDR commands issued to a DRAM module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DdrCommand {
    /// Open a row into the bank's row buffer (tRCD).
    Activate {
        /// Target bank.
        bank: usize,
        /// Row to open.
        row: u64,
    },
    /// Close the open row (tRP).
    Precharge {
        /// Target bank.
        bank: usize,
    },
    /// Column read from the open row (tCL + burst).
    Read {
        /// Target bank.
        bank: usize,
        /// Column within the open row.
        col: u64,
    },
    /// Column write to the open row (tCL + burst).
    Write {
        /// Target bank.
        bank: usize,
        /// Column within the open row.
        col: u64,
    },
    /// Refresh all banks (tRFC).
    Refresh,
}

/// Asynchronous DDR-T messages exchanged with the XPoint controller.
///
/// DDR-T decouples command from data: the controller sends a command, goes
/// on to serve other requests, and is signalled when the XPoint controller
/// has data ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DdrTMessage {
    /// Read command for a logical XPoint address.
    ReadCmd {
        /// Logical address requested.
        addr: Addr,
    },
    /// Write command; data follows on the channel.
    WriteCmd {
        /// Logical address written.
        addr: Addr,
    },
    /// XPoint controller signals that read data is ready to transfer.
    ReadReady {
        /// Logical address whose data is ready.
        addr: Addr,
    },
    /// XPoint controller acknowledges a buffered (persistent) write.
    WriteAck {
        /// Logical address acknowledged.
        addr: Addr,
    },
    /// XPoint controller signals completion of a delegated migration.
    MigrationDone {
        /// Migration identifier from the originating `SWAP-CMD`.
        id: u64,
    },
    /// Memory-controller confirmation in the swap/reverse-write handshakes.
    Confirm {
        /// Identifier being confirmed.
        id: u64,
    },
}

/// The paper's new `SWAP-CMD` (Figure 10a / Figure 11): asks the XPoint
/// controller to migrate `size_bytes` between a DRAM page and an XPoint
/// page using its DDR sequence generator, over the memory route.
///
/// The memory controller pre-activates the DRAM bank (it alone knows bank
/// state) and stalls only requests that conflict with the migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwapCmd {
    /// Migration identifier, echoed in [`DdrTMessage::MigrationDone`].
    pub id: u64,
    /// DRAM-side page address.
    pub dram_addr: Addr,
    /// XPoint-side page address.
    pub xpoint_addr: Addr,
    /// Number of bytes to exchange.
    pub size_bytes: u64,
}

impl SwapCmd {
    /// Size of the command metadata on the data route, in bits.
    ///
    /// DRAM address + XPoint address + size + id, as serialised on the
    /// optical channel. The paper reuses the data route for this metadata.
    pub const METADATA_BITS: u64 = 4 * 64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_kind_predicates() {
        assert!(MemKind::Read.is_read());
        assert!(!MemKind::Write.is_read());
    }

    #[test]
    fn ddr_commands_are_comparable() {
        let a = DdrCommand::Activate { bank: 1, row: 7 };
        let b = DdrCommand::Activate { bank: 1, row: 7 };
        assert_eq!(a, b);
        assert_ne!(a, DdrCommand::Refresh);
    }

    #[test]
    fn swap_cmd_metadata_size() {
        assert_eq!(SwapCmd::METADATA_BITS, 256);
        let cmd = SwapCmd {
            id: 1,
            dram_addr: Addr::new(0x1000),
            xpoint_addr: Addr::new(0x8000),
            size_bytes: 4096,
        };
        assert_eq!(cmd.size_bytes, 4096);
    }
}
