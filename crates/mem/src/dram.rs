//! Banked DRAM module with row-buffer timing.
//!
//! Models a GDDR-class DRAM device at the level the paper's evaluation
//! needs: per-bank row buffers with activate/precharge/CAS timing from
//! Table I (tRCD 25 ns, tRP 10 ns, tCL 11 ns, tRRD 5 ns), plus periodic
//! refresh. Data burst serialisation is *not* modelled here — it belongs to
//! whichever channel (electrical or optical) carries the burst, and is
//! booked by the memory controller.

use ohm_sim::{Addr, Calendar, Counter, FastDiv, Ps};

use crate::protocol::MemKind;

/// DRAM core timing parameters.
///
/// Defaults are the paper's Table I values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Row activate delay (RAS-to-CAS).
    pub trcd: Ps,
    /// Precharge delay.
    pub trp: Ps,
    /// CAS (column access) latency.
    pub tcl: Ps,
    /// Activate-to-activate delay between different banks.
    pub trrd: Ps,
    /// Minimum row-open time (activate to precharge).
    pub tras: Ps,
    /// Write recovery: last write data to precharge.
    pub twr: Ps,
    /// Four-activate window: at most four activates per tFAW.
    pub tfaw: Ps,
    /// Average refresh interval (one refresh command per tREFI).
    pub trefi: Ps,
    /// Refresh cycle time (all banks busy).
    pub trfc: Ps,
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming {
            trcd: Ps::from_ns(25),
            trp: Ps::from_ns(10),
            tcl: Ps::from_ns(11),
            trrd: Ps::from_ns(5),
            tras: Ps::from_ns(32),
            twr: Ps::from_ns(15),
            tfaw: Ps::from_ns(20),
            trefi: Ps::from_ns(7_800),
            trfc: Ps::from_ns(350),
        }
    }
}

/// Static organisation of a DRAM module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Core timing.
    pub timing: DramTiming,
    /// Number of banks (total, across all ranks).
    pub banks: usize,
    /// Number of ranks (devices): tRRD and tFAW apply per rank.
    pub ranks: usize,
    /// Row (page) size in bytes. Must be a power of two.
    pub row_bytes: u64,
    /// Module capacity in bytes.
    pub capacity_bytes: u64,
    /// Whether periodic refresh is simulated.
    pub refresh_enabled: bool,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            timing: DramTiming::default(),
            banks: 16,
            ranks: 1,
            row_bytes: 2048,
            capacity_bytes: 4 << 30,
            refresh_enabled: true,
        }
    }
}

/// The outcome of a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// When the bank began servicing the access.
    pub start: Ps,
    /// When data is available in the row buffer (read) or written (write).
    pub data_at: Ps,
    /// Whether the access hit the open row.
    pub row_hit: bool,
    /// Bank index that serviced the access.
    pub bank: usize,
}

#[derive(Debug, Clone)]
struct Bank {
    cal: Calendar,
    open_row: Option<u64>,
    /// When the open row was activated (tRAS floor for the next precharge).
    activated_at: Ps,
    /// End of the last write burst in the open row (tWR floor).
    last_write_end: Ps,
}

/// A banked DRAM module.
///
/// # Example
///
/// ```
/// use ohm_mem::{DramConfig, DramModule, MemKind};
/// use ohm_sim::{Addr, Ps};
///
/// let mut dram = DramModule::new(DramConfig { refresh_enabled: false, ..DramConfig::default() });
/// let first = dram.access(Ps::ZERO, Addr::new(0), MemKind::Read);
/// assert!(!first.row_hit); // cold bank: activate + CAS
/// let second = dram.access(first.data_at, Addr::new(64), MemKind::Read);
/// assert!(second.row_hit); // same row: CAS only
/// assert!(second.data_at - second.start < first.data_at - first.start);
/// ```
#[derive(Debug, Clone)]
pub struct DramModule {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// Enforces tRRD between activates across banks, one gate per rank.
    activate_gates: Vec<Calendar>,
    /// Start times of recent activates (tFAW sliding window), per rank.
    faw_windows: Vec<std::collections::VecDeque<Ps>>,
    next_refresh: Ps,
    row_hits: Counter,
    row_misses: Counter,
    row_conflicts: Counter,
    activations: Counter,
    reads: Counter,
    writes: Counter,
    refreshes: Counter,
    /// Reciprocal of `cfg.banks` for per-access decode.
    banks_div: FastDiv,
    /// `cfg.banks / cfg.ranks`, precomputed for rank lookup.
    banks_per_rank: usize,
}

impl DramModule {
    /// Creates an idle module with all banks precharged.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks or a non-power-of-two row
    /// size.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0, "DRAM must have at least one bank");
        assert!(cfg.ranks > 0, "DRAM must have at least one rank");
        assert!(
            cfg.banks.is_multiple_of(cfg.ranks),
            "banks must divide evenly into ranks"
        );
        assert!(
            cfg.row_bytes.is_power_of_two(),
            "row size must be a power of two"
        );
        DramModule {
            banks: vec![
                Bank {
                    cal: Calendar::new(),
                    open_row: None,
                    activated_at: Ps::ZERO,
                    last_write_end: Ps::ZERO,
                };
                cfg.banks
            ],
            activate_gates: vec![Calendar::new(); cfg.ranks],
            faw_windows: vec![std::collections::VecDeque::new(); cfg.ranks],
            next_refresh: cfg.timing.trefi,
            banks_div: FastDiv::new(cfg.banks as u64),
            banks_per_rank: cfg.banks / cfg.ranks,
            cfg,
            row_hits: Counter::new(),
            row_misses: Counter::new(),
            row_conflicts: Counter::new(),
            activations: Counter::new(),
            reads: Counter::new(),
            writes: Counter::new(),
            refreshes: Counter::new(),
        }
    }

    /// The module configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn decode(&self, addr: Addr) -> (usize, u64) {
        let row_index = addr.block_index(self.cfg.row_bytes);
        let (row, bank) = self.banks_div.divmod(row_index);
        (bank as usize, row)
    }

    fn rank_of(&self, bank: usize) -> usize {
        bank / self.banks_per_rank
    }

    fn maybe_refresh(&mut self, now: Ps) {
        if !self.cfg.refresh_enabled {
            return;
        }
        while now >= self.next_refresh {
            let at = self.next_refresh;
            for bank in &mut self.banks {
                bank.cal.book(at, self.cfg.timing.trfc);
                bank.open_row = None;
            }
            self.refreshes.incr();
            self.next_refresh += self.cfg.timing.trefi;
        }
    }

    /// Performs a line access (read or write) at simulated time `now`.
    ///
    /// Row-buffer policy is open-page: the accessed row stays open.
    /// The returned [`DramAccess::data_at`] excludes channel burst time.
    pub fn access(&mut self, now: Ps, addr: Addr, kind: MemKind) -> DramAccess {
        self.maybe_refresh(now);
        let (bank_idx, row) = self.decode(addr);
        let rank = self.rank_of(bank_idx);
        let t = self.cfg.timing;
        let bank = &mut self.banks[bank_idx];

        let (row_hit, latency) = match bank.open_row {
            Some(open) if open == row => (true, t.tcl),
            Some(_) => (false, t.trp + t.trcd + t.tcl),
            None => (false, t.trcd + t.tcl),
        };

        let ready = if row_hit {
            now
        } else {
            // The precharge closing the old row must respect tRAS (row
            // open long enough) and tWR (write recovery).
            let mut ready = now;
            if bank.open_row.is_some() {
                ready = ready
                    .max(bank.activated_at + t.tras)
                    .max(bank.last_write_end + t.twr);
            }
            // The activate needs a tRRD slot on its rank's gate...
            let (_, gate_end) = self.activate_gates[rank].book(ready, t.trrd);
            let mut ready = gate_end - t.trrd;
            // ...and must respect the rank's four-activate window (tFAW).
            let faw = &mut self.faw_windows[rank];
            while let Some(&front) = faw.front() {
                if front + t.tfaw <= ready || faw.len() < 4 {
                    if faw.len() >= 4 {
                        faw.pop_front();
                    }
                    break;
                }
                ready = front + t.tfaw;
                faw.pop_front();
            }
            self.activations.incr();
            ready
        };

        let (start, end) = bank.cal.book(ready, latency);
        if row_hit {
            self.row_hits.incr();
        } else if bank.open_row.is_some() {
            self.row_conflicts.incr();
        } else {
            self.row_misses.incr();
        }
        if !row_hit {
            // The activate lands right before the CAS completes its tRCD.
            let t_act = end - t.tcl - t.trcd;
            self.banks[bank_idx].activated_at = t_act;
            let faw = &mut self.faw_windows[rank];
            faw.push_back(t_act);
            if faw.len() > 4 {
                faw.pop_front();
            }
        }
        let bank = &mut self.banks[bank_idx];
        bank.open_row = Some(row);
        if matches!(kind, MemKind::Write) {
            bank.last_write_end = bank.last_write_end.max(end);
        }
        match kind {
            MemKind::Read => self.reads.incr(),
            MemKind::Write => self.writes.incr(),
        }
        DramAccess {
            start,
            data_at: end,
            row_hit,
            bank: bank_idx,
        }
    }

    /// Precharges and activates the row containing `addr`, leaving the bank
    /// with the row open — the memory controller uses this to preset a bank
    /// to a stable state before issuing `SWAP-CMD` (paper, Figure 11 step 1).
    ///
    /// Returns the time at which the row is open and stable.
    pub fn preset_row(&mut self, now: Ps, addr: Addr) -> Ps {
        self.maybe_refresh(now);
        let (bank_idx, row) = self.decode(addr);
        let rank = self.rank_of(bank_idx);
        let t = self.cfg.timing;
        let bank = &mut self.banks[bank_idx];
        if bank.open_row == Some(row) {
            return bank.cal.next_free().max(now);
        }
        let had_open = bank.open_row.is_some();
        let ready = if had_open {
            now.max(bank.activated_at + t.tras)
                .max(bank.last_write_end + t.twr)
        } else {
            now
        };
        let latency = if had_open { t.trp + t.trcd } else { t.trcd };
        let (_, gate_end) = self.activate_gates[rank].book(ready, t.trrd);
        self.activations.incr();
        let (_, end) = bank.cal.book(gate_end - t.trrd, latency);
        bank.open_row = Some(row);
        bank.activated_at = end - t.trcd;
        if had_open {
            self.row_conflicts.incr();
        } else {
            self.row_misses.incr();
        }
        end
    }

    /// Whether the row containing `addr` is currently open in its bank.
    pub fn row_is_open(&self, addr: Addr) -> bool {
        let (bank, row) = self.decode(addr);
        self.banks[bank].open_row == Some(row)
    }

    /// Blocks the bank containing `addr` until `until` (used by the
    /// conflict-detection logic while a delegated migration owns the bank).
    pub fn reserve_bank(&mut self, addr: Addr, until: Ps) {
        let (bank, _) = self.decode(addr);
        self.banks[bank].cal.block_until(until);
    }

    /// When the bank containing `addr` next becomes free.
    pub fn bank_free_at(&self, addr: Addr) -> Ps {
        let (bank, _) = self.decode(addr);
        self.banks[bank].cal.next_free()
    }

    /// Row-buffer hit count.
    pub fn row_hits(&self) -> u64 {
        self.row_hits.get()
    }

    /// Accesses to a precharged (empty) bank.
    pub fn row_misses(&self) -> u64 {
        self.row_misses.get()
    }

    /// Accesses that had to close another open row first.
    pub fn row_conflicts(&self) -> u64 {
        self.row_conflicts.get()
    }

    /// Total row activations performed.
    pub fn activations(&self) -> u64 {
        self.activations.get()
    }

    /// Read accesses serviced.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Write accesses serviced.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Refresh operations performed.
    pub fn refreshes(&self) -> u64 {
        self.refreshes.get()
    }

    /// Total busy time across all banks (for utilisation reporting).
    pub fn busy_time(&self) -> Ps {
        self.banks.iter().map(|b| b.cal.busy_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> DramConfig {
        DramConfig {
            refresh_enabled: false,
            ..DramConfig::default()
        }
    }

    #[test]
    fn cold_access_pays_activate() {
        let mut d = DramModule::new(quiet_cfg());
        let a = d.access(Ps::ZERO, Addr::new(0), MemKind::Read);
        // tRCD + tCL = 36 ns
        assert_eq!(a.data_at - a.start, Ps::from_ns(36));
        assert!(!a.row_hit);
        assert_eq!(d.row_misses(), 1);
    }

    #[test]
    fn row_hit_pays_cas_only() {
        let mut d = DramModule::new(quiet_cfg());
        let a = d.access(Ps::ZERO, Addr::new(0), MemKind::Read);
        let b = d.access(a.data_at, Addr::new(128), MemKind::Read);
        assert!(b.row_hit);
        assert_eq!(b.data_at - b.start, Ps::from_ns(11));
        assert_eq!(d.row_hits(), 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = quiet_cfg();
        let row_stride = cfg.row_bytes * cfg.banks as u64; // same bank, next row
        let mut d = DramModule::new(cfg);
        let a = d.access(Ps::ZERO, Addr::new(0), MemKind::Read);
        let b = d.access(a.data_at, Addr::new(row_stride), MemKind::Read);
        assert!(!b.row_hit);
        // tRP + tRCD + tCL = 46 ns
        assert_eq!(b.data_at - b.start, Ps::from_ns(46));
        assert_eq!(d.row_conflicts(), 1);
    }

    #[test]
    fn different_banks_overlap_but_respect_trrd() {
        let cfg = quiet_cfg();
        let mut d = DramModule::new(cfg);
        let a = d.access(Ps::ZERO, Addr::new(0), MemKind::Read);
        // Next bank: different row_bytes-sized block.
        let b = d.access(Ps::ZERO, Addr::new(cfg.row_bytes), MemKind::Read);
        assert_eq!(a.bank, 0);
        assert_eq!(b.bank, 1);
        // Bank 1's activate is delayed by tRRD relative to bank 0's.
        assert_eq!(b.start - a.start, cfg.timing.trrd);
        // But they overlap: b starts before a completes.
        assert!(b.start < a.data_at);
    }

    #[test]
    fn same_bank_serialises() {
        let cfg = quiet_cfg();
        let row_stride = cfg.row_bytes * cfg.banks as u64;
        let mut d = DramModule::new(cfg);
        let a = d.access(Ps::ZERO, Addr::new(0), MemKind::Read);
        let b = d.access(Ps::ZERO, Addr::new(row_stride * 2), MemKind::Read);
        assert_eq!(a.bank, b.bank);
        assert!(b.start >= a.data_at);
    }

    #[test]
    fn refresh_closes_rows_and_blocks() {
        let cfg = DramConfig::default();
        let mut d = DramModule::new(cfg);
        let a = d.access(Ps::ZERO, Addr::new(0), MemKind::Read);
        assert!(!a.row_hit);
        // Jump past the first refresh interval: the open row must be gone.
        let later = cfg.timing.trefi + Ps::from_ns(1);
        let b = d.access(later, Addr::new(0), MemKind::Read);
        assert!(!b.row_hit, "refresh should close the open row");
        assert!(d.refreshes() >= 1);
        // The access is pushed behind the refresh.
        assert!(b.start >= cfg.timing.trefi + cfg.timing.trfc);
    }

    #[test]
    fn preset_row_makes_following_access_a_hit() {
        let mut d = DramModule::new(quiet_cfg());
        let open_at = d.preset_row(Ps::ZERO, Addr::new(4096));
        let a = d.access(open_at, Addr::new(4096), MemKind::Write);
        assert!(a.row_hit);
        assert!(d.row_is_open(Addr::new(4096)));
    }

    #[test]
    fn reserve_bank_delays_access() {
        let mut d = DramModule::new(quiet_cfg());
        d.reserve_bank(Addr::new(0), Ps::from_us(5));
        let a = d.access(Ps::ZERO, Addr::new(0), MemKind::Read);
        assert!(a.start >= Ps::from_us(5));
        assert_eq!(d.bank_free_at(Addr::new(64)), a.data_at);
    }

    #[test]
    fn tras_delays_early_conflict() {
        let cfg = quiet_cfg();
        let row_stride = cfg.row_bytes * cfg.banks as u64;
        let mut d = DramModule::new(cfg);
        let a = d.access(Ps::ZERO, Addr::new(0), MemKind::Read);
        // Conflict immediately after the data: the precharge must wait for
        // tRAS from the activate (activate at data_at - tCL - tRCD = 0).
        let b = d.access(a.data_at, Addr::new(row_stride), MemKind::Read);
        assert!(
            b.start >= cfg.timing.tras,
            "precharge before tRAS: start {} < {}",
            b.start,
            cfg.timing.tras
        );
    }

    #[test]
    fn twr_delays_precharge_after_write() {
        let cfg = quiet_cfg();
        let row_stride = cfg.row_bytes * cfg.banks as u64;
        let mut d = DramModule::new(cfg);
        let w = d.access(Ps::ZERO, Addr::new(0), MemKind::Write);
        let b = d.access(w.data_at, Addr::new(row_stride), MemKind::Read);
        assert!(
            b.start >= w.data_at + cfg.timing.twr,
            "write recovery violated: {} < {}",
            b.start,
            w.data_at + cfg.timing.twr
        );
    }

    #[test]
    fn tfaw_limits_activate_bursts() {
        let cfg = quiet_cfg();
        let mut d = DramModule::new(cfg);
        // Five activates to five different banks at t=0: the fifth must
        // wait for the tFAW window to roll past the first.
        let mut starts = Vec::new();
        for bank in 0..5u64 {
            let acc = d.access(Ps::ZERO, Addr::new(bank * cfg.row_bytes), MemKind::Read);
            starts.push(acc.start);
        }
        let act0 = starts[0] + cfg.timing.trcd - cfg.timing.trcd; // activate ~ start
        assert!(
            starts[4] >= act0 + cfg.timing.tfaw,
            "fifth activate inside tFAW: {} < {}",
            starts[4],
            act0 + cfg.timing.tfaw
        );
        // The first four proceed at tRRD spacing.
        assert_eq!(starts[1] - starts[0], cfg.timing.trrd);
    }

    #[test]
    fn ranks_have_independent_activate_windows() {
        // Same workload, one vs four ranks: the four-rank module issues
        // activate bursts in parallel tFAW domains.
        let one = DramConfig {
            refresh_enabled: false,
            banks: 16,
            ranks: 1,
            ..DramConfig::default()
        };
        let four = DramConfig {
            refresh_enabled: false,
            banks: 16,
            ranks: 4,
            ..DramConfig::default()
        };
        let mut d1 = DramModule::new(one);
        let mut d4 = DramModule::new(four);
        let mut last1 = Ps::ZERO;
        let mut last4 = Ps::ZERO;
        for bank in 0..8u64 {
            let a = Addr::new(bank * one.row_bytes);
            last1 = last1.max(d1.access(Ps::ZERO, a, MemKind::Read).start);
            last4 = last4.max(d4.access(Ps::ZERO, a, MemKind::Read).start);
        }
        assert!(
            last4 < last1,
            "four ranks must start bursts sooner: {last4} vs {last1}"
        );
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_ranks_rejected() {
        let _ = DramModule::new(DramConfig {
            banks: 16,
            ranks: 3,
            ..DramConfig::default()
        });
    }

    #[test]
    fn counters_track_kinds() {
        let mut d = DramModule::new(quiet_cfg());
        d.access(Ps::ZERO, Addr::new(0), MemKind::Read);
        d.access(Ps::ZERO, Addr::new(64), MemKind::Write);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.activations(), 1); // second access was a row hit
        assert!(d.busy_time() > Ps::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = DramModule::new(DramConfig {
            banks: 0,
            ..DramConfig::default()
        });
    }
}
