//! Memory device models for the Ohm-GPU reproduction.
//!
//! This crate implements the heterogeneous-memory substrate the paper
//! builds on (its Section II-C and Figure 4):
//!
//! * [`dram`] — a banked DRAM module with row buffers and the Table I
//!   timing parameters (tRCD 25 ns, tRP 10 ns, tCL 11 ns, tRRD 5 ns) plus
//!   periodic refresh.
//! * [`xpoint`] — the 3D XPoint media model: 190 ns reads, 763 ns writes,
//!   per-partition service, a read buffer and a persistent write buffer
//!   (the asymmetric-frequency decoupling of the XPoint controller).
//! * [`wear`] — Start-Gap wear leveling [Qureshi et al., MICRO'09], the
//!   scheme the paper adopts to avoid a DRAM-resident mapping table, plus
//!   endurance accounting.
//! * [`lifecycle`] — the media end-of-life model: per-bucket endurance
//!   budgets with process variation, wear-ramped ECC error rates, and the
//!   classification (healthy / corrected / uncorrectable / worn-out) the
//!   controller acts on.
//! * [`xpoint_ctrl`] — the XPoint controller: address translation through
//!   Start-Gap, buffering, the DDR-T asynchronous handshake, the *snarf*
//!   capability used by auto-read/write, and the DDR sequence generator
//!   used by the swap function.
//! * [`protocol`] — DDR command and DDR-T message vocabulary, including the
//!   paper's new `SWAP-CMD`.
//! * [`serdes`] — the SerDes + 16 KB register front-end that adapts
//!   parallel memory devices to the serial optical channel.
//! * [`ddr_seq`] — the DDR sequence generator (swap function) and the DDR
//!   monitor (reverse write) of Section V-A.

#![warn(missing_docs)]

pub mod ddr_seq;
pub mod dram;
pub mod lifecycle;
pub mod protocol;
pub mod serdes;
pub mod wear;
pub mod xpoint;
pub mod xpoint_ctrl;

pub use ddr_seq::{DdrMonitor, DdrSequenceGenerator, MonitorState};
pub use dram::{DramAccess, DramConfig, DramModule, DramTiming};
pub use lifecycle::{
    LifecycleOutcome, LineLifecycle, XpLifecycleConfig, XpLifecycleEvent, XpLifecycleEventKind,
};
pub use protocol::{DdrCommand, DdrTMessage, MemKind, SwapCmd};
pub use serdes::SerdesFrontend;
pub use wear::{StartGap, WearError, WearStats};
pub use xpoint::{XPointConfig, XPointMedia};
pub use xpoint_ctrl::{XPointController, XpCompletion, XpFaultConfig};
